//! Integration test host crate; all tests live in `tests/tests/`.

#![forbid(unsafe_code)]
