//! Integration test host crate; all tests live in `tests/tests/`.
