//! End-to-end wire tests: a Vroom-compliant server speaking real HTTP/2
//! over real TCP sockets, serving real rendered HTML, with a client that
//! consumes PUSH_PROMISEs and dependency-hint headers — the reproduction's
//! equivalent of the paper's §5 implementation, exercised live.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
use vroom_browser::config::Hint;
use vroom_html::{ResourceKind, Url};
use vroom_intern::{UrlId, UrlTable};
use vroom_net::{RecordedResponse, ReplayStore, RetryBudget};
use vroom_pages::{render_html, LoadContext, Page, PageGenerator, SiteProfile};
use vroom_server::online::scan_served_html;
use vroom_server::wire::{WireClient, WireFaults, WireServer, WireSite};
use vroom_server::{parse_hints, PushPolicy};

/// Record a page into a replay store (the Mahimahi "record" phase), with
/// real HTML bodies for the documents.
fn record(page: &Page) -> ReplayStore {
    let mut store = ReplayStore::new();
    for r in &page.resources {
        let rec = if r.kind == ResourceKind::Html {
            RecordedResponse::with_body(ResourceKind::Html, render_html(page, r.id))
        } else {
            RecordedResponse::synthetic(r.kind, r.size)
        };
        store.record(r.url.clone(), rec);
    }
    store
}

/// Hints for every HTML document, from the real scanner over real markup.
/// Keys and hint URLs are interned into the store's own table.
fn hints_from_markup(page: &Page, store: &mut ReplayStore) -> BTreeMap<UrlId, Vec<Hint>> {
    let mut out = BTreeMap::new();
    let root = scan_served_html(page, 0, store.urls_mut());
    out.insert(store.urls_mut().intern(page.url.clone()), root);
    for r in &page.resources {
        if r.id != 0 && r.kind == ResourceKind::Html {
            let hs = scan_served_html(page, r.id, store.urls_mut());
            out.insert(store.urls_mut().intern(r.url.clone()), hs);
        }
    }
    out
}

fn start_server(page: &Page, push: PushPolicy) -> WireServer {
    let mut store = record(page);
    let hints = hints_from_markup(page, &mut store);
    let site = WireSite {
        store: Arc::new(store),
        hints: Arc::new(hints),
        push,
        domain: page.url.host.clone(),
        faults: Default::default(),
    };
    WireServer::start(site).expect("bind loopback")
}

fn small_page() -> Page {
    // A small news site keeps the wire test fast.
    let mut profile = SiteProfile::news();
    profile.n_images = (6, 8);
    profile.n_sync_js = (3, 5);
    profile.n_async_js = (2, 3);
    profile.n_iframes = (1, 2);
    profile.js_children = (2, 3);
    PageGenerator::new(profile, 9090).snapshot(&LoadContext::reference())
}

#[test]
fn vroom_server_pushes_and_hints_over_real_tcp() {
    let page = small_page();
    let server = start_server(&page, PushPolicy::HighPriorityLocal);

    let mut client = WireClient::connect(server.addr()).expect("connect");
    client.fetch(&page.url).expect("request root");
    let responses = client.run(Duration::from_secs(10)).expect("drive io");

    // The root HTML arrived with the right body.
    let root = responses
        .iter()
        .find(|r| r.url == page.url)
        .expect("root response");
    assert_eq!(root.response.status, 200);
    let body = String::from_utf8(root.body.clone()).expect("utf-8 html");
    assert!(body.contains("<!DOCTYPE html>"));

    // Hint headers are present and parse back into tiers (Table 1).
    let mut urls = UrlTable::new();
    let hints = parse_hints(&root.response, &mut urls);
    assert!(!hints.is_empty(), "root response must carry hints");
    assert!(hints.iter().any(|h| h.tier == 0), "Link preload present");
    assert!(hints.iter().any(|h| h.tier == 2), "x-unimportant present");
    // CORS exposure for the JS scheduler (§5.2 footnote 7).
    assert!(root
        .response
        .header_values("access-control-expose-headers")
        .next()
        .is_some());

    // High-priority same-domain resources were pushed.
    let pushed: Vec<_> = responses.iter().filter(|r| r.pushed).collect();
    assert!(!pushed.is_empty(), "server must push high-priority content");
    for p in &pushed {
        assert_eq!(p.url.host, page.url.host, "push is same-domain only");
        let model = page
            .resources
            .iter()
            .find(|r| r.url == p.url)
            .expect("pushed URL is a real resource");
        assert_eq!(model.hint_tier(), 0, "only tier-0 content is pushed");
        assert_eq!(p.body.len() as u64, model.size, "full body pushed");
    }
    server.stop();
}

#[test]
fn client_can_fetch_hinted_resources_in_tiers() {
    let page = small_page();
    let server = start_server(&page, PushPolicy::None);

    let mut client = WireClient::connect(server.addr()).expect("connect");
    client.fetch(&page.url).expect("request root");
    let responses = client.run(Duration::from_secs(10)).expect("io");
    let root = responses.iter().find(|r| r.url == page.url).expect("root");
    let mut urls = UrlTable::new();
    let hints = parse_hints(&root.response, &mut urls);

    // Stage 0: fetch every preload-tier hint on the same domain set.
    let tier0: Vec<&Hint> = hints
        .iter()
        .filter(|h| h.tier == 0 && urls.get(h.url).host == page.url.host)
        .collect();
    assert!(!tier0.is_empty());
    for h in &tier0 {
        client.fetch(urls.get(h.url)).expect("hinted fetch");
    }
    let fetched = client.run(Duration::from_secs(10)).expect("io");
    assert_eq!(fetched.len(), tier0.len(), "every hinted fetch completed");
    for f in &fetched {
        assert_eq!(f.response.status, 200);
        let model = page.resources.iter().find(|r| r.url == f.url).unwrap();
        assert_eq!(f.body.len() as u64, model.size);
    }
    server.stop();
}

#[test]
fn unknown_urls_get_404_over_the_wire() {
    let page = small_page();
    let server = start_server(&page, PushPolicy::None);
    let mut client = WireClient::connect(server.addr()).expect("connect");
    client
        .fetch(&Url::https(
            page.url.host.clone(),
            "/definitely-not-there.js",
        ))
        .expect("request");
    let responses = client.run(Duration::from_secs(5)).expect("io");
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].response.status, 404);
    server.stop();
}

#[test]
fn large_bodies_cross_flow_control_boundaries() {
    // A body much larger than the 64 KiB default connection window forces
    // WINDOW_UPDATE roundtrips through the real stack.
    let url = Url::https("big.example", "/huge.jpg");
    let mut store = ReplayStore::new();
    store.record(
        url.clone(),
        RecordedResponse::synthetic(ResourceKind::Image, 700_000),
    );
    let site = WireSite {
        store: Arc::new(store),
        hints: Arc::new(BTreeMap::new()),
        push: PushPolicy::None,
        domain: "big.example".into(),
        faults: Default::default(),
    };
    let server = WireServer::start(site).expect("bind");
    let mut client = WireClient::connect(server.addr()).expect("connect");
    client.fetch(&url).expect("request");
    let responses = client.run(Duration::from_secs(20)).expect("io");
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].body.len(), 700_000);
    server.stop();
}

#[test]
fn injected_truncation_recovers_via_client_retry_over_tcp() {
    // The server truncates the first serve of one URL mid-body and resets
    // the stream; the WireClient's retry budget re-fetches it and the
    // final set of responses is complete and correct.
    let url = Url::https("flaky.example", "/app.js");
    let other = Url::https("flaky.example", "/solid.css");
    let mut store = ReplayStore::new();
    store.record(
        url.clone(),
        RecordedResponse::synthetic(ResourceKind::Js, 40_000),
    );
    store.record(
        other.clone(),
        RecordedResponse::synthetic(ResourceKind::Css, 9_000),
    );
    let site = WireSite {
        store: Arc::new(store),
        hints: Arc::new(BTreeMap::new()),
        push: PushPolicy::None,
        domain: "flaky.example".into(),
        faults: WireFaults::truncate_once([url.clone()]),
    };
    let server = WireServer::start(site).expect("bind");
    let mut client = WireClient::connect(server.addr())
        .expect("connect")
        .with_retry(RetryBudget {
            backoff_base: vroom_sim::SimDuration::from_millis(10),
            ..RetryBudget::standard()
        });
    client.fetch(&url).expect("request");
    client.fetch(&other).expect("request");
    let responses = client.run(Duration::from_secs(15)).expect("io");
    assert_eq!(client.resets_seen(), 1, "one injected RST_STREAM");
    assert_eq!(responses.len(), 2, "both URLs complete after the retry");
    for r in &responses {
        if r.url == url {
            assert_eq!(r.body.len(), 40_000, "retried body is complete");
        } else {
            assert_eq!(r.body.len(), 9_000);
        }
    }
    server.stop();
}

#[test]
fn concurrent_requests_multiplex_on_one_connection() {
    let page = small_page();
    let server = start_server(&page, PushPolicy::None);
    let mut client = WireClient::connect(server.addr()).expect("connect");
    let targets: Vec<Url> = page
        .resources
        .iter()
        .filter(|r| r.url.host == page.url.host)
        .take(8)
        .map(|r| r.url.clone())
        .collect();
    for t in &targets {
        client.fetch(t).expect("request");
    }
    let responses = client.run(Duration::from_secs(15)).expect("io");
    assert_eq!(responses.len(), targets.len());
    server.stop();
}
