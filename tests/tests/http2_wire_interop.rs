//! Protocol-level integration: the sans-IO HTTP/2 connection driven over
//! the in-memory pipe transport across real threads — exercising the same
//! state machine the wire server uses, under concurrency.

#![forbid(unsafe_code)]

use std::thread;
use std::time::Duration;
use vroom_http2::{Connection, ErrorCode, Event, Request, Response, Settings};
use vroom_net::pipe::{self, Read};
use vroom_net::RetryBudget;

/// Drive a connection over a pipe end until `done` says stop.
fn pump_until<F: FnMut(&mut Connection) -> bool>(
    conn: &mut Connection,
    end: &mut pipe::PipeEnd,
    mut done: F,
    deadline: Duration,
) {
    // Watchdog for a real in-memory pipe pump; the test asserts on bytes,
    // not time, so this wall-clock read is outside the sim-purity roots.
    let start = std::time::Instant::now();
    while start.elapsed() < deadline {
        let out = conn.take_output();
        if !out.is_empty() {
            end.send(&out);
        }
        match end.read_timeout(Duration::from_millis(5)) {
            Read::Data(bytes) => {
                conn.recv(&bytes).expect("protocol error");
            }
            Read::Closed => break,
            Read::Empty => {}
        }
        if done(conn) {
            // Flush any final output (acks, window updates).
            let out = conn.take_output();
            if !out.is_empty() {
                end.send(&out);
            }
            return;
        }
    }
    panic!("pump_until timed out");
}

#[test]
fn threaded_client_server_over_pipe() {
    let (mut client_end, mut server_end) = pipe::pair();

    let server = thread::spawn(move || {
        let mut conn = Connection::server(Settings::default());
        let mut served = 0usize;
        pump_until(
            &mut conn,
            &mut server_end,
            |conn| {
                while let Some(ev) = conn.poll_event() {
                    if let Event::Headers {
                        stream_id, fields, ..
                    } = ev
                    {
                        let req = Request::from_fields(&fields).expect("request");
                        let resp = Response::ok().with_header("x-served-path", &req.path);
                        conn.send_response(stream_id, &resp, false).unwrap();
                        conn.send_data(stream_id, req.path.as_bytes(), true)
                            .unwrap();
                        served += 1;
                    }
                }
                served >= 5
            },
            Duration::from_secs(10),
        );
        served
    });

    let mut conn = Connection::client(Settings::vroom_client());
    for i in 0..5 {
        conn.send_request(&Request::get("pipe.example", format!("/item/{i}")), true)
            .unwrap();
    }
    let mut bodies = Vec::new();
    pump_until(
        &mut conn,
        &mut client_end,
        |conn| {
            while let Some(ev) = conn.poll_event() {
                if let Event::Data {
                    data, end_stream, ..
                } = ev
                {
                    if end_stream {
                        bodies.push(String::from_utf8(data.to_vec()).unwrap());
                    }
                }
            }
            bodies.len() >= 5
        },
        Duration::from_secs(10),
    );
    bodies.sort();
    assert_eq!(
        bodies,
        vec!["/item/0", "/item/1", "/item/2", "/item/3", "/item/4"]
    );
    assert_eq!(server.join().unwrap(), 5);
}

/// Injected mid-stream truncation surfaces as a well-formed RST_STREAM on
/// the wire — partial DATA without END_STREAM, then the reset frame — and
/// the client recovers by re-requesting within its retry budget.
#[test]
fn truncated_stream_resets_and_client_retries() {
    let (mut client_end, mut server_end) = pipe::pair();
    const BODY: &[u8] = b"the complete resource body, all thirty-nine";

    let server = thread::spawn(move || {
        let mut conn = Connection::server(Settings::default());
        let mut serves = 0usize;
        pump_until(
            &mut conn,
            &mut server_end,
            |conn| {
                while let Some(ev) = conn.poll_event() {
                    if let Event::Headers { stream_id, .. } = ev {
                        serves += 1;
                        if serves == 1 {
                            // First attempt: a prefix of the body, stream
                            // left open, then an abort.
                            let resp = Response::ok();
                            conn.send_response(stream_id, &resp, false).unwrap();
                            conn.send_data(stream_id, &BODY[..BODY.len() / 2], false)
                                .unwrap();
                            conn.reset_stream(stream_id, ErrorCode::InternalError);
                        } else {
                            let resp = Response::ok();
                            conn.send_response(stream_id, &resp, false).unwrap();
                            conn.send_data(stream_id, BODY, true).unwrap();
                        }
                    }
                }
                serves >= 2
            },
            Duration::from_secs(10),
        );
        serves
    });

    let budget = RetryBudget::standard();
    let mut conn = Connection::client(Settings::vroom_client());
    let req = Request::get("pipe.example", "/flaky.js");
    conn.send_request(&req, true).unwrap();

    let mut attempts = 1u32;
    let mut resets = 0usize;
    let mut partial_before_reset = 0usize;
    let mut complete_body: Option<Vec<u8>> = None;
    let mut acc: Vec<u8> = Vec::new();
    pump_until(
        &mut conn,
        &mut client_end,
        |conn| {
            while let Some(ev) = conn.poll_event() {
                match ev {
                    Event::Data {
                        data, end_stream, ..
                    } => {
                        acc.extend_from_slice(&data);
                        if end_stream {
                            complete_body = Some(acc.clone());
                        }
                    }
                    Event::StreamReset { code, .. } => {
                        resets += 1;
                        partial_before_reset = acc.len();
                        acc.clear();
                        assert_eq!(code, ErrorCode::InternalError);
                        // Recover: re-GET the same URL, budget permitting.
                        assert!(budget.allows(attempts), "budget exhausted");
                        conn.send_request(&req, true).unwrap();
                        attempts += 1;
                    }
                    _ => {}
                }
            }
            complete_body.is_some()
        },
        Duration::from_secs(10),
    );

    assert_eq!(resets, 1, "exactly one injected reset");
    assert_eq!(
        partial_before_reset,
        BODY.len() / 2,
        "truncation delivered exactly the configured prefix"
    );
    assert_eq!(complete_body.as_deref(), Some(BODY), "retry got full body");
    assert_eq!(server.join().unwrap(), 2);
}
