//! Deterministic chaos suite: seeded fault plans swept across every
//! system, proving the fault-injection layer's two contracts:
//!
//! 1. **Termination** — every load completes under every plan. Retry
//!    budgets are finite, replacement connections never re-drop, and
//!    onload degrades around resources whose budget is exhausted, so no
//!    combination of outages, drops, truncations, and corrupted hints can
//!    hang a load.
//! 2. **Graceful degradation** — Vroom's advantage survives faults: under
//!    identical plans, faulted Vroom's median PLT stays at or below the
//!    faulted HTTP/2 baseline's.

//!
//! The fleet section extends both contracts to the serving path: a fleet
//! under an active plan terminates, faults stay confined to the clients
//! they were dealt to, and an inactive plan perturbs nothing.

#![forbid(unsafe_code)]

use vroom::{run_load, run_load_faulted, System};
use vroom_fleet::{run_fleet, FleetConfig, FleetFaults};
use vroom_net::{FaultPlan, NetworkProfile};
use vroom_pages::{Corpus, LoadContext};
use vroom_sim::SimDuration;

const SYSTEMS: [System; 5] = [
    System::Http1,
    System::Http2,
    System::PushAllStatic,
    System::PolarisLike,
    System::Vroom,
];

/// Every load must finish well inside this bound; a hang would otherwise
/// spin the event loop forever, not merely run slow.
const TERMINATION_BOUND: SimDuration = SimDuration::from_secs(15 * 60);

fn plans(severity: f64, n: u64) -> Vec<FaultPlan> {
    (0..n)
        .map(|i| FaultPlan::from_seed(0xC4A05 ^ (i * 7919), severity))
        .collect()
}

#[test]
fn every_system_terminates_under_every_fault_plan() {
    let corpus = Corpus::small(2026, 4);
    let ctx = LoadContext::reference();
    let lte = NetworkProfile::lte();
    let mut faulted_loads = 0usize;
    for severity in [0.3, 0.7, 1.0] {
        for plan in plans(severity, 4) {
            assert!(plan.is_active(), "from_seed must produce an active plan");
            for site in &corpus.sites {
                for system in SYSTEMS {
                    let r = run_load_faulted(site, &ctx, &lte, system, 11, &plan);
                    assert!(
                        r.plt < TERMINATION_BOUND,
                        "{} did not terminate promptly under plan seed {}: plt {}",
                        system.label(),
                        plan.seed,
                        r.plt,
                    );
                    faulted_loads += 1;
                }
            }
        }
    }
    assert_eq!(faulted_loads, 3 * 4 * 4 * SYSTEMS.len());
}

#[test]
fn faults_surface_as_protocol_events() {
    let corpus = Corpus::small(7, 4);
    let ctx = LoadContext::reference();
    let lte = NetworkProfile::lte();
    let (mut rsts, mut goaways, mut retries, mut failed) = (0, 0, 0, 0);
    for plan in plans(1.0, 4) {
        for site in &corpus.sites {
            let r = run_load_faulted(site, &ctx, &lte, System::Http2, 11, &plan);
            rsts += r.rst_streams;
            goaways += r.goaways;
            retries += r.retries;
            failed += r.failed_resources;
        }
    }
    // At full severity across 16 loads the sweep must exercise every fault
    // path: truncated bodies (RST_STREAM), dropped connections (GOAWAY),
    // and the retry machinery recovering from both.
    assert!(rsts > 0, "no RST_STREAM-equivalent events injected");
    assert!(goaways > 0, "no GOAWAY-equivalent events injected");
    assert!(retries > 0, "no retries performed");
    // Degradation is allowed but must be the exception, not the rule.
    assert!(
        retries >= failed,
        "more exhausted budgets ({failed}) than retries ({retries})"
    );
}

#[test]
fn faulted_vroom_median_at_most_faulted_http2() {
    let corpus = Corpus::small(2024, 6);
    let ctx = LoadContext::reference();
    let lte = NetworkProfile::lte();
    let mut ratios: Vec<f64> = Vec::new();
    for severity in [0.4, 0.8] {
        for plan in plans(severity, 3) {
            for site in &corpus.sites {
                let vroom = run_load_faulted(site, &ctx, &lte, System::Vroom, 11, &plan);
                let h2 = run_load_faulted(site, &ctx, &lte, System::Http2, 11, &plan);
                ratios.push(vroom.plt.as_secs_f64() / h2.plt.as_secs_f64());
            }
        }
    }
    ratios.sort_by(f64::total_cmp);
    let median = ratios[ratios.len() / 2];
    assert!(
        median <= 1.0,
        "faulted Vroom should still beat faulted HTTP/2 at the median, got {median:.3}"
    );
}

#[test]
fn inactive_plan_is_byte_identical_to_fault_free_load() {
    let corpus = Corpus::small(99, 2);
    let ctx = LoadContext::reference();
    let lte = NetworkProfile::lte();
    for site in &corpus.sites {
        for system in SYSTEMS {
            let plain = run_load(site, &ctx, &lte, system, 5);
            let faulted = run_load_faulted(site, &ctx, &lte, system, 5, &FaultPlan::none());
            assert_eq!(plain, faulted, "inactive plan perturbed {}", system.label());
            assert_eq!(plain.rst_streams, 0);
            assert_eq!(plain.goaways, 0);
            assert_eq!(plain.retries, 0);
            assert_eq!(plain.timeouts, 0);
            assert_eq!(plain.failed_resources, 0);
        }
    }
}

// ---------------------------------------------------------------------------
// Fleet under chaos
// ---------------------------------------------------------------------------

fn fleet_cfg(faults: Option<FleetFaults>) -> FleetConfig {
    FleetConfig {
        faults,
        ..FleetConfig::quick(48, 3)
    }
}

/// A fleet under an active plan terminates, and degradation is strictly
/// per-client: clients the plan was not dealt to are byte-identical to
/// their outcomes in a fault-free run — faults never bleed through the
/// shared store, table, or origin pool.
#[test]
fn faulted_fleet_terminates_and_faults_stay_per_client() {
    let faults = FleetFaults {
        seed: 0xC4A05,
        severity: 0.9,
        one_in: 2,
    };
    let faulted = run_fleet(&fleet_cfg(Some(faults)));
    let clean = run_fleet(&fleet_cfg(None));

    assert_eq!(faulted.report.faulted_clients, 24, "every even client");
    let mut hit = 0usize;
    for (f, c) in faulted.outcomes.iter().zip(&clean.outcomes) {
        assert!(
            f.result.plt < TERMINATION_BOUND,
            "client {} did not terminate promptly: plt {}",
            f.id,
            f.result.plt
        );
        if f.id % 2 == 0 {
            assert!(f.faulted, "client {} was dealt the plan", f.id);
            hit += usize::from(f != c);
        } else {
            assert!(!f.faulted);
            assert_eq!(f, c, "fault bled into untouched client {}", f.id);
        }
    }
    assert!(hit > 0, "an active 0.9-severity plan must perturb someone");
    // The shared server state is fault-independent: resolver passes and
    // store contents are driven by arrivals, not by client-side faults.
    assert_eq!(faulted.report.resolver_passes, clean.report.resolver_passes);
    assert_eq!(faulted.report.store_entries, clean.report.store_entries);
    assert_eq!(faulted.report.shard_stats, clean.report.shard_stats);
}

/// An inactive fleet fault configuration (severity 0) is byte-identical to
/// no fault configuration at all — report and every outcome.
#[test]
fn inactive_fleet_fault_plan_is_byte_identical() {
    let inactive = run_fleet(&fleet_cfg(Some(FleetFaults {
        seed: 0xC4A05,
        severity: 0.0,
        one_in: 1,
    })));
    let clean = run_fleet(&fleet_cfg(None));
    assert_eq!(inactive.report, clean.report);
    assert_eq!(inactive.outcomes, clean.outcomes);
    assert_eq!(inactive.report.faulted_clients, 0);
    assert_eq!(inactive.report.render(), clean.report.render());
}

#[test]
fn degraded_loads_report_failures_instead_of_hanging() {
    // A brutal plan: long total outage plus aggressive truncation. Loads
    // must still finish, with failures surfaced in the result rather than
    // silently dropped or infinitely retried.
    let plan = FaultPlan::from_seed(0xDEAD, 1.0);
    let corpus = Corpus::small(5, 3);
    let ctx = LoadContext::reference();
    let lte = NetworkProfile::lte();
    for site in &corpus.sites {
        let r = run_load_faulted(site, &ctx, &lte, System::Vroom, 11, &plan);
        assert!(r.plt < TERMINATION_BOUND);
        for t in &r.resources {
            if t.failed {
                // A failed resource never reports a fetch completion
                // later than onload (it has none).
                assert!(t.requested.is_some(), "failed implies attempted");
            }
        }
    }
}
