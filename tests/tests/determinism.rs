//! The workspace's headline invariant, asserted end to end: the same seed
//! produces byte-identical results — full per-resource event traces, all
//! scalar metrics, and serialized replay stores. This is what the
//! `vroom-lint` rules (no wall clock, no hash-order iteration, no ambient
//! randomness) exist to protect.

#![forbid(unsafe_code)]

use vroom::{run_load, run_load_faulted, run_load_warm, System};
use vroom_html::ResourceKind;
use vroom_net::{FaultPlan, NetworkProfile, RecordedResponse, ReplayStore};
use vroom_pages::{render_html, Corpus, LoadContext, PageGenerator, SiteProfile};
use vroom_sim::SimDuration;

/// Two identically seeded cold loads must agree on every metric and on the
/// entire per-resource timing trace, for every system under test.
#[test]
fn identical_seeds_produce_identical_loads() {
    let ctx = LoadContext::reference();
    let profile = NetworkProfile::lte();
    for system in [
        System::Http1,
        System::Http2,
        System::Vroom,
        System::CpuBound,
        System::NetworkBound,
    ] {
        let gen_a = PageGenerator::new(SiteProfile::news(), 4242);
        let gen_b = PageGenerator::new(SiteProfile::news(), 4242);
        let a = run_load(&gen_a, &ctx, &profile, system, 7);
        let b = run_load(&gen_b, &ctx, &profile, system, 7);
        assert_eq!(a, b, "{system:?}: two identically seeded loads diverged");
        assert_eq!(
            a.resources, b.resources,
            "{system:?}: per-resource event traces diverged"
        );
    }
}

/// Warm (repeat-visit) loads are deterministic too — the cache built from
/// the prior load must not introduce ordering noise.
#[test]
fn warm_loads_are_deterministic() {
    let ctx = LoadContext::reference();
    let profile = NetworkProfile::lte();
    let a = run_load_warm(
        &PageGenerator::new(SiteProfile::news(), 99),
        &ctx,
        &profile,
        System::Vroom,
        7,
        0.003,
    );
    let b = run_load_warm(
        &PageGenerator::new(SiteProfile::news(), 99),
        &ctx,
        &profile,
        System::Vroom,
        7,
        0.003,
    );
    assert_eq!(a, b, "warm loads diverged");
}

/// Different seeds must actually produce different pages — guards against a
/// determinism test that would pass because everything is constant.
#[test]
fn different_seeds_differ() {
    let ctx = LoadContext::reference();
    let profile = NetworkProfile::lte();
    let a = run_load(
        &PageGenerator::new(SiteProfile::news(), 1),
        &ctx,
        &profile,
        System::Vroom,
        7,
    );
    let b = run_load(
        &PageGenerator::new(SiteProfile::news(), 2),
        &ctx,
        &profile,
        System::Vroom,
        7,
    );
    assert_ne!(a, b, "seeds 1 and 2 produced identical loads");
}

/// Serialized replay stores are byte-identical across runs: recorded maps
/// are ordered and the JSON encoder is canonical.
#[test]
fn replay_store_serialization_is_canonical() {
    let record = || {
        let page =
            PageGenerator::new(SiteProfile::news(), 31337).snapshot(&LoadContext::reference());
        let mut store = ReplayStore::new();
        for r in &page.resources {
            let rec = if r.kind == ResourceKind::Html {
                RecordedResponse::with_body(ResourceKind::Html, render_html(&page, r.id))
            } else {
                RecordedResponse::synthetic(r.kind, r.size)
            };
            store.record(r.url.clone(), rec);
        }
        for (i, domain) in page.domains().iter().enumerate() {
            store.record_rtt(domain.clone(), SimDuration::from_millis(5 + i as u64));
        }
        store.to_json()
    };
    let a = record();
    let b = record();
    assert_eq!(a, b, "replay JSON must be byte-identical across runs");
    let reparsed = ReplayStore::from_json(&a).expect("roundtrip");
    assert_eq!(reparsed.to_json(), a, "parse → serialize is a fixed point");
}

/// Fault injection preserves the headline invariant: the same (seed, plan)
/// pair produces byte-identical faulted loads — including the fault
/// counters and the per-resource trace with retries and failures in it.
#[test]
fn faulted_loads_are_deterministic() {
    let ctx = LoadContext::reference();
    let profile = NetworkProfile::lte();
    for system in [System::Http1, System::Http2, System::Vroom] {
        for severity in [0.4, 1.0] {
            let plan = FaultPlan::from_seed(0xFA_u64 ^ system as u64, severity);
            let one = || {
                let site = PageGenerator::new(SiteProfile::news(), 777);
                run_load_faulted(&site, &ctx, &profile, system, 7, &plan)
            };
            let a = one();
            let b = one();
            assert_eq!(a, b, "{system:?} sev {severity}: faulted loads diverged");
            assert_eq!(
                a.resources, b.resources,
                "{system:?} sev {severity}: faulted traces diverged"
            );
        }
    }
}

/// Fault plans themselves are reproducible artifacts: derivation from a
/// seed is stable and the canonical JSON encoding is a byte-identical
/// fixed point (plans can be stored next to replay JSON and re-run later).
#[test]
fn fault_plans_are_canonical() {
    let a = FaultPlan::from_seed(0xC0FFEE, 0.8);
    let b = FaultPlan::from_seed(0xC0FFEE, 0.8);
    assert_eq!(a, b, "same seed must derive the same plan");
    let ja = a.to_json();
    assert_eq!(ja, b.to_json(), "plan JSON must be byte-identical");
    let reparsed = FaultPlan::from_json(&ja).expect("roundtrip");
    assert_eq!(reparsed, a, "parse must invert encode exactly");
    assert_eq!(reparsed.to_json(), ja, "parse → encode is a fixed point");
}

/// A whole small corpus is reproducible: per-site PLTs agree run-to-run.
#[test]
fn corpus_level_metrics_are_reproducible() {
    let plts = || {
        let corpus = Corpus::small(2024, 8);
        let ctx = LoadContext::reference();
        let profile = NetworkProfile::lte();
        corpus
            .sites
            .iter()
            .map(|site| run_load(site, &ctx, &profile, System::Vroom, 5).plt)
            .collect::<Vec<_>>()
    };
    assert_eq!(plts(), plts(), "corpus PLT vector diverged between runs");
}

/// Tier-1 pin of the interning overhaul: the sites-3 `run_all` report is
/// byte-identical to the golden captured before `UrlId` threading. The
/// interning layer changes cost, never observable behaviour.
#[test]
fn run_all_sites3_report_matches_committed_golden() {
    let mut cfg = vroom::experiment::ExperimentConfig::quick(3);
    cfg.workers = 1;
    let report = vroom::experiment::run_all_report(&cfg);
    let golden = include_str!("../../results/run_all_sites3.txt");
    assert!(
        report == golden,
        "run_all --sites 3 diverged from results/run_all_sites3.txt"
    );
}
