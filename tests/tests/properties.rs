//! Property-based tests spanning crates: generated pages of arbitrary seed
//! and context always validate, always load to completion under every
//! policy, and the protocol substrates stay total on adversarial input.

#![forbid(unsafe_code)]

use proptest::prelude::*;
use vroom::{run_load, run_load_faulted, System};
use vroom_net::{FaultPlan, NetworkProfile};
use vroom_pages::{DeviceClass, LoadContext, PageGenerator, SiteProfile};
use vroom_sim::SimDuration;

fn arb_ctx() -> impl Strategy<Value = LoadContext> {
    (
        100.0f64..10_000.0,
        any::<u64>(),
        prop_oneof![
            Just(DeviceClass::PhoneSmall),
            Just(DeviceClass::PhoneLarge),
            Just(DeviceClass::Tablet),
        ],
        any::<u64>(),
    )
        .prop_map(|(hours, user_id, device, nonce)| LoadContext {
            hours,
            user_id,
            device,
            nonce,
        })
}

fn arb_profile() -> impl Strategy<Value = SiteProfile> {
    prop_oneof![
        Just(SiteProfile::news()),
        Just(SiteProfile::sports()),
        Just(SiteProfile::top100()),
        Just(SiteProfile::top400()),
    ]
}

/// An arbitrary seeded fault plan, spanning the whole severity range —
/// from barely active to everything-fails-at-once.
fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (any::<u64>(), 0.05f64..1.0).prop_map(|(seed, severity)| FaultPlan::from_seed(seed, severity))
}

fn arb_system() -> impl Strategy<Value = System> {
    prop_oneof![
        Just(System::Http1),
        Just(System::Http2),
        Just(System::PushAllStatic),
        Just(System::PolarisLike),
        Just(System::Vroom),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated page is structurally valid.
    #[test]
    fn generated_pages_always_validate(
        seed in any::<u64>(),
        profile in arb_profile(),
        ctx in arb_ctx(),
    ) {
        let page = PageGenerator::new(profile, seed).snapshot(&ctx);
        prop_assert!(page.validate().is_ok(), "{:?}", page.validate());
        prop_assert!(page.len() >= 10);
    }

    /// Every page loads to completion under the key systems, and the lower
    /// bounds never exceed the real systems.
    #[test]
    fn loads_always_complete_and_bounds_hold(
        seed in 0u64..5_000,
        ctx in arb_ctx(),
    ) {
        let site = PageGenerator::new(SiteProfile::top100(), seed);
        let lte = NetworkProfile::lte();
        let cpu = run_load(&site, &ctx, &lte, System::CpuBound, 3).plt;
        let h2 = run_load(&site, &ctx, &lte, System::Http2, 3).plt;
        let vroom = run_load(&site, &ctx, &lte, System::Vroom, 3).plt;
        prop_assert!(cpu > SimDuration::ZERO);
        prop_assert!(cpu <= h2 + SimDuration::from_millis(1), "cpu bound {cpu} vs h2 {h2}");
        prop_assert!(cpu <= vroom + SimDuration::from_millis(1), "cpu bound {cpu} vs vroom {vroom}");
    }

    /// Back-to-back snapshots differ only in per-load-random URLs, for any
    /// context.
    #[test]
    fn back_to_back_stability_invariant(
        seed in any::<u64>(),
        ctx in arb_ctx(),
        nonce2 in any::<u64>(),
    ) {
        let site = PageGenerator::new(SiteProfile::news(), seed);
        let a = site.snapshot(&ctx);
        let b = site.snapshot(&ctx.back_to_back(nonce2));
        for (x, y) in a.resources.iter().zip(&b.resources) {
            if x.url != y.url {
                prop_assert_eq!(x.stability, vroom_pages::Stability::PerLoadRandom);
            }
        }
    }

    /// Chaos totality: any seeded fault plan, page, and policy still loads
    /// to completion — no panic, no hang — and the per-resource event
    /// trace stays monotone (discovered ≤ requested ≤ fetched ≤ processed
    /// wherever those events exist).
    #[test]
    fn faulted_loads_complete_with_monotone_traces(
        page_seed in any::<u64>(),
        plan in arb_fault_plan(),
        system in arb_system(),
    ) {
        let site = PageGenerator::new(SiteProfile::news(), page_seed);
        let ctx = LoadContext::reference();
        let lte = NetworkProfile::lte();
        let r = run_load_faulted(&site, &ctx, &lte, system, 3, &plan);
        prop_assert!(r.plt > SimDuration::ZERO);
        prop_assert!(
            r.plt < SimDuration::from_secs(15 * 60),
            "{system:?} under plan seed {} took {}", plan.seed, r.plt
        );
        for (i, t) in r.resources.iter().enumerate() {
            if let Some(req) = t.requested {
                prop_assert!(t.discovered <= req, "resource {i}: requested before discovery");
                prop_assert!(req <= t.fetched, "resource {i}: fetched before request");
            }
            if let Some(proc_) = t.processed {
                prop_assert!(t.fetched <= proc_, "resource {i}: processed before fetch");
            }
            if t.failed {
                prop_assert!(t.requested.is_some(), "resource {i}: failed but never attempted");
                prop_assert!(t.processed.is_none(), "resource {i}: failed yet processed");
            }
        }
    }

    /// Fault plans survive a JSON roundtrip exactly, for any seed and
    /// severity (probabilities are quantized so no precision is lost).
    #[test]
    fn fault_plan_json_roundtrips(plan in arb_fault_plan()) {
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).expect("well-formed plan JSON");
        prop_assert_eq!(&back, &plan);
        prop_assert_eq!(back.to_json(), json);
    }

    /// The real HTML renderer and scanner agree with the model for any page.
    #[test]
    fn renderer_scanner_model_agreement(seed in any::<u64>(), ctx in arb_ctx()) {
        let page = PageGenerator::new(SiteProfile::top100(), seed).snapshot(&ctx);
        let markup = vroom_pages::render_html(&page, 0);
        let found = vroom_html::scan_html(&page.url, &markup);
        let found_urls: std::collections::HashSet<_> =
            found.iter().map(|d| &d.url).collect();
        for child in page.children(0) {
            prop_assert_eq!(
                found_urls.contains(&child.url),
                child.via_markup,
                "disagreement on {}",
                child.url
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The HTTP/2 server connection never panics on arbitrary bytes after
    /// a valid preface.
    #[test]
    fn http2_server_is_total_on_garbage(garbage in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut server = vroom_http2::Connection::server(vroom_http2::Settings::default());
        let mut input = vroom_http2::PREFACE.to_vec();
        input.extend_from_slice(&garbage);
        let _ = server.recv(&input);
        let _ = server.take_output();
        while server.poll_event().is_some() {}
    }

    /// The HTML tokenizer terminates on arbitrary text.
    #[test]
    fn tokenizer_is_total(input in "[ -~<>\"'=/!-]{0,600}") {
        let tokens: Vec<_> = vroom_html::Tokenizer::new(&input).collect();
        prop_assert!(tokens.len() <= input.len() + 1);
    }
}

fn arb_url() -> impl Strategy<Value = vroom_html::Url> {
    (
        prop_oneof![Just("http"), Just("https")],
        proptest::collection::vec("[a-z]{1,8}", 2..4),
        proptest::collection::vec("[a-z0-9._-]{1,10}", 0..4),
        prop_oneof![Just(None), "[a-z]=[0-9]{1,4}".prop_map(Some)],
    )
        .prop_map(|(scheme, host_labels, segments, query)| {
            let host = host_labels.join(".");
            let mut path = String::new();
            for s in &segments {
                path.push('/');
                path.push_str(s);
            }
            if let Some(q) = query {
                if path.is_empty() {
                    path.push('/');
                }
                path.push('?');
                path.push_str(&q);
            }
            vroom_html::Url::new(scheme, host, path)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `UrlTable` intern → resolve is the identity on arbitrary URLs, the
    /// reverse index agrees, and the cached origin equals the allocating
    /// `Url::origin()`.
    #[test]
    fn url_table_intern_resolve_round_trips(urls in proptest::collection::vec(arb_url(), 1..40)) {
        let mut table = vroom_intern::UrlTable::new();
        let ids: Vec<_> = urls.iter().map(|u| table.intern(u.clone())).collect();
        let unique: std::collections::BTreeSet<_> = urls.iter().collect();
        prop_assert_eq!(table.len(), unique.len(), "one id per distinct URL");
        for (u, &id) in urls.iter().zip(&ids) {
            prop_assert_eq!(table.get(id), u);
            prop_assert_eq!(table.url(id), Some(u));
            prop_assert_eq!(table.lookup(u), Some(id));
            prop_assert_eq!(table.origin(id), u.origin());
        }
    }

    /// Ids are a pure function of insertion order: two tables filled with
    /// the same sequence agree on every id (and compare equal), which is
    /// why interning cannot perturb any deterministic trace.
    #[test]
    fn url_table_ids_are_insertion_deterministic(urls in proptest::collection::vec(arb_url(), 0..40)) {
        let fill = || {
            let mut t = vroom_intern::UrlTable::new();
            let ids: Vec<_> = urls.iter().map(|u| t.intern(u.clone())).collect();
            (t, ids)
        };
        let (ta, ids_a) = fill();
        let (tb, ids_b) = fill();
        prop_assert_eq!(ids_a, ids_b, "same insertion order must mint the same ids");
        prop_assert_eq!(ta, tb);
    }
}
