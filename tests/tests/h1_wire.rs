//! The HTTP/1.1 codec over a real TCP socket — the baseline's wire format
//! working end to end (request head, Content-Length framing, connection
//! reuse).

#![forbid(unsafe_code)]

use std::io::{Read, Write};
use std::net::TcpListener;
use vroom_http2::h1;
use vroom_http2::{Request, Response};

#[test]
fn http1_request_response_over_tcp() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let server = std::thread::spawn(move || {
        let (mut sock, _) = listener.accept().unwrap();
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        let mut served = 0;
        while served < 3 {
            let n = sock.read(&mut chunk).unwrap();
            assert!(n > 0, "client hung up early");
            buf.extend_from_slice(&chunk[..n]);
            while let Some((req, used)) = h1::parse_request(&buf).unwrap() {
                buf.drain(..used);
                let body = format!("you asked for {}", req.path).into_bytes();
                let resp = Response::ok().with_header("content-type", "text/plain");
                sock.write_all(&h1::encode_response(&resp, &body)).unwrap();
                served += 1;
            }
        }
        served
    });

    let mut sock = std::net::TcpStream::connect(addr).unwrap();
    let mut received = Vec::new();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    // Three sequential requests on one reused connection (HTTP/1.1
    // keep-alive, one outstanding response at a time — the engine's model).
    for i in 0..3 {
        let req = Request::get("h1.example", format!("/item/{i}"))
            .with_header("user-agent", "vroom-h1/0.1");
        sock.write_all(&h1::encode_request(&req)).unwrap();
        loop {
            if let Some((resp, body, used)) = h1::parse_response(&buf).unwrap() {
                buf.drain(..used);
                assert_eq!(resp.status, 200);
                received.push(String::from_utf8(body).unwrap());
                break;
            }
            let n = sock.read(&mut chunk).unwrap();
            assert!(n > 0, "server hung up early");
            buf.extend_from_slice(&chunk[..n]);
        }
    }
    assert_eq!(
        received,
        vec![
            "you asked for /item/0",
            "you asked for /item/1",
            "you asked for /item/2"
        ]
    );
    assert_eq!(server.join().unwrap(), 3);
}
