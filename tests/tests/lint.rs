//! Tier-1 enforcement of the workspace's determinism and protocol
//! invariants: the same `vroom-lint` library the CLI runs is invoked here,
//! so `cargo test` fails the moment a violation lands — no separate CI
//! wiring required.

#![forbid(unsafe_code)]

use std::path::Path;
use vroom_lint::source::SourceFile;
use vroom_lint::{analyze, analyze_sources, baseline};

fn file(path: &str, source: &str) -> SourceFile {
    SourceFile {
        path: path.to_string(),
        source: source.to_string(),
    }
}

fn rules_of(v: &[vroom_lint::rules::Violation]) -> Vec<&'static str> {
    v.iter().map(|x| x.rule).collect()
}

/// The workspace itself must lint clean: no violations beyond the checked-in
/// ratchet baseline, and no stale baseline entries (debt that was paid down
/// must be recorded by regenerating `lint-baseline.txt`).
#[test]
fn workspace_is_clean_and_baseline_is_fresh() {
    let report = analyze(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("lint run");
    assert!(report.files_scanned > 50, "walker found the workspace");
    assert!(
        report.new_violations.is_empty(),
        "new lint violations:\n{}",
        report
            .new_violations
            .iter()
            .map(|v| format!("  {}:{}: {}: {}", v.path, v.line, v.rule, v.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.stale_entries.is_empty(),
        "stale baseline entries (regenerate with `cargo run -p vroom-lint -- --update-baseline`):\n{:#?}",
        report.stale_entries
    );
}

/// A wall-clock read reachable from a simulation entrypoint is flagged at
/// the effect site with the call chain in the message; the same code with a
/// justified waiver, or with no path from a sim root, is clean.
#[test]
fn introduced_wall_clock_violation_is_caught() {
    let entry = || {
        file(
            "crates/sim/src/driver.rs",
            "#![forbid(unsafe_code)]\npub fn drive() { tick(); }\n",
        )
    };
    let bad = file(
        "crates/net/src/link.rs",
        "#![forbid(unsafe_code)]\npub fn tick() {\n    let _ = std::time::Instant::now();\n}\n",
    );
    let v = analyze_sources(&[entry(), bad.clone()]);
    assert_eq!(rules_of(&v), vec!["sim-purity"]);
    assert_eq!(v[0].path, "crates/net/src/link.rs");
    assert_eq!(v[0].line, 3);
    assert!(
        v[0].message.contains("sim::drive"),
        "names the root: {}",
        v[0].message
    );
    assert!(
        analyze_sources(&[bad]).is_empty(),
        "no sim entrypoint reaches it, so it is not a violation"
    );

    let waived = file(
        "crates/net/src/link.rs",
        "#![forbid(unsafe_code)]\npub fn tick() {\n    let _ = std::time::Instant::now(); // vroom-lint: allow(sim-purity) -- test fixture\n}\n",
    );
    assert!(analyze_sources(&[entry(), waived]).is_empty());
}

/// Hash-container iteration is an effect like any other: flagged where a sim
/// entrypoint reaches it (every non-test fn in `crates/sim` is a root),
/// clean where none does.
#[test]
fn introduced_unordered_iteration_is_caught() {
    let src = "#![forbid(unsafe_code)]\n\
               use std::collections::HashMap;\n\
               pub fn sum(m: &HashMap<u32, u64>) -> u64 {\n\
               \u{20}   m.values().sum()\n\
               }\n";
    let v = analyze_sources(&[file("crates/sim/src/cache.rs", src)]);
    assert_eq!(rules_of(&v), vec!["sim-purity"]);
    assert_eq!(v[0].line, 4);
    assert!(
        v[0].message.contains("unordered iteration"),
        "names the effect family: {}",
        v[0].message
    );
    assert!(analyze_sources(&[file("crates/hpack/src/cache.rs", src)]).is_empty());
}

/// Matches on protocol enums inside `crates/http2` may not hide variants
/// behind a catch-all arm.
#[test]
fn introduced_protocol_catch_all_is_caught() {
    let src = "#![forbid(unsafe_code)]\n\
               pub enum FrameType { Data, Headers, Ping }\n\
               pub fn kind(t: FrameType) -> u8 {\n\
               \u{20}   match t {\n\
               \u{20}       FrameType::Data => 0,\n\
               \u{20}       _ => 1,\n\
               \u{20}   }\n\
               }\n";
    let v = analyze_sources(&[file("crates/http2/src/kinds.rs", src)]);
    assert_eq!(rules_of(&v), vec!["protocol-exhaustive"]);
    assert_eq!(v[0].line, 4);
}

/// New `.unwrap()` in protocol code fails even though the baseline tolerates
/// the pre-existing sites: baseline matching is exact on (rule, path, line
/// content).
#[test]
fn unwrap_ratchet_rejects_new_sites_but_honors_baseline() {
    let src = "#![forbid(unsafe_code)]\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    let violations = analyze_sources(&[file("crates/http2/src/novel.rs", src)]);
    assert_eq!(rules_of(&violations), vec!["unwrap"]);

    // Baseline the site → reconcile absorbs it; a second copy stays new.
    let entries = baseline::parse(&baseline::render(&violations)).expect("well-formed");
    let twice = analyze_sources(&[file(
        "crates/http2/src/novel.rs",
        "#![forbid(unsafe_code)]\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\nfn g(x: Option<u8>) -> u8 { x.unwrap() }\n",
    )]);
    assert_eq!(twice.len(), 2);
    let r = baseline::reconcile(twice, &entries);
    assert_eq!(r.new_violations.len(), 1, "one absorbed, one new");
    assert!(r.stale_entries.is_empty());
}

/// When the debt disappears, the baseline entry turns stale — the
/// `--check-baseline` mode (and the tier-1 test above) forces regeneration.
#[test]
fn paid_down_debt_surfaces_as_stale() {
    let entries =
        baseline::parse("unwrap\tcrates/http2/src/gone.rs\tx.unwrap();\n").expect("parse");
    let r = baseline::reconcile(Vec::new(), &entries);
    assert!(r.new_violations.is_empty());
    assert_eq!(r.stale_entries.len(), 1);
    assert_eq!(r.stale_entries[0].path, "crates/http2/src/gone.rs");
}

/// A loop that issues requests with no retry budget anywhere in scope is a
/// new violation (the fault layer guarantees flaky peers; unbounded retry
/// loops spin forever against them); gating the loop on a budget clears it.
#[test]
fn bare_retry_loop_without_budget_is_caught() {
    let bare = file(
        "crates/server/src/push.rs",
        "#![forbid(unsafe_code)]\n\
         pub fn pump(c: &mut Connection) {\n\
         \u{20}   loop {\n\
         \u{20}       c.send_request(&req, true).ok();\n\
         \u{20}   }\n\
         }\n",
    );
    let v = analyze_sources(&[bare]);
    assert_eq!(rules_of(&v), vec!["retry-budget"]);
    assert_eq!(v[0].line, 3);

    let budgeted = file(
        "crates/server/src/push.rs",
        "#![forbid(unsafe_code)]\n\
         pub fn pump(c: &mut Connection, budget: &RetryBudget) {\n\
         \u{20}   let mut n = 0;\n\
         \u{20}   while budget.allows(n) {\n\
         \u{20}       c.send_request(&req, true).ok();\n\
         \u{20}       n += 1;\n\
         \u{20}   }\n\
         }\n",
    );
    assert!(analyze_sources(&[budgeted]).is_empty());
}

/// The lexer front-end keeps rule patterns from firing inside comments,
/// strings (including raw strings), and doc text.
#[test]
fn comments_and_strings_do_not_trigger_rules() {
    let src = r##"#![forbid(unsafe_code)]
// Instant::now() would break determinism, so we do not call it.
/* thread_rng() inside /* nested */ comments is also fine */
const DOC: &str = "Instant::now and thread_rng in a string";
const RAW: &str = r#"SystemTime::now() // still a string"#;
"##;
    assert!(analyze_sources(&[file("crates/sim/src/doc.rs", src)]).is_empty());
}

/// Waivers demand a reason; a bare `allow(...)` is itself a violation, as is
/// naming a rule that does not exist.
#[test]
fn waiver_without_reason_or_with_unknown_rule_is_rejected() {
    let missing_reason = file(
        "crates/sim/src/clock.rs",
        "#![forbid(unsafe_code)]\npub fn now() {\n    let _ = std::time::Instant::now(); // vroom-lint: allow(sim-purity)\n}\n",
    );
    let v = analyze_sources(&[missing_reason]);
    assert!(
        v.iter().any(|x| x.rule == "waiver-syntax"),
        "bare allow() must be flagged: {v:?}"
    );
    assert!(
        v.iter().any(|x| x.rule == "sim-purity"),
        "malformed waiver grants nothing: {v:?}"
    );

    let unknown = file(
        "crates/net/src/link.rs",
        "#![forbid(unsafe_code)]\nfn f() {} // vroom-lint: allow(not-a-rule) -- oops\n",
    );
    assert_eq!(
        rules_of(&analyze_sources(&[unknown])),
        vec!["waiver-syntax"]
    );
}

/// A crate root without `#![forbid(unsafe_code)]` is flagged, and so is an
/// `unsafe` block anywhere.
#[test]
fn unsafe_is_banned_workspace_wide() {
    let v = analyze_sources(&[file("crates/html/src/lib.rs", "pub fn f() {}\n")]);
    assert_eq!(rules_of(&v), vec!["forbid-unsafe"]);
    let v = analyze_sources(&[file(
        "crates/net/src/fast.rs",
        "#![forbid(unsafe_code)]\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n",
    )]);
    assert_eq!(rules_of(&v), vec!["forbid-unsafe"]);
}
