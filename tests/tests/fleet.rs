//! Fleet determinism tier: the fleet-scale serving simulation — shared
//! sharded hint store, batched resolver passes, parallel client loads — is
//! byte-identical at any worker count and across repeated runs, and the
//! sharded store is observationally equal to the single-lock reference for
//! arbitrary operation sequences.

#![forbid(unsafe_code)]

use proptest::prelude::*;
use vroom_browser::config::Hint;
use vroom_fleet::{
    run_fleet, run_fleet_unpipelined, run_freshness, FleetConfig, FleetFaults, FleetRun,
    FreshnessConfig,
};
use vroom_html::Url;
use vroom_intern::{UrlId, UrlTable};
use vroom_net::json::Value;
use vroom_server::store::{EvictionPolicy, FreshRead, HintStore, ShardedStore, UnshardedStore};

/// The two byte-comparable projections of a run: the text report and the
/// deterministic metrics tree of `BENCH_fleet.json` (timings excluded by
/// construction — they are added by `vroom-bench`, outside the simulation).
fn fingerprints(run: &FleetRun) -> (String, String) {
    let mut json = String::new();
    run.report.to_json_value().write_pretty_into(&mut json);
    (run.report.render(), json)
}

fn assert_identical_at_all_widths(mut cfg: FleetConfig) {
    cfg.workers = 1;
    let reference = run_fleet(&cfg);
    let (ref_render, ref_json) = fingerprints(&reference);
    assert!(ref_render.starts_with("==== fleet ===="));
    for workers in [2, 8] {
        cfg.workers = workers;
        let got = run_fleet(&cfg);
        let (render, json) = fingerprints(&got);
        assert_eq!(ref_render, render, "report diverged at workers={workers}");
        assert_eq!(ref_json, json, "metrics diverged at workers={workers}");
        assert_eq!(
            reference.outcomes, got.outcomes,
            "per-client outcomes diverged at workers={workers}"
        );
    }
    // Same seed, second run: nothing hidden (allocator state, map order,
    // shard scheduling) may leak into the output.
    cfg.workers = 1;
    let again = run_fleet(&cfg);
    assert_eq!(fingerprints(&again), (ref_render, ref_json));
    assert_eq!(again.outcomes, reference.outcomes);
}

#[test]
fn fleet_is_byte_identical_across_worker_counts_and_runs() {
    assert_identical_at_all_widths(FleetConfig::quick(150, 4));
}

/// The acceptance-scale run: 1000 clients. Costs tens of seconds
/// unoptimized, so the debug tier skips it; CI runs it in release mode
/// alongside the chaos suite.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "1000-client fleet is release-only; CI runs it"
)]
fn thousand_client_fleet_is_byte_identical() {
    let cfg = FleetConfig::default();
    assert!(cfg.clients >= 1000);
    assert_identical_at_all_widths(cfg);
}

#[test]
fn different_seeds_produce_different_fleets() {
    let a = run_fleet(&FleetConfig::quick(60, 3));
    let b = run_fleet(&FleetConfig {
        seed: 0xD1FF,
        ..FleetConfig::quick(60, 3)
    });
    assert_ne!(
        a.report.render(),
        b.report.render(),
        "the seed must actually steer arrivals and site choices"
    );
}

#[test]
fn shard_count_changes_layout_but_not_semantics() {
    let base = FleetConfig::quick(60, 3);
    let one = run_fleet(&FleetConfig {
        shards: 1,
        ..base.clone()
    });
    let many = run_fleet(&FleetConfig { shards: 32, ..base });
    // Shard layout is invisible to clients: every load-derived number
    // matches; only the per-shard breakdown differs.
    assert_eq!(one.outcomes, many.outcomes);
    assert_eq!(one.report.store_entries, many.report.store_entries);
    assert_eq!(one.report.hint_hits, many.report.hint_hits);
    assert_eq!(one.report.onload_p50_ms, many.report.onload_p50_ms);
    assert_eq!(one.report.shard_stats.len(), 1);
    assert_eq!(many.report.shard_stats.len(), 32);
    let total = |r: &vroom_fleet::FleetReport| {
        r.shard_stats.iter().fold((0, 0, 0, 0), |(a, b, c, d), s| {
            (a + s.reads, b + s.hits, c + s.writes, d + s.entries)
        })
    };
    assert_eq!(total(&one.report), total(&many.report));
}

#[test]
fn metrics_json_is_a_canonical_fixed_point() {
    let run = run_fleet(&FleetConfig::quick(30, 2));
    let mut text = String::new();
    run.report.to_json_value().write_pretty_into(&mut text);
    let back = Value::parse(&text).expect("metrics parse");
    let mut second = String::new();
    back.write_pretty_into(&mut second);
    assert_eq!(text, second, "canonical form is a fixed point");
}

// ---------------------------------------------------------------------------
// Freshness determinism tier
// ---------------------------------------------------------------------------

#[test]
fn freshness_fleet_is_byte_identical_across_worker_counts_and_runs() {
    // Multi-bucket arrivals, TTL eviction, and observed-load learning all
    // at once: the freshness machinery must preserve the worker-identity
    // guarantee the legacy fleet pins above.
    let ttl = FleetConfig {
        span_hours: 3,
        policy: EvictionPolicy::Ttl(1),
        learn_from_loads: true,
        ..FleetConfig::quick(90, 3)
    };
    assert_identical_at_all_widths(ttl);
    let refresh = FleetConfig {
        span_hours: 2,
        policy: EvictionPolicy::RefreshOnMiss(1),
        ..FleetConfig::quick(60, 3)
    };
    assert_identical_at_all_widths(refresh);
}

#[test]
fn legacy_fleet_report_has_no_freshness_section() {
    // Policy Never + span 0 + no learning: render and JSON must be
    // byte-identical to the pre-freshness report, which means the
    // freshness section (and its config keys) must not exist at all.
    let run = run_fleet(&FleetConfig::quick(30, 2));
    assert!(run.report.freshness.is_none());
    assert!(!run.report.render().contains("freshness:"));
    let Value::Object(m) = run.report.to_json_value() else {
        panic!("metrics must be an object");
    };
    assert!(!m.contains_key("freshness"));
}

#[test]
fn oversized_arrival_span_is_clamped_and_surfaced() {
    // A 2-hour arrival span used to silently break one-pass-per-site
    // batching (clients claimed an hour their context did not live in);
    // now it clamps to one bucket and says so in the report.
    let run = run_fleet(&FleetConfig {
        arrival_span_ms: 7_200_000,
        ..FleetConfig::quick(40, 3)
    });
    let r = &run.report;
    assert_eq!(r.resolver_passes, 3, "clamped span keeps one pass per site");
    let f = r.freshness.as_ref().expect("clamp surfaces the section");
    assert_eq!(f.arrival_span_clamped_from_ms, 7_200_000);
    assert!(r
        .render()
        .contains("warning: arrival span clamped 7200000 -> 3600000 ms"));
    for o in &run.outcomes {
        assert!(o.arrival_ms < 3_600_000, "arrivals stay inside one bucket");
    }
}

#[test]
fn span_hours_spreads_arrivals_and_reruns_passes_per_bucket() {
    let run = run_fleet(&FleetConfig {
        span_hours: 2,
        ..FleetConfig::quick(80, 2)
    });
    let r = &run.report;
    // Under Never, a site is passed at its first bucket only — passes stay
    // at one per site even across buckets.
    assert_eq!(r.resolver_passes, 2);
    let f = r.freshness.as_ref().expect("span > 0 surfaces the section");
    assert_eq!(f.span_hours, 2);
    assert_eq!(f.policy, "never");
    assert_eq!(f.refresh_passes, 0);
}

/// The committed `BENCH_fleet.json` is a legacy run (policy `Never`, zero
/// span): re-running its exact config must reproduce the committed
/// `metrics` section byte-for-byte — the freshness machinery may not move
/// a single counter of the pre-freshness fleet. Release-only (1000
/// clients); CI runs it.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "1000-client baseline replay is release-only; CI runs it"
)]
fn legacy_fleet_metrics_match_the_committed_bench_baseline() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../BENCH_fleet.json");
    let text = std::fs::read_to_string(path).expect("committed BENCH_fleet.json");
    let Value::Object(root) = Value::parse(&text).expect("baseline parses") else {
        panic!("baseline top level is not an object");
    };
    let Some(Value::Object(config)) = root.get("config") else {
        panic!("baseline has no config section");
    };
    assert!(
        !config.contains_key("policy"),
        "committed baseline must be a legacy run"
    );
    let get = |k: &str| match config.get(k) {
        Some(Value::Int(n)) => *n,
        other => panic!("config.{k}: {other:?}"),
    };
    let run = run_fleet(&FleetConfig {
        clients: get("clients") as usize,
        sites: get("sites") as usize,
        shards: get("shards") as usize,
        seed: get("seed"),
        batch_window_ms: get("batch_window_ms"),
        arrival_span_ms: get("arrival_span_ms"),
        ..FleetConfig::default()
    });
    assert!(run.report.freshness.is_none());
    let mut fresh = String::new();
    run.report.to_json_value().write_pretty_into(&mut fresh);
    let mut committed = String::new();
    root.get("metrics")
        .expect("baseline has a metrics section")
        .write_pretty_into(&mut committed);
    assert_eq!(
        fresh, committed,
        "policy Never + span 0 must reproduce the committed metrics exactly"
    );
}

// ---------------------------------------------------------------------------
// Pipelined execution == unpipelined reference
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The pipelined fleet — persistent pool, per-worker scratch reuse,
    /// batch k+1's resolver passes overlapped with batch k's loads — is
    /// byte-identical to the two-fan-outs-per-batch reference at every
    /// worker count, with and without fault injection, under every
    /// eviction policy.
    #[test]
    fn pipelined_fleet_equals_unpipelined_reference(
        clients in 1usize..=50,
        sites in 1usize..=4,
        seed in any::<u64>(),
        policy_sel in 0u8..3,
        faulted in any::<bool>(),
        fault_seed in any::<u64>(),
        fault_one_in in 1u64..4,
    ) {
        let mut cfg = FleetConfig::quick(clients, sites);
        cfg.seed = seed;
        cfg.policy = policy_of(policy_sel);
        if cfg.policy != EvictionPolicy::Never {
            cfg.span_hours = 3;
            cfg.learn_from_loads = true;
        }
        cfg.faults = faulted.then_some(FleetFaults {
            seed: fault_seed,
            severity: 0.7,
            one_in: fault_one_in,
        });
        for workers in [1usize, 2, 8] {
            cfg.workers = workers;
            let pipelined = run_fleet(&cfg);
            let reference = run_fleet_unpipelined(&cfg);
            prop_assert_eq!(
                fingerprints(&pipelined),
                fingerprints(&reference),
                "report diverged at workers={}",
                workers
            );
            prop_assert_eq!(
                &pipelined.outcomes,
                &reference.outcomes,
                "outcomes diverged at workers={}",
                workers
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Freshness sweep (speedup vs hint age)
// ---------------------------------------------------------------------------

#[test]
fn freshness_sweep_is_byte_identical_across_worker_counts_and_runs() {
    let mut cfg = FreshnessConfig::quick(10, 2, 2);
    cfg.workers = 1;
    let reference = run_freshness(&cfg);
    assert!(reference.render().starts_with("==== freshness ===="));
    let mut ref_json = String::new();
    reference.to_json_value().write_pretty_into(&mut ref_json);
    for workers in [2, 8] {
        cfg.workers = workers;
        let got = run_freshness(&cfg);
        assert_eq!(reference, got, "sweep diverged at workers={workers}");
        let mut json = String::new();
        got.to_json_value().write_pretty_into(&mut json);
        assert_eq!(ref_json, json, "sweep JSON diverged at workers={workers}");
    }
    cfg.workers = 1;
    assert_eq!(run_freshness(&cfg), reference, "second run identical");
}

/// The exhibit's headline claims, at full scale: speedup decays as hints
/// age, the calibrated TTL beats serving stale hints beyond one bucket of
/// staleness, and RefreshOnMiss recovers fresh-hint speedups at any age.
/// Release-only; CI runs it.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full freshness sweep is release-only; CI runs it"
)]
fn speedup_decays_with_age_and_ttl_beats_never_past_the_ttl() {
    let r = run_freshness(&FreshnessConfig::default());
    let cell = |age: u64, policy: &str| {
        r.cells
            .iter()
            .find(|c| c.age_hours == age && c.policy == policy)
            .unwrap_or_else(|| panic!("cell ({age}, {policy})"))
    };
    // Fresh hints help.
    assert!(
        cell(0, "never").speedup_p50 > 1.0,
        "fresh hints must beat no hints: {:.3}",
        cell(0, "never").speedup_p50
    );
    // Aged hints are worth less than fresh ones.
    assert!(
        cell(6, "never").speedup_p50 < cell(0, "never").speedup_p50,
        "speedup must decay with age: {:.3} vs {:.3}",
        cell(6, "never").speedup_p50,
        cell(0, "never").speedup_p50
    );
    // Past the TTL, eviction degrades to the baseline *exactly* (no hints
    // left, so the loads are the baseline loads)...
    assert_eq!(cell(2, "ttl(1)").speedup_p50, 1.0);
    assert_eq!(cell(2, "ttl(1)").hint_hits, 0);
    // ...which beats serving the stale hints.
    for age in 2..=6 {
        assert!(
            cell(age, "ttl(1)").speedup_p50 >= cell(age, "never").speedup_p50,
            "age {age}: ttl {:.3} must beat never {:.3}",
            cell(age, "ttl(1)").speedup_p50,
            cell(age, "never").speedup_p50
        );
    }
    // RefreshOnMiss re-resolves stale sites, recovering fresh speedups.
    let refreshed = cell(6, "refresh-on-miss(1)");
    assert!(refreshed.refresh_passes > 0);
    assert!(
        refreshed.speedup_p50 > cell(6, "never").speedup_p50,
        "refreshed {:.3} must beat stale {:.3}",
        refreshed.speedup_p50,
        cell(6, "never").speedup_p50
    );
    // The analytic accuracy curve decays with the speedups.
    let err = |a: &vroom_fleet::AgeAccuracy| a.false_negative + a.false_positive;
    assert!(err(&r.accuracy_by_age[6]) > err(&r.accuracy_by_age[0]));
}

// ---------------------------------------------------------------------------
// Sharded hint store properties
// ---------------------------------------------------------------------------

/// One store operation: `put` with a derived hint list, or `get`.
#[derive(Debug, Clone, Copy)]
enum Op {
    Put { key: u32, tier: u8, hints: u8 },
    Get { key: u32 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..64, 0u8..3, 0u8..6).prop_map(|(key, tier, hints)| Op::Put { key, tier, hints }),
        (0u32..96).prop_map(|key| Op::Get { key }),
    ]
}

fn apply(ops: &[Op], store: &dyn HintStore) {
    for op in ops {
        match *op {
            Op::Put { key, tier, hints } => store.put(
                UrlId::from_index(key as usize),
                (0..hints)
                    .map(|i| Hint {
                        url: UrlId::from_index((key + u32::from(i) + 1) as usize),
                        tier,
                        size_hint: u64::from(key) * 100 + u64::from(i),
                    })
                    .collect(),
            ),
            Op::Get { key } => {
                let _ = store.get(UrlId::from_index(key as usize));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shard routing is total (always a valid index) and a pure function
    /// of the id value: growing the intern table never re-routes an
    /// existing id.
    #[test]
    fn shard_routing_is_total_and_stable_under_growth(
        hosts in proptest::collection::vec(0u32..500, 1..40),
        shards in 1usize..64,
    ) {
        let mut table = UrlTable::new();
        let mut routed: Vec<(UrlId, usize)> = Vec::new();
        for (i, h) in hosts.iter().enumerate() {
            let id = table.intern(Url::https(&format!("h{h}.example.com"), &format!("/r/{i}")));
            let shard = id.shard(shards);
            prop_assert!(shard < shards, "routing must be total");
            // Every id routed earlier still routes identically now that
            // the table has grown.
            for &(prev, expect) in &routed {
                prop_assert_eq!(prev.shard(shards), expect, "routing drifted under growth");
            }
            routed.push((id, shard));
        }
    }

    /// For an arbitrary operation sequence, the sharded store's merged
    /// contents equal the single-lock reference exactly, and the logical
    /// counter totals match — sharding changes layout, never semantics.
    #[test]
    fn sharded_store_equals_unsharded_reference(
        ops in proptest::collection::vec(arb_op(), 0..120),
        shards in 1usize..24,
    ) {
        let sharded = ShardedStore::new(shards);
        let reference = UnshardedStore::new();
        apply(&ops, &sharded);
        apply(&ops, &reference);
        prop_assert_eq!(sharded.snapshot(), reference.snapshot());
        prop_assert_eq!(sharded.len(), reference.len());
        let totals = |stats: &[vroom_server::store::ShardStats]| {
            stats.iter().fold((0u64, 0u64, 0u64), |(r, h, w), s| {
                (r + s.reads, h + s.hits, w + s.writes)
            })
        };
        prop_assert_eq!(
            totals(&sharded.shard_stats()),
            totals(&reference.shard_stats())
        );
    }
}

// ---------------------------------------------------------------------------
// Versioned store properties (TTL / RefreshOnMiss equivalence)
// ---------------------------------------------------------------------------

/// One versioned store operation: a bucket-stamped put, a policy-aware
/// read, or a TTL eviction sweep.
#[derive(Debug, Clone, Copy)]
enum VersionedOp {
    PutAt {
        key: u32,
        tier: u8,
        hints: u8,
        bucket: i64,
    },
    GetFresh {
        key: u32,
        now: i64,
        policy: u8,
    },
    Evict {
        min_bucket: i64,
    },
}

fn arb_versioned_op() -> impl Strategy<Value = VersionedOp> {
    prop_oneof![
        (0u32..48, 0u8..3, 0u8..5, 1995u64..2006).prop_map(|(key, tier, hints, bucket)| {
            VersionedOp::PutAt {
                key,
                tier,
                hints,
                bucket: bucket as i64,
            }
        }),
        (0u32..64, 1995u64..2010, 0u8..3).prop_map(|(key, now, policy)| {
            VersionedOp::GetFresh {
                key,
                now: now as i64,
                policy,
            }
        }),
        (1993u64..2012).prop_map(|min_bucket| VersionedOp::Evict {
            min_bucket: min_bucket as i64
        }),
    ]
}

fn policy_of(sel: u8) -> EvictionPolicy {
    match sel % 3 {
        0 => EvictionPolicy::Never,
        1 => EvictionPolicy::Ttl(2),
        _ => EvictionPolicy::RefreshOnMiss(2),
    }
}

/// Apply the sequence, returning every read's classification so the two
/// stores can be compared observation-by-observation, not just end-state.
fn apply_versioned(ops: &[VersionedOp], store: &dyn HintStore) -> Vec<FreshRead> {
    let mut reads = Vec::new();
    for op in ops {
        match *op {
            VersionedOp::PutAt {
                key,
                tier,
                hints,
                bucket,
            } => store.put_at(
                UrlId::from_index(key as usize),
                (0..hints)
                    .map(|i| Hint {
                        url: UrlId::from_index((key + u32::from(i) + 1) as usize),
                        tier,
                        size_hint: u64::from(key) * 100 + u64::from(i),
                    })
                    .collect(),
                bucket,
            ),
            VersionedOp::GetFresh { key, now, policy } => {
                reads.push(store.get_fresh(
                    UrlId::from_index(key as usize),
                    now,
                    policy_of(policy),
                ));
            }
            VersionedOp::Evict { min_bucket } => {
                let _ = store.evict_resolved_before(min_bucket);
            }
        }
    }
    reads
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For arbitrary versioned operation sequences under every eviction
    /// policy, the sharded store and the single-lock reference agree on
    /// every read classification, the versioned contents, the logical
    /// counters, and the freshness counters.
    #[test]
    fn versioned_sharded_store_equals_unsharded_reference(
        ops in proptest::collection::vec(arb_versioned_op(), 0..120),
        shards in 1usize..24,
    ) {
        let sharded = ShardedStore::new(shards);
        let reference = UnshardedStore::new();
        let reads_s = apply_versioned(&ops, &sharded);
        let reads_u = apply_versioned(&ops, &reference);
        prop_assert_eq!(reads_s, reads_u, "read-by-read classification");
        prop_assert_eq!(sharded.snapshot_versioned(), reference.snapshot_versioned());
        prop_assert_eq!(sharded.len(), reference.len());
        let totals = |stats: &[vroom_server::store::ShardStats]| {
            stats.iter().fold((0u64, 0u64, 0u64), |(r, h, w), s| {
                (r + s.reads, h + s.hits, w + s.writes)
            })
        };
        prop_assert_eq!(
            totals(&sharded.shard_stats()),
            totals(&reference.shard_stats())
        );
        let fresh_totals = |stats: &[vroom_server::store::FreshnessStats]| {
            stats.iter().fold((0u64, 0u64), |(s, e), f| {
                (s + f.stale, e + f.evictions)
            })
        };
        prop_assert_eq!(
            fresh_totals(&sharded.freshness_stats()),
            fresh_totals(&reference.freshness_stats())
        );
    }

    /// The legacy API is the versioned API at bucket 0 under `Never`: for
    /// any op sequence, a store driven through `put`/`get` equals one
    /// driven through `put_at(.., 0)`/`get_fresh(.., 0, Never)`.
    #[test]
    fn legacy_api_is_versioned_api_at_bucket_zero(
        ops in proptest::collection::vec(arb_op(), 0..80),
    ) {
        let legacy = ShardedStore::new(8);
        let versioned = ShardedStore::new(8);
        apply(&ops, &legacy);
        for op in &ops {
            match *op {
                Op::Put { key, tier, hints } => versioned.put_at(
                    UrlId::from_index(key as usize),
                    (0..hints)
                        .map(|i| Hint {
                            url: UrlId::from_index((key + u32::from(i) + 1) as usize),
                            tier,
                            size_hint: u64::from(key) * 100 + u64::from(i),
                        })
                        .collect(),
                    0,
                ),
                Op::Get { key } => {
                    let _ = versioned.get_fresh(
                        UrlId::from_index(key as usize),
                        0,
                        EvictionPolicy::Never,
                    );
                }
            }
        }
        prop_assert_eq!(legacy.snapshot_versioned(), versioned.snapshot_versioned());
        prop_assert_eq!(legacy.shard_stats(), versioned.shard_stats());
        prop_assert_eq!(legacy.freshness_stats(), versioned.freshness_stats());
    }
}
