//! Fleet determinism tier: the fleet-scale serving simulation — shared
//! sharded hint store, batched resolver passes, parallel client loads — is
//! byte-identical at any worker count and across repeated runs, and the
//! sharded store is observationally equal to the single-lock reference for
//! arbitrary operation sequences.

#![forbid(unsafe_code)]

use proptest::prelude::*;
use vroom_browser::config::Hint;
use vroom_fleet::{run_fleet, FleetConfig, FleetRun};
use vroom_html::Url;
use vroom_intern::{UrlId, UrlTable};
use vroom_net::json::Value;
use vroom_server::store::{HintStore, ShardedStore, UnshardedStore};

/// The two byte-comparable projections of a run: the text report and the
/// deterministic metrics tree of `BENCH_fleet.json` (timings excluded by
/// construction — they are added by `vroom-bench`, outside the simulation).
fn fingerprints(run: &FleetRun) -> (String, String) {
    let mut json = String::new();
    run.report.to_json_value().write_pretty_into(&mut json);
    (run.report.render(), json)
}

fn assert_identical_at_all_widths(mut cfg: FleetConfig) {
    cfg.workers = 1;
    let reference = run_fleet(&cfg);
    let (ref_render, ref_json) = fingerprints(&reference);
    assert!(ref_render.starts_with("==== fleet ===="));
    for workers in [2, 8] {
        cfg.workers = workers;
        let got = run_fleet(&cfg);
        let (render, json) = fingerprints(&got);
        assert_eq!(ref_render, render, "report diverged at workers={workers}");
        assert_eq!(ref_json, json, "metrics diverged at workers={workers}");
        assert_eq!(
            reference.outcomes, got.outcomes,
            "per-client outcomes diverged at workers={workers}"
        );
    }
    // Same seed, second run: nothing hidden (allocator state, map order,
    // shard scheduling) may leak into the output.
    cfg.workers = 1;
    let again = run_fleet(&cfg);
    assert_eq!(fingerprints(&again), (ref_render, ref_json));
    assert_eq!(again.outcomes, reference.outcomes);
}

#[test]
fn fleet_is_byte_identical_across_worker_counts_and_runs() {
    assert_identical_at_all_widths(FleetConfig::quick(150, 4));
}

/// The acceptance-scale run: 1000 clients. Costs tens of seconds
/// unoptimized, so the debug tier skips it; CI runs it in release mode
/// alongside the chaos suite.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "1000-client fleet is release-only; CI runs it"
)]
fn thousand_client_fleet_is_byte_identical() {
    let cfg = FleetConfig::default();
    assert!(cfg.clients >= 1000);
    assert_identical_at_all_widths(cfg);
}

#[test]
fn different_seeds_produce_different_fleets() {
    let a = run_fleet(&FleetConfig::quick(60, 3));
    let b = run_fleet(&FleetConfig {
        seed: 0xD1FF,
        ..FleetConfig::quick(60, 3)
    });
    assert_ne!(
        a.report.render(),
        b.report.render(),
        "the seed must actually steer arrivals and site choices"
    );
}

#[test]
fn shard_count_changes_layout_but_not_semantics() {
    let base = FleetConfig::quick(60, 3);
    let one = run_fleet(&FleetConfig {
        shards: 1,
        ..base.clone()
    });
    let many = run_fleet(&FleetConfig { shards: 32, ..base });
    // Shard layout is invisible to clients: every load-derived number
    // matches; only the per-shard breakdown differs.
    assert_eq!(one.outcomes, many.outcomes);
    assert_eq!(one.report.store_entries, many.report.store_entries);
    assert_eq!(one.report.hint_hits, many.report.hint_hits);
    assert_eq!(one.report.onload_p50_ms, many.report.onload_p50_ms);
    assert_eq!(one.report.shard_stats.len(), 1);
    assert_eq!(many.report.shard_stats.len(), 32);
    let total = |r: &vroom_fleet::FleetReport| {
        r.shard_stats.iter().fold((0, 0, 0, 0), |(a, b, c, d), s| {
            (a + s.reads, b + s.hits, c + s.writes, d + s.entries)
        })
    };
    assert_eq!(total(&one.report), total(&many.report));
}

#[test]
fn metrics_json_is_a_canonical_fixed_point() {
    let run = run_fleet(&FleetConfig::quick(30, 2));
    let mut text = String::new();
    run.report.to_json_value().write_pretty_into(&mut text);
    let back = Value::parse(&text).expect("metrics parse");
    let mut second = String::new();
    back.write_pretty_into(&mut second);
    assert_eq!(text, second, "canonical form is a fixed point");
}

// ---------------------------------------------------------------------------
// Sharded hint store properties
// ---------------------------------------------------------------------------

/// One store operation: `put` with a derived hint list, or `get`.
#[derive(Debug, Clone, Copy)]
enum Op {
    Put { key: u32, tier: u8, hints: u8 },
    Get { key: u32 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..64, 0u8..3, 0u8..6).prop_map(|(key, tier, hints)| Op::Put { key, tier, hints }),
        (0u32..96).prop_map(|key| Op::Get { key }),
    ]
}

fn apply(ops: &[Op], store: &dyn HintStore) {
    for op in ops {
        match *op {
            Op::Put { key, tier, hints } => store.put(
                UrlId::from_index(key as usize),
                (0..hints)
                    .map(|i| Hint {
                        url: UrlId::from_index((key + u32::from(i) + 1) as usize),
                        tier,
                        size_hint: u64::from(key) * 100 + u64::from(i),
                    })
                    .collect(),
            ),
            Op::Get { key } => {
                let _ = store.get(UrlId::from_index(key as usize));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shard routing is total (always a valid index) and a pure function
    /// of the id value: growing the intern table never re-routes an
    /// existing id.
    #[test]
    fn shard_routing_is_total_and_stable_under_growth(
        hosts in proptest::collection::vec(0u32..500, 1..40),
        shards in 1usize..64,
    ) {
        let mut table = UrlTable::new();
        let mut routed: Vec<(UrlId, usize)> = Vec::new();
        for (i, h) in hosts.iter().enumerate() {
            let id = table.intern(Url::https(&format!("h{h}.example.com"), &format!("/r/{i}")));
            let shard = id.shard(shards);
            prop_assert!(shard < shards, "routing must be total");
            // Every id routed earlier still routes identically now that
            // the table has grown.
            for &(prev, expect) in &routed {
                prop_assert_eq!(prev.shard(shards), expect, "routing drifted under growth");
            }
            routed.push((id, shard));
        }
    }

    /// For an arbitrary operation sequence, the sharded store's merged
    /// contents equal the single-lock reference exactly, and the logical
    /// counter totals match — sharding changes layout, never semantics.
    #[test]
    fn sharded_store_equals_unsharded_reference(
        ops in proptest::collection::vec(arb_op(), 0..120),
        shards in 1usize..24,
    ) {
        let sharded = ShardedStore::new(shards);
        let reference = UnshardedStore::new();
        apply(&ops, &sharded);
        apply(&ops, &reference);
        prop_assert_eq!(sharded.snapshot(), reference.snapshot());
        prop_assert_eq!(sharded.len(), reference.len());
        let totals = |stats: &[vroom_server::store::ShardStats]| {
            stats.iter().fold((0u64, 0u64, 0u64), |(r, h, w), s| {
                (r + s.reads, h + s.hits, w + s.writes)
            })
        };
        prop_assert_eq!(
            totals(&sharded.shard_stats()),
            totals(&reference.shard_stats())
        );
    }
}
