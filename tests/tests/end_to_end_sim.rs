//! Cross-crate integration: corpus generation → server resolution → policy
//! construction → browser engine, checking the paper's orderings and the
//! model's invariants across many sites.

#![forbid(unsafe_code)]

use vroom::{lower_bound_plt, run_load, run_load_warm, System};
use vroom_net::NetworkProfile;
use vroom_pages::{Corpus, LoadContext};
use vroom_sim::SimDuration;

fn lte() -> NetworkProfile {
    NetworkProfile::lte()
}

#[test]
fn paper_ordering_holds_across_a_corpus() {
    let corpus = Corpus::small(500, 12);
    let ctx = LoadContext::reference();
    let mut vroom_wins = 0;
    let mut h2_wins = 0;
    for site in &corpus.sites {
        let h1 = run_load(site, &ctx, &lte(), System::Http1, 5).plt;
        let h2 = run_load(site, &ctx, &lte(), System::Http2, 5).plt;
        let vroom = run_load(site, &ctx, &lte(), System::Vroom, 5).plt;
        let bound = lower_bound_plt(site, &ctx, &lte(), 5);
        assert!(
            bound <= vroom + SimDuration::from_millis(1),
            "lower bound {bound} must not exceed Vroom {vroom}"
        );
        if vroom < h2 {
            vroom_wins += 1;
        }
        if h2 < h1 {
            h2_wins += 1;
        }
    }
    assert!(
        vroom_wins >= corpus.len() * 3 / 4,
        "Vroom beats HTTP/2 on most sites ({vroom_wins}/{})",
        corpus.len()
    );
    assert!(
        h2_wins >= corpus.len() * 2 / 3,
        "HTTP/2 beats HTTP/1.1 on most sites ({h2_wins}/{})",
        corpus.len()
    );
}

#[test]
fn every_system_completes_every_load() {
    let corpus = Corpus::small(501, 5);
    let ctx = LoadContext::reference();
    let systems = [
        System::Http1,
        System::Http2,
        System::PushAllStatic,
        System::PolarisLike,
        System::Vroom,
        System::VroomFirstPartyOnly,
        System::VroomStaleDeps,
        System::PushHighPriorityNoHints,
        System::PushAllNoHints,
        System::PushAllFetchAsap,
        System::NetworkBound,
        System::CpuBound,
    ];
    for site in &corpus.sites {
        let page = site.snapshot(&ctx);
        for system in systems {
            let r = run_load(site, &ctx, &lte(), system, 5);
            assert!(
                r.plt > SimDuration::ZERO,
                "{system:?} on {} produced zero PLT",
                page.url
            );
            assert!(r.plt < SimDuration::from_secs(120), "{system:?} runaway");
            // Accounting invariants.
            assert!(r.cpu_busy + r.network_wait <= r.plt + SimDuration::from_millis(1));
            assert!(r.aft <= r.plt);
        }
    }
}

#[test]
fn vroom_discovery_benefit_is_corpus_wide() {
    let corpus = Corpus::small(502, 10);
    let ctx = LoadContext::reference();
    let mut improvements = Vec::new();
    for site in &corpus.sites {
        let base = run_load(site, &ctx, &lte(), System::Http2, 5);
        let vroom = run_load(site, &ctx, &lte(), System::Vroom, 5);
        improvements
            .push(1.0 - vroom.discovery_all.as_secs_f64() / base.discovery_all.as_secs_f64());
    }
    improvements.sort_by(f64::total_cmp);
    let median = improvements[improvements.len() / 2];
    // The paper reports a 22% median improvement in discovering all
    // dependencies (§6.1); ours should be at least in that regime.
    assert!(
        median > 0.2,
        "server aid must cut discovery latency substantially          (median improvement {median})"
    );
}

#[test]
fn wasted_bytes_only_under_inaccurate_hints() {
    let corpus = Corpus::small(503, 6);
    let ctx = LoadContext::reference();
    let mut stale_waste = 0u64;
    let mut clean_waste = 0u64;
    let mut useful = 0u64;
    for site in &corpus.sites {
        let clean = run_load(site, &ctx, &lte(), System::Vroom, 5);
        clean_waste += clean.wasted_bytes;
        useful += clean.useful_bytes;
        let stale = run_load(site, &ctx, &lte(), System::VroomStaleDeps, 5);
        stale_waste += stale.wasted_bytes;
    }
    // Vroom's offline set can contain a handful of very recently rotated
    // URLs (its Fig-21c false positives), but the waste must stay marginal —
    // and far below the raw previous-load strawman's.
    assert!(
        (clean_waste as f64) < useful as f64 * 0.05,
        "Vroom waste must stay marginal: {clean_waste} of {useful} useful"
    );
    assert!(
        stale_waste > clean_waste * 3,
        "previous-load deps waste far more: {stale_waste} vs {clean_waste}"
    );
}

#[test]
fn warm_cache_monotonicity() {
    let corpus = Corpus::small(504, 6);
    let ctx = LoadContext::reference();
    for site in &corpus.sites {
        let cold = run_load(site, &ctx, &lte(), System::Vroom, 5);
        let b2b = run_load_warm(site, &ctx, &lte(), System::Vroom, 5, 0.003);
        let week = run_load_warm(site, &ctx, &lte(), System::Vroom, 5, 168.0);
        assert!(b2b.cache_hits >= week.cache_hits, "fresher cache hits more");
        assert!(b2b.plt <= cold.plt + SimDuration::from_millis(50));
        assert!(b2b.useful_bytes <= cold.useful_bytes);
    }
}

#[test]
fn degraded_networks_shift_the_bottleneck() {
    // §4.3: Vroom's scheduler targets the CPU-bound LTE regime. On a 2G
    // link the network dominates and Vroom's edge narrows.
    let corpus = Corpus::small(505, 6);
    let ctx = LoadContext::reference();
    let mut lte_gains = Vec::new();
    let mut two_g_gains = Vec::new();
    for site in &corpus.sites {
        let lte_h2 = run_load(site, &ctx, &lte(), System::Http2, 5)
            .plt
            .as_secs_f64();
        let lte_vr = run_load(site, &ctx, &lte(), System::Vroom, 5)
            .plt
            .as_secs_f64();
        lte_gains.push(1.0 - lte_vr / lte_h2);
        let slow = NetworkProfile::two_g();
        let g_h2 = run_load(site, &ctx, &slow, System::Http2, 5)
            .plt
            .as_secs_f64();
        let g_vr = run_load(site, &ctx, &slow, System::Vroom, 5)
            .plt
            .as_secs_f64();
        two_g_gains.push(1.0 - g_vr / g_h2);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        avg(&lte_gains) > avg(&two_g_gains),
        "Vroom's relative gain is larger on LTE ({:.3}) than on 2G ({:.3})",
        avg(&lte_gains),
        avg(&two_g_gains)
    );
}
