//! Record/replay fidelity: a recorded corpus survives serialization and
//! replays deterministically — the property Mahimahi provides the paper's
//! testbed.

#![forbid(unsafe_code)]

use vroom_html::ResourceKind;
use vroom_net::{LatencyModel, RecordedResponse, ReplayStore};
use vroom_pages::{render_html, LoadContext, PageGenerator, SiteProfile};
use vroom_sim::SimDuration;

fn record_site(seed: u64) -> (ReplayStore, vroom_pages::Page) {
    let page = PageGenerator::new(SiteProfile::news(), seed).snapshot(&LoadContext::reference());
    let mut store = ReplayStore::new();
    for r in &page.resources {
        let rec = if r.kind == ResourceKind::Html {
            RecordedResponse::with_body(ResourceKind::Html, render_html(&page, r.id))
        } else {
            RecordedResponse::synthetic(r.kind, r.size)
        };
        store.record(r.url.clone(), rec);
    }
    for (i, domain) in page.domains().iter().enumerate() {
        store.record_rtt(domain.clone(), SimDuration::from_millis(10 + i as u64 * 7));
    }
    (store, page)
}

#[test]
fn full_corpus_survives_json_roundtrip() {
    let (store, page) = record_site(6001);
    let json = store.to_json();
    let back = ReplayStore::from_json(&json).unwrap();
    assert_eq!(back.len(), store.len());
    assert_eq!(back.len(), page.len());
    for r in &page.resources {
        let a = store.lookup(&r.url).expect("recorded");
        let b = back.lookup(&r.url).expect("reloaded");
        assert_eq!(a, b, "record for {} must survive", r.url);
        assert_eq!(b.body_bytes().len() as u64, {
            if r.kind == ResourceKind::Html {
                b.size
            } else {
                r.size
            }
        });
    }
    assert_eq!(back.server_rtts, store.server_rtts);
}

#[test]
fn recorded_html_rescans_identically_after_roundtrip() {
    // The online analyzer must see the same URLs in the replayed bytes as
    // in the original — replay preserves dependency structure.
    let (store, page) = record_site(6002);
    let json = store.to_json();
    let back = ReplayStore::from_json(&json).unwrap();
    let original = vroom_html::scan_html(
        &page.url,
        std::str::from_utf8(&store.lookup(&page.url).unwrap().body_bytes()).unwrap(),
    );
    let replayed = vroom_html::scan_html(
        &page.url,
        std::str::from_utf8(&back.lookup(&page.url).unwrap().body_bytes()).unwrap(),
    );
    assert_eq!(original, replayed);
    assert!(!replayed.is_empty());
}

#[test]
fn recorded_rtts_shape_the_latency_model() {
    let (store, page) = record_site(6003);
    let mut latency =
        LatencyModel::uniform(SimDuration::from_millis(70), SimDuration::from_millis(40));
    store.apply_rtts(&mut latency);
    for (i, domain) in page.domains().iter().enumerate() {
        assert_eq!(
            latency.rtt(domain),
            SimDuration::from_millis(70) + SimDuration::from_millis(10 + i as u64 * 7),
            "replay shaping must use the recorded RTT for {domain}"
        );
    }
}

#[test]
fn file_persistence_roundtrip() {
    let (store, _) = record_site(6004);
    let dir = std::env::temp_dir().join("vroom-replay-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corpus.json");
    store.save(&path).unwrap();
    let back = ReplayStore::load(&path).unwrap();
    assert_eq!(back.len(), store.len());
    std::fs::remove_file(&path).ok();
}
