//! Golden proof of the deterministic parallel harness: the entire
//! `run_all` report is byte-identical for every worker count, and the
//! executor primitive itself equals a sequential `map` for arbitrary item
//! counts and worker counts.

#![forbid(unsafe_code)]

use proptest::prelude::*;
use vroom::experiment::{run_all_report, ExperimentConfig};
use vroom_exec::{par_map_indexed, Pool};

fn cfg(workers: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(5);
    cfg.workers = workers;
    cfg
}

/// The tentpole acceptance test: the full report — every figure and table
/// the paper's evaluation regenerates — is byte-identical whether the
/// harness runs sequentially or on a pool, at any width.
#[test]
fn run_all_report_is_byte_identical_across_worker_counts() {
    let sequential = run_all_report(&cfg(1));
    assert!(
        sequential.contains("==== fig01 ====") && sequential.contains("==== t100 ===="),
        "report covers every section"
    );
    for workers in [2, 8] {
        let parallel = run_all_report(&cfg(workers));
        assert_eq!(
            sequential, parallel,
            "run_all output diverged at workers={workers}"
        );
    }
}

/// The pool must not skip, duplicate, or reorder sites: a keyed map over a
/// wide pool equals the sequential reference exactly.
#[test]
fn par_map_preserves_index_association() {
    let items: Vec<u64> = (0..100).map(|i| i * 31 % 17).collect();
    let reference: Vec<(usize, u64)> = items.iter().enumerate().map(|(i, &x)| (i, x * x)).collect();
    for workers in [2, 3, 7, 16] {
        let got = par_map_indexed(&items, workers, |i, &x| (i, x * x));
        assert_eq!(got, reference, "workers={workers}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `par_map_indexed(items, w, f)` equals the plain `Vec` map for
    /// arbitrary item counts and worker counts, including degenerate ones
    /// (0 items, 0/1 workers, more workers than items).
    #[test]
    fn par_map_equals_sequential_map(
        items in proptest::collection::vec(any::<u32>(), 0..200),
        workers in 0usize..32,
    ) {
        let reference: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| (i as u64) << 32 | u64::from(x))
            .collect();
        let got = par_map_indexed(&items, workers, |i, &x| (i as u64) << 32 | u64::from(x));
        prop_assert_eq!(got, reference);
    }

    /// The persistent pool equals the same sequential reference for
    /// arbitrary item/worker counts — and a single pool reused across many
    /// differently-sized runs must not leak state between them (each
    /// worker's scratch persists, results must not).
    #[test]
    fn pool_equals_sequential_map_across_reuse(
        runs in proptest::collection::vec(
            proptest::collection::vec(any::<u32>(), 0..80), 1..6),
        workers in 0usize..16,
    ) {
        #[derive(Default)]
        struct Scratch(u64);
        let pool: Pool<Scratch> = Pool::new(workers);
        for items in runs {
            let reference: Vec<u64> = items
                .iter()
                .enumerate()
                .map(|(i, &x)| (i as u64) << 32 | u64::from(x))
                .collect();
            let got = pool.dispatch(items, |s, i, &x| {
                s.0 = s.0.wrapping_add(1); // dirty the scratch: must not leak
                (i as u64) << 32 | u64::from(x)
            });
            prop_assert_eq!(got, reference);
        }
    }
}
