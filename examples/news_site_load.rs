//! A detailed look at one News-site page load: the resource waterfall under
//! the HTTP/2 baseline vs full Vroom, showing how server-aided discovery
//! decouples fetching from processing.
//!
//! ```sh
//! cargo run -p vroom-examples --example news_site_load
//! ```

#![forbid(unsafe_code)]

use vroom::{run_load, System};
use vroom_net::NetworkProfile;
use vroom_pages::{LoadContext, PageGenerator, SiteProfile};

fn main() {
    let site = PageGenerator::new(SiteProfile::news(), 1001);
    let ctx = LoadContext::reference();
    let lte = NetworkProfile::lte();
    let page = site.snapshot(&ctx);

    let base = run_load(&site, &ctx, &lte, System::Http2, 7);
    let vroom = run_load(&site, &ctx, &lte, System::Vroom, 7);

    println!("=== {} — {} resources ===\n", page.url, page.len());

    // Waterfall of the resources that need processing (the critical class).
    println!(
        "{:>4} {:>6} {:>5} {:<44} {:>22} {:>22}",
        "id", "kind", "tier", "url", "HTTP/2 disc→fetch (s)", "Vroom disc→fetch (s)"
    );
    let mut shown = 0;
    for r in page.resources.iter().filter(|r| r.needs_processing()) {
        let b = &base.resources[r.id];
        let v = &vroom.resources[r.id];
        let path = r.url.path.chars().take(30).collect::<String>();
        println!(
            "{:>4} {:>6} {:>5} {:<44} {:>9.2} → {:>9.2} {:>9.2} → {:>9.2}{}",
            r.id,
            format!("{:?}", r.kind),
            r.hint_tier(),
            format!("{}{}", r.url.host, path),
            b.discovered.as_secs_f64(),
            b.fetched.as_secs_f64(),
            v.discovered.as_secs_f64(),
            v.fetched.as_secs_f64(),
            if v.pushed { "  [pushed]" } else { "" },
        );
        shown += 1;
        if shown >= 25 {
            println!(
                "  … ({} more)",
                page.resources
                    .iter()
                    .filter(|r| r.needs_processing())
                    .count()
                    - shown
            );
            break;
        }
    }

    println!("\n=== Summary ===");
    let row = |name: &str, b: f64, v: f64, unit: &str| {
        println!(
            "{name:<34} {b:>9.2}{unit} {v:>9.2}{unit}   ({:+.0}%)",
            (v / b - 1.0) * 100.0
        );
    };
    println!("{:<34} {:>10} {:>10}", "", "HTTP/2", "Vroom");
    row(
        "page load time",
        base.plt.as_secs_f64(),
        vroom.plt.as_secs_f64(),
        "s",
    );
    row(
        "above-the-fold time",
        base.aft.as_secs_f64(),
        vroom.aft.as_secs_f64(),
        "s",
    );
    row("speed index", base.speed_index, vroom.speed_index, "ms");
    row(
        "all resources discovered by",
        base.discovery_all.as_secs_f64(),
        vroom.discovery_all.as_secs_f64(),
        "s",
    );
    row(
        "all resources fetched by",
        base.fetch_all.as_secs_f64(),
        vroom.fetch_all.as_secs_f64(),
        "s",
    );
    row(
        "CPU-idle time waiting on network",
        base.network_wait.as_secs_f64(),
        vroom.network_wait.as_secs_f64(),
        "s",
    );
    println!(
        "\npushed resources: {} | cache hits: {} | wasted bytes: {}",
        vroom.resources.iter().filter(|t| t.pushed).count(),
        vroom.cache_hits,
        vroom.wasted_bytes
    );
}
