//! Host crate for the runnable examples; see the workspace README.

#![forbid(unsafe_code)]
