//! The Vroom protocol live on the wire: a real HTTP/2 server (from-scratch
//! frames + HPACK over TCP) serving a recorded page with PUSH_PROMISE and
//! dependency-hint headers, and a client that performs Vroom's staged fetch.
//!
//! ```sh
//! cargo run -p vroom-examples --example wire_demo
//! ```

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vroom_html::{ResourceKind, Url};
use vroom_intern::UrlTable;
use vroom_net::{RecordedResponse, ReplayStore};
use vroom_pages::{render_html, LoadContext, PageGenerator, SiteProfile};
use vroom_server::online::scan_served_html;
use vroom_server::wire::{WireClient, WireServer, WireSite};
use vroom_server::{parse_hints, PushPolicy};

fn main() {
    // 1. "Record" a small news page: real HTML bodies for documents,
    //    synthetic bodies (of the right size) for everything else.
    let mut profile = SiteProfile::news();
    profile.n_images = (8, 10);
    profile.n_sync_js = (4, 6);
    let page = PageGenerator::new(profile, 7777).snapshot(&LoadContext::reference());
    let mut store = ReplayStore::new();
    for r in &page.resources {
        let rec = if r.kind == ResourceKind::Html {
            RecordedResponse::with_body(ResourceKind::Html, render_html(&page, r.id))
        } else {
            RecordedResponse::synthetic(r.kind, r.size)
        };
        store.record(r.url.clone(), rec);
    }

    // 2. Server-side online analysis over the real markup (the scanner runs
    //    on the bytes that will be served). Hints are keyed by the store's
    //    interned ids — `record` already interned every page URL.
    let mut hints = BTreeMap::new();
    let root_hints = scan_served_html(&page, 0, store.urls_mut());
    hints.insert(store.urls_mut().intern(page.url.clone()), root_hints);
    for r in &page.resources {
        if r.id != 0 && r.kind == ResourceKind::Html {
            let hs = scan_served_html(&page, r.id, store.urls_mut());
            hints.insert(store.urls_mut().intern(r.url.clone()), hs);
        }
    }

    // 3. Start the Vroom-compliant server.
    let server = WireServer::start(WireSite {
        store: Arc::new(store),
        hints: Arc::new(hints),
        push: PushPolicy::HighPriorityLocal,
        domain: page.url.host.clone(),
        faults: Default::default(),
    })
    .expect("bind");
    println!("vroom server listening on {}", server.addr());

    // 4. The client: request the root, read hints, fetch in tiers.
    let t0 = Instant::now(); // demo binary timing a real TCP exchange, not simulation
    let mut client = WireClient::connect(server.addr()).expect("connect");
    client.fetch(&page.url).expect("GET root");
    let first = client.run(Duration::from_secs(10)).expect("io");

    let root = first.iter().find(|r| r.url == page.url).expect("root");
    let mut client_urls = UrlTable::new();
    let hints = parse_hints(&root.response, &mut client_urls);
    println!(
        "\nGET {} → {} ({} bytes) at {:?}",
        page.url,
        root.response.status,
        root.body.len(),
        t0.elapsed()
    );
    for r in first.iter().filter(|r| r.pushed) {
        println!(
            "  PUSH_PROMISE delivered {} ({} bytes)",
            r.url,
            r.body.len()
        );
    }
    println!(
        "  response carried {} hints ({} preload / {} semi / {} unimportant)",
        hints.len(),
        hints.iter().filter(|h| h.tier == 0).count(),
        hints.iter().filter(|h| h.tier == 1).count(),
        hints.iter().filter(|h| h.tier == 2).count(),
    );

    // Staged fetching, Vroom style: tier by tier.
    let already: Vec<Url> = first.iter().map(|r| r.url.clone()).collect();
    let mut total = first.len();
    for tier in 0..=2u8 {
        let batch: Vec<&vroom_browser::config::Hint> = hints
            .iter()
            .filter(|h| h.tier == tier && !already.contains(client_urls.get(h.url)))
            .collect();
        if batch.is_empty() {
            continue;
        }
        for h in &batch {
            client.fetch(client_urls.get(h.url)).expect("hinted fetch");
        }
        let got = client.run(Duration::from_secs(10)).expect("io");
        println!(
            "  stage {tier}: fetched {} resources ({} KB) by {:?}",
            got.len(),
            got.iter().map(|g| g.body.len()).sum::<usize>() / 1024,
            t0.elapsed()
        );
        total += got.len();
    }
    println!(
        "\ndone: {total} resources over one real HTTP/2 connection in {:?}",
        t0.elapsed()
    );
    server.stop();
}
