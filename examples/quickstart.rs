//! Quickstart: load one News site under the status quo, HTTP/2, and Vroom,
//! and print the paper's headline metrics.
//!
//! ```sh
//! cargo run -p vroom-examples --example quickstart
//! ```

#![forbid(unsafe_code)]

use vroom::{lower_bound_plt, run_load, System};
use vroom_net::NetworkProfile;
use vroom_pages::{LoadContext, PageGenerator, SiteProfile};

fn main() {
    // A synthetic popular News site (deterministic for a given seed) loaded
    // on a Nexus-6-class phone over LTE.
    let site = PageGenerator::new(SiteProfile::news(), 42);
    let ctx = LoadContext::reference();
    let lte = NetworkProfile::lte();

    let page = site.snapshot(&ctx);
    println!(
        "site {} — {} resources, {:.1} KB, {} domains\n",
        page.url,
        page.len(),
        page.total_bytes() as f64 / 1024.0,
        page.domains().len()
    );

    println!(
        "{:<28} {:>8} {:>8} {:>12} {:>10} {:>10}",
        "system", "PLT (s)", "AFT (s)", "SpeedIdx", "CPU util", "net wait"
    );
    for system in [
        System::Http1,
        System::Http2,
        System::PolarisLike,
        System::Vroom,
    ] {
        let r = run_load(&site, &ctx, &lte, system, 7);
        println!(
            "{:<28} {:>8.2} {:>8.2} {:>12.0} {:>9.0}% {:>9.0}%",
            system.label(),
            r.plt.as_secs_f64(),
            r.aft.as_secs_f64(),
            r.speed_index,
            r.cpu_utilization() * 100.0,
            r.network_wait_frac() * 100.0,
        );
    }
    let bound = lower_bound_plt(&site, &ctx, &lte, 7);
    println!(
        "{:<28} {:>8.2}   (max of CPU-bound and network-bound loads)",
        "Lower Bound",
        bound.as_secs_f64()
    );
}
