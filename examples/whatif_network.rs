//! What-if analysis: how Vroom's benefit changes with the access network —
//! the §4.3 caveat ("alternate scheduling strategies will likely be
//! necessary where bandwidth or latency is the bottleneck") made
//! quantitative.
//!
//! ```sh
//! cargo run -p vroom-examples --example whatif_network
//! ```

#![forbid(unsafe_code)]

use vroom::{run_load, System};
use vroom_net::NetworkProfile;
use vroom_pages::{LoadContext, PageGenerator, SiteProfile};
use vroom_sim::SimDuration;

fn main() {
    let site = PageGenerator::new(SiteProfile::news(), 4242);
    let ctx = LoadContext::reference();

    println!("=== Named profiles ===");
    println!(
        "{:<14} {:>10} {:>9} | {:>9} {:>9} {:>8}",
        "profile", "down Mbps", "RTT ms", "HTTP/2 s", "Vroom s", "gain"
    );
    for profile in [
        NetworkProfile::usb_tether(),
        NetworkProfile::wifi(),
        NetworkProfile::lte(),
        NetworkProfile::lte_congested(),
        NetworkProfile::three_g(),
        NetworkProfile::two_g(),
    ] {
        let h2 = run_load(&site, &ctx, &profile, System::Http2, 7)
            .plt
            .as_secs_f64();
        let vr = run_load(&site, &ctx, &profile, System::Vroom, 7)
            .plt
            .as_secs_f64();
        println!(
            "{:<14} {:>10.1} {:>9} | {:>9.2} {:>9.2} {:>7.0}%",
            profile.name,
            profile.downlink_bps as f64 / 1e6,
            profile.latency.cellular_rtt.as_millis(),
            h2,
            vr,
            (1.0 - vr / h2) * 100.0
        );
    }

    println!("\n=== Bandwidth sweep (LTE latency) ===");
    println!(
        "{:>10} | {:>9} {:>9} {:>8}",
        "down Mbps", "HTTP/2 s", "Vroom s", "gain"
    );
    for mbps in [1, 2, 5, 10, 20, 50] {
        let profile = NetworkProfile::lte().with_downlink(mbps * 1_000_000);
        let h2 = run_load(&site, &ctx, &profile, System::Http2, 7)
            .plt
            .as_secs_f64();
        let vr = run_load(&site, &ctx, &profile, System::Vroom, 7)
            .plt
            .as_secs_f64();
        println!(
            "{mbps:>10} | {h2:>9.2} {vr:>9.2} {:>7.0}%",
            (1.0 - vr / h2) * 100.0
        );
    }

    println!("\n=== RTT sweep (LTE bandwidth) ===");
    println!(
        "{:>10} | {:>9} {:>9} {:>8}",
        "RTT ms", "HTTP/2 s", "Vroom s", "gain"
    );
    for rtt_ms in [20u64, 50, 100, 200, 400, 800] {
        let profile = NetworkProfile::lte().with_cellular_rtt(SimDuration::from_millis(rtt_ms));
        let h2 = run_load(&site, &ctx, &profile, System::Http2, 7)
            .plt
            .as_secs_f64();
        let vr = run_load(&site, &ctx, &profile, System::Vroom, 7)
            .plt
            .as_secs_f64();
        println!(
            "{rtt_ms:>10} | {h2:>9.2} {vr:>9.2} {:>7.0}%",
            (1.0 - vr / h2) * 100.0
        );
    }

    println!("\n=== Device CPU sweep (LTE) ===");
    println!(
        "{:>10} | {:>9} {:>9} {:>8}",
        "cpu slow×", "HTTP/2 s", "Vroom s", "gain"
    );
    for factor in [0.25, 0.5, 1.0, 2.0, 4.0] {
        // Scale via a custom context device-speed knob: reuse cpu_factor by
        // overriding through policy::build_config's default (run_load uses
        // the device's factor; emulate by adjusting profile? simplest:
        // temporarily construct LoadConfig directly).
        let page = site.snapshot(&ctx);
        let mut base = vroom::build_config(System::Http2, &site, &page, &ctx, 7);
        base.cpu_factor = factor;
        let mut vroomc = vroom::build_config(System::Vroom, &site, &page, &ctx, 7);
        vroomc.cpu_factor = factor;
        let lte = NetworkProfile::lte();
        let h2 = vroom_browser::BrowserEngine::load(&page, &lte, &base)
            .plt
            .as_secs_f64();
        let vr = vroom_browser::BrowserEngine::load(&page, &lte, &vroomc)
            .plt
            .as_secs_f64();
        println!(
            "{factor:>10.2} | {h2:>9.2} {vr:>9.2} {:>7.0}%",
            (1.0 - vr / h2) * 100.0
        );
    }
}
