//! Audit the accuracy of server-side dependency resolution on one site:
//! what each strategy (Vroom / offline-only / online-only / previous-load)
//! would return, scored against the predictable subset — with the actual
//! missed and extraneous URLs listed.
//!
//! ```sh
//! cargo run -p vroom-examples --example accuracy_audit
//! ```

#![forbid(unsafe_code)]

use std::collections::HashSet;
use vroom_html::Url;
use vroom_pages::{LoadContext, PageGenerator, SiteProfile};
use vroom_server::accuracy::evaluate;
use vroom_server::resolve::{resolve, ResolverInput, Strategy};

fn main() {
    let site = PageGenerator::new(SiteProfile::news(), 31337);
    let ctx = LoadContext::reference();
    let page = site.snapshot(&ctx);
    let b2b = site.snapshot(&ctx.back_to_back(ctx.nonce ^ 0xB2B));

    println!("=== {} — {} resources ===\n", page.url, page.len());

    let strategies = [
        ("Vroom (offline + online)", Strategy::Vroom),
        ("Offline only", Strategy::OfflineOnly),
        ("Online only", Strategy::OnlineOnly),
        ("Previous load, raw", Strategy::PreviousLoad),
    ];
    println!(
        "{:<28} {:>8} {:>8} | scored against the predictable subset",
        "strategy", "FN", "FP"
    );
    for (name, strategy) in strategies {
        let acc = evaluate(&site, &ctx, strategy, 77);
        println!(
            "{name:<28} {:>7.1}% {:>7.1}%",
            acc.false_negative * 100.0,
            acc.false_positive * 100.0
        );
    }

    // Detail for Vroom: which URLs were missed / extraneous and why.
    let input = ResolverInput::new(&site, ctx.hours, ctx.device, 77);
    let mut urls = vroom_intern::UrlTable::new();
    let deps = resolve(&input, &page, Strategy::Vroom, &mut urls);
    let root_id = urls.lookup(&page.url).expect("root html interned");
    let server_set: HashSet<&Url> = deps.hints[&root_id]
        .iter()
        .map(|h| urls.get(h.url))
        .collect();
    let b2b_urls: HashSet<&Url> = b2b.resources.iter().map(|r| &r.url).collect();

    println!("\n--- Vroom detail (root HTML scope) ---");
    let mut missed = 0;
    for r in page
        .resources
        .iter()
        .filter(|r| r.id != 0 && r.iframe_root.is_none())
    {
        let predictable = b2b_urls.contains(&r.url);
        let hinted = server_set.contains(&r.url);
        if predictable && !hinted {
            println!("  MISSED    {:<60} ({:?})", r.url.to_string(), r.stability);
            missed += 1;
        }
    }
    if missed == 0 {
        println!("  (no predictable resource was missed)");
    }
    let page_urls: HashSet<&Url> = page.resources.iter().map(|r| &r.url).collect();
    let mut extraneous = 0;
    for h in &deps.hints[&root_id] {
        let hurl = urls.get(h.url);
        if !page_urls.contains(hurl) {
            println!(
                "  EXTRANEOUS {:<60} (stale crawl artifact)",
                hurl.to_string()
            );
            extraneous += 1;
        }
    }
    if extraneous == 0 {
        println!("  (no extraneous hint)");
    }
    println!(
        "\nhints on root response: {} | unpredictable (left to the client): {}",
        deps.hints[&root_id].len(),
        page.resources
            .iter()
            .filter(|r| r.id != 0 && r.iframe_root.is_none())
            .filter(|r| !b2b_urls.contains(&r.url))
            .count(),
    );
}
