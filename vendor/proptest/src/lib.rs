//! Offline stand-in for `proptest`: deterministic property-based testing.
//!
//! Implements the subset of proptest's API this workspace uses — the
//! [`strategy::Strategy`] trait, `any`, integer/float ranges, `Just`,
//! tuples, `collection::vec`, a character-class subset of `string_regex`,
//! and the `proptest!`/`prop_oneof!`/`prop_assert!` macros. Unlike real
//! proptest there is no shrinking and no persistence: each test derives a
//! fixed RNG seed from its own name, so every run (local or CI) executes
//! the identical case sequence and failures reproduce exactly.

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }

    /// Deterministic generator (xorshift64*), seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a stable string (FNV-1a hash of the test name).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in `[lo, hi)` (`lo < hi`).
        pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(lo < hi, "empty range");
            let span = hi - lo;
            lo + self.next_u64() % span
        }

        /// Uniform value in `[lo, hi]`.
        pub fn range_inclusive_u64(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(lo <= hi, "empty range");
            if lo == 0 && hi == u64::MAX {
                return self.next_u64();
            }
            lo + self.next_u64() % (hi - lo + 1)
        }

        /// Uniform float in `[lo, hi)`.
        pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
            let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            lo + (hi - lo) * unit
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    ///
    /// Object safe: `Box<dyn Strategy<Value = V>>` is itself a strategy,
    /// which is what `prop_oneof!` builds on.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Build from a non-empty set of alternatives.
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.range_u64(0, self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    /// Marker for types with a canonical `any::<T>()` strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),+) => {
            $(impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            })+
        };
    }
    arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> [u8; N] {
            let mut out = [0u8; N];
            for b in &mut out {
                *b = rng.next_u64() as u8;
            }
            out
        }
    }

    /// The `any::<T>()` strategy.
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    /// Canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),+) => {
            $(
                impl Strategy for std::ops::Range<$t> {
                    type Value = $t;

                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.range_u64(self.start as u64, self.end as u64) as $t
                    }
                }

                impl Strategy for std::ops::RangeInclusive<$t> {
                    type Value = $t;

                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.range_inclusive_u64(*self.start() as u64, *self.end() as u64) as $t
                    }
                }
            )+
        };
    }
    range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.range_f64(self.start, self.end)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))+) => {
            $(
                impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                    type Value = ($($name::Value,)+);

                    #[allow(non_snake_case)]
                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        let ($($name,)+) = self;
                        ($($name.generate(rng),)+)
                    }
                }
            )+
        };
    }
    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// A string literal is a regex strategy (proptest parity).
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let pat = crate::string::RegexStrategy::parse(self)
                .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"));
            pat.generate(rng)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Vectors of `elem`, length uniform in `size`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.range_u64(self.size.start as u64, self.size.end as u64) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod string {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Error from [`string_regex`] on unsupported patterns.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// Strings matching a regex subset: literal chars, `[...]` classes
    /// (with ranges and a trailing/leading literal `-`), and `{m,n}` /
    /// `{n}` quantifiers.
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
        RegexStrategy::parse(pattern)
    }

    /// One pattern atom with its repetition bounds.
    struct Atom {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Compiled pattern: a sequence of repeated character classes.
    pub struct RegexStrategy {
        atoms: Vec<Atom>,
    }

    impl RegexStrategy {
        pub(crate) fn parse(pattern: &str) -> Result<RegexStrategy, Error> {
            let chars: Vec<char> = pattern.chars().collect();
            let mut atoms = Vec::new();
            let mut i = 0;
            while i < chars.len() {
                let class = match chars[i] {
                    '[' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == ']')
                            .ok_or_else(|| Error("unterminated class".into()))?
                            + i;
                        let set = parse_class(&chars[i + 1..close])?;
                        i = close + 1;
                        set
                    }
                    '\\' => {
                        i += 1;
                        let c = *chars
                            .get(i)
                            .ok_or_else(|| Error("dangling escape".into()))?;
                        i += 1;
                        vec![c]
                    }
                    c if "(){}|*+?^$.".contains(c) => {
                        return Err(Error(format!("unsupported regex construct {c:?}")));
                    }
                    c => {
                        i += 1;
                        vec![c]
                    }
                };
                let (min, max) = if i < chars.len() && chars[i] == '{' {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .ok_or_else(|| Error("unterminated quantifier".into()))?
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => {
                            let lo = lo.trim().parse().map_err(|_| Error("bad bound".into()))?;
                            let hi = hi.trim().parse().map_err(|_| Error("bad bound".into()))?;
                            (lo, hi)
                        }
                        None => {
                            let n = body.trim().parse().map_err(|_| Error("bad bound".into()))?;
                            (n, n)
                        }
                    }
                } else {
                    (1, 1)
                };
                if class.is_empty() {
                    return Err(Error("empty character class".into()));
                }
                atoms.push(Atom {
                    chars: class,
                    min,
                    max,
                });
            }
            Ok(RegexStrategy { atoms })
        }
    }

    fn parse_class(body: &[char]) -> Result<Vec<char>, Error> {
        let mut set = Vec::new();
        let mut i = 0;
        while i < body.len() {
            let c = if body[i] == '\\' {
                i += 1;
                *body.get(i).ok_or_else(|| Error("dangling escape".into()))?
            } else {
                body[i]
            };
            // `a-z` range iff `-` sits between two members; a leading or
            // trailing `-` is a literal.
            if i + 2 < body.len() && body[i + 1] == '-' {
                let hi = body[i + 2];
                if (c as u32) > (hi as u32) {
                    return Err(Error(format!("inverted range {c}-{hi}")));
                }
                for v in (c as u32)..=(hi as u32) {
                    set.push(char::from_u32(v).ok_or_else(|| Error("bad range".into()))?);
                }
                i += 3;
            } else {
                set.push(c);
                i += 1;
            }
        }
        set.sort_unstable();
        set.dedup();
        Ok(set)
    }

    impl Strategy for RegexStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let n = rng.range_inclusive_u64(atom.min as u64, atom.max as u64) as usize;
                for _ in 0..n {
                    let idx = rng.range_u64(0, atom.chars.len() as u64) as usize;
                    out.push(atom.chars[idx]);
                }
            }
            out
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define deterministic property tests.
///
/// Supports the proptest forms this workspace uses: an optional
/// `#![proptest_config(...)]` header and `fn name(arg in strategy, ...)`
/// items carrying outer attributes (`#[test]`, doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Uniform choice among strategy arms (all yielding the same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assert within a property (plain `assert!`; no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (10u32..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (1u8..=8).generate(&mut rng);
            assert!((1..=8).contains(&w));
            let f = (100.0f64..10_000.0).generate(&mut rng);
            assert!((100.0..10_000.0).contains(&f));
        }
    }

    #[test]
    fn string_regex_subset() {
        let mut rng = TestRng::from_name("regex");
        let strat = crate::string::string_regex("[a-z][a-z0-9-]{0,30}").unwrap();
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 31);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
        let printable = crate::string::string_regex("[ -~]{0,120}").unwrap();
        for _ in 0..100 {
            let s = printable.generate(&mut rng);
            assert!(s.len() <= 120);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = TestRng::from_name("compose");
        let strat = prop_oneof![Just(1u32), Just(2u32), (5u32..7)];
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!([1, 2, 5, 6].contains(&v));
        }
        let mapped = (1u32..4, any::<bool>()).prop_map(|(n, b)| if b { n * 10 } else { n });
        for _ in 0..100 {
            let v = mapped.generate(&mut rng);
            assert!([1, 2, 3, 10, 20, 30].contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires arguments, config, and assertions together.
        #[test]
        fn macro_smoke(a in 0u64..100, b in any::<bool>()) {
            prop_assert!(a < 100);
            if b {
                prop_assert_eq!(a, a);
            }
        }
    }
}
