//! Offline stand-in for `crossbeam`: only the `channel` module, backed by
//! `std::sync::mpsc`, whose error types and method shapes match the subset
//! this workspace uses (`unbounded`, `send`, `try_recv`, `recv_timeout`).

#![forbid(unsafe_code)]

pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};

    /// An unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn channel_basics() {
        let (tx, rx) = channel::unbounded();
        assert!(tx.send(1).is_ok());
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        assert!(tx.send(2).is_ok());
        assert_eq!(rx.recv_timeout(Duration::from_millis(50)), Ok(2));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }
}
