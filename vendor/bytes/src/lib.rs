//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the `bytes` 1.x API used by this workspace:
//! cheaply cloneable immutable [`Bytes`], a growable [`BytesMut`] with
//! big-endian put/get helpers, and the [`Buf`]/[`BufMut`] traits. The
//! implementation favors simplicity over zero-copy cleverness — `Bytes`
//! shares an `Arc<[u8]>` with a view window, `BytesMut` wraps a `Vec<u8>`.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Read access to a contiguous buffer, big-endian integer getters included.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Consume a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Consume a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Consume a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Consume `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write access to a growable buffer, big-endian integer putters included.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Immutable, cheaply cloneable byte buffer (shared storage + view window).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wrap a static slice (copied; the stand-in does not special-case
    /// static storage).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Shorten the view to `len` bytes, dropping the tail. No-op when the
    /// view is already shorter.
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.end = self.start + len;
        }
    }

    /// Split off and return the tail starting at `at`; `self` keeps the head.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off out of bounds");
        let tail = Bytes {
            data: Arc::clone(&self.data),
            start: self.start + at,
            end: self.end,
        };
        self.end = self.start + at;
        tail
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let rest = self.data.split_off(at);
        let head = std::mem::replace(&mut self.data, rest);
        BytesMut { data: head }
    }

    /// Take the entire contents, leaving `self` empty.
    pub fn split(&mut self) -> BytesMut {
        BytesMut {
            data: std::mem::take(&mut self.data),
        }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Clear the contents.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.data.len(), "advance out of bounds");
        self.data.drain(..cnt);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut { data: v.to_vec() }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { data: v }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({:?})", Bytes::from(self.data.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16(0xBEEF);
        buf.put_u32(0xDEAD_BEEF);
        let mut b = buf.freeze();
        assert_eq!(b.len(), 7);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 0xBEEF);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert!(b.is_empty());
    }

    #[test]
    fn split_and_freeze() {
        let mut buf = BytesMut::from(&b"headerpayload"[..]);
        let header = buf.split_to(6);
        assert_eq!(&header[..], b"header");
        assert_eq!(&buf[..], b"payload");
        let frozen = buf.split().freeze();
        assert_eq!(&frozen[..], b"payload");
        assert!(buf.is_empty());
    }

    #[test]
    fn bytes_split_to_shares_storage() {
        let mut b = Bytes::from(b"abcdef".to_vec());
        let head = b.split_to(2);
        assert_eq!(&head[..], b"ab");
        assert_eq!(&b[..], b"cdef");
        b.advance(1);
        assert_eq!(&b[..], b"def");
    }
}
