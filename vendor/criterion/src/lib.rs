//! Offline stand-in for `criterion`: a minimal wall-clock benchmark harness
//! exposing the API subset the `vroom-bench` benches use. It runs each
//! benchmark a fixed number of iterations, reports mean time per iteration
//! (and throughput when declared), and skips all statistics.
//!
//! This crate is bench-only scaffolding; it never runs inside the
//! deterministic simulator, so wall-clock reads are fine here.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; the stand-in treats all sizes alike.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Declared throughput of one benchmark, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Measurement driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with per-iteration inputs built by `setup`
    /// (setup time excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Top-level benchmark registry.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let iters = self.sample_size;
        run_one(&name.into(), iters, None, f);
        self
    }
}

/// A named group of benchmarks sharing sample size and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the iteration count for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Declare per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Close the group (no-op; parity with criterion's API).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    iters: u64,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        iters: iters.max(1),
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  {:>10.1} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:>10.1} elem/s", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!(
        "bench {name:<50} {:>12.3} us/iter ({} iters){rate}",
        per_iter * 1e6,
        b.iters
    );
}

/// One benchmark's raw per-sample wall-clock measurements, for callers that
/// compute their own statistics (median, interquartile range) instead of the
/// single mean that [`Criterion::bench_function`] prints.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Iterations timed inside each sample.
    pub iters_per_sample: u64,
    /// Seconds per iteration, one entry per sample.
    pub per_iter_secs: Vec<f64>,
}

impl Measurement {
    /// Number of samples taken.
    pub fn samples(&self) -> usize {
        self.per_iter_secs.len()
    }
}

/// Time `routine` as `samples` independent samples of `iters_per_sample`
/// iterations each, returning every sample's per-iteration time. Unlike
/// [`Bencher::iter`], nothing is printed and no aggregation happens here:
/// the caller owns the statistics.
pub fn sample<O, R: FnMut() -> O>(
    samples: u64,
    iters_per_sample: u64,
    mut routine: R,
) -> Measurement {
    let samples = samples.max(1);
    let iters = iters_per_sample.max(1);
    let mut per_iter_secs = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        per_iter_secs.push(start.elapsed().as_secs_f64() / iters as f64);
    }
    Measurement {
        iters_per_sample: iters,
        per_iter_secs,
    }
}

/// Collect benchmark functions under one runner name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
