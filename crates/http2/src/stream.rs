//! Per-stream state machine (RFC 7540 §5.1) and flow-control bookkeeping.

use crate::error::{ConnectionError, ErrorCode};
use crate::flow::FlowWindow;

/// RFC 7540 §5.1 stream states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamState {
    /// Not yet used.
    Idle,
    /// Reserved by a PUSH_PROMISE we sent.
    ReservedLocal,
    /// Reserved by a PUSH_PROMISE we received.
    ReservedRemote,
    /// Both directions open.
    Open,
    /// We have sent END_STREAM; peer may still send.
    HalfClosedLocal,
    /// Peer has sent END_STREAM; we may still send.
    HalfClosedRemote,
    /// Fully closed.
    Closed,
}

/// One HTTP/2 stream.
#[derive(Debug)]
pub struct Stream {
    /// The stream identifier.
    pub id: u32,
    /// Current state.
    pub state: StreamState,
    /// Credit for DATA we send on this stream.
    pub send_window: FlowWindow,
    /// Credit for DATA the peer sends on this stream.
    pub recv_window: FlowWindow,
}

impl Stream {
    /// A new stream in the given state.
    pub fn new(id: u32, state: StreamState, send_initial: u32, recv_initial: u32) -> Self {
        Stream {
            id,
            state,
            send_window: FlowWindow::new(send_initial),
            recv_window: FlowWindow::new(recv_initial),
        }
    }

    /// Whether the peer may still send us frames on this stream.
    pub fn can_recv(&self) -> bool {
        matches!(
            self.state,
            StreamState::Open | StreamState::HalfClosedLocal | StreamState::ReservedRemote
        )
    }

    /// Whether we may still send frames on this stream.
    pub fn can_send(&self) -> bool {
        matches!(
            self.state,
            StreamState::Open | StreamState::HalfClosedRemote | StreamState::ReservedLocal
        )
    }

    /// We sent HEADERS (possibly opening the stream).
    pub fn on_send_headers(&mut self, end_stream: bool) {
        self.state = match self.state {
            StreamState::Idle => StreamState::Open,
            // A reserved-local stream transitions to half-closed(remote)
            // when we send the pushed response headers.
            StreamState::ReservedLocal => StreamState::HalfClosedRemote,
            StreamState::ReservedRemote
            | StreamState::Open
            | StreamState::HalfClosedLocal
            | StreamState::HalfClosedRemote
            | StreamState::Closed => self.state,
        };
        if end_stream {
            self.on_send_end_stream();
        }
    }

    /// We received HEADERS.
    pub fn on_recv_headers(&mut self, end_stream: bool) -> Result<(), ConnectionError> {
        self.state = match self.state {
            StreamState::Idle => StreamState::Open,
            StreamState::ReservedRemote => StreamState::HalfClosedLocal,
            StreamState::Open | StreamState::HalfClosedLocal => self.state, // trailers
            StreamState::Closed | StreamState::HalfClosedRemote => {
                return Err(ConnectionError::new(
                    ErrorCode::StreamClosed,
                    // vroom-lint: allow(hot-path-alloc) -- cold protocol-error path: renders the message for a rejected peer
                    format!("HEADERS on closed stream {}", self.id),
                ));
            }
            StreamState::ReservedLocal => {
                // vroom-lint: allow(hot-path-alloc) -- cold protocol-error path: renders the message for a rejected peer
                return Err(ConnectionError::protocol(format!(
                    "peer sent HEADERS on stream {} we reserved",
                    self.id
                )));
            }
        };
        if end_stream {
            self.on_recv_end_stream()?;
        }
        Ok(())
    }

    /// Whether DATA from the peer is legal in the current state.
    pub fn recv_data_allowed(&self) -> bool {
        matches!(self.state, StreamState::Open | StreamState::HalfClosedLocal)
    }

    /// We sent END_STREAM.
    pub fn on_send_end_stream(&mut self) {
        self.state = match self.state {
            StreamState::Open => StreamState::HalfClosedLocal,
            StreamState::HalfClosedRemote | StreamState::ReservedLocal => StreamState::Closed,
            StreamState::Idle
            | StreamState::ReservedRemote
            | StreamState::HalfClosedLocal
            | StreamState::Closed => self.state,
        };
    }

    /// Peer sent END_STREAM.
    pub fn on_recv_end_stream(&mut self) -> Result<(), ConnectionError> {
        self.state = match self.state {
            StreamState::Open => StreamState::HalfClosedRemote,
            StreamState::HalfClosedLocal => StreamState::Closed,
            StreamState::Idle
            | StreamState::ReservedLocal
            | StreamState::ReservedRemote
            | StreamState::HalfClosedRemote
            | StreamState::Closed => {
                return Err(ConnectionError::new(
                    ErrorCode::StreamClosed,
                    // vroom-lint: allow(hot-path-alloc) -- cold protocol-error path: renders the message for a rejected peer
                    format!("END_STREAM in state {:?} on stream {}", self.state, self.id),
                ));
            }
        };
        Ok(())
    }

    /// The stream was reset (either direction).
    pub fn on_reset(&mut self) {
        self.state = StreamState::Closed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(state: StreamState) -> Stream {
        Stream::new(1, state, 65_535, 65_535)
    }

    #[test]
    fn request_response_lifecycle() {
        // Client side of a simple GET.
        let mut s = stream(StreamState::Idle);
        s.on_send_headers(true); // request with END_STREAM
        assert_eq!(s.state, StreamState::HalfClosedLocal);
        s.on_recv_headers(false).unwrap(); // response headers
        assert_eq!(s.state, StreamState::HalfClosedLocal);
        s.on_recv_end_stream().unwrap(); // response body done
        assert_eq!(s.state, StreamState::Closed);
    }

    #[test]
    fn push_lifecycle_server_side() {
        let mut s = stream(StreamState::ReservedLocal);
        assert!(s.can_send());
        assert!(!s.can_recv());
        s.on_send_headers(false);
        assert_eq!(s.state, StreamState::HalfClosedRemote);
        s.on_send_end_stream();
        assert_eq!(s.state, StreamState::Closed);
    }

    #[test]
    fn push_lifecycle_client_side() {
        let mut s = stream(StreamState::ReservedRemote);
        assert!(s.can_recv());
        assert!(!s.recv_data_allowed(), "no DATA before pushed HEADERS");
        s.on_recv_headers(false).unwrap();
        assert_eq!(s.state, StreamState::HalfClosedLocal);
        assert!(s.recv_data_allowed());
        s.on_recv_end_stream().unwrap();
        assert_eq!(s.state, StreamState::Closed);
    }

    #[test]
    fn headers_on_closed_stream_rejected() {
        let mut s = stream(StreamState::Closed);
        let err = s.on_recv_headers(false).unwrap_err();
        assert_eq!(err.code, ErrorCode::StreamClosed);
    }

    #[test]
    fn end_stream_twice_rejected() {
        let mut s = stream(StreamState::Open);
        s.on_recv_end_stream().unwrap();
        assert!(s.on_recv_end_stream().is_err());
    }

    #[test]
    fn reset_closes_from_any_state() {
        for st in [
            StreamState::Idle,
            StreamState::Open,
            StreamState::HalfClosedLocal,
            StreamState::ReservedRemote,
        ] {
            let mut s = stream(st);
            s.on_reset();
            assert_eq!(s.state, StreamState::Closed);
        }
    }

    #[test]
    fn trailers_allowed_while_open() {
        let mut s = stream(StreamState::Open);
        s.on_recv_headers(true).unwrap(); // trailers with END_STREAM
        assert_eq!(s.state, StreamState::HalfClosedRemote);
    }
}
