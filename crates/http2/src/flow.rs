//! Flow-control windows (RFC 7540 §5.2, §6.9).
//!
//! Windows are signed: a `SETTINGS_INITIAL_WINDOW_SIZE` decrease can push a
//! stream's send window negative (§6.9.2).

use crate::error::ConnectionError;
use crate::settings::MAX_WINDOW_SIZE;

/// One flow-control window (send or receive side of a stream or connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowWindow {
    available: i64,
}

impl FlowWindow {
    /// A window with the given initial credit.
    pub fn new(initial: u32) -> Self {
        FlowWindow {
            available: initial as i64,
        }
    }

    /// Credit currently available (may be negative).
    pub fn available(&self) -> i64 {
        self.available
    }

    /// Bytes that can actually be sent right now.
    pub fn sendable(&self) -> u32 {
        self.available.clamp(0, u32::MAX as i64) as u32
    }

    /// Consume credit for `n` bytes of DATA (including padding).
    ///
    /// # Panics
    /// Panics if consuming more than available — callers must clamp with
    /// [`sendable`](Self::sendable) first; receivers enforce the peer's
    /// conformance via [`try_consume`](Self::try_consume).
    pub fn consume(&mut self, n: u32) {
        assert!(
            (n as i64) <= self.available,
            "over-consuming window: {} > {}",
            n,
            self.available
        );
        self.available -= n as i64;
    }

    /// Receiver-side consume: errors (FLOW_CONTROL_ERROR) if the peer
    /// overran the window we advertised.
    pub fn try_consume(&mut self, n: u32) -> Result<(), ConnectionError> {
        if (n as i64) > self.available {
            // vroom-lint: allow(hot-path-alloc) -- cold protocol-error path: renders the message for a rejected peer
            return Err(ConnectionError::flow_control(format!(
                "peer sent {n} bytes with only {} window",
                self.available
            )));
        }
        self.available -= n as i64;
        Ok(())
    }

    /// Add credit from a WINDOW_UPDATE. Errors if the window would exceed
    /// 2^31 − 1 (§6.9.1).
    pub fn expand(&mut self, n: u32) -> Result<(), ConnectionError> {
        let next = self.available + n as i64;
        if next > MAX_WINDOW_SIZE as i64 {
            // vroom-lint: allow(hot-path-alloc) -- cold protocol-error path: renders the message for a rejected peer
            return Err(ConnectionError::flow_control(format!(
                "window would reach {next}"
            )));
        }
        self.available = next;
        Ok(())
    }

    /// Apply a change of `SETTINGS_INITIAL_WINDOW_SIZE` (§6.9.2): adjust by
    /// the delta, which may drive the window negative.
    pub fn adjust_initial(&mut self, old: u32, new: u32) -> Result<(), ConnectionError> {
        let delta = new as i64 - old as i64;
        let next = self.available + delta;
        if next > MAX_WINDOW_SIZE as i64 {
            return Err(ConnectionError::flow_control(
                "initial window adjustment overflow",
            ));
        }
        self.available = next;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consume_and_expand() {
        let mut w = FlowWindow::new(100);
        w.consume(40);
        assert_eq!(w.available(), 60);
        assert_eq!(w.sendable(), 60);
        w.expand(10).unwrap();
        assert_eq!(w.available(), 70);
    }

    #[test]
    #[should_panic(expected = "over-consuming")]
    fn over_consume_panics() {
        let mut w = FlowWindow::new(10);
        w.consume(11);
    }

    #[test]
    fn try_consume_errors_instead_of_panicking() {
        let mut w = FlowWindow::new(10);
        assert!(w.try_consume(10).is_ok());
        assert!(w.try_consume(1).is_err());
    }

    #[test]
    fn expand_overflow_rejected() {
        let mut w = FlowWindow::new(MAX_WINDOW_SIZE);
        assert!(w.expand(1).is_err());
        let mut w2 = FlowWindow::new(0);
        assert!(w2.expand(MAX_WINDOW_SIZE).is_ok());
    }

    #[test]
    fn initial_window_shrink_can_go_negative() {
        let mut w = FlowWindow::new(65_535);
        w.consume(60_000);
        w.adjust_initial(65_535, 1_000).unwrap();
        assert_eq!(w.available(), 5_535 - 64_535);
        assert_eq!(w.sendable(), 0);
        // Growing it back restores credit.
        w.adjust_initial(1_000, 65_535).unwrap();
        assert_eq!(w.available(), 5_535);
    }
}
