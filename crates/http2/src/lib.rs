//! `vroom-http2` — a from-scratch, sans-IO implementation of the HTTP/2
//! framing layer (RFC 7540), built as the wire substrate for the Vroom
//! reproduction.
//!
//! Vroom (SIGCOMM '17) relies on two HTTP/2 capabilities: **server push**
//! (PUSH_PROMISE) for high-priority local dependencies, and response
//! **headers** to carry dependency hints (`Link` preload, `x-semi-important`,
//! `x-unimportant`). This crate provides both, plus everything around them:
//!
//! * the complete frame codec — all ten frame types, padding, priority
//!   fields, size validation ([`frame`]),
//! * connection and stream flow control with signed windows ([`flow`]),
//! * typed settings ([`settings`]),
//! * the per-stream state machine ([`stream`]),
//! * a sans-IO [`Connection`] that pairs a byte-in/byte-out interface with
//!   a protocol-event queue ([`conn`]) — the same state machine runs over
//!   real TCP, in-memory pipes, or inside tests,
//! * request/response header typing with pseudo-header validation and the
//!   Vroom hint headers ([`headers`]).
//!
//! # Example: request/response over an in-memory wire
//!
//! ```
//! use vroom_http2::{Connection, Event, Request, Response, Settings};
//!
//! let mut client = Connection::client(Settings::vroom_client());
//! let mut server = Connection::server(Settings::default());
//!
//! // Exchange prefaces/settings.
//! server.recv(&client.take_output()).unwrap();
//! client.recv(&server.take_output()).unwrap();
//!
//! // Client asks for a page.
//! let req = Request::get("news.example.com", "/");
//! let sid = client.send_request(&req, true).unwrap();
//! server.recv(&client.take_output()).unwrap();
//!
//! // Server answers (and could push_promise dependent resources here).
//! while let Some(ev) = server.poll_event() {
//!     if let Event::Headers { stream_id, .. } = ev {
//!         let resp = Response::ok().with_header("content-type", "text/html");
//!         server.send_response(stream_id, &resp, false).unwrap();
//!         server.send_data(stream_id, b"<html></html>", true).unwrap();
//!     }
//! }
//! client.recv(&server.take_output()).unwrap();
//! # let mut got_data = false;
//! # while let Some(ev) = client.poll_event() {
//! #     if let Event::Data { data, .. } = ev { assert_eq!(&data[..], b"<html></html>"); got_data = true; }
//! # }
//! # assert!(got_data);
//! # let _ = sid;
//! ```

#![forbid(unsafe_code)]

pub mod conn;
pub mod error;
pub mod flow;
pub mod frame;
pub mod h1;
pub mod headers;
pub mod settings;
pub mod stream;

pub use conn::{Connection, Event, Role, PREFACE};
pub use error::{ConnectionError, ErrorCode};
pub use frame::{Frame, FrameCodec, PrioritySpec};
pub use headers::{hint_headers, Request, Response};
pub use settings::Settings;
pub use stream::{Stream, StreamState};

#[cfg(test)]
mod conn_tests;

#[cfg(test)]
mod proptests {
    use super::*;
    use bytes::BytesMut;
    use proptest::prelude::*;

    fn arb_frame() -> impl Strategy<Value = Frame> {
        prop_oneof![
            (
                1u32..1000,
                proptest::collection::vec(any::<u8>(), 0..2000),
                any::<bool>()
            )
                .prop_map(|(id, data, fin)| Frame::Data {
                    stream_id: id * 2 - 1,
                    data: bytes::Bytes::from(data),
                    end_stream: fin,
                    pad_len: 0,
                }),
            (
                1u32..1000,
                proptest::collection::vec(any::<u8>(), 0..500),
                any::<bool>(),
                any::<bool>()
            )
                .prop_map(|(id, frag, fin, eh)| Frame::Headers {
                    stream_id: id,
                    fragment: bytes::Bytes::from(frag),
                    end_stream: fin,
                    end_headers: eh,
                    priority: None,
                }),
            (0u32..1000, 1u32..0x7fff_ffff).prop_map(|(id, inc)| Frame::WindowUpdate {
                stream_id: id,
                increment: inc,
            }),
            proptest::collection::vec((0u16..8, any::<u32>()), 0..8).prop_map(|entries| {
                // ENABLE_PUSH and window/frame-size settings have value
                // constraints enforced at a higher layer; the codec carries
                // raw pairs.
                Frame::Settings {
                    ack: false,
                    entries,
                }
            }),
            any::<[u8; 8]>().prop_map(|payload| Frame::Ping { ack: true, payload }),
            (0u32..1000, proptest::collection::vec(any::<u8>(), 0..100)).prop_map(
                |(last, debug)| Frame::Goaway {
                    last_stream_id: last,
                    code: ErrorCode::NoError,
                    debug: bytes::Bytes::from(debug),
                }
            ),
        ]
    }

    proptest! {
        /// Every frame round-trips through the codec byte-exactly.
        #[test]
        fn frame_roundtrip(frame in arb_frame()) {
            let mut buf = BytesMut::new();
            frame.encode(&mut buf);
            let codec = FrameCodec::default();
            let got = codec.decode(&mut buf).unwrap().expect("complete frame");
            prop_assert_eq!(got, frame);
            prop_assert!(buf.is_empty());
        }

        /// Sequences of frames decode in order from one buffer, even when
        /// the buffer is fed in arbitrary-sized chunks.
        #[test]
        fn frame_stream_reassembly(
            frames in proptest::collection::vec(arb_frame(), 1..8),
            cuts in proptest::collection::vec(1usize..64, 0..32),
        ) {
            let mut wire = BytesMut::new();
            for f in &frames {
                f.encode(&mut wire);
            }
            let codec = FrameCodec::default();
            let mut feed = BytesMut::new();
            let mut out = Vec::new();
            let mut pos = 0;
            let mut cut_iter = cuts.iter().copied().cycle();
            let wire = wire.freeze();
            while pos < wire.len() {
                let n = cut_iter.next().unwrap_or(16).min(wire.len() - pos);
                feed.extend_from_slice(&wire[pos..pos + n]);
                pos += n;
                while let Some(f) = codec.decode(&mut feed).unwrap() {
                    out.push(f);
                }
            }
            prop_assert_eq!(out, frames);
        }

        /// The frame codec never panics on garbage (errors are fine).
        #[test]
        fn codec_is_total(garbage in proptest::collection::vec(any::<u8>(), 0..1024)) {
            let codec = FrameCodec::default();
            let mut buf = BytesMut::from(&garbage[..]);
            for _ in 0..64 {
                match codec.decode(&mut buf) {
                    Ok(Some(_)) => continue,
                    Ok(None) | Err(_) => break,
                }
            }
        }
    }
}
