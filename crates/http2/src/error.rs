//! HTTP/2 error codes (RFC 7540 §7) and the crate's error types.

use core::fmt;

/// Wire-level error codes carried by RST_STREAM and GOAWAY.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum ErrorCode {
    /// Graceful shutdown / no error.
    NoError = 0x0,
    /// Protocol violation detected.
    ProtocolError = 0x1,
    /// Unexpected internal failure.
    InternalError = 0x2,
    /// Flow-control limits violated.
    FlowControlError = 0x3,
    /// Settings not acknowledged in time.
    SettingsTimeout = 0x4,
    /// Frame received on a closed stream.
    StreamClosed = 0x5,
    /// Frame size incorrect for its type.
    FrameSizeError = 0x6,
    /// Stream refused before processing.
    RefusedStream = 0x7,
    /// Stream cancelled by the endpoint.
    Cancel = 0x8,
    /// HPACK state cannot be maintained.
    CompressionError = 0x9,
    /// Connection established in response to CONNECT failed.
    ConnectError = 0xa,
    /// Peer exhibiting behaviour likely to generate excessive load.
    EnhanceYourCalm = 0xb,
    /// Transport security inadequate.
    InadequateSecurity = 0xc,
    /// HTTP/1.1 required by the peer.
    Http11Required = 0xd,
}

impl ErrorCode {
    /// Parse a wire error code, mapping unknown values to `InternalError`
    /// as RFC 7540 §7 directs ("treat as INTERNAL_ERROR").
    pub fn from_wire(v: u32) -> ErrorCode {
        match v {
            0x0 => ErrorCode::NoError,
            0x1 => ErrorCode::ProtocolError,
            0x2 => ErrorCode::InternalError,
            0x3 => ErrorCode::FlowControlError,
            0x4 => ErrorCode::SettingsTimeout,
            0x5 => ErrorCode::StreamClosed,
            0x6 => ErrorCode::FrameSizeError,
            0x7 => ErrorCode::RefusedStream,
            0x8 => ErrorCode::Cancel,
            0x9 => ErrorCode::CompressionError,
            0xa => ErrorCode::ConnectError,
            0xb => ErrorCode::EnhanceYourCalm,
            0xc => ErrorCode::InadequateSecurity,
            0xd => ErrorCode::Http11Required,
            _ => ErrorCode::InternalError,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A fatal, connection-level error: the connection must emit GOAWAY and stop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionError {
    /// Code to report in GOAWAY.
    pub code: ErrorCode,
    /// Human-readable diagnostic (also sent as GOAWAY debug data).
    pub reason: String,
}

impl ConnectionError {
    /// Construct a connection error.
    pub fn new(code: ErrorCode, reason: impl Into<String>) -> Self {
        ConnectionError {
            code,
            reason: reason.into(),
        }
    }

    /// Shorthand for PROTOCOL_ERROR.
    pub fn protocol(reason: impl Into<String>) -> Self {
        Self::new(ErrorCode::ProtocolError, reason)
    }

    /// Shorthand for FRAME_SIZE_ERROR.
    pub fn frame_size(reason: impl Into<String>) -> Self {
        Self::new(ErrorCode::FrameSizeError, reason)
    }

    /// Shorthand for COMPRESSION_ERROR.
    pub fn compression(reason: impl Into<String>) -> Self {
        Self::new(ErrorCode::CompressionError, reason)
    }

    /// Shorthand for FLOW_CONTROL_ERROR.
    pub fn flow_control(reason: impl Into<String>) -> Self {
        Self::new(ErrorCode::FlowControlError, reason)
    }
}

impl fmt::Display for ConnectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "connection error {}: {}", self.code, self.reason)
    }
}

impl std::error::Error for ConnectionError {}

impl From<vroom_hpack::Error> for ConnectionError {
    fn from(e: vroom_hpack::Error) -> Self {
        ConnectionError::compression(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip_known_codes() {
        for code in [
            ErrorCode::NoError,
            ErrorCode::ProtocolError,
            ErrorCode::FlowControlError,
            ErrorCode::RefusedStream,
            ErrorCode::Http11Required,
        ] {
            assert_eq!(ErrorCode::from_wire(code as u32), code);
        }
    }

    #[test]
    fn unknown_codes_map_to_internal() {
        assert_eq!(ErrorCode::from_wire(0xff), ErrorCode::InternalError);
        assert_eq!(ErrorCode::from_wire(u32::MAX), ErrorCode::InternalError);
    }

    #[test]
    fn display_is_informative() {
        let e = ConnectionError::protocol("DATA on stream 0");
        assert_eq!(
            e.to_string(),
            "connection error ProtocolError: DATA on stream 0"
        );
    }
}
