//! HTTP/2 settings (RFC 7540 §6.5.2): typed view over SETTINGS entries.

use crate::error::ConnectionError;

/// Default `SETTINGS_INITIAL_WINDOW_SIZE`.
pub const DEFAULT_INITIAL_WINDOW_SIZE: u32 = 65_535;
/// Default `SETTINGS_MAX_FRAME_SIZE`.
pub const DEFAULT_MAX_FRAME_SIZE: u32 = 16_384;
/// Largest permitted `SETTINGS_MAX_FRAME_SIZE`.
pub const MAX_MAX_FRAME_SIZE: u32 = (1 << 24) - 1;
/// Largest permitted window size (for both settings and flow control).
pub const MAX_WINDOW_SIZE: u32 = (1 << 31) - 1;

/// Setting identifiers.
pub mod ids {
    /// HPACK dynamic table ceiling.
    pub const HEADER_TABLE_SIZE: u16 = 0x1;
    /// Whether the peer may send PUSH_PROMISE.
    pub const ENABLE_PUSH: u16 = 0x2;
    /// Cap on concurrently open peer-initiated streams.
    pub const MAX_CONCURRENT_STREAMS: u16 = 0x3;
    /// Initial per-stream flow window.
    pub const INITIAL_WINDOW_SIZE: u16 = 0x4;
    /// Largest frame payload the sender will accept.
    pub const MAX_FRAME_SIZE: u16 = 0x5;
    /// Advisory cap on decoded header list size.
    pub const MAX_HEADER_LIST_SIZE: u16 = 0x6;
}

/// A complete, validated settings state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Settings {
    /// HPACK dynamic table ceiling we allow the peer's encoder.
    pub header_table_size: u32,
    /// Whether server push is permitted toward this endpoint.
    pub enable_push: bool,
    /// Max concurrent peer-initiated streams (`None` = unlimited).
    pub max_concurrent_streams: Option<u32>,
    /// Initial per-stream flow-control window.
    pub initial_window_size: u32,
    /// Largest frame payload accepted.
    pub max_frame_size: u32,
    /// Advisory max header list size (`None` = unlimited).
    pub max_header_list_size: Option<u32>,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            header_table_size: 4096,
            enable_push: true,
            max_concurrent_streams: None,
            initial_window_size: DEFAULT_INITIAL_WINDOW_SIZE,
            max_frame_size: DEFAULT_MAX_FRAME_SIZE,
            max_header_list_size: None,
        }
    }
}

impl Settings {
    /// Settings suitable for a Vroom client: push enabled, roomy windows so
    /// that the access link (not flow control) is the bottleneck.
    pub fn vroom_client() -> Self {
        Settings {
            enable_push: true,
            initial_window_size: MAX_WINDOW_SIZE,
            max_concurrent_streams: Some(256),
            ..Settings::default()
        }
    }

    /// Apply a received (id, value) list in order. Unknown ids are ignored
    /// (RFC 7540 §6.5.2). Invalid values are connection errors.
    pub fn apply(&mut self, entries: &[(u16, u32)]) -> Result<(), ConnectionError> {
        for &(id, value) in entries {
            match id {
                ids::HEADER_TABLE_SIZE => self.header_table_size = value,
                ids::ENABLE_PUSH => {
                    self.enable_push = match value {
                        0 => false,
                        1 => true,
                        _ => {
                            // vroom-lint: allow(hot-path-alloc) -- cold protocol-error path: renders the message for a rejected peer
                            return Err(ConnectionError::protocol(format!(
                                "ENABLE_PUSH = {value}"
                            )));
                        }
                    }
                }
                ids::MAX_CONCURRENT_STREAMS => self.max_concurrent_streams = Some(value),
                ids::INITIAL_WINDOW_SIZE => {
                    if value > MAX_WINDOW_SIZE {
                        // vroom-lint: allow(hot-path-alloc) -- cold protocol-error path: renders the message for a rejected peer
                        return Err(ConnectionError::flow_control(format!(
                            "INITIAL_WINDOW_SIZE = {value}"
                        )));
                    }
                    self.initial_window_size = value;
                }
                ids::MAX_FRAME_SIZE => {
                    if !(DEFAULT_MAX_FRAME_SIZE..=MAX_MAX_FRAME_SIZE).contains(&value) {
                        // vroom-lint: allow(hot-path-alloc) -- cold protocol-error path: renders the message for a rejected peer
                        return Err(ConnectionError::protocol(format!(
                            "MAX_FRAME_SIZE = {value}"
                        )));
                    }
                    self.max_frame_size = value;
                }
                ids::MAX_HEADER_LIST_SIZE => self.max_header_list_size = Some(value),
                _ => {} // ignore unknown settings
            }
        }
        Ok(())
    }

    /// Serialize to (id, value) pairs, only emitting non-default values.
    pub fn to_entries(&self) -> Vec<(u16, u32)> {
        let d = Settings::default();
        let mut out = Vec::new();
        if self.header_table_size != d.header_table_size {
            out.push((ids::HEADER_TABLE_SIZE, self.header_table_size));
        }
        if self.enable_push != d.enable_push {
            out.push((ids::ENABLE_PUSH, self.enable_push as u32));
        }
        if let Some(m) = self.max_concurrent_streams {
            out.push((ids::MAX_CONCURRENT_STREAMS, m));
        }
        if self.initial_window_size != d.initial_window_size {
            out.push((ids::INITIAL_WINDOW_SIZE, self.initial_window_size));
        }
        if self.max_frame_size != d.max_frame_size {
            out.push((ids::MAX_FRAME_SIZE, self.max_frame_size));
        }
        if let Some(m) = self.max_header_list_size {
            out.push((ids::MAX_HEADER_LIST_SIZE, m));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_rfc() {
        let s = Settings::default();
        assert_eq!(s.header_table_size, 4096);
        assert!(s.enable_push);
        assert_eq!(s.max_concurrent_streams, None);
        assert_eq!(s.initial_window_size, 65_535);
        assert_eq!(s.max_frame_size, 16_384);
    }

    #[test]
    fn roundtrip_through_entries() {
        let s = Settings {
            header_table_size: 8192,
            enable_push: false,
            max_concurrent_streams: Some(100),
            initial_window_size: 1 << 20,
            max_frame_size: 32_768,
            max_header_list_size: Some(65_536),
        };
        let mut back = Settings::default();
        back.apply(&s.to_entries()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn default_values_not_serialized() {
        assert!(Settings::default().to_entries().is_empty());
    }

    #[test]
    fn unknown_ids_ignored() {
        let mut s = Settings::default();
        s.apply(&[(0xdead, 42)]).unwrap();
        assert_eq!(s, Settings::default());
    }

    #[test]
    fn invalid_enable_push_rejected() {
        let mut s = Settings::default();
        assert!(s.apply(&[(ids::ENABLE_PUSH, 2)]).is_err());
    }

    #[test]
    fn window_size_bounds() {
        let mut s = Settings::default();
        assert!(s
            .apply(&[(ids::INITIAL_WINDOW_SIZE, MAX_WINDOW_SIZE)])
            .is_ok());
        assert!(s
            .apply(&[(ids::INITIAL_WINDOW_SIZE, MAX_WINDOW_SIZE + 1)])
            .is_err());
    }

    #[test]
    fn frame_size_bounds() {
        let mut s = Settings::default();
        assert!(s.apply(&[(ids::MAX_FRAME_SIZE, 16_383)]).is_err());
        assert!(s.apply(&[(ids::MAX_FRAME_SIZE, 1 << 24)]).is_err());
        assert!(s
            .apply(&[(ids::MAX_FRAME_SIZE, MAX_MAX_FRAME_SIZE)])
            .is_ok());
    }

    #[test]
    fn last_value_wins() {
        let mut s = Settings::default();
        s.apply(&[(ids::HEADER_TABLE_SIZE, 1), (ids::HEADER_TABLE_SIZE, 2)])
            .unwrap();
        assert_eq!(s.header_table_size, 2);
    }
}
