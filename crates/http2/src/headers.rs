//! Typed request/response header lists over raw HPACK fields, including the
//! pseudo-header rules of RFC 7540 §8.1.2 and the Vroom hint headers the
//! paper adds (Table 1).

use crate::error::ConnectionError;
use std::sync::OnceLock;
use vroom_hpack::HeaderField;
use vroom_intern::SharedStr;

/// Vroom's dependency-hint header names (paper Table 1), in decreasing
/// priority order. `link` carries `rel=preload` entries for resources that
/// must be processed; the two `x-` headers are Vroom's extensions.
pub mod hint_headers {
    /// Highest priority: resources to be processed (HTML/CSS/JS).
    pub const LINK: &str = "link";
    /// Resources to be processed but lazily fetched (async/defer).
    pub const SEMI_IMPORTANT: &str = "x-semi-important";
    /// Resources that cannot have derived children (images, media).
    pub const UNIMPORTANT: &str = "x-unimportant";
    /// CORS exposure required for a JS scheduler to read the hints
    /// (paper §5.2, footnote 7).
    pub const EXPOSE: &str = "access-control-expose-headers";
}

/// An HTTP request as carried over HTTP/2.
///
/// Pseudo-header values are refcounted [`SharedStr`]s, so serializing to
/// HPACK fields and parsing back shares bytes instead of copying them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `:method`.
    pub method: SharedStr,
    /// `:scheme`.
    pub scheme: SharedStr,
    /// `:authority` (the domain).
    pub authority: SharedStr,
    /// `:path`.
    pub path: SharedStr,
    /// Regular header fields, in order.
    pub headers: Vec<HeaderField>,
}

impl Request {
    /// A GET request for `https://{authority}{path}`.
    pub fn get(authority: impl Into<SharedStr>, path: impl Into<SharedStr>) -> Self {
        Request {
            method: "GET".into(),
            scheme: "https".into(),
            authority: authority.into(),
            path: path.into(),
            headers: Vec::new(),
        }
    }

    /// Attach a cookie header (Vroom: only ever for the request's own
    /// domain — the client never shares cross-domain cookies).
    pub fn with_cookie(mut self, cookie: impl Into<SharedStr>) -> Self {
        self.headers
            .push(HeaderField::sensitive("cookie", cookie.into()));
        self
    }

    /// Attach an arbitrary header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push(HeaderField::new(name, value));
        self
    }

    /// Serialize to an HPACK field list (pseudo-headers first, §8.1.2.1).
    /// Every field shares this request's bytes.
    pub fn to_fields(&self) -> Vec<HeaderField> {
        let mut out = vec![
            HeaderField::new(":method", self.method.share()),
            HeaderField::new(":scheme", self.scheme.share()),
            HeaderField::new(":authority", self.authority.share()),
            HeaderField::new(":path", self.path.share()),
        ];
        // vroom-lint: allow(hot-path-alloc) -- HeaderField::clone is two refcount bumps and a flag, never a byte copy
        out.extend(self.headers.iter().cloned());
        out
    }

    /// Parse from an HPACK field list, enforcing pseudo-header rules.
    pub fn from_fields(fields: &[HeaderField]) -> Result<Request, ConnectionError> {
        let (pseudo, regular) = split_pseudo(fields)?;
        let mut method = None;
        let mut scheme = None;
        let mut authority = None;
        let mut path = None;
        for f in pseudo {
            let slot = match f.name.as_str() {
                ":method" => &mut method,
                ":scheme" => &mut scheme,
                ":authority" => &mut authority,
                ":path" => &mut path,
                other => {
                    // vroom-lint: allow(hot-path-alloc) -- cold protocol-error path: renders the message for a rejected block
                    return Err(ConnectionError::protocol(format!(
                        "unknown request pseudo-header {other}"
                    )));
                }
            };
            if slot.replace(f.value.share()).is_some() {
                // vroom-lint: allow(hot-path-alloc) -- cold protocol-error path: renders the message for a rejected block
                return Err(ConnectionError::protocol(format!(
                    "duplicate pseudo-header {}",
                    f.name
                )));
            }
        }
        Ok(Request {
            method: method.ok_or_else(|| ConnectionError::protocol(":method missing"))?,
            scheme: scheme.ok_or_else(|| ConnectionError::protocol(":scheme missing"))?,
            authority: authority.unwrap_or_default(),
            path: path.ok_or_else(|| ConnectionError::protocol(":path missing"))?,
            headers: regular,
        })
    }
}

/// An HTTP response as carried over HTTP/2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// `:status`.
    pub status: u16,
    /// Regular header fields, in order.
    pub headers: Vec<HeaderField>,
}

impl Response {
    /// A 200 response with no headers yet.
    pub fn ok() -> Self {
        Response {
            status: 200,
            headers: Vec::new(),
        }
    }

    /// A response with the given status.
    pub fn with_status(status: u16) -> Self {
        Response {
            status,
            headers: Vec::new(),
        }
    }

    /// Attach a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push(HeaderField::new(name, value));
        self
    }

    /// All values of the named header, in order.
    pub fn header_values<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> {
        self.headers
            .iter()
            .filter(move |f| f.name == name)
            .map(|f| f.value.as_str())
    }

    /// Serialize to an HPACK field list.
    pub fn to_fields(&self) -> Vec<HeaderField> {
        let mut out = vec![HeaderField::new(":status", status_text(self.status))];
        // vroom-lint: allow(hot-path-alloc) -- HeaderField::clone is two refcount bumps and a flag, never a byte copy
        out.extend(self.headers.iter().cloned());
        out
    }

    /// Parse from an HPACK field list.
    pub fn from_fields(fields: &[HeaderField]) -> Result<Response, ConnectionError> {
        let (pseudo, regular) = split_pseudo(fields)?;
        let mut status = None;
        for f in pseudo {
            if f.name != ":status" {
                // vroom-lint: allow(hot-path-alloc) -- cold protocol-error path: renders the message for a rejected block
                return Err(ConnectionError::protocol(format!(
                    "unknown response pseudo-header {}",
                    f.name
                )));
            }
            if status
                .replace(f.value.parse::<u16>().map_err(|_| {
                    // vroom-lint: allow(hot-path-alloc) -- cold protocol-error path: renders the message for a rejected block
                    ConnectionError::protocol(format!("bad :status {:?}", f.value))
                })?)
                .is_some()
            {
                return Err(ConnectionError::protocol("duplicate :status"));
            }
        }
        Ok(Response {
            status: status.ok_or_else(|| ConnectionError::protocol(":status missing"))?,
            headers: regular,
        })
    }
}

/// `:status` rendering without a per-response allocation for the codes the
/// HPACK static table also carries; anything rarer is rendered per call.
fn status_text(status: u16) -> SharedStr {
    static COMMON: OnceLock<[(u16, SharedStr); 7]> = OnceLock::new();
    let common = COMMON.get_or_init(|| {
        [
            (200, "200".into()),
            (204, "204".into()),
            (206, "206".into()),
            (304, "304".into()),
            (400, "400".into()),
            (404, "404".into()),
            (500, "500".into()),
        ]
    });
    match common.iter().find(|(c, _)| *c == status) {
        Some((_, s)) => s.share(),
        // vroom-lint: allow(hot-path-alloc) -- uncommon status code: rendered once per response, off the cached fast path
        None => SharedStr::from(status.to_string()),
    }
}

/// Split a field list into (pseudo, regular) enforcing §8.1.2.1: pseudo
/// headers come first and never reappear after a regular field; header
/// names must be lower-case.
fn split_pseudo(
    fields: &[HeaderField],
) -> Result<(Vec<&HeaderField>, Vec<HeaderField>), ConnectionError> {
    let mut pseudo = Vec::new();
    let mut regular = Vec::new();
    let mut seen_regular = false;
    for f in fields {
        if f.name.starts_with(':') {
            if seen_regular {
                return Err(ConnectionError::protocol(
                    "pseudo-header after regular header",
                ));
            }
            pseudo.push(f);
        } else {
            if f.name.chars().any(|c| c.is_ascii_uppercase()) {
                // vroom-lint: allow(hot-path-alloc) -- cold protocol-error path: renders the message for a rejected block
                return Err(ConnectionError::protocol(format!(
                    "upper-case header name {:?}",
                    f.name
                )));
            }
            seen_regular = true;
            // vroom-lint: allow(hot-path-alloc) -- HeaderField::clone is two refcount bumps and a flag, never a byte copy
            regular.push(f.clone());
        }
    }
    Ok((pseudo, regular))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request::get("news.example.com", "/story/1.html")
            .with_cookie("session=abc")
            .with_header("user-agent", "vroom/0.1");
        let fields = req.to_fields();
        assert_eq!(fields[0].name, ":method");
        let back = Request::from_fields(&fields).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn response_roundtrip_with_hints() {
        let resp = Response::ok()
            .with_header(hint_headers::LINK, "</app.js>; rel=preload; as=script")
            .with_header(
                hint_headers::SEMI_IMPORTANT,
                "https://cdn.example.com/lazy.js",
            )
            .with_header(
                hint_headers::UNIMPORTANT,
                "https://img.example.com/hero.jpg",
            )
            .with_header(
                hint_headers::EXPOSE,
                "Link, x-semi-important, x-unimportant",
            );
        let back = Response::from_fields(&resp.to_fields()).unwrap();
        assert_eq!(back, resp);
        assert_eq!(back.header_values(hint_headers::SEMI_IMPORTANT).count(), 1);
    }

    #[test]
    fn cookie_is_sensitive() {
        let req = Request::get("a.com", "/").with_cookie("id=1");
        assert!(req
            .to_fields()
            .iter()
            .any(|f| f.name == "cookie" && f.sensitive));
    }

    #[test]
    fn missing_pseudo_rejected() {
        let fields = vec![HeaderField::new(":method", "GET")];
        assert!(Request::from_fields(&fields).is_err());
        assert!(Response::from_fields(&[]).is_err());
    }

    #[test]
    fn pseudo_after_regular_rejected() {
        let fields = vec![
            HeaderField::new(":method", "GET"),
            HeaderField::new("accept", "*/*"),
            HeaderField::new(":path", "/"),
        ];
        assert!(Request::from_fields(&fields).is_err());
    }

    #[test]
    fn duplicate_pseudo_rejected() {
        let fields = vec![
            HeaderField::new(":status", "200"),
            HeaderField::new(":status", "404"),
        ];
        assert!(Response::from_fields(&fields).is_err());
    }

    #[test]
    fn uppercase_header_rejected() {
        let fields = vec![
            HeaderField::new(":status", "200"),
            HeaderField::new("X-Custom", "v"),
        ];
        assert!(Response::from_fields(&fields).is_err());
    }

    #[test]
    fn bad_status_rejected() {
        let fields = vec![HeaderField::new(":status", "abc")];
        assert!(Response::from_fields(&fields).is_err());
    }

    #[test]
    fn multiple_hint_values_preserved_in_order() {
        let resp = Response::ok()
            .with_header(hint_headers::LINK, "</a.css>; rel=preload; as=style")
            .with_header(hint_headers::LINK, "</b.js>; rel=preload; as=script");
        let vals: Vec<&str> = resp.header_values(hint_headers::LINK).collect();
        assert_eq!(
            vals,
            vec![
                "</a.css>; rel=preload; as=style",
                "</b.js>; rel=preload; as=script"
            ]
        );
    }
}
