//! The sans-IO HTTP/2 connection state machine.
//!
//! Following the smoltcp philosophy, [`Connection`] performs no IO: callers
//! feed received bytes in with [`Connection::recv`], drain wire bytes out
//! with [`Connection::take_output`], and consume protocol [`Event`]s with
//! [`Connection::poll_event`]. The same state machine therefore runs over
//! real TCP sockets (see `vroom-server`'s wire module), in-memory pipes
//! (tests), or not at all (the discrete-event simulator uses the header
//! types only).

use crate::error::{ConnectionError, ErrorCode};
use crate::frame::{self, Frame, FrameCodec, PrioritySpec};
use crate::headers::{Request, Response};
use crate::settings::Settings;
use crate::stream::{Stream, StreamState};
use bytes::{Bytes, BytesMut};
use std::collections::{HashMap, VecDeque};
use vroom_hpack::HeaderField;

/// The HTTP/2 connection preface sent by clients (RFC 7540 §3.5).
pub const PREFACE: &[u8] = b"PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n";

/// Which side of the connection we are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Initiates streams with odd ids; receives pushes.
    Client,
    /// Initiates pushes with even ids.
    Server,
}

/// Protocol events surfaced to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A complete header block arrived (request on servers, response on
    /// clients, or trailers).
    Headers {
        /// Stream carrying the block.
        stream_id: u32,
        /// Decoded fields, pseudo-headers first.
        fields: Vec<HeaderField>,
        /// Whether the peer half-closed the stream.
        end_stream: bool,
    },
    /// A chunk of body data arrived.
    Data {
        /// Stream carrying the data.
        stream_id: u32,
        /// The bytes (padding already stripped).
        data: Bytes,
        /// Whether the peer half-closed the stream.
        end_stream: bool,
    },
    /// The peer promised a push (clients only).
    PushPromise {
        /// Stream the promise rode on.
        stream_id: u32,
        /// Reserved even-numbered stream for the pushed response.
        promised_stream_id: u32,
        /// Synthesized request fields.
        fields: Vec<HeaderField>,
    },
    /// The peer reset a stream.
    StreamReset {
        /// Stream that died.
        stream_id: u32,
        /// Why.
        code: ErrorCode,
    },
    /// The peer's settings arrived/changed.
    PeerSettings(Settings),
    /// The peer acknowledged our settings.
    SettingsAcked,
    /// The peer answered a PING.
    PingAcked([u8; 8]),
    /// The peer is going away.
    Goaway {
        /// Highest stream id the peer may have processed.
        last_stream_id: u32,
        /// Why.
        code: ErrorCode,
    },
}

/// In-progress header block (HEADERS/PUSH_PROMISE awaiting CONTINUATION).
/// The accumulated fragment bytes live in [`Connection::cont_buf`], which is
/// reused across header blocks.
#[derive(Debug)]
struct ContState {
    stream_id: u32,
    /// `Some(promised_id)` when accumulating a PUSH_PROMISE block.
    promised: Option<u32>,
    end_stream: bool,
}

/// A sans-IO HTTP/2 connection.
pub struct Connection {
    role: Role,
    local: Settings,
    peer: Settings,
    codec: FrameCodec,
    hpack_enc: vroom_hpack::Encoder,
    hpack_dec: vroom_hpack::Decoder,
    recv_buf: BytesMut,
    out: BytesMut,
    streams: HashMap<u32, Stream>,
    next_local_stream: u32,
    highest_peer_stream: u32,
    conn_send: crate::flow::FlowWindow,
    conn_recv: crate::flow::FlowWindow,
    events: VecDeque<Event>,
    preface_remaining: usize,
    cont: Option<ContState>,
    /// Reused accumulator for header blocks split across CONTINUATION
    /// frames — no per-block allocation once warmed up.
    cont_buf: Vec<u8>,
    /// Reused HPACK encode scratch: header blocks are encoded here, then
    /// framed directly into `out` from slices of this buffer.
    enc_buf: Vec<u8>,
    local_settings_acked: bool,
    goaway_sent: bool,
    goaway_received: bool,
}

impl Connection {
    /// A client connection; queues the preface and our SETTINGS.
    pub fn client(local: Settings) -> Self {
        let mut c = Self::new(Role::Client, local);
        c.out.extend_from_slice(PREFACE);
        c.queue_settings();
        c
    }

    /// A server connection; expects the preface, queues our SETTINGS.
    pub fn server(local: Settings) -> Self {
        let mut c = Self::new(Role::Server, local);
        c.preface_remaining = PREFACE.len();
        c.queue_settings();
        c
    }

    fn new(role: Role, local: Settings) -> Self {
        let codec = FrameCodec {
            max_frame_size: local.max_frame_size,
        };
        let hpack_dec = vroom_hpack::Decoder::new()
            .with_max_table_size(local.header_table_size as usize)
            .with_max_header_list_size(local.max_header_list_size.unwrap_or(64 * 1024) as usize);
        Connection {
            role,
            peer: Settings::default(),
            codec,
            hpack_enc: vroom_hpack::Encoder::new(),
            hpack_dec,
            recv_buf: BytesMut::new(),
            out: BytesMut::new(),
            streams: HashMap::new(),
            next_local_stream: if role == Role::Client { 1 } else { 2 },
            highest_peer_stream: 0,
            conn_send: crate::flow::FlowWindow::new(crate::settings::DEFAULT_INITIAL_WINDOW_SIZE),
            conn_recv: crate::flow::FlowWindow::new(crate::settings::DEFAULT_INITIAL_WINDOW_SIZE),
            events: VecDeque::new(),
            preface_remaining: 0,
            cont: None,
            cont_buf: Vec::new(),
            enc_buf: Vec::new(),
            local_settings_acked: false,
            goaway_sent: false,
            goaway_received: false,
            local,
        }
    }

    fn queue_settings(&mut self) {
        Frame::Settings {
            ack: false,
            entries: self.local.to_entries(),
        }
        .encode(&mut self.out);
    }

    /// Our announced settings.
    pub fn local_settings(&self) -> &Settings {
        &self.local
    }

    /// The peer's last announced settings.
    pub fn peer_settings(&self) -> &Settings {
        &self.peer
    }

    /// Whether the peer has acknowledged our SETTINGS.
    pub fn settings_acked(&self) -> bool {
        self.local_settings_acked
    }

    /// Whether GOAWAY has been received.
    pub fn is_closing(&self) -> bool {
        self.goaway_received || self.goaway_sent
    }

    /// State of a stream, if known.
    pub fn stream_state(&self, id: u32) -> Option<StreamState> {
        self.streams.get(&id).map(|s| s.state)
    }

    /// Bytes currently sendable on a stream (min of stream and connection
    /// windows).
    pub fn send_capacity(&self, stream_id: u32) -> u32 {
        let stream = self
            .streams
            .get(&stream_id)
            .map(|s| s.send_window.sendable())
            .unwrap_or(0);
        stream.min(self.conn_send.sendable())
    }

    /// Drain bytes to write to the transport.
    pub fn take_output(&mut self) -> Bytes {
        self.out.split().freeze()
    }

    /// Whether output bytes are pending.
    pub fn wants_write(&self) -> bool {
        !self.out.is_empty()
    }

    /// Pop the next protocol event.
    pub fn poll_event(&mut self) -> Option<Event> {
        self.events.pop_front()
    }

    /// Feed received transport bytes. On a connection error, a GOAWAY is
    /// queued in the output buffer and the error returned; the connection
    /// is then unusable except for draining output.
    pub fn recv(&mut self, data: &[u8]) -> Result<(), ConnectionError> {
        self.recv_buf.extend_from_slice(data);
        match self.process() {
            Ok(()) => Ok(()),
            Err(e) => {
                self.queue_goaway(e.code, &e.reason);
                Err(e)
            }
        }
    }

    fn process(&mut self) -> Result<(), ConnectionError> {
        if self.preface_remaining > 0 {
            let take = self.preface_remaining.min(self.recv_buf.len());
            let offset = PREFACE.len() - self.preface_remaining;
            let got = self.recv_buf.get(..take).unwrap_or_default();
            let want = PREFACE.get(offset..offset + take).unwrap_or_default();
            if got != want {
                return Err(ConnectionError::protocol("bad connection preface"));
            }
            let _ = self.recv_buf.split_to(take);
            self.preface_remaining -= take;
            if self.preface_remaining > 0 {
                return Ok(());
            }
        }
        while let Some(frame) = self.codec.decode(&mut self.recv_buf)? {
            self.handle_frame(frame)?;
        }
        Ok(())
    }

    fn handle_frame(&mut self, frame: Frame) -> Result<(), ConnectionError> {
        // While a header block is open, only CONTINUATION on the same stream
        // is legal (RFC 7540 §6.2).
        if let Some(cont) = &self.cont {
            // vroom-lint: allow(protocol-exhaustive) -- rejection guard: every frame except same-stream CONTINUATION is a protocol error here, and future frame types must hit the error arm too
            match &frame {
                Frame::Continuation { stream_id, .. } if *stream_id == cont.stream_id => {}
                _ => {
                    return Err(ConnectionError::protocol(
                        "frame interleaved inside header block",
                    ))
                }
            }
        }
        match frame {
            Frame::Settings { ack: true, .. } => {
                self.local_settings_acked = true;
                self.events.push_back(Event::SettingsAcked);
            }
            Frame::Settings {
                ack: false,
                entries,
            } => {
                let old_initial = self.peer.initial_window_size;
                self.peer.apply(&entries)?;
                // Peer's INITIAL_WINDOW_SIZE change retroactively adjusts all
                // stream *send* windows (§6.9.2).
                if self.peer.initial_window_size != old_initial {
                    for s in self.streams.values_mut() {
                        s.send_window
                            .adjust_initial(old_initial, self.peer.initial_window_size)?;
                    }
                }
                // Peer's decoder table bound constrains our encoder.
                self.hpack_enc
                    .set_max_table_size(self.peer.header_table_size.min(4096) as usize);
                Frame::Settings {
                    ack: true,
                    entries: vec![],
                }
                .encode(&mut self.out);
                self.events.push_back(Event::PeerSettings(self.peer));
            }
            Frame::Ping {
                ack: false,
                payload,
            } => {
                Frame::Ping { ack: true, payload }.encode(&mut self.out);
            }
            Frame::Ping { ack: true, payload } => {
                self.events.push_back(Event::PingAcked(payload));
            }
            Frame::WindowUpdate {
                stream_id: 0,
                increment,
            } => {
                self.conn_send.expand(increment)?;
            }
            Frame::WindowUpdate {
                stream_id,
                increment,
            } => {
                if let Some(s) = self.streams.get_mut(&stream_id) {
                    s.send_window.expand(increment)?;
                }
                // Updates for unknown/closed streams are ignored.
            }
            Frame::Priority { .. } => {
                // Advisory only; the Vroom stack schedules at a higher layer.
            }
            Frame::RstStream { stream_id, code } => {
                if stream_id > self.highest_peer_stream
                    && !self.is_local_stream(stream_id)
                    && !self.streams.contains_key(&stream_id)
                {
                    return Err(ConnectionError::protocol("RST_STREAM on idle stream"));
                }
                if let Some(s) = self.streams.get_mut(&stream_id) {
                    s.on_reset();
                }
                self.events
                    .push_back(Event::StreamReset { stream_id, code });
            }
            Frame::Goaway {
                last_stream_id,
                code,
                ..
            } => {
                self.goaway_received = true;
                self.events.push_back(Event::Goaway {
                    last_stream_id,
                    code,
                });
            }
            Frame::Data {
                stream_id,
                data,
                end_stream,
                pad_len,
            } => {
                self.handle_data(stream_id, data, end_stream, pad_len)?;
            }
            Frame::Headers {
                stream_id,
                fragment,
                end_stream,
                end_headers,
                priority: _,
            } => {
                if end_headers {
                    self.finish_header_block(stream_id, None, end_stream, &fragment)?;
                } else {
                    self.cont_buf.clear();
                    self.cont_buf.extend_from_slice(&fragment);
                    self.cont = Some(ContState {
                        stream_id,
                        promised: None,
                        end_stream,
                    });
                }
            }
            Frame::PushPromise {
                stream_id,
                promised_stream_id,
                fragment,
                end_headers,
            } => {
                if self.role != Role::Client {
                    return Err(ConnectionError::protocol("server received PUSH_PROMISE"));
                }
                if !self.local.enable_push {
                    return Err(ConnectionError::protocol("push is disabled"));
                }
                if end_headers {
                    self.finish_header_block(
                        stream_id,
                        Some(promised_stream_id),
                        false,
                        &fragment,
                    )?;
                } else {
                    self.cont_buf.clear();
                    self.cont_buf.extend_from_slice(&fragment);
                    self.cont = Some(ContState {
                        stream_id,
                        promised: Some(promised_stream_id),
                        end_stream: false,
                    });
                }
            }
            Frame::Continuation {
                stream_id,
                fragment,
                end_headers,
            } => {
                let Some(cont) = &self.cont else {
                    return Err(ConnectionError::protocol("CONTINUATION without HEADERS"));
                };
                debug_assert_eq!(cont.stream_id, stream_id);
                self.cont_buf.extend_from_slice(&fragment);
                if end_headers {
                    if let Some(cont) = self.cont.take() {
                        // Move the accumulator out for the duration of the
                        // call (finish_header_block needs `&mut self`), then
                        // put it back so its capacity is reused.
                        let buf = std::mem::take(&mut self.cont_buf);
                        let res = self.finish_header_block(
                            cont.stream_id,
                            cont.promised,
                            cont.end_stream,
                            &buf,
                        );
                        self.cont_buf = buf;
                        res?;
                    }
                }
            }
        }
        Ok(())
    }

    fn is_local_stream(&self, id: u32) -> bool {
        match self.role {
            Role::Client => id % 2 == 1,
            Role::Server => id.is_multiple_of(2),
        }
    }

    fn handle_data(
        &mut self,
        stream_id: u32,
        data: Bytes,
        end_stream: bool,
        pad_len: u32,
    ) -> Result<(), ConnectionError> {
        let flow_len = data.len() as u32 + pad_len;
        // Padding and data both count against the connection window.
        self.conn_recv.try_consume(flow_len)?;

        let Some(s) = self.streams.get_mut(&stream_id) else {
            if stream_id > self.highest_peer_stream && !self.is_local_stream(stream_id) {
                return Err(ConnectionError::protocol("DATA on idle stream"));
            }
            // Closed-and-forgotten stream: replenish and reset.
            self.replenish_connection(flow_len);
            self.queue_rst(stream_id, ErrorCode::StreamClosed);
            return Ok(());
        };
        if !s.recv_data_allowed() {
            self.replenish_connection(flow_len);
            self.queue_rst(stream_id, ErrorCode::StreamClosed);
            return Ok(());
        }
        s.recv_window.try_consume(flow_len)?;
        if end_stream {
            s.on_recv_end_stream()?;
        } else {
            // Replenish the stream window so the sender keeps flowing.
            s.recv_window.expand(flow_len)?;
            Frame::WindowUpdate {
                stream_id,
                increment: flow_len,
            }
            .encode(&mut self.out);
        }
        self.replenish_connection(flow_len);
        self.events.push_back(Event::Data {
            stream_id,
            data,
            end_stream,
        });
        Ok(())
    }

    fn replenish_connection(&mut self, n: u32) {
        if n == 0 {
            return;
        }
        if self.conn_recv.expand(n).is_err() {
            // Window already at the RFC maximum; skip the update rather
            // than tearing the connection down over bookkeeping.
            return;
        }
        Frame::WindowUpdate {
            stream_id: 0,
            increment: n,
        }
        .encode(&mut self.out);
    }

    fn finish_header_block(
        &mut self,
        stream_id: u32,
        promised: Option<u32>,
        end_stream: bool,
        fragment: &[u8],
    ) -> Result<(), ConnectionError> {
        // HPACK state must advance even for streams we will refuse.
        let fields = self.hpack_dec.decode(fragment)?;

        if let Some(promised_id) = promised {
            if promised_id % 2 != 0 || promised_id <= self.highest_promised() {
                return Err(ConnectionError::protocol("bad promised stream id"));
            }
            // Reserve the pushed stream (remote).
            self.streams.insert(
                promised_id,
                Stream::new(
                    promised_id,
                    StreamState::ReservedRemote,
                    self.peer.initial_window_size,
                    self.local.initial_window_size,
                ),
            );
            self.events.push_back(Event::PushPromise {
                stream_id,
                promised_stream_id: promised_id,
                fields,
            });
            return Ok(());
        }

        let is_new = !self.streams.contains_key(&stream_id);
        if is_new {
            if self.is_local_stream(stream_id) {
                // vroom-lint: allow(hot-path-alloc) -- cold protocol-error path: renders the message for a rejected peer
                return Err(ConnectionError::protocol(format!(
                    "peer opened stream {stream_id} with our parity"
                )));
            }
            if stream_id <= self.highest_peer_stream {
                return Err(ConnectionError::new(
                    ErrorCode::StreamClosed,
                    "HEADERS on old stream id",
                ));
            }
            if self.role == Role::Client {
                return Err(ConnectionError::protocol("server opened a non-push stream"));
            }
            if let Some(max) = self.local.max_concurrent_streams {
                let open_peer = self
                    .streams
                    .values()
                    .filter(|s| !self.is_local_stream(s.id) && s.state != StreamState::Closed)
                    .count() as u32;
                if open_peer >= max {
                    self.queue_rst(stream_id, ErrorCode::RefusedStream);
                    self.highest_peer_stream = stream_id;
                    return Ok(());
                }
            }
            self.highest_peer_stream = stream_id;
            self.streams.insert(
                stream_id,
                Stream::new(
                    stream_id,
                    StreamState::Idle,
                    self.peer.initial_window_size,
                    self.local.initial_window_size,
                ),
            );
        }
        let Some(s) = self.streams.get_mut(&stream_id) else {
            return Err(ConnectionError::new(
                ErrorCode::InternalError,
                // vroom-lint: allow(hot-path-alloc) -- cold internal-error path: the stream map was just checked
                format!("stream {stream_id} vanished during header processing"),
            ));
        };
        s.on_recv_headers(end_stream)?;
        self.events.push_back(Event::Headers {
            stream_id,
            fields,
            end_stream,
        });
        Ok(())
    }

    fn highest_promised(&self) -> u32 {
        self.streams
            .keys()
            .filter(|id| *id % 2 == 0)
            .copied()
            .max()
            .unwrap_or(0)
    }

    fn queue_rst(&mut self, stream_id: u32, code: ErrorCode) {
        Frame::RstStream { stream_id, code }.encode(&mut self.out);
    }

    fn queue_goaway(&mut self, code: ErrorCode, reason: &str) {
        if self.goaway_sent {
            return;
        }
        self.goaway_sent = true;
        Frame::Goaway {
            last_stream_id: self.highest_peer_stream,
            code,
            // vroom-lint: allow(hot-path-alloc) -- cold shutdown path: at most one GOAWAY per connection lifetime
            debug: Bytes::copy_from_slice(reason.as_bytes()),
        }
        .encode(&mut self.out);
    }

    // ---------------------------------------------------------------- send

    /// Send a request, opening a new stream (clients only). Returns the
    /// stream id.
    pub fn send_request(
        &mut self,
        request: &Request,
        end_stream: bool,
    ) -> Result<u32, ConnectionError> {
        assert_eq!(self.role, Role::Client, "only clients send requests");
        if self.goaway_received {
            return Err(ConnectionError::new(
                ErrorCode::RefusedStream,
                "connection is closing",
            ));
        }
        let id = self.next_local_stream;
        self.next_local_stream += 2;
        let mut s = Stream::new(
            id,
            StreamState::Idle,
            self.peer.initial_window_size,
            self.local.initial_window_size,
        );
        s.on_send_headers(end_stream);
        self.streams.insert(id, s);
        self.send_header_block(id, &request.to_fields(), end_stream);
        Ok(id)
    }

    /// Send response headers on a stream (servers only).
    pub fn send_response(
        &mut self,
        stream_id: u32,
        response: &Response,
        end_stream: bool,
    ) -> Result<(), ConnectionError> {
        assert_eq!(self.role, Role::Server, "only servers send responses");
        let s = self
            .streams
            .get_mut(&stream_id)
            .ok_or_else(|| ConnectionError::protocol("response on unknown stream"))?;
        if !s.can_send() {
            return Err(ConnectionError::new(
                ErrorCode::StreamClosed,
                "response on unwritable stream",
            ));
        }
        s.on_send_headers(end_stream);
        self.send_header_block(stream_id, &response.to_fields(), end_stream);
        Ok(())
    }

    /// Promise a push on `stream_id` (servers only). Returns the promised
    /// stream id; follow with [`send_response`](Self::send_response) and
    /// data on that id.
    pub fn push_promise(
        &mut self,
        stream_id: u32,
        request: &Request,
    ) -> Result<u32, ConnectionError> {
        assert_eq!(self.role, Role::Server, "only servers push");
        if !self.peer.enable_push {
            return Err(ConnectionError::protocol("peer disabled push"));
        }
        let parent = self
            .streams
            .get(&stream_id)
            .ok_or_else(|| ConnectionError::protocol("push on unknown stream"))?;
        if !parent.can_recv() && !parent.can_send() {
            return Err(ConnectionError::new(
                ErrorCode::StreamClosed,
                "push on closed stream",
            ));
        }
        let promised = self.next_local_stream;
        self.next_local_stream += 2;
        self.streams.insert(
            promised,
            Stream::new(
                promised,
                StreamState::ReservedLocal,
                self.peer.initial_window_size,
                self.local.initial_window_size,
            ),
        );
        let fields = request.to_fields();
        self.enc_buf.clear();
        self.hpack_enc.encode_into(&fields, &mut self.enc_buf);
        // PUSH_PROMISE fragments are small; we do not split them.
        frame::encode_push_promise_raw(&mut self.out, stream_id, promised, &self.enc_buf);
        Ok(promised)
    }

    fn send_header_block(&mut self, stream_id: u32, fields: &[HeaderField], end_stream: bool) {
        // Encode into the reused scratch, then frame directly from its
        // slices — the only copy is into the output buffer itself.
        self.enc_buf.clear();
        self.hpack_enc.encode_into(fields, &mut self.enc_buf);
        let max = self.peer.max_frame_size as usize;
        if self.enc_buf.len() <= max {
            frame::encode_headers_raw(&mut self.out, stream_id, &self.enc_buf, end_stream, true);
            return;
        }
        let last = self.enc_buf.len().div_ceil(max) - 1;
        for (i, chunk) in self.enc_buf.chunks(max).enumerate() {
            if i == 0 {
                frame::encode_headers_raw(&mut self.out, stream_id, chunk, end_stream, false);
            } else {
                frame::encode_continuation_raw(&mut self.out, stream_id, chunk, i == last);
            }
        }
    }

    /// Send body bytes, honoring flow control and the peer's max frame size.
    /// Returns how many bytes were accepted; the caller retries the rest
    /// after WINDOW_UPDATE events arrive. `end_stream` takes effect only
    /// when every byte of `data` was accepted.
    pub fn send_data(
        &mut self,
        stream_id: u32,
        data: &[u8],
        end_stream: bool,
    ) -> Result<usize, ConnectionError> {
        let s = self
            .streams
            .get_mut(&stream_id)
            .ok_or_else(|| ConnectionError::protocol("data on unknown stream"))?;
        if !s.can_send() || s.state == StreamState::ReservedLocal {
            return Err(ConnectionError::new(
                ErrorCode::StreamClosed,
                "data on unwritable stream",
            ));
        }
        let budget =
            (s.send_window.sendable().min(self.conn_send.sendable()) as usize).min(data.len());
        let max_frame = self.peer.max_frame_size as usize;

        if data.is_empty() {
            if end_stream {
                frame::encode_data_raw(&mut self.out, stream_id, &[], true);
                s.on_send_end_stream();
            }
            return Ok(0);
        }

        let mut sent = 0usize;
        while sent < budget {
            let n = (budget - sent).min(max_frame);
            let last_byte = sent + n == data.len();
            let fin = end_stream && last_byte;
            // One copy, caller's slice straight into the output buffer.
            frame::encode_data_raw(
                &mut self.out,
                stream_id,
                data.get(sent..sent + n).unwrap_or_default(),
                fin,
            );
            s.send_window.consume(n as u32);
            self.conn_send.consume(n as u32);
            sent += n;
            if fin {
                s.on_send_end_stream();
            }
        }
        Ok(sent)
    }

    /// Reset a stream.
    pub fn reset_stream(&mut self, stream_id: u32, code: ErrorCode) {
        if let Some(s) = self.streams.get_mut(&stream_id) {
            s.on_reset();
        }
        self.queue_rst(stream_id, code);
    }

    /// Send a PING.
    pub fn ping(&mut self, payload: [u8; 8]) {
        Frame::Ping {
            ack: false,
            payload,
        }
        .encode(&mut self.out);
    }

    /// Initiate graceful shutdown.
    pub fn goaway(&mut self, code: ErrorCode, reason: &str) {
        self.queue_goaway(code, reason);
    }

    /// Send a PRIORITY frame (advisory).
    pub fn priority(&mut self, stream_id: u32, spec: PrioritySpec) {
        Frame::Priority { stream_id, spec }.encode(&mut self.out);
    }
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("role", &self.role)
            .field("streams", &self.streams.len())
            .field("events", &self.events.len())
            .field("goaway_sent", &self.goaway_sent)
            .finish()
    }
}
