//! A minimal HTTP/1.1 message codec — the wire format of the paper's
//! baseline ("Loads from Web" runs over HTTP/1.1).
//!
//! Implements what a replay server and client need: request heads, response
//! heads with `Content-Length` framing, incremental parsing from a byte
//! stream, and (on the parse side) `Transfer-Encoding: chunked` bodies.
//! Like the HTTP/2 layer it is sans-IO: feed bytes, poll messages.

use crate::headers::{Request, Response};
use vroom_hpack::HeaderField;

/// Serialize a request head (no body; GETs only need the head).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = format!(
        "{} {} HTTP/1.1\r\nhost: {}\r\n",
        req.method, req.path, req.authority
    );
    for h in &req.headers {
        out.push_str(&format!("{}: {}\r\n", h.name, h.value));
    }
    out.push_str("\r\n");
    out.into_bytes()
}

/// Serialize a response with a `Content-Length`-framed body.
pub fn encode_response(resp: &Response, body: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {} {}\r\ncontent-length: {}\r\n",
        resp.status,
        reason(resp.status),
        body.len()
    );
    for h in &resp.headers {
        out.push_str(&format!("{}: {}\r\n", h.name, h.value));
    }
    out.push_str("\r\n");
    let mut bytes = out.into_bytes();
    bytes.extend_from_slice(body);
    bytes
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        301 => "Moved Permanently",
        302 => "Found",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Errors from the HTTP/1.1 parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum H1Error {
    /// Malformed request/status line or header.
    Malformed(String),
    /// Body framing missing or contradictory.
    BadFraming(String),
}

impl std::fmt::Display for H1Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            H1Error::Malformed(s) => write!(f, "malformed http/1.1 message: {s}"),
            H1Error::BadFraming(s) => write!(f, "bad http/1.1 body framing: {s}"),
        }
    }
}

impl std::error::Error for H1Error {}

/// Try to parse one complete request from the front of `buf`.
/// Returns `(request, bytes_consumed)`, or `None` if more bytes are needed.
pub fn parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>, H1Error> {
    let Some(head_end) = find_head_end(buf) else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| H1Error::Malformed("non-utf8 head".into()))?;
    let mut lines = head.split("\r\n");
    let reqline = lines.next().unwrap_or("");
    let mut parts = reqline.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| H1Error::Malformed("missing method".into()))?;
    let path = parts
        .next()
        .ok_or_else(|| H1Error::Malformed("missing path".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| H1Error::Malformed("missing version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(H1Error::Malformed(format!("bad version {version}")));
    }
    let headers = parse_headers(lines)?;
    let authority = headers
        .iter()
        .find(|h| h.name == "host")
        .map(|h| h.value.clone())
        .unwrap_or_default();
    let req = Request {
        method: method.into(),
        scheme: "https".into(),
        authority,
        path: path.into(),
        headers: headers.into_iter().filter(|h| h.name != "host").collect(),
    };
    // GET/HEAD carry no body in our usage.
    Ok(Some((req, head_end + 4)))
}

/// Try to parse one complete response (head + body) from the front of `buf`.
/// Returns `(response, body, bytes_consumed)` or `None` if incomplete.
pub fn parse_response(buf: &[u8]) -> Result<Option<(Response, Vec<u8>, usize)>, H1Error> {
    let Some(head_end) = find_head_end(buf) else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| H1Error::Malformed("non-utf8 head".into()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let mut parts = status_line.splitn(3, ' ');
    let version = parts
        .next()
        .ok_or_else(|| H1Error::Malformed("missing version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(H1Error::Malformed(format!("bad version {version}")));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| H1Error::Malformed("bad status".into()))?;
    let headers = parse_headers(lines)?;
    let body_start = head_end + 4;

    // Framing: Content-Length, chunked, or (for bodyless statuses) empty.
    let content_length = headers
        .iter()
        .find(|h| h.name == "content-length")
        .map(|h| {
            h.value
                .parse::<usize>()
                .map_err(|_| H1Error::BadFraming(format!("content-length {:?}", h.value)))
        })
        .transpose()?;
    let chunked = headers
        .iter()
        .any(|h| h.name == "transfer-encoding" && h.value.to_ascii_lowercase().contains("chunked"));

    let response = Response {
        status,
        headers: headers
            .into_iter()
            .filter(|h| h.name != "content-length" && h.name != "transfer-encoding")
            .collect(),
    };

    if chunked {
        match parse_chunked(&buf[body_start..])? {
            Some((body, used)) => Ok(Some((response, body, body_start + used))),
            None => Ok(None),
        }
    } else {
        let len = content_length.unwrap_or(0);
        if buf.len() < body_start + len {
            return Ok(None);
        }
        let body = buf[body_start..body_start + len].to_vec();
        Ok(Some((response, body, body_start + len)))
    }
}

fn parse_headers<'a>(lines: impl Iterator<Item = &'a str>) -> Result<Vec<HeaderField>, H1Error> {
    let mut out = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| H1Error::Malformed(format!("header line {line:?}")))?;
        out.push(HeaderField::new(
            name.trim().to_ascii_lowercase(),
            value.trim(),
        ));
    }
    Ok(out)
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parse a chunked body; returns `(body, bytes_consumed)` or `None` if
/// incomplete.
fn parse_chunked(buf: &[u8]) -> Result<Option<(Vec<u8>, usize)>, H1Error> {
    let mut body = Vec::new();
    let mut pos = 0;
    loop {
        let Some(line_end) = buf[pos..].windows(2).position(|w| w == b"\r\n") else {
            return Ok(None);
        };
        let size_str = std::str::from_utf8(&buf[pos..pos + line_end])
            .map_err(|_| H1Error::BadFraming("non-utf8 chunk size".into()))?;
        let size = usize::from_str_radix(size_str.trim().split(';').next().unwrap_or(""), 16)
            .map_err(|_| H1Error::BadFraming(format!("chunk size {size_str:?}")))?;
        pos += line_end + 2;
        if size == 0 {
            // Trailing CRLF after the last chunk (no trailers supported).
            if buf.len() < pos + 2 {
                return Ok(None);
            }
            return Ok(Some((body, pos + 2)));
        }
        if buf.len() < pos + size + 2 {
            return Ok(None);
        }
        body.extend_from_slice(&buf[pos..pos + size]);
        if &buf[pos + size..pos + size + 2] != b"\r\n" {
            return Err(H1Error::BadFraming("chunk missing terminator".into()));
        }
        pos += size + 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request::get("news.com", "/story/1.html")
            .with_header("user-agent", "vroom/0.1")
            .with_cookie("session=abc");
        let wire = encode_request(&req);
        let (got, used) = parse_request(&wire).unwrap().expect("complete");
        assert_eq!(used, wire.len());
        assert_eq!(got.method, "GET");
        assert_eq!(got.authority, "news.com");
        assert_eq!(got.path, "/story/1.html");
        assert_eq!(got.headers.len(), 2);
    }

    #[test]
    fn response_roundtrip_with_body() {
        let resp = Response::ok().with_header("content-type", "text/html");
        let wire = encode_response(&resp, b"<html>hi</html>");
        let (got, body, used) = parse_response(&wire).unwrap().expect("complete");
        assert_eq!(used, wire.len());
        assert_eq!(got.status, 200);
        assert_eq!(body, b"<html>hi</html>");
        assert!(got.header_values("content-type").next().is_some());
    }

    #[test]
    fn incremental_parsing_waits_for_full_message() {
        let resp = Response::ok();
        let wire = encode_response(&resp, &vec![7u8; 500]);
        for cut in [1, 10, 17, wire.len() - 1] {
            assert_eq!(parse_response(&wire[..cut]).unwrap(), None, "cut={cut}");
        }
        assert!(parse_response(&wire).unwrap().is_some());
    }

    #[test]
    fn pipelined_messages_consume_exactly_one() {
        let mut wire = encode_response(&Response::ok(), b"first");
        let second = encode_response(&Response::with_status(404), b"");
        wire.extend_from_slice(&second);
        let (r1, b1, used) = parse_response(&wire).unwrap().unwrap();
        assert_eq!(r1.status, 200);
        assert_eq!(b1, b"first");
        let (r2, b2, used2) = parse_response(&wire[used..]).unwrap().unwrap();
        assert_eq!(r2.status, 404);
        assert!(b2.is_empty());
        assert_eq!(used + used2, wire.len());
    }

    #[test]
    fn chunked_bodies_parse() {
        let wire = b"HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\n\r\n\
                     5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
        let (resp, body, used) = parse_response(wire).unwrap().expect("complete");
        assert_eq!(resp.status, 200);
        assert_eq!(body, b"hello world");
        assert_eq!(used, wire.len());
        // Truncated chunked stream is incomplete, not an error.
        assert_eq!(parse_response(&wire[..wire.len() - 4]).unwrap(), None);
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        assert!(parse_request(b"BROKEN\r\n\r\n").is_err());
        assert!(parse_response(b"HTTP/1.1 abc OK\r\n\r\n").is_err());
        assert!(parse_response(b"SPDY/3 200 OK\r\n\r\n").is_err());
        let bad_len = b"HTTP/1.1 200 OK\r\ncontent-length: banana\r\n\r\n";
        assert!(parse_response(bad_len).is_err());
    }

    #[test]
    fn host_header_becomes_authority() {
        let wire = b"GET /x HTTP/1.1\r\nHost: A.Example.COM\r\naccept: */*\r\n\r\n";
        let (req, _) = parse_request(wire).unwrap().unwrap();
        assert_eq!(req.authority, "A.Example.COM");
        assert_eq!(req.headers.len(), 1, "host folded into authority");
    }
}
