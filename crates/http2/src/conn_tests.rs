//! End-to-end tests pairing a client and a server [`Connection`] over an
//! in-memory wire.

use crate::*;
use vroom_hpack::HeaderField;

/// Pump bytes between the two endpoints until both are quiescent.
fn pump(client: &mut Connection, server: &mut Connection) {
    loop {
        let c2s = client.take_output();
        let s2c = server.take_output();
        if c2s.is_empty() && s2c.is_empty() {
            break;
        }
        if !c2s.is_empty() {
            server.recv(&c2s).expect("server recv");
        }
        if !s2c.is_empty() {
            client.recv(&s2c).expect("client recv");
        }
    }
}

fn handshake() -> (Connection, Connection) {
    let mut client = Connection::client(Settings::vroom_client());
    let mut server = Connection::server(Settings::default());
    pump(&mut client, &mut server);
    assert!(client.settings_acked());
    assert!(server.settings_acked());
    (client, server)
}

fn drain(conn: &mut Connection) -> Vec<Event> {
    let mut out = Vec::new();
    while let Some(e) = conn.poll_event() {
        out.push(e);
    }
    out
}

#[test]
fn handshake_exchanges_settings() {
    let (mut client, mut server) = handshake();
    let cev = drain(&mut client);
    let sev = drain(&mut server);
    assert!(cev.iter().any(|e| matches!(e, Event::PeerSettings(_))));
    assert!(cev.iter().any(|e| matches!(e, Event::SettingsAcked)));
    assert!(sev
        .iter()
        .any(|e| matches!(e, Event::PeerSettings(s) if s.initial_window_size > 65_535)));
}

#[test]
fn simple_get_roundtrip() {
    let (mut client, mut server) = handshake();
    drain(&mut client);
    drain(&mut server);

    let sid = client
        .send_request(&Request::get("a.com", "/index.html"), true)
        .unwrap();
    assert_eq!(sid, 1);
    pump(&mut client, &mut server);

    let sev = drain(&mut server);
    let (req_stream, req) = sev
        .iter()
        .find_map(|e| match e {
            Event::Headers {
                stream_id, fields, ..
            } => Some((*stream_id, Request::from_fields(fields).unwrap())),
            _ => None,
        })
        .expect("request received");
    assert_eq!(req.path, "/index.html");
    assert_eq!(req.authority, "a.com");

    server
        .send_response(req_stream, &Response::ok(), false)
        .unwrap();
    server.send_data(req_stream, b"hello body", true).unwrap();
    pump(&mut client, &mut server);

    let cev = drain(&mut client);
    let resp = cev
        .iter()
        .find_map(|e| match e {
            Event::Headers { fields, .. } => Some(Response::from_fields(fields).unwrap()),
            _ => None,
        })
        .expect("response");
    assert_eq!(resp.status, 200);
    let body: Vec<u8> = cev
        .iter()
        .filter_map(|e| match e {
            Event::Data { data, .. } => Some(data.to_vec()),
            _ => None,
        })
        .flatten()
        .collect();
    assert_eq!(body, b"hello body");
    assert_eq!(client.stream_state(1), Some(StreamState::Closed));
    assert_eq!(server.stream_state(1), Some(StreamState::Closed));
}

#[test]
fn server_push_roundtrip() {
    let (mut client, mut server) = handshake();
    drain(&mut client);
    drain(&mut server);

    let sid = client
        .send_request(&Request::get("a.com", "/"), true)
        .unwrap();
    pump(&mut client, &mut server);
    drain(&mut server);

    // Server pushes /app.js before answering the HTML.
    let promised = server
        .push_promise(sid, &Request::get("a.com", "/app.js"))
        .unwrap();
    assert_eq!(promised, 2);
    server.send_response(sid, &Response::ok(), false).unwrap();
    server.send_data(sid, b"<html>", true).unwrap();
    server
        .send_response(
            promised,
            &Response::ok().with_header("content-type", "application/javascript"),
            false,
        )
        .unwrap();
    server.send_data(promised, b"var x;", true).unwrap();
    pump(&mut client, &mut server);

    let cev = drain(&mut client);
    let promise = cev
        .iter()
        .find_map(|e| match e {
            Event::PushPromise {
                promised_stream_id,
                fields,
                ..
            } => Some((*promised_stream_id, Request::from_fields(fields).unwrap())),
            _ => None,
        })
        .expect("push promise");
    assert_eq!(promise.0, 2);
    assert_eq!(promise.1.path, "/app.js");
    let pushed_body: Vec<u8> = cev
        .iter()
        .filter_map(|e| match e {
            Event::Data {
                stream_id: 2, data, ..
            } => Some(data.to_vec()),
            _ => None,
        })
        .flatten()
        .collect();
    assert_eq!(pushed_body, b"var x;");
}

#[test]
fn push_rejected_when_client_disables_it() {
    let mut settings = Settings::vroom_client();
    settings.enable_push = false;
    let mut client = Connection::client(settings);
    let mut server = Connection::server(Settings::default());
    pump(&mut client, &mut server);
    drain(&mut server);

    let sid = client
        .send_request(&Request::get("a.com", "/"), true)
        .unwrap();
    pump(&mut client, &mut server);
    let err = server
        .push_promise(sid, &Request::get("a.com", "/x.js"))
        .unwrap_err();
    assert_eq!(err.code, ErrorCode::ProtocolError);
}

#[test]
fn flow_control_blocks_and_window_update_releases() {
    // Tiny windows on the sender's side: client announces 100.
    let mut csettings = Settings::default();
    csettings.initial_window_size = 100;
    let mut client = Connection::client(csettings);
    let mut server = Connection::server(Settings::default());
    pump(&mut client, &mut server);
    drain(&mut client);
    drain(&mut server);

    let sid = client
        .send_request(&Request::get("a.com", "/big"), true)
        .unwrap();
    pump(&mut client, &mut server);
    drain(&mut server);

    server.send_response(sid, &Response::ok(), false).unwrap();
    let body = vec![0xabu8; 250];
    let sent1 = server.send_data(sid, &body, true).unwrap();
    assert_eq!(sent1, 100, "limited by the client's stream window");

    // Deliver; client consumes and auto-replenishes.
    pump(&mut client, &mut server);
    let got1: usize = drain(&mut client)
        .iter()
        .filter_map(|e| match e {
            Event::Data { data, .. } => Some(data.len()),
            _ => None,
        })
        .sum();
    assert_eq!(got1, 100);

    let sent2 = server.send_data(sid, &body[sent1..], true).unwrap();
    assert_eq!(sent2, 100);
    pump(&mut client, &mut server);
    let sent3 = server.send_data(sid, &body[sent1 + sent2..], true).unwrap();
    assert_eq!(sent3, 50);
    pump(&mut client, &mut server);
    let got_rest: usize = drain(&mut client)
        .iter()
        .filter_map(|e| match e {
            Event::Data { data, .. } => Some(data.len()),
            _ => None,
        })
        .sum();
    assert_eq!(got_rest, 150);
    assert_eq!(client.stream_state(sid), Some(StreamState::Closed));
}

#[test]
fn large_header_block_splits_into_continuation() {
    let (mut client, mut server) = handshake();
    drain(&mut client);
    drain(&mut server);

    // Build a header block far larger than the 16 KiB max frame size.
    let mut req = Request::get("a.com", "/");
    for i in 0..40usize {
        req.headers.push(HeaderField::new(
            format!("x-filler-{i}"),
            // Low-entropy but non-repeating values defeat both HPACK
            // indexing and Huffman gains enough to stay large.
            (0..800usize)
                .map(|j| ((i * 7 + j * 13) % 26 + 97) as u8 as char)
                .collect::<String>(),
        ));
    }
    let sid = client.send_request(&req, true).unwrap();
    let wire = client.take_output();
    assert!(wire.len() > 16_384, "block should exceed one frame");
    server.recv(&wire).unwrap();
    let sev = drain(&mut server);
    let got = sev
        .iter()
        .find_map(|e| match e {
            Event::Headers { fields, .. } => Some(Request::from_fields(fields).unwrap()),
            _ => None,
        })
        .expect("reassembled request");
    assert_eq!(got.headers.len(), req.headers.len());
    assert_eq!(got, req);
    let _ = sid;
}

#[test]
fn interleaved_frame_inside_header_block_is_protocol_error() {
    let (mut client, mut server) = handshake();
    drain(&mut server);
    // Hand-craft: HEADERS without END_HEADERS, then a PING.
    use bytes::BytesMut;
    let mut buf = BytesMut::new();
    Frame::Headers {
        stream_id: 1,
        fragment: bytes::Bytes::from_static(&[0x82]),
        end_stream: false,
        end_headers: false,
        priority: None,
    }
    .encode(&mut buf);
    Frame::Ping {
        ack: false,
        payload: [0; 8],
    }
    .encode(&mut buf);
    let err = server.recv(&buf).unwrap_err();
    assert_eq!(err.code, ErrorCode::ProtocolError);
    // Server queued a GOAWAY for the client.
    let out = server.take_output();
    assert!(!out.is_empty());
    client.recv(&out).unwrap();
    assert!(drain(&mut client)
        .iter()
        .any(|e| matches!(e, Event::Goaway { .. })));
}

#[test]
fn bad_preface_rejected() {
    let mut server = Connection::server(Settings::default());
    let err = server.recv(b"GET / HTTP/1.1\r\n").unwrap_err();
    assert_eq!(err.code, ErrorCode::ProtocolError);
}

#[test]
fn preface_accepted_byte_by_byte() {
    let mut client = Connection::client(Settings::default());
    let mut server = Connection::server(Settings::default());
    let bytes = client.take_output();
    for b in bytes.iter() {
        server.recv(&[*b]).unwrap();
    }
    assert!(!server.take_output().is_empty(), "settings + ack queued");
}

#[test]
fn ping_is_answered() {
    let (mut client, mut server) = handshake();
    drain(&mut client);
    client.ping(*b"12345678");
    pump(&mut client, &mut server);
    assert!(drain(&mut client)
        .iter()
        .any(|e| matches!(e, Event::PingAcked(p) if p == b"12345678")));
}

#[test]
fn goaway_prevents_new_requests() {
    let (mut client, mut server) = handshake();
    server.goaway(ErrorCode::NoError, "maintenance");
    pump(&mut client, &mut server);
    drain(&mut client);
    let err = client
        .send_request(&Request::get("a.com", "/"), true)
        .unwrap_err();
    assert_eq!(err.code, ErrorCode::RefusedStream);
}

#[test]
fn reset_stream_roundtrip() {
    let (mut client, mut server) = handshake();
    drain(&mut client);
    drain(&mut server);
    let sid = client
        .send_request(&Request::get("a.com", "/slow"), true)
        .unwrap();
    pump(&mut client, &mut server);
    drain(&mut server);
    client.reset_stream(sid, ErrorCode::Cancel);
    pump(&mut client, &mut server);
    assert!(drain(&mut server).iter().any(
        |e| matches!(e, Event::StreamReset { stream_id, code } if *stream_id == sid && *code == ErrorCode::Cancel)
    ));
    // Late response on the reset stream fails locally.
    assert!(server.send_response(sid, &Response::ok(), true).is_err());
}

#[test]
fn hpack_state_survives_many_requests() {
    let (mut client, mut server) = handshake();
    drain(&mut client);
    drain(&mut server);
    for i in 0..50 {
        let req = Request::get("cdn.example.com", format!("/asset/{i}.js"))
            .with_header("user-agent", "vroom-browser/0.1")
            .with_cookie(format!("session=xyz{i}"));
        let sid = client.send_request(&req, true).unwrap();
        pump(&mut client, &mut server);
        let sev = drain(&mut server);
        let got = sev
            .iter()
            .find_map(|e| match e {
                Event::Headers { fields, .. } => Some(Request::from_fields(fields).unwrap()),
                _ => None,
            })
            .expect("request");
        assert_eq!(got, req);
        server.send_response(sid, &Response::ok(), true).unwrap();
        pump(&mut client, &mut server);
        drain(&mut client);
    }
}

#[test]
fn concurrent_streams_multiplex() {
    let (mut client, mut server) = handshake();
    drain(&mut client);
    drain(&mut server);
    // Open 10 requests before any response.
    let sids: Vec<u32> = (0..10)
        .map(|i| {
            client
                .send_request(&Request::get("a.com", format!("/r{i}")), true)
                .unwrap()
        })
        .collect();
    assert_eq!(sids, vec![1, 3, 5, 7, 9, 11, 13, 15, 17, 19]);
    pump(&mut client, &mut server);
    let reqs = drain(&mut server);
    assert_eq!(
        reqs.iter()
            .filter(|e| matches!(e, Event::Headers { .. }))
            .count(),
        10
    );
    // Answer in reverse order — multiplexing means that's fine.
    for &sid in sids.iter().rev() {
        server.send_response(sid, &Response::ok(), false).unwrap();
        server
            .send_data(sid, format!("body-{sid}").as_bytes(), true)
            .unwrap();
    }
    pump(&mut client, &mut server);
    let cev = drain(&mut client);
    for &sid in &sids {
        let body: Vec<u8> = cev
            .iter()
            .filter_map(|e| match e {
                Event::Data {
                    stream_id, data, ..
                } if *stream_id == sid => Some(data.to_vec()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(body, format!("body-{sid}").into_bytes());
    }
}

#[test]
fn max_concurrent_streams_refuses_excess() {
    let mut ssettings = Settings::default();
    ssettings.max_concurrent_streams = Some(2);
    let mut client = Connection::client(Settings::default());
    let mut server = Connection::server(ssettings);
    pump(&mut client, &mut server);
    drain(&mut client);
    drain(&mut server);

    // Three concurrent requests; the third must be refused.
    for i in 0..3 {
        client
            .send_request(&Request::get("a.com", format!("/{i}")), true)
            .unwrap();
    }
    pump(&mut client, &mut server);
    let sev = drain(&mut server);
    assert_eq!(
        sev.iter()
            .filter(|e| matches!(e, Event::Headers { .. }))
            .count(),
        2
    );
    let cev = drain(&mut client);
    assert!(cev.iter().any(
        |e| matches!(e, Event::StreamReset { code, .. } if *code == ErrorCode::RefusedStream)
    ));
}
