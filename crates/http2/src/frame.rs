//! HTTP/2 frame layer (RFC 7540 §4, §6): the 9-octet frame header, all ten
//! frame types, padding, and priority fields.
//!
//! The codec is sans-IO: [`FrameCodec::decode`] consumes from a `BytesMut`
//! receive buffer and returns at most one frame; [`encode`](Frame::encode)
//! appends wire bytes to a send buffer.

use crate::error::{ConnectionError, ErrorCode};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Frame type codes (RFC 7540 §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Carries request/response bodies.
    Data = 0x0,
    /// Opens a stream with a header block fragment.
    Headers = 0x1,
    /// Advises stream priority.
    Priority = 0x2,
    /// Terminates a stream abnormally.
    RstStream = 0x3,
    /// Connection configuration.
    Settings = 0x4,
    /// Server push announcement.
    PushPromise = 0x5,
    /// Liveness / RTT measurement.
    Ping = 0x6,
    /// Connection shutdown.
    Goaway = 0x7,
    /// Flow-control credit.
    WindowUpdate = 0x8,
    /// Header block continuation.
    Continuation = 0x9,
}

/// Frame flag bits.
pub mod flags {
    /// DATA / HEADERS: no further frames on this stream from this sender.
    pub const END_STREAM: u8 = 0x1;
    /// SETTINGS / PING: acknowledgement.
    pub const ACK: u8 = 0x1;
    /// HEADERS / PUSH_PROMISE / CONTINUATION: header block is complete.
    pub const END_HEADERS: u8 = 0x4;
    /// DATA / HEADERS / PUSH_PROMISE: padding length octet present.
    pub const PADDED: u8 = 0x8;
    /// HEADERS: exclusive-dep/weight priority fields present.
    pub const PRIORITY: u8 = 0x20;
}

/// Priority fields carried by PRIORITY frames and prioritized HEADERS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrioritySpec {
    /// Stream this one depends on.
    pub depends_on: u32,
    /// Whether the dependency is exclusive.
    pub exclusive: bool,
    /// Weight 1..=256 (wire value + 1).
    pub weight: u16,
}

impl Default for PrioritySpec {
    fn default() -> Self {
        // RFC 7540 §5.3.5 defaults.
        PrioritySpec {
            depends_on: 0,
            exclusive: false,
            weight: 16,
        }
    }
}

/// A decoded HTTP/2 frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// DATA (§6.1). `pad_len` octets of padding were present and stripped —
    /// retained because padding still counts against flow control.
    Data {
        /// Stream the data belongs to.
        stream_id: u32,
        /// Body bytes, padding removed.
        data: Bytes,
        /// Whether END_STREAM was set.
        end_stream: bool,
        /// Number of padding octets (0 when the frame was not padded);
        /// includes the pad-length octet itself when padding was present.
        pad_len: u32,
    },
    /// HEADERS (§6.2) — one header block *fragment*.
    Headers {
        /// Stream being opened / continued.
        stream_id: u32,
        /// HPACK fragment.
        fragment: Bytes,
        /// Whether END_STREAM was set.
        end_stream: bool,
        /// Whether END_HEADERS was set.
        end_headers: bool,
        /// Priority fields, if the PRIORITY flag was set.
        priority: Option<PrioritySpec>,
    },
    /// PRIORITY (§6.3).
    Priority {
        /// Stream being re-prioritized.
        stream_id: u32,
        /// New priority.
        spec: PrioritySpec,
    },
    /// RST_STREAM (§6.4).
    RstStream {
        /// Stream being reset.
        stream_id: u32,
        /// Reason.
        code: ErrorCode,
    },
    /// SETTINGS (§6.5) — raw (id, value) pairs; interpretation in
    /// [`crate::settings`].
    Settings {
        /// Whether this is an acknowledgement (empty payload).
        ack: bool,
        /// Settings present in the frame, in wire order.
        entries: Vec<(u16, u32)>,
    },
    /// PUSH_PROMISE (§6.6).
    PushPromise {
        /// Stream the promise is associated with.
        stream_id: u32,
        /// Even-numbered stream reserved for the pushed response.
        promised_stream_id: u32,
        /// HPACK fragment of the synthesized request headers.
        fragment: Bytes,
        /// Whether END_HEADERS was set.
        end_headers: bool,
    },
    /// PING (§6.7).
    Ping {
        /// Whether this is a reply.
        ack: bool,
        /// Opaque 8-byte payload.
        payload: [u8; 8],
    },
    /// GOAWAY (§6.8).
    Goaway {
        /// Highest stream id the sender may have processed.
        last_stream_id: u32,
        /// Reason.
        code: ErrorCode,
        /// Optional debug data.
        debug: Bytes,
    },
    /// WINDOW_UPDATE (§6.9). `stream_id` 0 targets the connection window.
    WindowUpdate {
        /// Target stream (0 = connection).
        stream_id: u32,
        /// Credit to add; 1..=2^31-1.
        increment: u32,
    },
    /// CONTINUATION (§6.10).
    Continuation {
        /// Stream whose header block continues.
        stream_id: u32,
        /// HPACK fragment.
        fragment: Bytes,
        /// Whether END_HEADERS was set.
        end_headers: bool,
    },
}

impl Frame {
    /// The frame's stream id (0 for connection-level frames).
    pub fn stream_id(&self) -> u32 {
        match self {
            Frame::Data { stream_id, .. }
            | Frame::Headers { stream_id, .. }
            | Frame::Priority { stream_id, .. }
            | Frame::RstStream { stream_id, .. }
            | Frame::PushPromise { stream_id, .. }
            | Frame::WindowUpdate { stream_id, .. }
            | Frame::Continuation { stream_id, .. } => *stream_id,
            Frame::Settings { .. } | Frame::Ping { .. } | Frame::Goaway { .. } => 0,
        }
    }

    /// Serialize onto `out`. Frames are emitted unpadded (padding is parsed
    /// on receive but never generated — same choice as most implementations).
    pub fn encode(&self, out: &mut BytesMut) {
        match self {
            Frame::Data {
                stream_id,
                data,
                end_stream,
                ..
            } => {
                let f = if *end_stream { flags::END_STREAM } else { 0 };
                put_header(out, data.len(), FrameType::Data, f, *stream_id);
                out.extend_from_slice(data);
            }
            Frame::Headers {
                stream_id,
                fragment,
                end_stream,
                end_headers,
                priority,
            } => {
                let mut f = 0;
                if *end_stream {
                    f |= flags::END_STREAM;
                }
                if *end_headers {
                    f |= flags::END_HEADERS;
                }
                if priority.is_some() {
                    f |= flags::PRIORITY;
                }
                let extra = if priority.is_some() { 5 } else { 0 };
                put_header(
                    out,
                    fragment.len() + extra,
                    FrameType::Headers,
                    f,
                    *stream_id,
                );
                if let Some(p) = priority {
                    put_priority(out, p);
                }
                out.extend_from_slice(fragment);
            }
            Frame::Priority { stream_id, spec } => {
                put_header(out, 5, FrameType::Priority, 0, *stream_id);
                put_priority(out, spec);
            }
            Frame::RstStream { stream_id, code } => {
                put_header(out, 4, FrameType::RstStream, 0, *stream_id);
                out.put_u32(*code as u32);
            }
            Frame::Settings { ack, entries } => {
                let f = if *ack { flags::ACK } else { 0 };
                put_header(out, entries.len() * 6, FrameType::Settings, f, 0);
                for &(id, value) in entries {
                    out.put_u16(id);
                    out.put_u32(value);
                }
            }
            Frame::PushPromise {
                stream_id,
                promised_stream_id,
                fragment,
                end_headers,
            } => {
                let f = if *end_headers { flags::END_HEADERS } else { 0 };
                put_header(
                    out,
                    fragment.len() + 4,
                    FrameType::PushPromise,
                    f,
                    *stream_id,
                );
                out.put_u32(promised_stream_id & 0x7fff_ffff);
                out.extend_from_slice(fragment);
            }
            Frame::Ping { ack, payload } => {
                let f = if *ack { flags::ACK } else { 0 };
                put_header(out, 8, FrameType::Ping, f, 0);
                out.extend_from_slice(payload);
            }
            Frame::Goaway {
                last_stream_id,
                code,
                debug,
            } => {
                put_header(out, 8 + debug.len(), FrameType::Goaway, 0, 0);
                out.put_u32(last_stream_id & 0x7fff_ffff);
                out.put_u32(*code as u32);
                out.extend_from_slice(debug);
            }
            Frame::WindowUpdate {
                stream_id,
                increment,
            } => {
                put_header(out, 4, FrameType::WindowUpdate, 0, *stream_id);
                out.put_u32(increment & 0x7fff_ffff);
            }
            Frame::Continuation {
                stream_id,
                fragment,
                end_headers,
            } => {
                let f = if *end_headers { flags::END_HEADERS } else { 0 };
                put_header(out, fragment.len(), FrameType::Continuation, f, *stream_id);
                out.extend_from_slice(fragment);
            }
        }
    }
}

/// Emit a DATA frame for `data` directly into `out`: one copy into the
/// send buffer, no intermediate `Bytes` allocation. The hot send paths use
/// these raw emitters; [`Frame::encode`] remains for control frames and for
/// re-encoding decoded frames.
pub fn encode_data_raw(out: &mut BytesMut, stream_id: u32, data: &[u8], end_stream: bool) {
    let f = if end_stream { flags::END_STREAM } else { 0 };
    put_header(out, data.len(), FrameType::Data, f, stream_id);
    out.extend_from_slice(data);
}

/// Emit a HEADERS frame carrying `fragment` directly into `out` (no
/// priority fields — we never send prioritized HEADERS).
pub fn encode_headers_raw(
    out: &mut BytesMut,
    stream_id: u32,
    fragment: &[u8],
    end_stream: bool,
    end_headers: bool,
) {
    let mut f = 0;
    if end_stream {
        f |= flags::END_STREAM;
    }
    if end_headers {
        f |= flags::END_HEADERS;
    }
    put_header(out, fragment.len(), FrameType::Headers, f, stream_id);
    out.extend_from_slice(fragment);
}

/// Emit a CONTINUATION frame carrying `fragment` directly into `out`.
pub fn encode_continuation_raw(
    out: &mut BytesMut,
    stream_id: u32,
    fragment: &[u8],
    end_headers: bool,
) {
    let f = if end_headers { flags::END_HEADERS } else { 0 };
    put_header(out, fragment.len(), FrameType::Continuation, f, stream_id);
    out.extend_from_slice(fragment);
}

/// Emit a complete (END_HEADERS) PUSH_PROMISE frame directly into `out`.
pub fn encode_push_promise_raw(
    out: &mut BytesMut,
    stream_id: u32,
    promised_stream_id: u32,
    fragment: &[u8],
) {
    put_header(
        out,
        fragment.len() + 4,
        FrameType::PushPromise,
        flags::END_HEADERS,
        stream_id,
    );
    out.put_u32(promised_stream_id & 0x7fff_ffff);
    out.extend_from_slice(fragment);
}

fn put_header(out: &mut BytesMut, len: usize, ty: FrameType, flags: u8, stream_id: u32) {
    debug_assert!(len < 1 << 24, "frame too large: {len}");
    out.put_u8((len >> 16) as u8);
    out.put_u8((len >> 8) as u8);
    out.put_u8(len as u8);
    out.put_u8(ty as u8);
    out.put_u8(flags);
    out.put_u32(stream_id & 0x7fff_ffff);
}

fn put_priority(out: &mut BytesMut, p: &PrioritySpec) {
    let dep = (p.depends_on & 0x7fff_ffff) | if p.exclusive { 0x8000_0000 } else { 0 };
    out.put_u32(dep);
    debug_assert!((1..=256).contains(&p.weight));
    out.put_u8((p.weight - 1) as u8);
}

/// Incremental frame decoder with a configurable max frame size.
#[derive(Debug)]
pub struct FrameCodec {
    /// Our `SETTINGS_MAX_FRAME_SIZE`: frames larger than this are an error.
    pub max_frame_size: u32,
}

impl Default for FrameCodec {
    fn default() -> Self {
        FrameCodec {
            max_frame_size: crate::settings::DEFAULT_MAX_FRAME_SIZE,
        }
    }
}

impl FrameCodec {
    /// Try to decode a single frame from the front of `buf`.
    ///
    /// Returns `Ok(None)` if the buffer does not yet hold a complete frame
    /// (bytes are left untouched); on success the frame's bytes are consumed.
    /// Unknown frame types are consumed and skipped (RFC 7540 §4.1: "ignored
    /// and discarded") — represented as `Ok(None)` with bytes consumed, so
    /// callers should loop.
    pub fn decode(&self, buf: &mut BytesMut) -> Result<Option<Frame>, ConnectionError> {
        let Some(&[l0, l1, l2, ty, fl, s0, s1, s2, s3]) = buf.get(..9) else {
            return Ok(None); // incomplete 9-byte header
        };
        let len = ((l0 as usize) << 16) | ((l1 as usize) << 8) | l2 as usize;
        if len as u32 > self.max_frame_size {
            // vroom-lint: allow(hot-path-alloc) -- cold protocol-error path: renders the message for a rejected peer
            return Err(ConnectionError::frame_size(format!(
                "frame of {len} bytes exceeds max {}",
                self.max_frame_size
            )));
        }
        if buf.len() < 9 + len {
            return Ok(None);
        }
        let stream_id = u32::from_be_bytes([s0, s1, s2, s3]) & 0x7fff_ffff;
        buf.advance(9);
        let mut payload = buf.split_to(len).freeze();

        let frame = match ty {
            0x0 => {
                if stream_id == 0 {
                    return Err(ConnectionError::protocol("DATA on stream 0"));
                }
                let pad = strip_padding(&mut payload, fl, len)?;
                Frame::Data {
                    stream_id,
                    data: payload,
                    end_stream: fl & flags::END_STREAM != 0,
                    pad_len: pad,
                }
            }
            0x1 => {
                if stream_id == 0 {
                    return Err(ConnectionError::protocol("HEADERS on stream 0"));
                }
                strip_padding(&mut payload, fl, len)?;
                let priority = if fl & flags::PRIORITY != 0 {
                    if payload.len() < 5 {
                        return Err(ConnectionError::frame_size("HEADERS priority truncated"));
                    }
                    Some(take_priority(&mut payload))
                } else {
                    None
                };
                Frame::Headers {
                    stream_id,
                    fragment: payload,
                    end_stream: fl & flags::END_STREAM != 0,
                    end_headers: fl & flags::END_HEADERS != 0,
                    priority,
                }
            }
            0x2 => {
                if len != 5 {
                    // PRIORITY size error is a *stream* error per spec, but
                    // we simplify to connection-level (we never send these).
                    return Err(ConnectionError::frame_size("PRIORITY length != 5"));
                }
                if stream_id == 0 {
                    return Err(ConnectionError::protocol("PRIORITY on stream 0"));
                }
                Frame::Priority {
                    stream_id,
                    spec: take_priority(&mut payload),
                }
            }
            0x3 => {
                if len != 4 {
                    return Err(ConnectionError::frame_size("RST_STREAM length != 4"));
                }
                if stream_id == 0 {
                    return Err(ConnectionError::protocol("RST_STREAM on stream 0"));
                }
                Frame::RstStream {
                    stream_id,
                    code: ErrorCode::from_wire(payload.get_u32()),
                }
            }
            0x4 => {
                if stream_id != 0 {
                    return Err(ConnectionError::protocol("SETTINGS on stream != 0"));
                }
                let ack = fl & flags::ACK != 0;
                if ack && len != 0 {
                    return Err(ConnectionError::frame_size("SETTINGS ack with payload"));
                }
                if !len.is_multiple_of(6) {
                    return Err(ConnectionError::frame_size("SETTINGS length % 6 != 0"));
                }
                let mut entries = Vec::with_capacity(len / 6);
                while payload.remaining() >= 6 {
                    entries.push((payload.get_u16(), payload.get_u32()));
                }
                Frame::Settings { ack, entries }
            }
            0x5 => {
                if stream_id == 0 {
                    return Err(ConnectionError::protocol("PUSH_PROMISE on stream 0"));
                }
                strip_padding(&mut payload, fl, len)?;
                if payload.len() < 4 {
                    return Err(ConnectionError::frame_size("PUSH_PROMISE truncated"));
                }
                let promised = payload.get_u32() & 0x7fff_ffff;
                Frame::PushPromise {
                    stream_id,
                    promised_stream_id: promised,
                    fragment: payload,
                    end_headers: fl & flags::END_HEADERS != 0,
                }
            }
            0x6 => {
                if len != 8 {
                    return Err(ConnectionError::frame_size("PING length != 8"));
                }
                if stream_id != 0 {
                    return Err(ConnectionError::protocol("PING on stream != 0"));
                }
                let mut p = [0u8; 8];
                payload.copy_to_slice(&mut p);
                Frame::Ping {
                    ack: fl & flags::ACK != 0,
                    payload: p,
                }
            }
            0x7 => {
                if len < 8 {
                    return Err(ConnectionError::frame_size("GOAWAY too short"));
                }
                if stream_id != 0 {
                    return Err(ConnectionError::protocol("GOAWAY on stream != 0"));
                }
                let last = payload.get_u32() & 0x7fff_ffff;
                let code = ErrorCode::from_wire(payload.get_u32());
                Frame::Goaway {
                    last_stream_id: last,
                    code,
                    debug: payload,
                }
            }
            0x8 => {
                if len != 4 {
                    return Err(ConnectionError::frame_size("WINDOW_UPDATE length != 4"));
                }
                let increment = payload.get_u32() & 0x7fff_ffff;
                if increment == 0 {
                    return Err(ConnectionError::protocol("WINDOW_UPDATE of 0"));
                }
                Frame::WindowUpdate {
                    stream_id,
                    increment,
                }
            }
            0x9 => {
                if stream_id == 0 {
                    return Err(ConnectionError::protocol("CONTINUATION on stream 0"));
                }
                Frame::Continuation {
                    stream_id,
                    fragment: payload,
                    end_headers: fl & flags::END_HEADERS != 0,
                }
            }
            _ => {
                // Unknown type: ignore (already consumed). Caller loops.
                return self.decode(buf);
            }
        };
        Ok(Some(frame))
    }
}

fn take_priority(payload: &mut Bytes) -> PrioritySpec {
    let dep = payload.get_u32();
    let weight = payload.get_u8() as u16 + 1;
    PrioritySpec {
        depends_on: dep & 0x7fff_ffff,
        exclusive: dep & 0x8000_0000 != 0,
        weight,
    }
}

/// If PADDED is set, strip the pad-length octet and trailing padding.
/// Returns total padding octets (pad length + 1) for flow accounting.
fn strip_padding(payload: &mut Bytes, fl: u8, frame_len: usize) -> Result<u32, ConnectionError> {
    if fl & flags::PADDED == 0 {
        return Ok(0);
    }
    if payload.is_empty() {
        return Err(ConnectionError::frame_size(
            "PADDED frame without pad length",
        ));
    }
    let pad = payload.get_u8() as usize;
    if pad >= frame_len {
        return Err(ConnectionError::protocol("padding exceeds frame payload"));
    }
    if pad > payload.len() {
        return Err(ConnectionError::protocol(
            "padding exceeds remaining payload",
        ));
    }
    payload.truncate(payload.len() - pad);
    Ok(pad as u32 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) -> Frame {
        let mut buf = BytesMut::new();
        frame.encode(&mut buf);
        let codec = FrameCodec::default();
        let got = codec.decode(&mut buf).unwrap().expect("complete frame");
        assert!(buf.is_empty(), "no leftover bytes");
        got
    }

    #[test]
    fn raw_emitters_match_frame_encode() {
        let mut via_frame = BytesMut::new();
        let mut via_raw = BytesMut::new();

        Frame::Data {
            stream_id: 3,
            data: Bytes::from_static(b"body"),
            end_stream: true,
            pad_len: 0,
        }
        .encode(&mut via_frame);
        encode_data_raw(&mut via_raw, 3, b"body", true);

        Frame::Headers {
            stream_id: 5,
            fragment: Bytes::from_static(&[0x82, 0x86]),
            end_stream: false,
            end_headers: true,
            priority: None,
        }
        .encode(&mut via_frame);
        encode_headers_raw(&mut via_raw, 5, &[0x82, 0x86], false, true);

        Frame::Continuation {
            stream_id: 5,
            fragment: Bytes::from_static(&[0x84]),
            end_headers: false,
        }
        .encode(&mut via_frame);
        encode_continuation_raw(&mut via_raw, 5, &[0x84], false);

        Frame::PushPromise {
            stream_id: 1,
            promised_stream_id: 2,
            fragment: Bytes::from_static(&[0x82]),
            end_headers: true,
        }
        .encode(&mut via_frame);
        encode_push_promise_raw(&mut via_raw, 1, 2, &[0x82]);

        assert_eq!(&via_raw[..], &via_frame[..]);
    }

    #[test]
    fn data_roundtrip() {
        let f = Frame::Data {
            stream_id: 3,
            data: Bytes::from_static(b"hello"),
            end_stream: true,
            pad_len: 0,
        };
        assert_eq!(roundtrip(f.clone()), f);
    }

    #[test]
    fn headers_roundtrip_with_priority() {
        let f = Frame::Headers {
            stream_id: 5,
            fragment: Bytes::from_static(&[0x82, 0x86]),
            end_stream: false,
            end_headers: true,
            priority: Some(PrioritySpec {
                depends_on: 3,
                exclusive: true,
                weight: 256,
            }),
        };
        assert_eq!(roundtrip(f.clone()), f);
    }

    #[test]
    fn all_control_frames_roundtrip() {
        let frames = vec![
            Frame::Priority {
                stream_id: 7,
                spec: PrioritySpec::default(),
            },
            Frame::RstStream {
                stream_id: 9,
                code: ErrorCode::Cancel,
            },
            Frame::Settings {
                ack: false,
                entries: vec![(0x1, 8192), (0x4, 1 << 20)],
            },
            Frame::Settings {
                ack: true,
                entries: vec![],
            },
            Frame::PushPromise {
                stream_id: 1,
                promised_stream_id: 2,
                fragment: Bytes::from_static(&[0x82]),
                end_headers: true,
            },
            Frame::Ping {
                ack: false,
                payload: *b"vroom!!!",
            },
            Frame::Goaway {
                last_stream_id: 11,
                code: ErrorCode::NoError,
                debug: Bytes::from_static(b"bye"),
            },
            Frame::WindowUpdate {
                stream_id: 0,
                increment: 65535,
            },
            Frame::Continuation {
                stream_id: 3,
                fragment: Bytes::from_static(&[0x84]),
                end_headers: true,
            },
        ];
        for f in frames {
            assert_eq!(roundtrip(f.clone()), f, "{f:?}");
        }
    }

    #[test]
    fn partial_input_returns_none_and_keeps_bytes() {
        let f = Frame::Ping {
            ack: false,
            payload: [7; 8],
        };
        let mut full = BytesMut::new();
        f.encode(&mut full);
        let codec = FrameCodec::default();
        for cut in 0..full.len() {
            let mut partial = BytesMut::from(&full[..cut]);
            assert_eq!(codec.decode(&mut partial).unwrap(), None, "cut={cut}");
            assert_eq!(partial.len(), cut, "bytes must not be consumed");
        }
    }

    #[test]
    fn two_frames_back_to_back() {
        let mut buf = BytesMut::new();
        Frame::Ping {
            ack: false,
            payload: [1; 8],
        }
        .encode(&mut buf);
        Frame::WindowUpdate {
            stream_id: 0,
            increment: 100,
        }
        .encode(&mut buf);
        let codec = FrameCodec::default();
        assert!(matches!(
            codec.decode(&mut buf).unwrap(),
            Some(Frame::Ping { .. })
        ));
        assert!(matches!(
            codec.decode(&mut buf).unwrap(),
            Some(Frame::WindowUpdate { .. })
        ));
        assert!(codec.decode(&mut buf).unwrap().is_none());
    }

    #[test]
    fn padded_data_parses_and_counts_padding() {
        // Hand-build: DATA, stream 1, PADDED, pad len 3, body "ab", 3 pad.
        let mut buf = BytesMut::new();
        let payload_len = 1 + 2 + 3;
        buf.put_u8(0);
        buf.put_u8(0);
        buf.put_u8(payload_len as u8);
        buf.put_u8(0x0); // DATA
        buf.put_u8(flags::PADDED | flags::END_STREAM);
        buf.put_u32(1);
        buf.put_u8(3); // pad length
        buf.extend_from_slice(b"ab");
        buf.extend_from_slice(&[0, 0, 0]);
        let codec = FrameCodec::default();
        match codec.decode(&mut buf).unwrap().unwrap() {
            Frame::Data {
                data,
                pad_len,
                end_stream,
                ..
            } => {
                assert_eq!(&data[..], b"ab");
                assert_eq!(pad_len, 4, "3 pad octets + 1 length octet");
                assert!(end_stream);
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn padding_longer_than_payload_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(0);
        buf.put_u8(0);
        buf.put_u8(2);
        buf.put_u8(0x0);
        buf.put_u8(flags::PADDED);
        buf.put_u32(1);
        buf.put_u8(200); // pad 200 > frame
        buf.put_u8(0);
        let codec = FrameCodec::default();
        assert!(codec.decode(&mut buf).is_err());
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(0xff);
        buf.put_u8(0xff);
        buf.put_u8(0xff); // 16 MiB - 1
        buf.put_u8(0x0);
        buf.put_u8(0);
        buf.put_u32(1);
        let codec = FrameCodec::default();
        let err = codec.decode(&mut buf).unwrap_err();
        assert_eq!(err.code, ErrorCode::FrameSizeError);
    }

    #[test]
    fn unknown_frame_type_skipped() {
        let mut buf = BytesMut::new();
        // Unknown type 0xBE with 2-byte payload, then a valid PING.
        buf.put_u8(0);
        buf.put_u8(0);
        buf.put_u8(2);
        buf.put_u8(0xbe);
        buf.put_u8(0);
        buf.put_u32(1);
        buf.extend_from_slice(&[1, 2]);
        Frame::Ping {
            ack: true,
            payload: [9; 8],
        }
        .encode(&mut buf);
        let codec = FrameCodec::default();
        assert!(matches!(
            codec.decode(&mut buf).unwrap(),
            Some(Frame::Ping { ack: true, .. })
        ));
    }

    #[test]
    fn data_on_stream_zero_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(0);
        buf.put_u8(0);
        buf.put_u8(0);
        buf.put_u8(0x0);
        buf.put_u8(0);
        buf.put_u32(0);
        let codec = FrameCodec::default();
        assert_eq!(
            codec.decode(&mut buf).unwrap_err().code,
            ErrorCode::ProtocolError
        );
    }

    #[test]
    fn window_update_zero_increment_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(0);
        buf.put_u8(0);
        buf.put_u8(4);
        buf.put_u8(0x8);
        buf.put_u8(0);
        buf.put_u32(1);
        buf.put_u32(0);
        let codec = FrameCodec::default();
        assert!(codec.decode(&mut buf).is_err());
    }

    #[test]
    fn settings_ack_with_payload_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(0);
        buf.put_u8(0);
        buf.put_u8(6);
        buf.put_u8(0x4);
        buf.put_u8(flags::ACK);
        buf.put_u32(0);
        buf.put_u16(1);
        buf.put_u32(0);
        let codec = FrameCodec::default();
        assert_eq!(
            codec.decode(&mut buf).unwrap_err().code,
            ErrorCode::FrameSizeError
        );
    }
}
