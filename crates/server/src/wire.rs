//! A real Vroom-compliant HTTP/2 server (and a matching client) over TCP,
//! built on the from-scratch `vroom-http2` stack.
//!
//! This is the reproduction's equivalent of the paper's
//! Apache-behind-nghttpx replay rig (§5): it serves a recorded corpus
//! ([`ReplayStore`]), attaches dependency hints as `Link` /
//! `x-semi-important` / `x-unimportant` headers, and pushes high-priority
//! local dependencies with PUSH_PROMISE. Used by the wire integration tests
//! and the `wire_demo` example; the performance experiments use the
//! discrete-event engine instead (timing on localhost is meaningless).

use crate::hints::attach_hints;
use crate::push_policy::{select_pushes, PushPolicy};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use vroom_browser::config::Hint;
use vroom_html::Url;
use vroom_http2::{Connection, ErrorCode, Event, Request, Response, Settings};
use vroom_intern::{SharedBytes, UrlId};
use vroom_net::{ReplayStore, RetryBudget};

/// Injectable wall clock for the wire path's timeout logic.
///
/// The real-wire server genuinely measures socket idle time, but routing
/// every read through this trait keeps the workspace's wall-clock ban
/// auditable: exactly one implementation touches `Instant`, and tests can
/// substitute a fake clock to exercise timeouts without sleeping.
pub trait WireClock: Send + Sync {
    /// Monotonic time elapsed since an arbitrary fixed epoch.
    fn elapsed(&self) -> Duration;
}

/// The default clock: the process monotonic clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct MonotonicClock;

impl WireClock for MonotonicClock {
    fn elapsed(&self) -> Duration {
        static START: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
        // vroom-lint: allow(sim-purity) -- sole sanctioned wall-clock read: real-wire timeouts measure actual socket idle time; simulation code never calls this
        START.get_or_init(Instant::now).elapsed()
    }
}

/// Wire-level fault injection: URLs whose *first* serve is truncated
/// mid-body and aborted with RST_STREAM(INTERNAL_ERROR). The spent-fault
/// set is shared across connection threads, so a retry — on the same
/// connection or a fresh one — sees a healthy serve.
#[derive(Clone, Default)]
pub struct WireFaults {
    truncate_once: Arc<Mutex<BTreeSet<Url>>>,
}

impl WireFaults {
    /// Truncate the first serve of each given URL.
    pub fn truncate_once(urls: impl IntoIterator<Item = Url>) -> WireFaults {
        WireFaults {
            truncate_once: Arc::new(Mutex::new(urls.into_iter().collect())),
        }
    }

    /// Consume the fault for `url`; true exactly once per configured URL.
    fn take(&self, url: &Url) -> bool {
        // A poisoned lock means another serve thread panicked; the set of
        // pending faults is still coherent (it holds no invariants beyond
        // membership), so keep serving rather than poisoning this thread.
        // The guard's critical section is exactly the `remove` — it drops
        // before the serve decision that consumes the answer, so a fault
        // check never stalls another connection's serve.
        let mut pending = self.truncate_once.lock().unwrap_or_else(|e| e.into_inner());
        let hit = pending.remove(url);
        drop(pending);
        hit
    }
}

/// Everything one wire server needs to serve a site.
#[derive(Clone)]
pub struct WireSite {
    /// Recorded responses by URL. Its intern table is the namespace every
    /// [`UrlId`] in `hints` resolves against.
    pub store: Arc<ReplayStore>,
    /// Dependency hints per HTML URL, keyed by the store's interned ids.
    pub hints: Arc<BTreeMap<UrlId, Vec<Hint>>>,
    /// Push policy applied to HTML responses.
    pub push: PushPolicy,
    /// The logical domain this server answers for (requests carry it in
    /// `:authority` even though the socket is loopback).
    pub domain: String,
    /// Injected wire faults (default: none).
    pub faults: WireFaults,
}

/// A running wire server; drop or [`stop`](WireServer::stop) to shut down.
pub struct WireServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl WireServer {
    /// Bind a loopback port and serve `site` until stopped, timing idleness
    /// with the process monotonic clock.
    pub fn start(site: WireSite) -> std::io::Result<WireServer> {
        WireServer::start_with_clock(site, Arc::new(MonotonicClock))
    }

    /// Bind a loopback port and serve `site` until stopped, timing idleness
    /// with an injected clock.
    pub fn start_with_clock(
        site: WireSite,
        clock: Arc<dyn WireClock>,
    ) -> std::io::Result<WireServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle = std::thread::spawn(move || {
            let mut workers = Vec::new();
            while !flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let site = site.clone();
                        let flag = flag.clone();
                        let clock = clock.clone();
                        workers.push(std::thread::spawn(move || {
                            let _ = serve_connection(stream, site, flag, clock);
                        }));
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            for w in workers {
                let _ = w.join();
            }
        });
        Ok(WireServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound loopback address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept loop.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Body bytes still waiting for flow-control credit on a stream. Holds a
/// refcounted view of the recorded body — no copy per blocked stream.
struct PendingBody {
    data: SharedBytes,
    offset: usize,
    /// Consecutive zero-progress send attempts, charged against the
    /// connection's retry budget.
    stalls: u32,
    /// Earliest time the next attempt may run (capped exponential backoff).
    next_attempt: Duration,
}

impl PendingBody {
    fn new(data: SharedBytes, offset: usize) -> PendingBody {
        PendingBody {
            data,
            offset,
            stalls: 0,
            next_attempt: Duration::ZERO,
        }
    }
}

fn serve_connection(
    mut stream: TcpStream,
    site: WireSite,
    shutdown: Arc<AtomicBool>,
    clock: Arc<dyn WireClock>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(20)))?;
    stream.set_nodelay(true)?;
    let mut conn = Connection::server(Settings::default());
    let retry = RetryBudget::standard();
    let mut pending: BTreeMap<u32, PendingBody> = BTreeMap::new();
    let mut buf = [0u8; 16 * 1024];
    let idle_limit = Duration::from_secs(10);
    let mut last_activity = clock.elapsed();

    loop {
        if shutdown.load(Ordering::Relaxed)
            || clock.elapsed().saturating_sub(last_activity) > idle_limit
        {
            conn.goaway(ErrorCode::NoError, "server shutting down");
            let out = conn.take_output();
            let _ = stream.write_all(&out);
            return Ok(());
        }
        // Flush pending output.
        let out = conn.take_output();
        if !out.is_empty() {
            stream.write_all(&out)?;
            last_activity = clock.elapsed();
        }
        // Read what's available.
        match stream.read(&mut buf) {
            Ok(0) => return Ok(()), // peer closed
            Ok(n) => {
                last_activity = clock.elapsed();
                if conn.recv(buf.get(..n).unwrap_or_default()).is_err() {
                    let out = conn.take_output();
                    let _ = stream.write_all(&out);
                    return Ok(());
                }
            }
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(e),
        }
        // Handle protocol events.
        while let Some(ev) = conn.poll_event() {
            match ev {
                Event::Headers {
                    stream_id, fields, ..
                } => {
                    if let Ok(req) = Request::from_fields(&fields) {
                        handle_request(&mut conn, &site, stream_id, &req, &mut pending);
                    } else {
                        conn.reset_stream(stream_id, ErrorCode::ProtocolError);
                    }
                }
                Event::Goaway { .. } => {
                    let out = conn.take_output();
                    let _ = stream.write_all(&out);
                    return Ok(());
                }
                _ => {}
            }
        }
        // Retry flow-blocked bodies under the connection's retry budget:
        // consecutive zero-progress attempts back off exponentially, and a
        // stream whose budget is exhausted is reset rather than polled
        // forever against a peer that never opens its window.
        let now = clock.elapsed();
        let ids: Vec<u32> = pending.keys().copied().collect();
        for id in ids {
            let Some(body) = pending.get_mut(&id) else {
                continue;
            };
            if body.next_attempt > now {
                continue;
            }
            let rest = body.data.get(body.offset..).unwrap_or_default();
            match conn.send_data(id, rest, true) {
                Ok(0) => {
                    body.stalls += 1;
                    if retry.allows(body.stalls) {
                        body.next_attempt = now + retry.backoff_std(body.stalls);
                    } else {
                        conn.reset_stream(id, ErrorCode::FlowControlError);
                        pending.remove(&id);
                    }
                }
                Ok(sent) => {
                    body.stalls = 0;
                    body.offset += sent;
                    if body.offset >= body.data.len() {
                        pending.remove(&id);
                    }
                }
                Err(_) => {
                    pending.remove(&id);
                }
            }
        }
    }
}

fn handle_request(
    conn: &mut Connection,
    site: &WireSite,
    stream_id: u32,
    req: &Request,
    pending: &mut BTreeMap<u32, PendingBody>,
) {
    let url = Url::https(req.authority.as_str(), req.path.as_str());
    let Some((uid, record)) = site
        .store
        .id_of(&url)
        .and_then(|id| Some((id, site.store.lookup_id(id)?)))
    else {
        let resp = Response::with_status(404);
        let _ = conn.send_response(stream_id, &resp, true);
        return;
    };
    let urls = site.store.urls();

    let hints = site.hints.get(&uid).cloned().unwrap_or_default();
    // Push first (PUSH_PROMISE must precede the response data referencing
    // the pushed resources).
    let mut pushed_streams: Vec<(u32, UrlId)> = Vec::new();
    if !hints.is_empty() {
        for push in select_pushes(site.push, &site.domain, &hints, urls) {
            if site.store.lookup_id(push.url).is_none() {
                continue;
            }
            let Some(purl) = urls.url(push.url) else {
                continue;
            };
            let preq = Request::get(purl.host.as_str(), purl.path.as_str());
            if let Ok(pid) = conn.push_promise(stream_id, &preq) {
                pushed_streams.push((pid, push.url));
            }
        }
    }

    // The main response, hint headers attached.
    let mut resp =
        Response::with_status(record.status).with_header("content-type", content_type(record.kind));
    if !hints.is_empty() {
        resp = attach_hints(resp, &hints, urls);
    }
    let body = record.body_bytes();
    if !body.is_empty() && site.faults.take(&url) {
        // Injected truncation: serve a prefix of the body, leave the
        // stream open, then abort it — the client sees partial DATA
        // followed by a well-formed RST_STREAM.
        if conn.send_response(stream_id, &resp, false).is_ok() {
            let half = body.get(..body.len() / 2).unwrap_or_default();
            let _ = conn.send_data(stream_id, half, false);
        }
        conn.reset_stream(stream_id, ErrorCode::InternalError);
        return;
    }
    if conn
        .send_response(stream_id, &resp, body.is_empty())
        .is_ok()
        && !body.is_empty()
    {
        let sent = conn.send_data(stream_id, &body, true).unwrap_or(0);
        if sent < body.len() {
            pending.insert(stream_id, PendingBody::new(body, sent));
        }
    }

    // Pushed response bodies follow.
    for (pid, puid) in pushed_streams {
        let Some(rec) = site.store.lookup_id(puid) else {
            continue;
        };
        let presp = Response::ok().with_header("content-type", content_type(rec.kind));
        let pbody = rec.body_bytes();
        if conn.send_response(pid, &presp, pbody.is_empty()).is_ok() && !pbody.is_empty() {
            let sent = conn.send_data(pid, &pbody, true).unwrap_or(0);
            if sent < pbody.len() {
                pending.insert(pid, PendingBody::new(pbody, sent));
            }
        }
    }
}

fn content_type(kind: vroom_html::ResourceKind) -> &'static str {
    use vroom_html::ResourceKind::*;
    match kind {
        Html => "text/html; charset=utf-8",
        Css => "text/css",
        Js => "application/javascript",
        Image => "image/jpeg",
        Font => "font/woff2",
        Media => "video/mp4",
        Xhr => "application/json",
        Other => "application/octet-stream",
    }
}

/// One fetched exchange as seen by the wire client.
#[derive(Debug)]
pub struct FetchedResponse {
    /// Decoded response headers.
    pub response: Response,
    /// Full body.
    pub body: Vec<u8>,
    /// Whether it arrived via server push.
    pub pushed: bool,
    /// The request URL.
    pub url: Url,
}

struct StreamAcc {
    response: Option<Response>,
    body: Vec<u8>,
    done: bool,
    pushed: bool,
    url: Option<Url>,
}

/// A blocking HTTP/2 client for the wire server.
pub struct WireClient {
    stream: TcpStream,
    conn: Connection,
    streams: BTreeMap<u32, StreamAcc>,
    clock: Arc<dyn WireClock>,
    /// Per-request retry policy applied when a stream is reset.
    retry: RetryBudget,
    /// GET attempts per URL, counted against the budget.
    attempts: BTreeMap<Url, u32>,
    /// Backed-off re-fetches waiting for their fire time.
    retry_queue: Vec<(Duration, Url)>,
    resets_seen: usize,
}

impl WireClient {
    /// Connect to a wire server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<WireClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_millis(20)))?;
        stream.set_nodelay(true)?;
        Ok(WireClient {
            stream,
            conn: Connection::client(Settings::vroom_client()),
            streams: BTreeMap::new(),
            clock: Arc::new(MonotonicClock),
            retry: RetryBudget::standard(),
            attempts: BTreeMap::new(),
            retry_queue: Vec::new(),
            resets_seen: 0,
        })
    }

    /// Replace the deadline clock (tests can inject a fake).
    pub fn with_clock(mut self, clock: Arc<dyn WireClock>) -> Self {
        self.clock = clock;
        self
    }

    /// Replace the retry budget.
    pub fn with_retry(mut self, retry: RetryBudget) -> Self {
        self.retry = retry;
        self
    }

    /// RST_STREAM frames received so far.
    pub fn resets_seen(&self) -> usize {
        self.resets_seen
    }

    /// Issue a GET; returns the stream id. (Named `fetch`, not `get`, so the
    /// allocation analyzer's name-based call resolution does not conflate it
    /// with container `get` calls on the server hot path.)
    pub fn fetch(&mut self, url: &Url) -> std::io::Result<u32> {
        let req = Request::get(url.host.clone(), url.path.clone());
        let sid = self
            .conn
            .send_request(&req, true)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        *self.attempts.entry(url.clone()).or_insert(0) += 1;
        self.streams.insert(
            sid,
            StreamAcc {
                response: None,
                body: Vec::new(),
                done: false,
                pushed: false,
                url: Some(url.clone()),
            },
        );
        self.flush()?;
        Ok(sid)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        let out = self.conn.take_output();
        if !out.is_empty() {
            self.stream.write_all(&out)?;
        }
        Ok(())
    }

    /// Drive IO until every open stream completes or the deadline passes.
    /// Returns all completed exchanges (requested and pushed).
    pub fn run(&mut self, deadline: Duration) -> std::io::Result<Vec<FetchedResponse>> {
        let start = self.clock.elapsed();
        let mut buf = [0u8; 16 * 1024];
        while self.clock.elapsed().saturating_sub(start) < deadline {
            // Issue any backed-off retries that have come due. The budget
            // was already charged when the retry was queued.
            let now = self.clock.elapsed();
            let due: Vec<Url> = {
                let (fire, wait): (Vec<_>, Vec<_>) =
                    self.retry_queue.drain(..).partition(|(at, _)| *at <= now);
                self.retry_queue = wait;
                fire.into_iter().map(|(_, url)| url).collect()
            };
            for url in due {
                let _ = self.fetch(&url)?;
            }
            self.flush()?;
            match self.stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    if self.conn.recv(buf.get(..n).unwrap_or_default()).is_err() {
                        break;
                    }
                }
                Err(ref e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) => return Err(e),
            }
            while let Some(ev) = self.conn.poll_event() {
                match ev {
                    Event::Headers {
                        stream_id,
                        fields,
                        end_stream,
                    } => {
                        if let Ok(resp) = Response::from_fields(&fields) {
                            let acc = self.streams.entry(stream_id).or_insert(StreamAcc {
                                response: None,
                                body: Vec::new(),
                                done: false,
                                pushed: true,
                                url: None,
                            });
                            acc.response = Some(resp);
                            if end_stream {
                                acc.done = true;
                            }
                        }
                    }
                    Event::Data {
                        stream_id,
                        data,
                        end_stream,
                    } => {
                        if let Some(acc) = self.streams.get_mut(&stream_id) {
                            acc.body.extend_from_slice(&data);
                            if end_stream {
                                acc.done = true;
                            }
                        }
                    }
                    Event::PushPromise {
                        promised_stream_id,
                        fields,
                        ..
                    } => {
                        let url = Request::from_fields(&fields)
                            .ok()
                            .map(|r| Url::https(r.authority.as_str(), r.path.as_str()));
                        self.streams.insert(
                            promised_stream_id,
                            StreamAcc {
                                response: None,
                                body: Vec::new(),
                                done: false,
                                pushed: true,
                                url,
                            },
                        );
                    }
                    Event::StreamReset { stream_id, .. } => {
                        self.resets_seen += 1;
                        // Recovery: re-fetch the dead stream's URL with
                        // capped exponential backoff while the budget
                        // allows. A reset push degrades to a plain client
                        // fetch the same way.
                        if let Some(acc) = self.streams.remove(&stream_id) {
                            if let Some(url) = acc.url {
                                let attempts = self.attempts.get(&url).copied().unwrap_or(1);
                                if self.retry.allows(attempts) {
                                    let at = self.clock.elapsed()
                                        + self.retry.backoff_std(attempts.max(1));
                                    self.retry_queue.push((at, url));
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
            if self.retry_queue.is_empty()
                && !self.streams.is_empty()
                && self.streams.values().all(|s| s.done)
            {
                break;
            }
        }
        let mut out = Vec::new();
        let done_ids: Vec<u32> = self
            .streams
            .iter()
            .filter(|(_, s)| s.done && s.response.is_some())
            .map(|(&id, _)| id)
            .collect();
        for id in done_ids {
            let Some(acc) = self.streams.remove(&id) else {
                continue;
            };
            let Some(response) = acc.response else {
                continue;
            };
            out.push(FetchedResponse {
                response,
                body: acc.body,
                pushed: acc.pushed,
                url: acc.url.unwrap_or_else(|| Url::https("unknown", "/")),
            });
        }
        Ok(out)
    }
}
