//! Page-type clustering (paper §7, future work): amortize offline crawling
//! across pages of the same type. "On a news site, landing pages for
//! different news categories are likely to share similarities as will news
//! articles about different individual stories" — so one crawl per cluster
//! representative suffices, with the shared stable core serving the rest.

use crate::device::iou;
use crate::resolve::ResolverInput;
use std::collections::BTreeSet;
use vroom_html::Url;
use vroom_pages::{DeviceClass, PageGenerator};

/// A clustering of pages into same-type groups.
#[derive(Debug)]
pub struct PageTypeClusters {
    /// Indexes into the input page list, grouped.
    pub groups: Vec<Vec<usize>>,
    /// The shared stable core per group (URLs common to every member).
    pub shared_core: Vec<BTreeSet<Url>>,
}

impl PageTypeClusters {
    /// How many offline crawls per hour this clustering saves, relative to
    /// crawling every page (the §7 scalability motivation).
    pub fn crawl_savings(&self, total_pages: usize) -> f64 {
        1.0 - self.groups.len() as f64 / total_pages.max(1) as f64
    }

    /// The group a page belongs to.
    pub fn group_of(&self, page_idx: usize) -> Option<usize> {
        self.groups.iter().position(|g| g.contains(&page_idx))
    }
}

/// Cluster pages by stable-set similarity (greedy agglomeration against
/// group representatives at the given IoU threshold).
pub fn cluster_pages(
    pages: &[&PageGenerator],
    hours: f64,
    device: DeviceClass,
    server_seed: u64,
    threshold: f64,
) -> PageTypeClusters {
    // Normalize URLs to templates (strip rotating version suffixes) so the
    // comparison captures page *structure*, not this hour's content.
    fn template(u: &Url) -> String {
        let path = u.path.split('?').next().unwrap_or("");
        let stripped: String = path
            .split('/')
            .map(|seg| seg.split("-v").next().unwrap_or(seg))
            .collect::<Vec<_>>()
            .join("/");
        format!("{}{}", u.host, stripped)
    }
    let mut groups: Vec<(BTreeSet<Url>, BTreeSet<String>, Vec<usize>)> = Vec::new();
    for (idx, page) in pages.iter().enumerate() {
        let input = ResolverInput::new(page, hours, device, server_seed);
        let loads = input.offline_loads();
        let later: Vec<BTreeSet<&Url>> = loads[1..]
            .iter()
            .map(|p| p.resources.iter().map(|r| &r.url).collect())
            .collect();
        let stable: BTreeSet<Url> = loads[0]
            .resources
            .iter()
            .filter(|r| later.iter().all(|s| s.contains(&r.url)))
            .map(|r| r.url.clone())
            .collect();
        let templ: BTreeSet<String> = stable.iter().map(template).collect();
        let matched = groups.iter_mut().find(|(_, rep_templ, _)| {
            let inter = rep_templ.intersection(&templ).count() as f64;
            let union = rep_templ.union(&templ).count() as f64;
            union > 0.0 && inter / union >= threshold
        });
        match matched {
            Some((rep_urls, _, members)) => {
                rep_urls.retain(|u| stable.contains(u));
                members.push(idx);
            }
            None => groups.push((stable, templ, vec![idx])),
        }
    }
    PageTypeClusters {
        shared_core: groups.iter().map(|(core, _, _)| core.clone()).collect(),
        groups: groups.into_iter().map(|(_, _, m)| m).collect(),
    }
}

/// Convenience: IoU of two generators' stable sets (exposed for tests).
pub fn structural_similarity(
    a: &PageGenerator,
    b: &PageGenerator,
    hours: f64,
    device: DeviceClass,
    server_seed: u64,
) -> f64 {
    let sa = crate::device::stable_set(a, hours, device, server_seed);
    let sb = crate::device::stable_set(b, hours, device, server_seed);
    iou(&sa, &sb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vroom_pages::{LoadContext, SiteProfile};

    /// Pages of the *same site* (same seed, same domains) cluster together;
    /// pages of different sites do not.
    #[test]
    fn same_site_pages_cluster() {
        // Two "page types" of one site: the same generator observed at two
        // nearby times shares structure; a different site does not.
        let a = PageGenerator::new(SiteProfile::news(), 11);
        let b = PageGenerator::new(SiteProfile::news(), 11);
        let c = PageGenerator::new(SiteProfile::news(), 12);
        let clusters = cluster_pages(&[&a, &b, &c], 1500.0, DeviceClass::PhoneLarge, 5, 0.5);
        assert_eq!(clusters.groups.len(), 2, "{:?}", clusters.groups);
        assert_eq!(clusters.group_of(0), clusters.group_of(1));
        assert_ne!(clusters.group_of(0), clusters.group_of(2));
        assert!(clusters.crawl_savings(3) > 0.3);
        // The shared core of the (a, b) group is non-empty.
        let g = clusters.group_of(0).unwrap();
        assert!(!clusters.shared_core[g].is_empty());
        let _ = LoadContext::reference();
    }

    #[test]
    fn similarity_is_reflexive_and_discriminative() {
        let a = PageGenerator::new(SiteProfile::news(), 21);
        let b = PageGenerator::new(SiteProfile::news(), 22);
        let self_sim = structural_similarity(&a, &a, 1500.0, DeviceClass::PhoneLarge, 5);
        let cross_sim = structural_similarity(&a, &b, 1500.0, DeviceClass::PhoneLarge, 5);
        assert!((self_sim - 1.0).abs() < 1e-9);
        assert!(
            cross_sim < 0.2,
            "different sites share nothing: {cross_sim}"
        );
    }
}
