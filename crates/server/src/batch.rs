//! Batched dependency resolution: clients arriving within one batch window
//! share a single resolver pass.
//!
//! A front-end Vroom server under load sees many near-simultaneous requests
//! for the same page. Running the full offline-intersection + online-scan
//! pipeline per request would waste the work `resolve` already proved is a
//! pure function of `(site, hour, device, server seed)` — so the serving
//! path splits resolution in two:
//!
//! * [`run_pass`] — the expensive half, side-effect free: one resolver pass
//!   for one page at one quantized hour, producing a self-contained
//!   [`PassOutput`] (plain URLs, no table handles). Pure, so a batch of
//!   passes fans out over worker threads with no shared state.
//! * [`commit_pass`] — the cheap half, sequential: intern the pass output
//!   into the server's shared [`UrlTable`] and file each HTML's hint list
//!   in the shared [`HintStore`]. Commit order is the caller's
//!   responsibility; committing in a deterministic order makes the store's
//!   id assignment deterministic too.
//!
//! The pass resolves against the *server's own* fresh render of the page
//! (crawler cookies, crawler nonce), not any individual client's bytes —
//! the only copy a shared store can be keyed on. Client-specific per-load
//! URLs are exactly what Vroom never hints, so sharing costs no hint the
//! per-client resolver would have kept.

use vroom_html::Url;
use vroom_intern::{UrlId, UrlTable};
use vroom_pages::{DeviceClass, LoadContext, PageGenerator};

use crate::resolve::{resolve, ResolverInput, Strategy, CRAWLER_USER};
use crate::store::HintStore;

/// One resolved hint target, table-free: `(url, tier, size_hint)`.
pub type PassHint = (Url, u8, u64);

/// The output of one resolver pass, self-contained so passes can run on
/// worker threads and be committed later in a deterministic order.
#[derive(Debug, Clone)]
pub struct PassOutput {
    /// `(html url, ordered hints)` per HTML response the page serves —
    /// the root document first, then each iframe document, in resolver
    /// (document) order.
    pub entries: Vec<(Url, Vec<PassHint>)>,
}

impl PassOutput {
    /// Total hints across every HTML of the pass.
    pub fn hint_count(&self) -> usize {
        self.entries.iter().map(|(_, h)| h.len()).sum()
    }
}

pub(crate) fn mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Quantize a wall-clock hour to the resolution-freshness bucket shared by
/// every client arriving within it.
pub fn hour_bucket(hours: f64) -> i64 {
    hours.floor() as i64
}

/// Run one resolver pass for `generator` at `hours` (quantized to its
/// [`hour_bucket`]) on behalf of every client in the batch. Pure: no shared
/// state is touched, so batches of passes parallelize freely.
pub fn run_pass(
    generator: &PageGenerator,
    hours: f64,
    device: DeviceClass,
    server_seed: u64,
) -> PassOutput {
    let bucket = hour_bucket(hours) as f64;
    // The server's own current copy of the page: crawler cookie jar, a
    // nonce derived from (seed, bucket) so every pass in the bucket renders
    // the same bytes.
    let server_page = generator.snapshot_arc(&LoadContext {
        hours: bucket,
        user_id: CRAWLER_USER,
        device,
        nonce: mix(server_seed, 0xBA7C4 ^ bucket as u64),
    });
    let input = ResolverInput::new(generator, bucket, device, server_seed);
    let mut scratch = UrlTable::new();
    let resolved = resolve(&input, &server_page, Strategy::Vroom, &mut scratch);
    // Emit in document order (root, then iframes by resource id), not id
    // order, so the commit sequence is independent of intern history.
    let mut order: Vec<UrlId> = Vec::with_capacity(resolved.hints.len());
    if let Some(root) = scratch.lookup(&server_page.url) {
        if resolved.hints.contains_key(&root) {
            order.push(root);
        }
    }
    for r in &server_page.resources {
        if let Some(id) = scratch.lookup(&r.url) {
            if resolved.hints.contains_key(&id) && !order.contains(&id) {
                order.push(id);
            }
        }
    }
    let entries = order
        .into_iter()
        .filter_map(|id| {
            let hints = resolved.hints.get(&id)?;
            // vroom-lint: allow(hot-path-alloc) -- the pass output owns its URLs: once per (site, hour) pass, amortized across every client it serves
            let html = scratch.url(id)?.clone();
            let targets = hints
                .iter()
                // vroom-lint: allow(hot-path-alloc) -- the pass output owns its URLs: once per (site, hour) pass, amortized across every client it serves
                .filter_map(|h| Some((scratch.url(h.url)?.clone(), h.tier, h.size_hint)))
                .collect();
            Some((html, targets))
        })
        .collect();
    PassOutput { entries }
}

/// Commit a pass into the shared store: intern every URL into `urls` and
/// file each HTML's hint list under its id. Returns the store keys written,
/// in entry order. Call sequentially (the shared table needs `&mut`); the
/// commit is cheap — interning and refcounted inserts only.
///
/// Entries are versioned at bucket 0 — the pre-freshness behavior, correct
/// whenever the caller runs under [`EvictionPolicy::Never`]. Freshness-aware
/// callers use [`commit_pass_at`].
///
/// [`EvictionPolicy::Never`]: crate::store::EvictionPolicy::Never
pub fn commit_pass(output: &PassOutput, store: &dyn HintStore, urls: &mut UrlTable) -> Vec<UrlId> {
    commit_pass_at(output, store, urls, 0)
}

/// [`commit_pass`], versioning every written entry with the hour bucket the
/// pass was resolved at — the input to the store's eviction policies.
pub fn commit_pass_at(
    output: &PassOutput,
    store: &dyn HintStore,
    urls: &mut UrlTable,
    bucket: i64,
) -> Vec<UrlId> {
    // Intern in entry order (each HTML, then its targets) so id assignment
    // is byte-identical to a per-entry commit, then file every hint list in
    // one batched store pass — one write-lock acquisition per touched shard
    // instead of one per HTML.
    let mut written = Vec::with_capacity(output.entries.len());
    let mut batch = Vec::with_capacity(output.entries.len());
    for (html, targets) in &output.entries {
        // vroom-lint: allow(hot-path-alloc) -- interning takes ownership; one clone per entry, once per pass commit
        let key = urls.intern(html.clone());
        let hints = targets
            .iter()
            .map(|(url, tier, size_hint)| vroom_browser::config::Hint {
                // vroom-lint: allow(hot-path-alloc) -- interning takes ownership; one clone per entry, once per pass commit
                url: urls.intern(url.clone()),
                tier: *tier,
                size_hint: *size_hint,
            })
            .collect();
        batch.push((key, hints));
        written.push(key);
    }
    store.put_many_at(batch, bucket);
    written
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{ShardedStore, UnshardedStore};
    use vroom_pages::SiteProfile;

    fn site() -> PageGenerator {
        PageGenerator::new(SiteProfile::news(), 4242)
    }

    #[test]
    fn pass_is_pure_and_deterministic() {
        let g = site();
        let a = run_pass(&g, 2000.4, DeviceClass::PhoneLarge, 9);
        let b = run_pass(&g, 2000.9, DeviceClass::PhoneLarge, 9);
        // Same hour bucket: byte-identical output regardless of the
        // sub-hour arrival offset.
        assert_eq!(a.entries.len(), b.entries.len());
        for ((ua, ha), (ub, hb)) in a.entries.iter().zip(&b.entries) {
            assert_eq!(ua, ub);
            assert_eq!(ha, hb);
        }
        assert!(a.hint_count() > 0, "a news page resolves to hints");
        assert!(
            a.entries.len() > 1,
            "root plus iframe documents each get an entry"
        );
    }

    #[test]
    fn commit_fills_store_and_interns_deterministically() {
        let g = site();
        let pass = run_pass(&g, 2000.0, DeviceClass::PhoneLarge, 9);
        let sharded = ShardedStore::new(8);
        let flat = UnshardedStore::new();
        let mut urls_a = UrlTable::new();
        let mut urls_b = UrlTable::new();
        let keys_a = commit_pass(&pass, &sharded, &mut urls_a);
        let keys_b = commit_pass(&pass, &flat, &mut urls_b);
        assert_eq!(
            keys_a, keys_b,
            "identical commit order assigns identical ids"
        );
        assert_eq!(urls_a, urls_b);
        assert_eq!(sharded.snapshot(), flat.snapshot());
        assert_eq!(sharded.len(), pass.entries.len());
        // The root document's hints are retrievable through the store.
        let root = keys_a[0];
        let got = sharded.get(root).expect("root entry");
        assert_eq!(got.len(), pass.entries[0].1.len());
    }

    #[test]
    fn commit_at_versions_entries_with_the_pass_bucket() {
        use crate::store::EvictionPolicy;
        let g = site();
        let pass = run_pass(&g, 2003.0, DeviceClass::PhoneLarge, 9);
        let store = ShardedStore::new(4);
        let mut urls = UrlTable::new();
        let keys = commit_pass_at(&pass, &store, &mut urls, 2003);
        for (_, (_, bucket)) in store.snapshot_versioned() {
            assert_eq!(bucket, 2003);
        }
        // Fresh within a 1-bucket TTL at the next hour, evicted after.
        let root = keys[0];
        assert!(store
            .get_fresh(root, 2004, EvictionPolicy::Ttl(1))
            .hints()
            .is_some());
        assert!(store
            .get_fresh(root, 2005, EvictionPolicy::Ttl(1))
            .hints()
            .is_none());
    }

    #[test]
    fn hour_bucket_quantizes() {
        assert_eq!(hour_bucket(2000.0), 2000);
        assert_eq!(hour_bucket(2000.99), 2000);
        assert_eq!(hour_bucket(2001.0), 2001);
    }
}
