//! The shared hint store: the server-side state a fleet of concurrent
//! clients reads and the resolver writes.
//!
//! A front-end Vroom deployment serves many loads at once, and every one of
//! them consults the same dependency metadata. The store is therefore
//! read-mostly: resolver passes write an HTML's hint list once per
//! freshness window, then thousands of loads read it. [`HintStore`] is the
//! trait boundary between the serving path and the storage layout, with two
//! implementations:
//!
//! * [`UnshardedStore`] — one map behind one lock. The semantic reference:
//!   simple, obviously correct, and the model the sharded store must match
//!   (the fleet proptests pin sharded == unsharded for arbitrary op
//!   interleavings).
//! * [`ShardedStore`] — `N` independent shards, each a `RwLock` over its
//!   own map, routed by [`UrlId::shard`] (a pure function of the id value,
//!   so routing is stable as the intern table grows and entries never
//!   migrate). Readers on different shards never contend; writers block
//!   only their own shard.
//!
//! Both implementations keep per-shard access counters (reads, hits,
//! writes, entries). The counters are *logical*: every operation bumps its
//! shard's counter exactly once, so totals are a pure function of the
//! workload — identical at any worker count or scheduling — even though the
//! increments themselves race. That property is what lets the fleet report
//! shard "contention" figures while staying byte-deterministic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use vroom_browser::config::Hint;
use vroom_intern::UrlId;

/// Logical access counters for one shard (the whole store, when unsharded).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// `get` calls routed to this shard.
    pub reads: u64,
    /// `get` calls that found an entry.
    pub hits: u64,
    /// `put` calls routed to this shard.
    pub writes: u64,
    /// Live entries.
    pub entries: u64,
}

/// Shared dependency-hint storage, keyed by the interned URL of the HTML
/// response that carries the hints.
///
/// Values are `Arc`-shared: a `get` hands back a reference-counted handle,
/// never a copy of the hint list, so concurrent readers share one
/// allocation.
pub trait HintStore: Send + Sync {
    /// The hints stored for `key`, if any. Counts one read (plus one hit on
    /// success) against the key's shard.
    fn get(&self, key: UrlId) -> Option<Arc<Vec<Hint>>>;

    /// Store (or replace) the hints for `key`. Counts one write against the
    /// key's shard.
    fn put(&self, key: UrlId, hints: Vec<Hint>);

    /// The hints for each of `keys`, in input order. Logically identical to
    /// one [`get`](Self::get) per key — same counter bumps, same results —
    /// but a batching implementation takes each touched shard's lock once
    /// for the whole slice instead of once per key.
    fn get_many(&self, keys: &[UrlId]) -> Vec<Option<Arc<Vec<Hint>>>> {
        keys.iter().map(|&k| self.get(k)).collect()
    }

    /// Store every `(key, hints)` pair. Logically identical to one
    /// [`put`](Self::put) per pair in order — same counters, and duplicate
    /// keys resolve last-write-wins — with the same batched-locking
    /// opportunity as [`get_many`](Self::get_many).
    fn put_many(&self, entries: Vec<(UrlId, Vec<Hint>)>) {
        for (k, h) in entries {
            self.put(k, h);
        }
    }

    /// Per-shard counters, in shard order (a single entry when unsharded).
    fn shard_stats(&self) -> Vec<ShardStats>;

    /// The full contents, merged across shards into one ordered map — the
    /// canonical form the equivalence proptests compare.
    fn snapshot(&self) -> BTreeMap<UrlId, Arc<Vec<Hint>>>;

    /// Total live entries across every shard.
    fn len(&self) -> usize {
        self.shard_stats().iter().map(|s| s.entries as usize).sum()
    }

    /// Whether the store holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Recover a lock whether or not a holder panicked: the maps hold plain
/// data whose invariants every critical section re-establishes before
/// unlocking, so a poisoned lock is safe to keep using.
fn unpoison<G>(r: Result<G, std::sync::PoisonError<G>>) -> G {
    r.unwrap_or_else(|e| e.into_inner())
}

/// The single-lock reference implementation.
#[derive(Debug, Default)]
pub struct UnshardedStore {
    map: Mutex<BTreeMap<UrlId, Arc<Vec<Hint>>>>,
    reads: AtomicU64,
    hits: AtomicU64,
    writes: AtomicU64,
}

impl UnshardedStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl HintStore for UnshardedStore {
    fn get(&self, key: UrlId) -> Option<Arc<Vec<Hint>>> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        let found = unpoison(self.map.lock()).get(&key).map(Arc::clone);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    fn put(&self, key: UrlId, hints: Vec<Hint>) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        unpoison(self.map.lock()).insert(key, Arc::new(hints));
    }

    fn get_many(&self, keys: &[UrlId]) -> Vec<Option<Arc<Vec<Hint>>>> {
        self.reads.fetch_add(keys.len() as u64, Ordering::Relaxed);
        let mut out = Vec::with_capacity(keys.len());
        let mut hits = 0u64;
        let map = unpoison(self.map.lock());
        for k in keys {
            let found = map.get(k).map(Arc::clone);
            hits += u64::from(found.is_some());
            out.push(found);
        }
        drop(map);
        self.hits.fetch_add(hits, Ordering::Relaxed);
        out
    }

    fn put_many(&self, entries: Vec<(UrlId, Vec<Hint>)>) {
        self.writes
            .fetch_add(entries.len() as u64, Ordering::Relaxed);
        let mut map = unpoison(self.map.lock());
        for (k, h) in entries {
            map.insert(k, Arc::new(h));
        }
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        vec![ShardStats {
            reads: self.reads.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            entries: unpoison(self.map.lock()).len() as u64,
        }]
    }

    fn snapshot(&self) -> BTreeMap<UrlId, Arc<Vec<Hint>>> {
        unpoison(self.map.lock()).clone()
    }
}

/// One shard: an independent map plus its logical counters.
#[derive(Debug, Default)]
struct Shard {
    map: RwLock<BTreeMap<UrlId, Arc<Vec<Hint>>>>,
    reads: AtomicU64,
    hits: AtomicU64,
    writes: AtomicU64,
}

/// The production layout: reads take a shard-local read lock, writes a
/// shard-local write lock, and operations on different shards proceed
/// fully in parallel.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<Shard>,
}

impl ShardedStore {
    /// A store with `shards` shards (`shards == 0` is clamped to 1).
    pub fn new(shards: usize) -> Self {
        ShardedStore {
            shards: (0..shards.max(1)).map(|_| Shard::default()).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `key` routes to. `UrlId::shard` returns a value < len by
    /// construction (proven by the routing proptest); the checked lookup
    /// keeps the serving path panic-free regardless.
    fn shard_of(&self, key: UrlId) -> Option<&Shard> {
        self.shards.get(key.shard(self.shards.len()))
    }
}

impl HintStore for ShardedStore {
    fn get(&self, key: UrlId) -> Option<Arc<Vec<Hint>>> {
        let shard = self.shard_of(key)?;
        shard.reads.fetch_add(1, Ordering::Relaxed);
        let found = unpoison(shard.map.read()).get(&key).map(Arc::clone);
        if found.is_some() {
            shard.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    fn put(&self, key: UrlId, hints: Vec<Hint>) {
        let Some(shard) = self.shard_of(key) else {
            return;
        };
        shard.writes.fetch_add(1, Ordering::Relaxed);
        unpoison(shard.map.write()).insert(key, Arc::new(hints));
    }

    fn get_many(&self, keys: &[UrlId]) -> Vec<Option<Arc<Vec<Hint>>>> {
        let mut out = vec![None; keys.len()];
        // Group input indices by shard so each touched shard's read lock is
        // taken exactly once for the batch.
        let mut by_shard: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            by_shard
                .entry(k.shard(self.shards.len()))
                .or_default()
                .push(i);
        }
        for (s, idxs) in by_shard {
            let Some(shard) = self.shards.get(s) else {
                continue;
            };
            shard.reads.fetch_add(idxs.len() as u64, Ordering::Relaxed);
            let mut hits = 0u64;
            // vroom-lint: allow(lock-in-hot-loop) -- one acquisition per touched shard per batch IS the hoisted form this rule asks for
            let map = unpoison(shard.map.read());
            for i in idxs {
                let found = map.get(&keys[i]).map(Arc::clone);
                hits += u64::from(found.is_some());
                out[i] = found;
            }
            drop(map);
            shard.hits.fetch_add(hits, Ordering::Relaxed);
        }
        out
    }

    fn put_many(&self, entries: Vec<(UrlId, Vec<Hint>)>) {
        // Group by shard, preserving entry order within each shard: a
        // duplicate key routes to one shard, so last-write-wins matches the
        // sequential per-key commit.
        let mut by_shard: BTreeMap<usize, Vec<(UrlId, Vec<Hint>)>> = BTreeMap::new();
        for (k, h) in entries {
            by_shard
                .entry(k.shard(self.shards.len()))
                .or_default()
                .push((k, h));
        }
        for (s, batch) in by_shard {
            let Some(shard) = self.shards.get(s) else {
                continue;
            };
            shard
                .writes
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            // vroom-lint: allow(lock-in-hot-loop) -- one acquisition per touched shard per batch IS the hoisted form this rule asks for
            let mut map = unpoison(shard.map.write());
            for (k, h) in batch {
                map.insert(k, Arc::new(h));
            }
        }
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                reads: s.reads.load(Ordering::Relaxed),
                hits: s.hits.load(Ordering::Relaxed),
                writes: s.writes.load(Ordering::Relaxed),
                entries: unpoison(s.map.read()).len() as u64,
            })
            .collect()
    }

    fn snapshot(&self) -> BTreeMap<UrlId, Arc<Vec<Hint>>> {
        let mut merged = BTreeMap::new();
        for shard in &self.shards {
            // Copy the shard (Arc bumps, not hint copies) under its read
            // guard and merge after the guard drops: the merge work never
            // runs inside the critical section.
            let part = unpoison(shard.map.read()).clone();
            merged.extend(part);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hint(id: u32, tier: u8) -> Hint {
        Hint {
            url: UrlId::from_index(id as usize),
            tier,
            size_hint: 100,
        }
    }

    fn keys(n: u32) -> Vec<UrlId> {
        (0..n).map(|i| UrlId::from_index(i as usize)).collect()
    }

    #[test]
    fn put_get_roundtrip_both_layouts() {
        let stores: [Box<dyn HintStore>; 2] = [
            Box::new(UnshardedStore::new()),
            Box::new(ShardedStore::new(4)),
        ];
        for store in stores {
            let k = UrlId::from_index(3);
            assert!(store.get(k).is_none());
            store.put(k, vec![hint(7, 0), hint(8, 2)]);
            let got = store.get(k).expect("stored entry");
            assert_eq!(got.len(), 2);
            assert_eq!(got[0], hint(7, 0));
            assert_eq!(store.len(), 1);
            // Replacement keeps one live entry.
            store.put(k, vec![hint(9, 1)]);
            assert_eq!(store.len(), 1);
            assert_eq!(store.get(k).expect("replaced")[0], hint(9, 1));
        }
    }

    #[test]
    fn counters_are_logical_access_counts() {
        let store = ShardedStore::new(8);
        for &k in keys(16).iter() {
            store.put(k, vec![hint(0, 0)]);
        }
        for &k in keys(32).iter() {
            let _ = store.get(k); // 16 hits, 16 misses
        }
        let stats = store.shard_stats();
        assert_eq!(stats.len(), 8);
        let total = |f: fn(&ShardStats) -> u64| stats.iter().map(f).sum::<u64>();
        assert_eq!(total(|s| s.writes), 16);
        assert_eq!(total(|s| s.reads), 32);
        assert_eq!(total(|s| s.hits), 16);
        assert_eq!(total(|s| s.entries), 16);
        // Fibonacci routing actually spreads the dense low ids.
        let populated = stats.iter().filter(|s| s.entries > 0).count();
        assert!(populated >= 4, "16 keys landed on only {populated} shards");
    }

    #[test]
    fn snapshot_merges_shards_into_the_unsharded_view() {
        let sharded = ShardedStore::new(5);
        let reference = UnshardedStore::new();
        for &k in keys(20).iter() {
            let hints = vec![hint(k.index() as u32, (k.index() % 3) as u8)];
            sharded.put(k, hints.clone());
            reference.put(k, hints);
        }
        assert_eq!(sharded.snapshot(), reference.snapshot());
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let store = ShardedStore::new(0);
        assert_eq!(store.shard_count(), 1);
        store.put(UrlId::from_index(0), vec![hint(1, 0)]);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn shared_value_is_refcounted_not_copied() {
        let store = ShardedStore::new(2);
        let k = UrlId::from_index(1);
        store.put(k, vec![hint(2, 0)]);
        let a = store.get(k).expect("entry");
        let b = store.get(k).expect("entry");
        assert!(Arc::ptr_eq(&a, &b), "readers share one allocation");
    }
}
