//! The shared hint store: the server-side state a fleet of concurrent
//! clients reads and the resolver writes.
//!
//! A front-end Vroom deployment serves many loads at once, and every one of
//! them consults the same dependency metadata. The store is therefore
//! read-mostly: resolver passes write an HTML's hint list once per
//! freshness window, then thousands of loads read it. [`HintStore`] is the
//! trait boundary between the serving path and the storage layout, with two
//! implementations:
//!
//! * [`UnshardedStore`] — one map behind one lock. The semantic reference:
//!   simple, obviously correct, and the model the sharded store must match
//!   (the fleet proptests pin sharded == unsharded for arbitrary op
//!   interleavings).
//! * [`ShardedStore`] — `N` independent shards, each a `RwLock` over its
//!   own map, routed by [`UrlId::shard`] (a pure function of the id value,
//!   so routing is stable as the intern table grows and entries never
//!   migrate). Readers on different shards never contend; writers block
//!   only their own shard.
//!
//! Every entry is versioned with the hour bucket it was resolved at, and
//! reads classify entries through an [`EvictionPolicy`]:
//!
//! * [`EvictionPolicy::Never`] — age is ignored; byte-identical to the
//!   pre-freshness store (the legacy `get`/`put` API is defined as the
//!   versioned API at bucket 0 under `Never`).
//! * [`EvictionPolicy::Ttl`] — an entry older than the TTL is logically
//!   evicted at read time: the read counts as stale and returns a miss.
//!   Physical removal is a separate, sequential [`evict_resolved_before`]
//!   sweep so the parallel load phase never mutates the maps.
//! * [`EvictionPolicy::RefreshOnMiss`] — a stale entry is still served
//!   (counted as a hit *and* as stale) so the caller can schedule a
//!   re-resolution admission while this load proceeds on old hints.
//!
//! [`evict_resolved_before`]: HintStore::evict_resolved_before
//!
//! Both implementations keep per-shard access counters (reads, hits,
//! writes, entries) plus freshness counters (stale classifications,
//! evictions). The counters are *logical*: every operation bumps its
//! shard's counter exactly once, so totals are a pure function of the
//! workload — identical at any worker count or scheduling — even though the
//! increments themselves race. That property is what lets the fleet report
//! shard "contention" figures while staying byte-deterministic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use vroom_browser::config::Hint;
use vroom_intern::UrlId;

/// Logical access counters for one shard (the whole store, when unsharded).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// `get` calls routed to this shard.
    pub reads: u64,
    /// `get` calls that found an entry.
    pub hits: u64,
    /// `put` calls routed to this shard.
    pub writes: u64,
    /// Live entries.
    pub entries: u64,
}

/// Logical freshness counters for one shard, kept separate from
/// [`ShardStats`] so the pre-freshness report formats stay byte-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FreshnessStats {
    /// Reads that classified their entry as stale under the caller's
    /// policy (whether it was then served or logically evicted).
    pub stale: u64,
    /// Entries physically removed by eviction sweeps.
    pub evictions: u64,
}

/// When a stored hint list stops being served as fresh. Ages are measured
/// in whole hour buckets: an entry resolved at bucket `b` read at bucket
/// `now` has age `now - b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Entries never age out — the pre-freshness behavior.
    Never,
    /// Entries older than this many buckets are logically evicted at read
    /// time (the read misses) and removed by the next eviction sweep.
    Ttl(u64),
    /// Entries older than this many buckets are still served, but the read
    /// reports them stale so the caller can admit a re-resolution.
    RefreshOnMiss(u64),
}

impl EvictionPolicy {
    /// Age (in buckets) beyond which an entry is stale; `None` = never.
    fn stale_after(&self) -> Option<u64> {
        match self {
            EvictionPolicy::Never => None,
            EvictionPolicy::Ttl(h) | EvictionPolicy::RefreshOnMiss(h) => Some(*h),
        }
    }

    /// Stable label for reports: `never`, `ttl(4)`, `refresh-on-miss(1)`.
    pub fn label(&self) -> String {
        match self {
            EvictionPolicy::Never => "never".into(),
            // vroom-lint: allow(hot-path-alloc) -- report label, built once per report render
            EvictionPolicy::Ttl(h) => format!("ttl({h})"),
            // vroom-lint: allow(hot-path-alloc) -- report label, built once per report render
            EvictionPolicy::RefreshOnMiss(h) => format!("refresh-on-miss({h})"),
        }
    }
}

/// The outcome of one policy-aware read.
#[derive(Debug, Clone, PartialEq)]
pub enum FreshRead {
    /// No live entry (or the policy logically evicted it).
    Miss,
    /// A live entry within its freshness window.
    Fresh {
        /// The stored hint list (Arc-shared, never copied).
        hints: Arc<Vec<Hint>>,
        /// Buckets since the entry was resolved.
        age_hours: u64,
    },
    /// A stale entry served anyway ([`EvictionPolicy::RefreshOnMiss`]):
    /// the caller should schedule a re-resolution.
    Stale {
        /// The stored hint list.
        hints: Arc<Vec<Hint>>,
        /// Buckets since the entry was resolved.
        age_hours: u64,
    },
}

impl FreshRead {
    /// The served hints, if any (fresh or stale).
    pub fn hints(&self) -> Option<&Arc<Vec<Hint>>> {
        match self {
            FreshRead::Miss => None,
            FreshRead::Fresh { hints, .. } | FreshRead::Stale { hints, .. } => Some(hints),
        }
    }

    /// Consume into the served hints, if any.
    pub fn into_hints(self) -> Option<Arc<Vec<Hint>>> {
        match self {
            FreshRead::Miss => None,
            FreshRead::Fresh { hints, .. } | FreshRead::Stale { hints, .. } => Some(hints),
        }
    }

    /// Whether this read served a stale entry.
    pub fn is_stale(&self) -> bool {
        matches!(self, FreshRead::Stale { .. })
    }
}

/// One stored entry: the hint list plus the hour bucket it was resolved at.
type Entry = (Arc<Vec<Hint>>, i64);

/// Classify one looked-up entry under `policy` at `now_bucket`. Returns the
/// read plus whether it counts as a hit and whether it counts as stale —
/// the single definition both layouts share, so sharded == unsharded is an
/// identity rather than a re-derivation.
fn classify(
    found: Option<&Entry>,
    now_bucket: i64,
    policy: EvictionPolicy,
) -> (FreshRead, bool, bool) {
    let Some((hints, bucket)) = found else {
        return (FreshRead::Miss, false, false);
    };
    let age_hours = now_bucket.saturating_sub(*bucket).max(0) as u64;
    match policy.stale_after() {
        Some(limit) if age_hours > limit => match policy {
            // Logical eviction: the read misses; the entry stays until the
            // next sequential sweep so reads never mutate the map.
            EvictionPolicy::Ttl(_) => (FreshRead::Miss, false, true),
            _ => (
                FreshRead::Stale {
                    hints: Arc::clone(hints),
                    age_hours,
                },
                true,
                true,
            ),
        },
        _ => (
            FreshRead::Fresh {
                hints: Arc::clone(hints),
                age_hours,
            },
            true,
            false,
        ),
    }
}

/// Shared dependency-hint storage, keyed by the interned URL of the HTML
/// response that carries the hints.
///
/// Values are `Arc`-shared: a `get` hands back a reference-counted handle,
/// never a copy of the hint list, so concurrent readers share one
/// allocation.
///
/// The legacy unversioned API (`get`/`put`/`get_many`/`put_many`) is
/// defined in terms of the versioned one at bucket 0 under
/// [`EvictionPolicy::Never`] — same counter bumps, same results.
pub trait HintStore: Send + Sync {
    /// The hints stored for `key`, if any. Counts one read (plus one hit on
    /// success) against the key's shard.
    fn get(&self, key: UrlId) -> Option<Arc<Vec<Hint>>> {
        self.get_fresh(key, 0, EvictionPolicy::Never).into_hints()
    }

    /// Store (or replace) the hints for `key`. Counts one write against the
    /// key's shard.
    fn put(&self, key: UrlId, hints: Vec<Hint>) {
        self.put_at(key, hints, 0);
    }

    /// The hints for each of `keys`, in input order. Logically identical to
    /// one [`get`](Self::get) per key — same counter bumps, same results —
    /// but a batching implementation takes each touched shard's lock once
    /// for the whole slice instead of once per key.
    fn get_many(&self, keys: &[UrlId]) -> Vec<Option<Arc<Vec<Hint>>>> {
        self.get_fresh_many(keys, 0, EvictionPolicy::Never)
            .into_iter()
            .map(FreshRead::into_hints)
            .collect()
    }

    /// Store every `(key, hints)` pair. Logically identical to one
    /// [`put`](Self::put) per pair in order — same counters, and duplicate
    /// keys resolve last-write-wins — with the same batched-locking
    /// opportunity as [`get_many`](Self::get_many).
    fn put_many(&self, entries: Vec<(UrlId, Vec<Hint>)>) {
        self.put_many_at(entries, 0);
    }

    /// Policy-aware read: the hints for `key` classified by age relative to
    /// `now_bucket`. Counts one read; a hit only when the policy serves the
    /// entry; one stale count when the entry is past its window.
    fn get_fresh(&self, key: UrlId, now_bucket: i64, policy: EvictionPolicy) -> FreshRead;

    /// Store (or replace) the hints for `key`, versioned with the hour
    /// bucket they were resolved at. Counts one write.
    fn put_at(&self, key: UrlId, hints: Vec<Hint>, bucket: i64);

    /// Policy-aware batched read, in input order. Logically identical to
    /// one [`get_fresh`](Self::get_fresh) per key.
    fn get_fresh_many(
        &self,
        keys: &[UrlId],
        now_bucket: i64,
        policy: EvictionPolicy,
    ) -> Vec<FreshRead> {
        keys.iter()
            .map(|&k| self.get_fresh(k, now_bucket, policy))
            .collect()
    }

    /// Versioned batched write. Logically identical to one
    /// [`put_at`](Self::put_at) per pair in order.
    fn put_many_at(&self, entries: Vec<(UrlId, Vec<Hint>)>, bucket: i64) {
        for (k, h) in entries {
            self.put_at(k, h, bucket);
        }
    }

    /// Physically remove every entry resolved before `min_bucket`,
    /// returning how many were removed. Call sequentially between batches
    /// (the Ttl sweep); reads never mutate, so this is the only path that
    /// shrinks the maps.
    fn evict_resolved_before(&self, min_bucket: i64) -> u64;

    /// Per-shard counters, in shard order (a single entry when unsharded).
    fn shard_stats(&self) -> Vec<ShardStats>;

    /// Per-shard freshness counters, parallel to
    /// [`shard_stats`](Self::shard_stats).
    fn freshness_stats(&self) -> Vec<FreshnessStats>;

    /// The full contents, merged across shards into one ordered map — the
    /// canonical form the equivalence proptests compare.
    fn snapshot(&self) -> BTreeMap<UrlId, Arc<Vec<Hint>>> {
        self.snapshot_versioned()
            .into_iter()
            .map(|(k, (h, _))| (k, h))
            .collect()
    }

    /// The full contents with each entry's resolution bucket.
    fn snapshot_versioned(&self) -> BTreeMap<UrlId, (Arc<Vec<Hint>>, i64)>;

    /// Total live entries across every shard.
    fn len(&self) -> usize {
        self.shard_stats().iter().map(|s| s.entries as usize).sum()
    }

    /// Whether the store holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Recover a lock whether or not a holder panicked: the maps hold plain
/// data whose invariants every critical section re-establishes before
/// unlocking, so a poisoned lock is safe to keep using.
fn unpoison<G>(r: Result<G, std::sync::PoisonError<G>>) -> G {
    r.unwrap_or_else(|e| e.into_inner())
}

/// The single-lock reference implementation.
#[derive(Debug, Default)]
pub struct UnshardedStore {
    map: Mutex<BTreeMap<UrlId, Entry>>,
    reads: AtomicU64,
    hits: AtomicU64,
    writes: AtomicU64,
    stale: AtomicU64,
    evictions: AtomicU64,
}

impl UnshardedStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl HintStore for UnshardedStore {
    fn get_fresh(&self, key: UrlId, now_bucket: i64, policy: EvictionPolicy) -> FreshRead {
        self.reads.fetch_add(1, Ordering::Relaxed);
        let (read, hit, stale) = {
            let map = unpoison(self.map.lock());
            classify(map.get(&key), now_bucket, policy)
        };
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        if stale {
            self.stale.fetch_add(1, Ordering::Relaxed);
        }
        read
    }

    fn put_at(&self, key: UrlId, hints: Vec<Hint>, bucket: i64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        unpoison(self.map.lock()).insert(key, (Arc::new(hints), bucket));
    }

    fn get_fresh_many(
        &self,
        keys: &[UrlId],
        now_bucket: i64,
        policy: EvictionPolicy,
    ) -> Vec<FreshRead> {
        self.reads.fetch_add(keys.len() as u64, Ordering::Relaxed);
        let mut out = Vec::with_capacity(keys.len());
        let mut hits = 0u64;
        let mut stale = 0u64;
        let map = unpoison(self.map.lock());
        for k in keys {
            let (read, hit, is_stale) = classify(map.get(k), now_bucket, policy);
            hits += hit as u64;
            stale += is_stale as u64;
            out.push(read);
        }
        drop(map);
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.stale.fetch_add(stale, Ordering::Relaxed);
        out
    }

    fn put_many_at(&self, entries: Vec<(UrlId, Vec<Hint>)>, bucket: i64) {
        self.writes
            .fetch_add(entries.len() as u64, Ordering::Relaxed);
        let mut map = unpoison(self.map.lock());
        for (k, h) in entries {
            map.insert(k, (Arc::new(h), bucket));
        }
    }

    fn evict_resolved_before(&self, min_bucket: i64) -> u64 {
        let removed = {
            let mut map = unpoison(self.map.lock());
            let before = map.len();
            map.retain(|_, (_, b)| *b >= min_bucket);
            (before - map.len()) as u64
        };
        self.evictions.fetch_add(removed, Ordering::Relaxed);
        removed
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        vec![ShardStats {
            reads: self.reads.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            entries: unpoison(self.map.lock()).len() as u64,
        }]
    }

    fn freshness_stats(&self) -> Vec<FreshnessStats> {
        vec![FreshnessStats {
            stale: self.stale.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }]
    }

    fn snapshot_versioned(&self) -> BTreeMap<UrlId, Entry> {
        unpoison(self.map.lock()).clone()
    }
}

/// One shard: an independent map plus its logical counters.
#[derive(Debug, Default)]
struct Shard {
    map: RwLock<BTreeMap<UrlId, Entry>>,
    reads: AtomicU64,
    hits: AtomicU64,
    writes: AtomicU64,
    stale: AtomicU64,
    evictions: AtomicU64,
}

/// The production layout: reads take a shard-local read lock, writes a
/// shard-local write lock, and operations on different shards proceed
/// fully in parallel.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<Shard>,
}

impl ShardedStore {
    /// A store with `shards` shards (`shards == 0` is clamped to 1).
    pub fn new(shards: usize) -> Self {
        ShardedStore {
            shards: (0..shards.max(1)).map(|_| Shard::default()).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `key` routes to. `UrlId::shard` returns a value < len by
    /// construction (proven by the routing proptest); the checked lookup
    /// keeps the serving path panic-free regardless.
    fn shard_of(&self, key: UrlId) -> Option<&Shard> {
        self.shards.get(key.shard(self.shards.len()))
    }
}

impl HintStore for ShardedStore {
    fn get_fresh(&self, key: UrlId, now_bucket: i64, policy: EvictionPolicy) -> FreshRead {
        let Some(shard) = self.shard_of(key) else {
            return FreshRead::Miss;
        };
        shard.reads.fetch_add(1, Ordering::Relaxed);
        let (read, hit, stale) = {
            let map = unpoison(shard.map.read());
            classify(map.get(&key), now_bucket, policy)
        };
        if hit {
            shard.hits.fetch_add(1, Ordering::Relaxed);
        }
        if stale {
            shard.stale.fetch_add(1, Ordering::Relaxed);
        }
        read
    }

    fn put_at(&self, key: UrlId, hints: Vec<Hint>, bucket: i64) {
        let Some(shard) = self.shard_of(key) else {
            return;
        };
        shard.writes.fetch_add(1, Ordering::Relaxed);
        unpoison(shard.map.write()).insert(key, (Arc::new(hints), bucket));
    }

    fn get_fresh_many(
        &self,
        keys: &[UrlId],
        now_bucket: i64,
        policy: EvictionPolicy,
    ) -> Vec<FreshRead> {
        let mut out = vec![FreshRead::Miss; keys.len()];
        // Group input indices by shard so each touched shard's read lock is
        // taken exactly once for the batch.
        let mut by_shard: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            by_shard
                .entry(k.shard(self.shards.len()))
                .or_default()
                .push(i);
        }
        for (s, idxs) in by_shard {
            let Some(shard) = self.shards.get(s) else {
                continue;
            };
            shard.reads.fetch_add(idxs.len() as u64, Ordering::Relaxed);
            let mut hits = 0u64;
            let mut stale = 0u64;
            // vroom-lint: allow(lock-in-hot-loop) -- one acquisition per touched shard per batch IS the hoisted form this rule asks for
            let map = unpoison(shard.map.read());
            for i in idxs {
                let (read, hit, is_stale) = classify(map.get(&keys[i]), now_bucket, policy);
                hits += hit as u64;
                stale += is_stale as u64;
                out[i] = read;
            }
            drop(map);
            shard.hits.fetch_add(hits, Ordering::Relaxed);
            shard.stale.fetch_add(stale, Ordering::Relaxed);
        }
        out
    }

    fn put_many_at(&self, entries: Vec<(UrlId, Vec<Hint>)>, bucket: i64) {
        // Group by shard, preserving entry order within each shard: a
        // duplicate key routes to one shard, so last-write-wins matches the
        // sequential per-key commit.
        let mut by_shard: BTreeMap<usize, Vec<(UrlId, Vec<Hint>)>> = BTreeMap::new();
        for (k, h) in entries {
            by_shard
                .entry(k.shard(self.shards.len()))
                .or_default()
                .push((k, h));
        }
        for (s, batch) in by_shard {
            let Some(shard) = self.shards.get(s) else {
                continue;
            };
            shard
                .writes
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            // vroom-lint: allow(lock-in-hot-loop) -- one acquisition per touched shard per batch IS the hoisted form this rule asks for
            let mut map = unpoison(shard.map.write());
            for (k, h) in batch {
                map.insert(k, (Arc::new(h), bucket));
            }
        }
    }

    fn evict_resolved_before(&self, min_bucket: i64) -> u64 {
        let mut total = 0u64;
        for shard in &self.shards {
            let removed = {
                // vroom-lint: allow(lock-in-hot-loop) -- sequential sweep: one write acquisition per shard, between batches
                let mut map = unpoison(shard.map.write());
                let before = map.len();
                map.retain(|_, (_, b)| *b >= min_bucket);
                (before - map.len()) as u64
            };
            shard.evictions.fetch_add(removed, Ordering::Relaxed);
            total += removed;
        }
        total
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                reads: s.reads.load(Ordering::Relaxed),
                hits: s.hits.load(Ordering::Relaxed),
                writes: s.writes.load(Ordering::Relaxed),
                entries: unpoison(s.map.read()).len() as u64,
            })
            .collect()
    }

    fn freshness_stats(&self) -> Vec<FreshnessStats> {
        self.shards
            .iter()
            .map(|s| FreshnessStats {
                stale: s.stale.load(Ordering::Relaxed),
                evictions: s.evictions.load(Ordering::Relaxed),
            })
            .collect()
    }

    fn snapshot_versioned(&self) -> BTreeMap<UrlId, Entry> {
        let mut merged = BTreeMap::new();
        for shard in &self.shards {
            // Copy the shard (Arc bumps, not hint copies) under its read
            // guard and merge after the guard drops: the merge work never
            // runs inside the critical section.
            let part = unpoison(shard.map.read()).clone();
            merged.extend(part);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hint(id: u32, tier: u8) -> Hint {
        Hint {
            url: UrlId::from_index(id as usize),
            tier,
            size_hint: 100,
        }
    }

    fn keys(n: u32) -> Vec<UrlId> {
        (0..n).map(|i| UrlId::from_index(i as usize)).collect()
    }

    #[test]
    fn put_get_roundtrip_both_layouts() {
        let stores: [Box<dyn HintStore>; 2] = [
            Box::new(UnshardedStore::new()),
            Box::new(ShardedStore::new(4)),
        ];
        for store in stores {
            let k = UrlId::from_index(3);
            assert!(store.get(k).is_none());
            store.put(k, vec![hint(7, 0), hint(8, 2)]);
            let got = store.get(k).expect("stored entry");
            assert_eq!(got.len(), 2);
            assert_eq!(got[0], hint(7, 0));
            assert_eq!(store.len(), 1);
            // Replacement keeps one live entry.
            store.put(k, vec![hint(9, 1)]);
            assert_eq!(store.len(), 1);
            assert_eq!(store.get(k).expect("replaced")[0], hint(9, 1));
        }
    }

    #[test]
    fn counters_are_logical_access_counts() {
        let store = ShardedStore::new(8);
        for &k in keys(16).iter() {
            store.put(k, vec![hint(0, 0)]);
        }
        for &k in keys(32).iter() {
            let _ = store.get(k); // 16 hits, 16 misses
        }
        let stats = store.shard_stats();
        assert_eq!(stats.len(), 8);
        let total = |f: fn(&ShardStats) -> u64| stats.iter().map(f).sum::<u64>();
        assert_eq!(total(|s| s.writes), 16);
        assert_eq!(total(|s| s.reads), 32);
        assert_eq!(total(|s| s.hits), 16);
        assert_eq!(total(|s| s.entries), 16);
        // The legacy API never classifies anything stale or evicts.
        let fresh = store.freshness_stats();
        assert_eq!(fresh.len(), 8);
        assert_eq!(fresh.iter().map(|f| f.stale).sum::<u64>(), 0);
        assert_eq!(fresh.iter().map(|f| f.evictions).sum::<u64>(), 0);
        // Fibonacci routing actually spreads the dense low ids.
        let populated = stats.iter().filter(|s| s.entries > 0).count();
        assert!(populated >= 4, "16 keys landed on only {populated} shards");
    }

    #[test]
    fn snapshot_merges_shards_into_the_unsharded_view() {
        let sharded = ShardedStore::new(5);
        let reference = UnshardedStore::new();
        for &k in keys(20).iter() {
            let hints = vec![hint(k.index() as u32, (k.index() % 3) as u8)];
            sharded.put(k, hints.clone());
            reference.put(k, hints);
        }
        assert_eq!(sharded.snapshot(), reference.snapshot());
        assert_eq!(sharded.snapshot_versioned(), reference.snapshot_versioned());
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let store = ShardedStore::new(0);
        assert_eq!(store.shard_count(), 1);
        store.put(UrlId::from_index(0), vec![hint(1, 0)]);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn shared_value_is_refcounted_not_copied() {
        let store = ShardedStore::new(2);
        let k = UrlId::from_index(1);
        store.put(k, vec![hint(2, 0)]);
        let a = store.get(k).expect("entry");
        let b = store.get(k).expect("entry");
        assert!(Arc::ptr_eq(&a, &b), "readers share one allocation");
    }

    #[test]
    fn ttl_classifies_by_age_and_never_ignores_it() {
        for store in [
            Box::new(UnshardedStore::new()) as Box<dyn HintStore>,
            Box::new(ShardedStore::new(4)),
        ] {
            let k = UrlId::from_index(5);
            store.put_at(k, vec![hint(1, 0)], 2000);
            // Within the window: fresh, with the age reported.
            match store.get_fresh(k, 2001, EvictionPolicy::Ttl(1)) {
                FreshRead::Fresh { age_hours, .. } => assert_eq!(age_hours, 1),
                other => panic!("expected fresh, got {other:?}"),
            }
            // Past the window: logical eviction — a miss, counted stale.
            assert_eq!(
                store.get_fresh(k, 2002, EvictionPolicy::Ttl(1)),
                FreshRead::Miss
            );
            // Never ignores age entirely.
            match store.get_fresh(k, 9000, EvictionPolicy::Never) {
                FreshRead::Fresh { age_hours, .. } => assert_eq!(age_hours, 7000),
                other => panic!("expected fresh, got {other:?}"),
            }
            let stats = store.shard_stats();
            let fresh = store.freshness_stats();
            assert_eq!(stats.iter().map(|s| s.reads).sum::<u64>(), 3);
            assert_eq!(stats.iter().map(|s| s.hits).sum::<u64>(), 2);
            assert_eq!(fresh.iter().map(|f| f.stale).sum::<u64>(), 1);
            // Logical eviction does not shrink the map; the sweep does.
            assert_eq!(store.len(), 1);
            assert_eq!(store.evict_resolved_before(2001), 1);
            assert_eq!(store.len(), 0);
            assert_eq!(fresh_total(&*store).evictions, 1);
        }
    }

    #[test]
    fn refresh_on_miss_serves_stale_and_flags_it() {
        for store in [
            Box::new(UnshardedStore::new()) as Box<dyn HintStore>,
            Box::new(ShardedStore::new(4)),
        ] {
            let k = UrlId::from_index(9);
            store.put_at(k, vec![hint(3, 1)], 100);
            let read = store.get_fresh(k, 105, EvictionPolicy::RefreshOnMiss(2));
            match &read {
                FreshRead::Stale { hints, age_hours } => {
                    assert_eq!(*age_hours, 5);
                    assert_eq!(hints[0], hint(3, 1));
                }
                other => panic!("expected stale, got {other:?}"),
            }
            assert!(read.is_stale());
            // Stale serves still count as hits — the load got its hints.
            let stats = store.shard_stats();
            assert_eq!(stats.iter().map(|s| s.hits).sum::<u64>(), 1);
            assert_eq!(fresh_total(&*store).stale, 1);
            // Re-resolving at the current bucket makes it fresh again.
            store.put_at(k, vec![hint(4, 0)], 105);
            assert!(!store
                .get_fresh(k, 105, EvictionPolicy::RefreshOnMiss(2))
                .is_stale());
        }
    }

    #[test]
    fn eviction_sweep_only_removes_older_entries() {
        let store = ShardedStore::new(3);
        store.put_at(UrlId::from_index(0), vec![hint(1, 0)], 10);
        store.put_at(UrlId::from_index(1), vec![hint(2, 0)], 12);
        store.put_at(UrlId::from_index(2), vec![hint(3, 0)], 14);
        assert_eq!(store.evict_resolved_before(12), 1);
        assert_eq!(store.len(), 2);
        assert_eq!(store.evict_resolved_before(12), 0, "sweep is idempotent");
        let buckets: Vec<i64> = store
            .snapshot_versioned()
            .values()
            .map(|(_, b)| *b)
            .collect();
        assert_eq!(buckets, vec![12, 14]);
    }

    #[test]
    fn batched_fresh_reads_match_per_key_reads() {
        let sharded = ShardedStore::new(4);
        let reference = UnshardedStore::new();
        for (i, &k) in keys(12).iter().enumerate() {
            sharded.put_at(k, vec![hint(i as u32, 0)], 2000 + i as i64 % 3);
            reference.put_at(k, vec![hint(i as u32, 0)], 2000 + i as i64 % 3);
        }
        let probe = keys(16);
        for policy in [
            EvictionPolicy::Never,
            EvictionPolicy::Ttl(1),
            EvictionPolicy::RefreshOnMiss(1),
        ] {
            let a = sharded.get_fresh_many(&probe, 2002, policy);
            let b = reference.get_fresh_many(&probe, 2002, policy);
            let c: Vec<FreshRead> = probe
                .iter()
                .map(|&k| reference.get_fresh(k, 2002, policy))
                .collect();
            assert_eq!(a, b);
            assert_eq!(b, c);
        }
        assert_eq!(
            fresh_total(&sharded).stale,
            fresh_total(&reference).stale / 2
        );
    }

    fn fresh_total(store: &dyn HintStore) -> FreshnessStats {
        store
            .freshness_stats()
            .iter()
            .fold(FreshnessStats::default(), |acc, f| FreshnessStats {
                stale: acc.stale + f.stale,
                evictions: acc.evictions + f.evictions,
            })
    }
}
