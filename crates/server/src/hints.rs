//! Wire encoding of dependency hints (paper Table 1).
//!
//! Tier 0 travels as standard `Link` preload headers; tiers 1 and 2 as
//! Vroom's `x-semi-important` / `x-unimportant` extension headers. The
//! response also exposes the custom headers to cross-origin JS schedulers
//! via `Access-Control-Expose-Headers` (§5.2, footnote 7).

use vroom_browser::config::Hint;
use vroom_html::{ResourceKind, Url};
use vroom_http2::headers::hint_headers as names;
use vroom_http2::Response;
use vroom_intern::UrlTable;

/// The `as=` destination token for a preload of this kind.
fn as_token(kind: ResourceKind) -> &'static str {
    match kind {
        ResourceKind::Js => "script",
        ResourceKind::Css => "style",
        ResourceKind::Image => "image",
        ResourceKind::Font => "font",
        ResourceKind::Html => "document",
        ResourceKind::Media => "video",
        ResourceKind::Xhr | ResourceKind::Other => "fetch",
    }
}

/// Attach a hint list to an HTTP response as headers. This is the wire
/// boundary: interned ids are materialized to URL strings here.
pub fn attach_hints(mut response: Response, hints: &[Hint], urls: &UrlTable) -> Response {
    for h in hints {
        match h.tier {
            0 => {
                let url = urls.get(h.url);
                let kind = ResourceKind::from_url(url);
                response.headers.push(vroom_hpack::HeaderField::new(
                    names::LINK,
                    // vroom-lint: allow(hot-path-alloc) -- the Link value composes URL, rel, and as-token into one string; no cached form exists
                    format!("<{url}>; rel=preload; as={}", as_token(kind)),
                ));
            }
            1 => {
                response.headers.push(vroom_hpack::HeaderField::new(
                    names::SEMI_IMPORTANT,
                    urls.full_url(h.url).share(),
                ));
            }
            _ => {
                response.headers.push(vroom_hpack::HeaderField::new(
                    names::UNIMPORTANT,
                    urls.full_url(h.url).share(),
                ));
            }
        }
    }
    response.headers.push(vroom_hpack::HeaderField::new(
        names::EXPOSE,
        "Link, x-semi-important, x-unimportant",
    ));
    response
}

/// Parse hint headers back out of a response, preserving header order within
/// each tier. Parsed URLs are interned into `urls`.
pub fn parse_hints(response: &Response, urls: &mut UrlTable) -> Vec<Hint> {
    let mut out = Vec::new();
    for f in &response.headers {
        match f.name.as_str() {
            n if n == names::LINK => {
                if let Some(url) = parse_link_preload(&f.value) {
                    out.push(Hint {
                        url: urls.intern(url),
                        tier: 0,
                        size_hint: 0,
                    });
                }
            }
            n if n == names::SEMI_IMPORTANT => {
                if let Some(url) = Url::parse(&f.value) {
                    out.push(Hint {
                        url: urls.intern(url),
                        tier: 1,
                        size_hint: 0,
                    });
                }
            }
            n if n == names::UNIMPORTANT => {
                if let Some(url) = Url::parse(&f.value) {
                    out.push(Hint {
                        url: urls.intern(url),
                        tier: 2,
                        size_hint: 0,
                    });
                }
            }
            _ => {}
        }
    }
    out.sort_by_key(|h| h.tier);
    out
}

/// Extract the URL from a `Link: <url>; rel=preload; …` value; `None` if the
/// value is not a preload relation.
pub fn parse_link_preload(value: &str) -> Option<Url> {
    let value = value.trim();
    let end = value.find('>')?;
    let url = Url::parse(value.get(1..end)?)?;
    let params = &value[end + 1..];
    if params
        .split(';')
        .any(|p| p.trim().eq_ignore_ascii_case("rel=preload"))
    {
        Some(url)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hint(urls: &mut UrlTable, url: &str, tier: u8) -> Hint {
        Hint {
            url: urls.intern(Url::parse(url).unwrap()),
            tier,
            size_hint: 1000,
        }
    }

    #[test]
    fn roundtrip_through_headers() {
        let mut urls = UrlTable::new();
        let hints = vec![
            hint(&mut urls, "https://a.com/app.js", 0),
            hint(&mut urls, "https://b.com/style.css", 0),
            hint(&mut urls, "https://c.net/widget.js", 1),
            hint(&mut urls, "https://a.com/hero.jpg", 2),
        ];
        let resp = attach_hints(Response::ok(), &hints, &urls);
        let parsed = parse_hints(&resp, &mut urls);
        assert_eq!(parsed.len(), 4);
        assert_eq!(
            parsed.iter().map(|h| h.tier).collect::<Vec<_>>(),
            vec![0, 0, 1, 2]
        );
        assert_eq!(parsed[0].url, hints[0].url, "re-interning is idempotent");
        assert_eq!(parsed[3].url, hints[3].url);
    }

    #[test]
    fn link_header_format_is_standard() {
        let mut urls = UrlTable::new();
        let js = hint(&mut urls, "https://a.com/app.js", 0);
        let resp = attach_hints(Response::ok(), &[js], &urls);
        let link = resp.header_values("link").next().unwrap();
        assert_eq!(link, "<https://a.com/app.js>; rel=preload; as=script");
        let css = hint(&mut urls, "https://a.com/m.css", 0);
        let css = attach_hints(Response::ok(), &[css], &urls);
        assert!(css
            .header_values("link")
            .next()
            .unwrap()
            .ends_with("as=style"));
    }

    #[test]
    fn expose_header_present_for_cors_schedulers() {
        let mut urls = UrlTable::new();
        let h = hint(&mut urls, "https://a.com/x.js", 1);
        let resp = attach_hints(Response::ok(), &[h], &urls);
        let expose = resp
            .header_values("access-control-expose-headers")
            .next()
            .unwrap();
        assert!(expose.contains("x-semi-important"));
        assert!(expose.contains("x-unimportant"));
    }

    #[test]
    fn non_preload_links_ignored() {
        assert!(parse_link_preload("<https://a.com/>; rel=canonical").is_none());
        assert!(parse_link_preload("garbage").is_none());
        assert!(parse_link_preload("<https://a.com/x.js>; rel=preload").is_some());
    }

    #[test]
    fn hpack_roundtrip_of_hint_headers() {
        // The hint headers survive real header compression.
        let mut urls = UrlTable::new();
        let hints = vec![
            hint(&mut urls, "https://a.com/app.js", 0),
            hint(&mut urls, "https://cdn.a.com/x.woff2", 2),
        ];
        let resp = attach_hints(Response::ok(), &hints, &urls);
        let mut enc = vroom_hpack::Encoder::new();
        let mut dec = vroom_hpack::Decoder::new();
        let wire = enc.encode(&resp.to_fields());
        let fields = dec.decode(&wire).unwrap();
        let back = Response::from_fields(&fields).unwrap();
        assert_eq!(parse_hints(&back, &mut urls).len(), 2);
    }
}
