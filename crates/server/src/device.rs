//! Device-type equivalence classes (paper §4.1.2, Fig 9).
//!
//! Rather than crawling every page on every device model, a Vroom server
//! bins device types into equivalence classes by comparing the stable sets
//! their loads produce: devices whose stable sets have high
//! intersection-over-union share one class (and one crawl).

use crate::resolve::ResolverInput;
use std::collections::BTreeSet;
use vroom_html::Url;
use vroom_pages::{DeviceClass, PageGenerator};

/// Stable set of a page as crawled on a given device: URLs present in all
/// three recent hourly loads.
pub fn stable_set(
    generator: &PageGenerator,
    hours: f64,
    device: DeviceClass,
    server_seed: u64,
) -> BTreeSet<Url> {
    let input = ResolverInput::new(generator, hours, device, server_seed);
    let loads = input.offline_loads();
    let later: Vec<BTreeSet<&Url>> = loads[1..]
        .iter()
        .map(|p| p.resources.iter().map(|r| &r.url).collect())
        .collect();
    loads[0]
        .resources
        .iter()
        .filter(|r| later.iter().all(|set| set.contains(&r.url)))
        .map(|r| r.url.clone())
        .collect()
}

/// Intersection-over-union of two URL sets.
pub fn iou(a: &BTreeSet<Url>, b: &BTreeSet<Url>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    inter / union
}

/// Group device classes whose stable sets agree above `threshold` IoU.
/// Greedy agglomeration against class representatives — cheap and adequate
/// for the handful of device buckets in practice.
pub fn equivalence_classes(
    generator: &PageGenerator,
    hours: f64,
    server_seed: u64,
    threshold: f64,
) -> Vec<Vec<DeviceClass>> {
    let mut classes: Vec<(BTreeSet<Url>, Vec<DeviceClass>)> = Vec::new();
    for device in DeviceClass::all() {
        let set = stable_set(generator, hours, device, server_seed);
        match classes
            .iter_mut()
            .find(|(rep, _)| iou(rep, &set) >= threshold)
        {
            Some((_, members)) => members.push(device),
            None => classes.push((set, vec![device])),
        }
    }
    classes.into_iter().map(|(_, members)| members).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vroom_pages::SiteProfile;

    #[test]
    fn phones_cluster_together_tablets_apart() {
        // Aggregate over several sites: IoU(phone, phone) must dominate
        // IoU(phone, tablet) — the paper's Fig 9 shape.
        let mut phone_phone = Vec::new();
        let mut phone_tablet = Vec::new();
        for seed in 0..12u64 {
            let g = PageGenerator::new(SiteProfile::news(), 4000 + seed);
            let nexus6 = stable_set(&g, 1500.0, DeviceClass::PhoneLarge, 3);
            let oneplus = stable_set(&g, 1500.0, DeviceClass::PhoneSmall, 3);
            let nexus10 = stable_set(&g, 1500.0, DeviceClass::Tablet, 3);
            phone_phone.push(iou(&nexus6, &oneplus));
            phone_tablet.push(iou(&nexus6, &nexus10));
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (pp, pt) = (avg(&phone_phone), avg(&phone_tablet));
        assert!(
            pp > pt,
            "phone-phone IoU {pp} must exceed phone-tablet {pt}"
        );
        assert!(pp > 0.85, "phones nearly identical, got {pp}");
        assert!(pt < 0.97, "tablets diverge, got {pt}");
    }

    #[test]
    fn equivalence_classes_reflect_buckets() {
        // With a threshold between the two IoU regimes, phones share a class.
        let g = PageGenerator::new(SiteProfile::news(), 4242);
        let classes = equivalence_classes(&g, 1500.0, 3, 0.9);
        let phone_class = classes
            .iter()
            .find(|c| c.contains(&DeviceClass::PhoneLarge))
            .unwrap();
        assert!(
            phone_class.contains(&DeviceClass::PhoneSmall),
            "phones must share a class: {classes:?}"
        );
    }

    #[test]
    fn crawler_identity_is_fixed() {
        // The crawler's user id is stable — offline resolution depends on it.
        assert_eq!(crate::resolve::CRAWLER_USER, 0xC4A3_11E4);
    }

    #[test]
    fn iou_edge_cases() {
        let empty: BTreeSet<Url> = BTreeSet::new();
        assert_eq!(iou(&empty, &empty), 1.0);
        let mut a = BTreeSet::new();
        a.insert(Url::https("x.com", "/a"));
        assert_eq!(iou(&a, &empty), 0.0);
        assert_eq!(iou(&a, &a.clone()), 1.0);
    }
}
