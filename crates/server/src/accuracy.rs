//! Accuracy scoring for server-side dependency resolution (paper §6.2,
//! Fig 21).
//!
//! The ground truth is the *predictable subset*: URLs that are identical
//! across back-to-back loads of the page, restricted to resources derived
//! from the root HTML excluding those derived from embedded HTMLs (the
//! scope a root-HTML response can legitimately cover).

use crate::resolve::{resolve, ResolverInput, Strategy, CRAWLER_USER};
use std::collections::BTreeSet;
use vroom_html::Url;
use vroom_intern::UrlTable;
use vroom_pages::{LoadContext, Page, PageGenerator};

/// Accuracy of one strategy on one page load.
#[derive(Debug, Clone, Copy)]
pub struct Accuracy {
    /// Fraction of the predictable subset the server missed.
    pub false_negative: f64,
    /// Extraneous URLs returned, as a fraction of the predictable subset.
    pub false_positive: f64,
    /// |predictable| / |scope| by resource count (Fig 21a).
    pub predictable_count_frac: f64,
    /// Same by bytes (Fig 21a).
    pub predictable_bytes_frac: f64,
}

/// Scope: resources derived from the root HTML minus iframe-derived ones.
fn scope(page: &Page) -> Vec<&vroom_pages::Resource> {
    page.resources
        .iter()
        .filter(|r| r.id != 0 && r.iframe_root.is_none())
        .collect()
}

/// Score a server-side URL set against the predictable subset of one load.
fn score(
    scope_a: &[&vroom_pages::Resource],
    predictable: &BTreeSet<&Url>,
    server_set: &BTreeSet<&Url>,
) -> Accuracy {
    let total_bytes: u64 = scope_a.iter().map(|r| r.size).sum();
    let predictable_bytes: u64 = scope_a
        .iter()
        .filter(|r| predictable.contains(&r.url))
        .map(|r| r.size)
        .sum();
    let fn_count = predictable
        .iter()
        .filter(|u| !server_set.contains(*u))
        .count();
    let fp_count = server_set
        .iter()
        .filter(|u| !predictable.contains(*u))
        .count();
    let denom = predictable.len().max(1) as f64;
    Accuracy {
        false_negative: fn_count as f64 / denom,
        false_positive: fp_count as f64 / denom,
        predictable_count_frac: predictable.len() as f64 / scope_a.len().max(1) as f64,
        predictable_bytes_frac: predictable_bytes as f64 / total_bytes.max(1) as f64,
    }
}

/// Evaluate one strategy against one client load (plus its back-to-back
/// repeat, which defines predictability).
pub fn evaluate(
    generator: &PageGenerator,
    ctx: &LoadContext,
    strategy: Strategy,
    server_seed: u64,
) -> Accuracy {
    let load_a = generator.snapshot(ctx);
    let load_b = generator.snapshot(&ctx.back_to_back(ctx.nonce ^ 0xB2B));

    let scope_a = scope(&load_a);
    let urls_b: BTreeSet<&Url> = scope(&load_b).iter().map(|r| &r.url).collect();
    let predictable: BTreeSet<&Url> = scope_a
        .iter()
        .filter(|r| urls_b.contains(&r.url))
        .map(|r| &r.url)
        .collect();

    let input = ResolverInput::new(generator, ctx.hours, ctx.device, server_seed);
    let mut urls = UrlTable::new();
    let deps = resolve(&input, &load_a, strategy, &mut urls);
    let server_set: BTreeSet<&Url> = urls
        .lookup(&load_a.url)
        .and_then(|id| deps.hints.get(&id))
        .map(|hs| hs.iter().map(|h| urls.get(h.url)).collect())
        .unwrap_or_default();

    score(&scope_a, &predictable, &server_set)
}

/// Evaluate hints that were resolved `age_hours` before the client's load:
/// the resolver runs against the *server's own* render at the older hour
/// (crawler identity, the copy a shared store is keyed on — exactly what
/// [`crate::batch::run_pass`] serves), while the predictable subset is
/// still defined by the client's load at `ctx.hours`. `age_hours == 0` is
/// the freshest a shared store can be; growing ages trace the
/// accuracy-vs-staleness frontier.
pub fn evaluate_aged(
    generator: &PageGenerator,
    ctx: &LoadContext,
    strategy: Strategy,
    server_seed: u64,
    age_hours: u64,
) -> Accuracy {
    let load_a = generator.snapshot(ctx);
    let load_b = generator.snapshot(&ctx.back_to_back(ctx.nonce ^ 0xB2B));

    let scope_a = scope(&load_a);
    let urls_b: BTreeSet<&Url> = scope(&load_b).iter().map(|r| &r.url).collect();
    let predictable: BTreeSet<&Url> = scope_a
        .iter()
        .filter(|r| urls_b.contains(&r.url))
        .map(|r| &r.url)
        .collect();

    // The server's copy at resolution time, quantized the way the batch
    // path quantizes passes (same bucket, same crawler nonce derivation).
    let bucket = crate::batch::hour_bucket(ctx.hours - age_hours as f64) as f64;
    let server_page = generator.snapshot(&LoadContext {
        hours: bucket,
        user_id: CRAWLER_USER,
        device: ctx.device,
        nonce: crate::batch::mix(server_seed, 0xBA7C4 ^ bucket as u64),
    });
    let input = ResolverInput::new(generator, bucket, ctx.device, server_seed);
    let mut urls = UrlTable::new();
    let deps = resolve(&input, &server_page, strategy, &mut urls);
    let server_set: BTreeSet<&Url> = urls
        .lookup(&server_page.url)
        .and_then(|id| deps.hints.get(&id))
        .map(|hs| hs.iter().map(|h| urls.get(h.url)).collect())
        .unwrap_or_default();

    score(&scope_a, &predictable, &server_set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vroom_pages::{DeviceClass, SiteProfile};

    fn ctx(h: f64) -> LoadContext {
        LoadContext {
            hours: h,
            user_id: 42,
            device: DeviceClass::PhoneLarge,
            nonce: 7,
        }
    }

    fn median(mut v: Vec<f64>) -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    }

    /// The paper's §6.2 headline: Vroom's FN < 5% at the median;
    /// offline-only misses far more; online-only misses nothing.
    #[test]
    fn fig21b_shape_false_negatives() {
        let mut vroom = Vec::new();
        let mut offline = Vec::new();
        let mut online = Vec::new();
        for seed in 0..25u64 {
            let g = PageGenerator::new(SiteProfile::news(), 9000 + seed);
            let c = ctx(1500.0 + seed as f64);
            vroom.push(evaluate(&g, &c, Strategy::Vroom, 1).false_negative);
            offline.push(evaluate(&g, &c, Strategy::OfflineOnly, 1).false_negative);
            online.push(evaluate(&g, &c, Strategy::OnlineOnly, 1).false_negative);
        }
        let (mv, mo, mn) = (median(vroom), median(offline), median(online));
        assert!(mv < 0.05, "Vroom median FN must be < 5%, got {mv}");
        assert!(mo > mv * 2.0, "offline-only misses much more: {mo} vs {mv}");
        assert!(mo > 0.10, "offline-only median FN substantial, got {mo}");
        assert!(mn < 0.02, "online-only is near-perfect on FN, got {mn}");
    }

    /// Fig 21c: Vroom's FP matches offline-only (low); online-only inflates.
    #[test]
    fn fig21c_shape_false_positives() {
        let mut vroom = Vec::new();
        let mut offline = Vec::new();
        let mut online = Vec::new();
        for seed in 0..25u64 {
            let g = PageGenerator::new(SiteProfile::news(), 9100 + seed);
            let c = ctx(1500.0 + seed as f64);
            vroom.push(evaluate(&g, &c, Strategy::Vroom, 1).false_positive);
            offline.push(evaluate(&g, &c, Strategy::OfflineOnly, 1).false_positive);
            online.push(evaluate(&g, &c, Strategy::OnlineOnly, 1).false_positive);
        }
        let (mv, mo, mn) = (median(vroom), median(offline), median(online));
        assert!(mv < 0.10, "Vroom FP stays low, got {mv}");
        assert!(
            (mv - mo).abs() < 0.05,
            "Vroom FP ≈ offline-only FP: {mv} vs {mo}"
        );
        assert!(mn > mv + 0.02, "online-only inflates FP: {mn} vs {mv}");
    }

    /// Fig 21a: the predictable subset dominates counts and bytes.
    #[test]
    fn fig21a_shape_predictable_share() {
        let mut counts = Vec::new();
        let mut bytes = Vec::new();
        for seed in 0..25u64 {
            let g = PageGenerator::new(SiteProfile::news(), 9200 + seed);
            let a = evaluate(&g, &ctx(1500.0), Strategy::Vroom, 1);
            counts.push(a.predictable_count_frac);
            bytes.push(a.predictable_bytes_frac);
        }
        let (mc, mb) = (median(counts), median(bytes));
        assert!(mc > 0.80, "predictable count share > 80%, got {mc}");
        assert!(mb > 0.90, "predictable bytes share > 90%, got {mb}");
    }

    /// The PreviousLoad strawman returns plenty of garbage (Fig 17's cause).
    #[test]
    fn previous_load_has_high_fp() {
        let g = PageGenerator::new(SiteProfile::news(), 9999);
        let a = evaluate(&g, &ctx(1500.0), Strategy::PreviousLoad, 1);
        let v = evaluate(&g, &ctx(1500.0), Strategy::Vroom, 1);
        assert!(
            a.false_positive > v.false_positive + 0.05,
            "prev-load FP {} must exceed Vroom FP {}",
            a.false_positive,
            v.false_positive
        );
    }
}
