//! `vroom-server` — the server side of Vroom: dependency resolution,
//! dependency-hint headers, push policies, device equivalence classes, and
//! a real wire-level HTTP/2 server.
//!
//! * [`resolve`] — offline + online dependency resolution with the paper's
//!   personalization rules (§4.1–§4.2), plus the strawman strategies the
//!   evaluation compares against,
//! * [`online`] — online analysis over *real rendered markup* via the real
//!   scanner (the wire-path twin of the model-based resolver),
//! * [`accuracy`] — false-negative/false-positive scoring against the
//!   predictable subset (§6.2, Fig 21),
//! * [`hints`] — Table 1's header encoding (`Link` preload /
//!   `x-semi-important` / `x-unimportant`),
//! * [`push_policy`] — which local dependencies to PUSH (§4.3),
//! * [`device`] — device-type equivalence classes (§4.1.2, Fig 9),
//! * [`store`] — the shared hint store behind the fleet serving path: a
//!   [`store::HintStore`] trait with unsharded (reference) and sharded
//!   (production) implementations plus logical contention counters,
//! * [`batch`] — batched resolution: one pure resolver pass per
//!   (page, hour, device) shared by every client in a batch window,
//! * [`freshness`] — the hint-freshness loop: observed-load feedback into
//!   the store and the Fig 7 calibration for the TTL eviction policy,
//! * [`wire`] — a working Vroom server + client speaking real HTTP/2 over
//!   TCP, serving a Mahimahi-style replay store.

#![forbid(unsafe_code)]

pub mod accuracy;
pub mod batch;
pub mod clusters;
pub mod device;
pub mod freshness;
pub mod hints;
pub mod online;
pub mod push_policy;
pub mod resolve;
pub mod store;
pub mod wire;

pub use accuracy::{evaluate, evaluate_aged, Accuracy};
pub use batch::{commit_pass, commit_pass_at, hour_bucket, run_pass, PassOutput};
pub use clusters::{cluster_pages, PageTypeClusters};
pub use freshness::{
    hint_quality_by_age, observed_pass, CALIBRATED_TTL_HOURS, PERSISTENCE_1H, PERSISTENCE_1WEEK,
};
pub use hints::{attach_hints, parse_hints};
pub use push_policy::{select_pushes, PushPolicy};
pub use resolve::{resolve, ResolvedDeps, ResolverInput, Strategy, CRAWLER_USER};
pub use store::{
    EvictionPolicy, FreshRead, FreshnessStats, HintStore, ShardStats, ShardedStore, UnshardedStore,
};
pub use wire::{MonotonicClock, WireClient, WireClock, WireFaults, WireServer, WireSite};
