//! Server-side dependency resolution (paper §4.1–§4.2).
//!
//! A Vroom-compliant server combines **offline** resolution (periodic loads
//! of its own pages; URLs seen in *all* recent loads are trusted) with
//! **online** analysis (URLs scanned from the HTML bytes being served right
//! now), while respecting personalization boundaries: dependencies derived
//! from embedded HTML (iframes) are left to the domain serving that HTML,
//! and script-personalized URLs get filtered out by the offline intersection
//! because they never repeat across crawls.
//!
//! Everything here is *mechanical*: the resolver only sees what a real
//! server would see — its own page loads (with its own crawler cookie jar
//! and fresh nonces) and the response bytes it is about to serve. It never
//! peeks at the client's load or at the generator's stability labels.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use vroom_browser::config::Hint;
use vroom_html::Url;
use vroom_intern::{UrlId, UrlTable};
use vroom_pages::{DeviceClass, LoadContext, Page, PageGenerator, ResourceId};

/// The server's crawler identity (its own cookie jar).
pub const CRAWLER_USER: u64 = 0xC4A3_11E4;

/// How the server decides which dependencies to return.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Offline intersection + online HTML scan, iframe-scoped — full Vroom.
    Vroom,
    /// Offline intersection only (§4.1.1 strawman 2).
    OfflineOnly,
    /// A fresh on-the-fly server-side load (§4.1.1 strawman 1).
    OnlineOnly,
    /// Everything seen in a single load within the past hour (Fig 17).
    PreviousLoad,
}

/// What the server knows when a request arrives: its own site (it can crawl
/// itself), the wall-clock time, and the client's device class (from the
/// user agent). It does *not* know the client's nonce or cookie contents.
pub struct ResolverInput<'g> {
    /// The site being served.
    pub generator: &'g PageGenerator,
    /// Wall-clock hours at request time.
    pub hours: f64,
    /// Device class inferred from the request's user agent.
    pub device: DeviceClass,
    /// Seed for the server's own crawl nonces.
    pub server_seed: u64,
    /// How many hours back each offline crawl happened. The paper's
    /// implementation intersects the loads gathered 1, 2, and 3 hours
    /// before the request (§6.1); the history-window ablation sweeps this.
    pub crawl_offsets: Vec<u64>,
}

impl<'g> ResolverInput<'g> {
    /// The standard configuration: hourly crawls, 3-hour window.
    pub fn new(
        generator: &'g PageGenerator,
        hours: f64,
        device: DeviceClass,
        server_seed: u64,
    ) -> Self {
        ResolverInput {
            generator,
            hours,
            device,
            server_seed,
            crawl_offsets: vec![1, 2, 3],
        }
    }

    /// The crawl context for the load `k` hours ago.
    fn crawl_ctx(&self, k: u64) -> LoadContext {
        LoadContext {
            hours: self.hours - k as f64,
            user_id: CRAWLER_USER,
            device: self.device,
            nonce: mix(self.server_seed, 0x0F_F11E ^ k),
        }
    }

    /// The server's recent offline loads (1, 2, and 3 hours ago by default
    /// — the implementation's hourly crawl, §4.1.2 / §6.1). Shared out of
    /// the generator's snapshot memo: the crawl contexts are pure functions
    /// of (site, hours, device, seed), so every load this hour reuses the
    /// same three materialized pages.
    pub fn offline_loads(&self) -> Vec<Arc<Page>> {
        self.crawl_offsets
            .iter()
            .map(|&k| self.generator.snapshot_arc(&self.crawl_ctx(k)))
            .collect()
    }
}

fn mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// The dependency lists a deployment returns, keyed by the interned URL of
/// the HTML whose response carries them. Ids resolve against the `UrlTable`
/// passed to [`resolve`].
#[derive(Debug, Clone, Default)]
pub struct ResolvedDeps {
    /// Hints per HTML response, in processing order.
    pub hints: BTreeMap<UrlId, Vec<Hint>>,
}

/// Resolve dependencies for the given client load.
///
/// `client_page` stands for the response bytes the servers are about to
/// serve: the online component reads only markup-visible children of each
/// HTML — exactly what [`vroom_html::scan_html`] extracts from the rendered
/// document (see `vroom_pages::render`).
///
/// Every URL in the result — HTML keys and hint targets — is interned into
/// `urls`; resolution works on strings internally (the offline intersection
/// is set algebra over crawled URLs) and converts to ids only once, when the
/// final ordered hint lists are emitted.
pub fn resolve(
    input: &ResolverInput<'_>,
    client_page: &Page,
    strategy: Strategy,
    urls: &mut UrlTable,
) -> ResolvedDeps {
    let mut out = ResolvedDeps::default();
    match strategy {
        Strategy::Vroom => {
            let offline = input.offline_loads();
            // Root HTML: offline ∪ online, excluding iframe-derived deps.
            let mut hints =
                offline_intersection_scoped(&offline, |r| r.iframe_root.is_none() && r.id != 0);
            merge_online(&mut hints, client_page, 0);
            out.hints
                .insert(urls.intern(client_page.url.clone()), finish(hints, urls));

            // Each iframe HTML: its own domain resolves its subtree the same
            // way (paper Fig 10: the ad server returns the red envelope).
            for frame in embedded_htmls(client_page) {
                let mut fh =
                    offline_intersection_scoped(&offline, |r| r.iframe_root == Some(frame));
                merge_online(&mut fh, client_page, frame);
                out.hints.insert(
                    urls.intern(client_page.resources[frame].url.clone()),
                    finish(fh, urls),
                );
            }
        }
        Strategy::OfflineOnly => {
            let offline = input.offline_loads();
            let hints =
                offline_intersection_scoped(&offline, |r| r.iframe_root.is_none() && r.id != 0);
            out.hints
                .insert(urls.intern(client_page.url.clone()), finish(hints, urls));
            for frame in embedded_htmls(client_page) {
                let fh = offline_intersection_scoped(&offline, |r| r.iframe_root == Some(frame));
                out.hints.insert(
                    urls.intern(client_page.resources[frame].url.clone()),
                    finish(fh, urls),
                );
            }
        }
        Strategy::OnlineOnly => {
            // One fresh server-side load right now, with the crawler's own
            // cookies and nonce.
            let fresh = input.generator.snapshot_arc(&LoadContext {
                hours: input.hours,
                user_id: CRAWLER_USER,
                device: input.device,
                nonce: mix(input.server_seed, 0xF8E5),
            });
            let hints: Vec<(u8, Url, u64, ResourceId)> = fresh
                .resources
                .iter()
                .filter(|r| r.iframe_root.is_none() && r.id != 0)
                .map(|r| (r.hint_tier(), r.url.clone(), r.size, r.id))
                .collect();
            out.hints
                .insert(urls.intern(client_page.url.clone()), finish(hints, urls));
            for frame in embedded_htmls(client_page) {
                let fh: Vec<(u8, Url, u64, ResourceId)> = fresh
                    .resources
                    .iter()
                    .filter(|r| r.iframe_root == Some(frame))
                    .map(|r| (r.hint_tier(), r.url.clone(), r.size, r.id))
                    .collect();
                out.hints.insert(
                    urls.intern(client_page.resources[frame].url.clone()),
                    finish(fh, urls),
                );
            }
        }
        Strategy::PreviousLoad => {
            // Everything from a single load an hour ago — including
            // iframe-derived and per-load-random URLs. The Fig 17 strawman.
            let prev = input.generator.snapshot_arc(&input.crawl_ctx(1));
            let hints: Vec<(u8, Url, u64, ResourceId)> = prev
                .resources
                .iter()
                .filter(|r| r.id != 0)
                .map(|r| (r.hint_tier(), r.url.clone(), r.size, r.id))
                .collect();
            out.hints
                .insert(urls.intern(client_page.url.clone()), finish(hints, urls));
        }
    }
    out
}

/// URLs present in *all* offline loads, within the scope `keep` (evaluated
/// on the first load's resources; node identity is positional, but matching
/// is by URL — a rotated URL simply fails the intersection).
fn offline_intersection_scoped(
    loads: &[Arc<Page>],
    keep: impl Fn(&vroom_pages::Resource) -> bool,
) -> Vec<(u8, Url, u64, ResourceId)> {
    let later: Vec<BTreeSet<&Url>> = loads[1..]
        .iter()
        .map(|p| p.resources.iter().map(|r| &r.url).collect())
        .collect();
    loads[0]
        .resources
        .iter()
        .filter(|r| keep(r))
        .filter(|r| later.iter().all(|set| set.contains(&r.url)))
        .map(|r| (r.hint_tier(), r.url.clone(), r.size, r.id))
        .collect()
}

/// Add the markup-visible children of `html_id` from the served bytes.
fn merge_online(
    hints: &mut Vec<(u8, Url, u64, ResourceId)>,
    client_page: &Page,
    html_id: ResourceId,
) {
    for child in client_page.children(html_id) {
        if child.via_markup && !hints.iter().any(|(_, u, _, _)| *u == child.url) {
            hints.push((child.hint_tier(), child.url.clone(), child.size, child.id));
        }
    }
}

/// Order by (tier, document position) — the order the client must process
/// them (§5.1) — and convert to wire hints. Sorting and dedup happen on the
/// real URLs *before* interning, so the emitted order (and therefore the
/// client's staged fetch order) is byte-for-byte what it was pre-interning.
fn finish(mut hints: Vec<(u8, Url, u64, ResourceId)>, urls: &mut UrlTable) -> Vec<Hint> {
    hints.sort_by(|a, b| a.0.cmp(&b.0).then(a.3.cmp(&b.3)).then(a.1.cmp(&b.1)));
    hints.dedup_by(|a, b| a.1 == b.1);
    hints
        .into_iter()
        .map(|(tier, url, size, _)| Hint {
            url: urls.intern(url),
            tier,
            size_hint: size,
        })
        .collect()
}

/// The iframe documents of a page.
pub fn embedded_htmls(page: &Page) -> Vec<ResourceId> {
    page.resources
        .iter()
        .filter(|r| r.id != 0 && r.kind == vroom_html::ResourceKind::Html)
        .map(|r| r.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vroom_pages::{SiteProfile, Stability};

    fn setup() -> (PageGenerator, LoadContext, Page) {
        let generator = PageGenerator::new(SiteProfile::news(), 1234);
        let ctx = LoadContext {
            hours: 2000.0,
            user_id: 7,
            device: DeviceClass::PhoneLarge,
            nonce: 99,
        };
        let page = generator.snapshot(&ctx);
        (generator, ctx, page)
    }

    fn input<'g>(generator: &'g PageGenerator, ctx: &LoadContext) -> ResolverInput<'g> {
        ResolverInput::new(generator, ctx.hours, ctx.device, 555)
    }

    fn run(
        generator: &PageGenerator,
        ctx: &LoadContext,
        page: &Page,
        strategy: Strategy,
    ) -> (UrlTable, ResolvedDeps) {
        let mut urls = UrlTable::new();
        let deps = resolve(&input(generator, ctx), page, strategy, &mut urls);
        (urls, deps)
    }

    fn hints_for<'a>(urls: &UrlTable, deps: &'a ResolvedDeps, url: &Url) -> &'a [Hint] {
        &deps.hints[&urls.lookup(url).expect("html url interned")]
    }

    #[test]
    fn vroom_hints_cover_most_stable_resources() {
        let (generator, ctx, page) = setup();
        let (urls, deps) = run(&generator, &ctx, &page, Strategy::Vroom);
        let root_hints = hints_for(&urls, &deps, &page.url);
        let hinted: BTreeSet<&Url> = root_hints.iter().map(|h| urls.get(h.url)).collect();
        let stable_main: Vec<&vroom_pages::Resource> = page
            .resources
            .iter()
            .filter(|r| r.id != 0 && r.iframe_root.is_none() && r.stability == Stability::Stable)
            .collect();
        let missed = stable_main
            .iter()
            .filter(|r| !hinted.contains(&r.url))
            .count();
        assert_eq!(
            missed, 0,
            "every permanently-stable main-page resource must be hinted"
        );
    }

    #[test]
    fn vroom_excludes_iframe_descendants_from_root_hints() {
        let (generator, ctx, page) = setup();
        let (urls, deps) = run(&generator, &ctx, &page, Strategy::Vroom);
        let root_hints = hints_for(&urls, &deps, &page.url);
        let iframe_urls: BTreeSet<&Url> = page
            .resources
            .iter()
            .filter(|r| r.iframe_root.is_some())
            .map(|r| &r.url)
            .collect();
        assert!(
            root_hints
                .iter()
                .all(|h| !iframe_urls.contains(urls.get(h.url))),
            "iframe-derived deps belong to the iframe's own server"
        );
        // But the iframes' own responses do carry hints for their subtrees.
        let frames = embedded_htmls(&page);
        assert!(!frames.is_empty());
        let covered = frames.iter().any(|&f| {
            urls.lookup(&page.resources[f].url)
                .and_then(|id| deps.hints.get(&id))
                .map(|hs| !hs.is_empty())
                .unwrap_or(false)
        });
        assert!(covered, "iframe servers hint their own content");
    }

    #[test]
    fn vroom_never_hints_perload_urls_it_cannot_know() {
        let (generator, ctx, page) = setup();
        let (urls, deps) = run(&generator, &ctx, &page, Strategy::Vroom);
        let all_hinted: Vec<&Hint> = deps.hints.values().flatten().collect();
        for r in &page.resources {
            if r.stability == Stability::PerLoadRandom {
                assert!(
                    all_hinted.iter().all(|h| urls.get(h.url) != &r.url),
                    "per-load URL {} cannot be predicted",
                    r.url
                );
            }
        }
    }

    #[test]
    fn online_component_catches_fresh_markup_content() {
        let (generator, ctx, page) = setup();
        let (vurls, vroom) = run(&generator, &ctx, &page, Strategy::Vroom);
        let (ourls, offline) = run(&generator, &ctx, &page, Strategy::OfflineOnly);
        let vroom_root: BTreeSet<&Url> = hints_for(&vurls, &vroom, &page.url)
            .iter()
            .map(|h| vurls.get(h.url))
            .collect();
        let offline_root: BTreeSet<&Url> = hints_for(&ourls, &offline, &page.url)
            .iter()
            .map(|h| ourls.get(h.url))
            .collect();
        // Flux children in the markup that rotated recently are missed by
        // offline-only but present in Vroom's online component.
        let caught_online: Vec<&vroom_pages::Resource> = page
            .children(0)
            .filter(|r| r.via_markup && !offline_root.contains(&r.url))
            .collect();
        assert!(
            !caught_online.is_empty(),
            "news pages rotate content hourly; something must be fresh"
        );
        for r in &caught_online {
            assert!(
                vroom_root.contains(&r.url),
                "online analysis must catch fresh markup URL {}",
                r.url
            );
        }
    }

    #[test]
    fn hints_are_ordered_by_tier_then_position() {
        let (generator, ctx, page) = setup();
        let (urls, deps) = run(&generator, &ctx, &page, Strategy::Vroom);
        let hints = hints_for(&urls, &deps, &page.url);
        let tiers: Vec<u8> = hints.iter().map(|h| h.tier).collect();
        let mut sorted = tiers.clone();
        sorted.sort_unstable();
        assert_eq!(tiers, sorted, "hints must be tier-ordered");
        assert!(hints.iter().any(|h| h.tier == 0));
        assert!(hints.iter().any(|h| h.tier == 2));
    }

    #[test]
    fn previous_load_includes_stale_and_random_urls() {
        let (generator, ctx, page) = setup();
        let (urls, deps) = run(&generator, &ctx, &page, Strategy::PreviousLoad);
        let hints = hints_for(&urls, &deps, &page.url);
        let current: BTreeSet<&Url> = page.resources.iter().map(|r| &r.url).collect();
        let stale = hints
            .iter()
            .filter(|h| !current.contains(urls.get(h.url)))
            .count();
        assert!(
            stale > 0,
            "a raw previous load must contain URLs the client will never fetch"
        );
    }

    #[test]
    fn online_only_tracks_current_load_closely_but_not_exactly() {
        let (generator, ctx, page) = setup();
        let (urls, deps) = run(&generator, &ctx, &page, Strategy::OnlineOnly);
        let hints = hints_for(&urls, &deps, &page.url);
        let current: BTreeSet<&Url> = page.resources.iter().map(|r| &r.url).collect();
        let (good, bad): (Vec<&Hint>, Vec<&Hint>) = hints
            .iter()
            .partition(|h| current.contains(urls.get(h.url)));
        assert!(good.len() > bad.len() * 2, "mostly accurate");
        assert!(
            !bad.is_empty(),
            "the fresh crawl's own nonce must produce mismatched random URLs"
        );
    }

    #[test]
    fn resolution_is_deterministic() {
        let (generator, ctx, page) = setup();
        let (ua, a) = run(&generator, &ctx, &page, Strategy::Vroom);
        let (ub, b) = run(&generator, &ctx, &page, Strategy::Vroom);
        assert_eq!(ua, ub, "identical runs intern identically");
        assert_eq!(hints_for(&ua, &a, &page.url), hints_for(&ub, &b, &page.url));
    }
}
