//! Server push policies (paper §4.3).
//!
//! A domain can only push content it owns, so every policy filters to the
//! serving domain. Vroom pushes exactly the *high-priority local*
//! dependencies; the evaluation also exercises push-everything variants
//! (Figs 3, 18).

use vroom_browser::config::Hint;
use vroom_intern::UrlTable;

/// Which locally-served dependencies a server pushes alongside an HTML
/// response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushPolicy {
    /// No push at all.
    None,
    /// Push high-priority (tier 0) resources served by this domain — the
    /// Vroom policy.
    HighPriorityLocal,
    /// Push everything this domain serves ("Push All").
    AllLocal,
}

/// Select the pushes for an HTML served by `domain`, given the hints its
/// response carries (ids resolved against `urls`).
pub fn select_pushes(
    policy: PushPolicy,
    domain: &str,
    hints: &[Hint],
    urls: &UrlTable,
) -> Vec<Hint> {
    match policy {
        PushPolicy::None => Vec::new(),
        PushPolicy::HighPriorityLocal => hints
            .iter()
            .filter(|h| urls.get(h.url).host == domain && h.tier == 0)
            .copied()
            .collect(),
        PushPolicy::AllLocal => hints
            .iter()
            .filter(|h| urls.get(h.url).host == domain)
            .copied()
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vroom_html::Url;

    fn hints(urls: &mut UrlTable) -> Vec<Hint> {
        vec![
            Hint {
                url: urls.intern(Url::https("a.com", "/app.js")),
                tier: 0,
                size_hint: 1,
            },
            Hint {
                url: urls.intern(Url::https("b.com", "/lib.js")),
                tier: 0,
                size_hint: 1,
            },
            Hint {
                url: urls.intern(Url::https("a.com", "/widget.js")),
                tier: 1,
                size_hint: 1,
            },
            Hint {
                url: urls.intern(Url::https("a.com", "/img.jpg")),
                tier: 2,
                size_hint: 1,
            },
        ]
    }

    #[test]
    fn high_priority_local_filters_both_ways() {
        let mut urls = UrlTable::new();
        let hs = hints(&mut urls);
        let p = select_pushes(PushPolicy::HighPriorityLocal, "a.com", &hs, &urls);
        assert_eq!(p.len(), 1);
        assert_eq!(urls.get(p[0].url).path, "/app.js");
    }

    #[test]
    fn all_local_keeps_every_tier_but_only_own_domain() {
        let mut urls = UrlTable::new();
        let hs = hints(&mut urls);
        let p = select_pushes(PushPolicy::AllLocal, "a.com", &hs, &urls);
        assert_eq!(p.len(), 3);
        assert!(p.iter().all(|h| urls.get(h.url).host == "a.com"));
    }

    #[test]
    fn none_pushes_nothing() {
        let mut urls = UrlTable::new();
        let hs = hints(&mut urls);
        assert!(select_pushes(PushPolicy::None, "a.com", &hs, &urls).is_empty());
    }
}
