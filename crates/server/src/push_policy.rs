//! Server push policies (paper §4.3).
//!
//! A domain can only push content it owns, so every policy filters to the
//! serving domain. Vroom pushes exactly the *high-priority local*
//! dependencies; the evaluation also exercises push-everything variants
//! (Figs 3, 18).

use vroom_browser::config::Hint;

/// Which locally-served dependencies a server pushes alongside an HTML
/// response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushPolicy {
    /// No push at all.
    None,
    /// Push high-priority (tier 0) resources served by this domain — the
    /// Vroom policy.
    HighPriorityLocal,
    /// Push everything this domain serves ("Push All").
    AllLocal,
}

/// Select the pushes for an HTML served by `domain`, given the hints its
/// response carries.
pub fn select_pushes(policy: PushPolicy, domain: &str, hints: &[Hint]) -> Vec<Hint> {
    match policy {
        PushPolicy::None => Vec::new(),
        PushPolicy::HighPriorityLocal => hints
            .iter()
            .filter(|h| h.url.host == domain && h.tier == 0)
            .cloned()
            .collect(),
        PushPolicy::AllLocal => hints
            .iter()
            .filter(|h| h.url.host == domain)
            .cloned()
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vroom_html::Url;

    fn hints() -> Vec<Hint> {
        vec![
            Hint {
                url: Url::https("a.com", "/app.js"),
                tier: 0,
                size_hint: 1,
            },
            Hint {
                url: Url::https("b.com", "/lib.js"),
                tier: 0,
                size_hint: 1,
            },
            Hint {
                url: Url::https("a.com", "/widget.js"),
                tier: 1,
                size_hint: 1,
            },
            Hint {
                url: Url::https("a.com", "/img.jpg"),
                tier: 2,
                size_hint: 1,
            },
        ]
    }

    #[test]
    fn high_priority_local_filters_both_ways() {
        let p = select_pushes(PushPolicy::HighPriorityLocal, "a.com", &hints());
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].url.path, "/app.js");
    }

    #[test]
    fn all_local_keeps_every_tier_but_only_own_domain() {
        let p = select_pushes(PushPolicy::AllLocal, "a.com", &hints());
        assert_eq!(p.len(), 3);
        assert!(p.iter().all(|h| h.url.host == "a.com"));
    }

    #[test]
    fn none_pushes_nothing() {
        assert!(select_pushes(PushPolicy::None, "a.com", &hints()).is_empty());
    }
}
