//! The hint-freshness loop: observed-load feedback and the
//! accuracy-vs-staleness calibration (ROADMAP item 3).
//!
//! Crawler passes ([`crate::batch::run_pass`]) are the *push* half of
//! keeping a shared [`crate::store::HintStore`] fresh; this module adds the
//! *pull* half — turning what a real client actually fetched back into a
//! committable [`PassOutput`] — plus the Fig 7 persistence constants that
//! calibrate the store's TTL policy.
//!
//! The corpus generator models the paper's Fig 7 churn curve: roughly 70%
//! of a page's URLs persist across one hour and 50% across one week, with
//! ~22% turning over between back-to-back loads. The calibration argument
//! for [`CALIBRATED_TTL_HOURS`]: the sub-hour lifetime class is fully
//! rotated after one bucket, so a hint list older than one bucket has
//! already lost the (1 − 0.70) ≈ 30% of its targets that churn fastest —
//! past that point stale hints buy wasted fetches (Fig 17's failure mode)
//! faster than they buy discovery, and re-resolution is cheaper than the
//! waste. `vroom-bench freshness` renders that crossover as onload speedup
//! vs hint age per eviction policy.

use vroom_browser::LoadResult;
use vroom_pages::{LoadContext, Page, PageGenerator};

use crate::accuracy::{evaluate_aged, Accuracy};
use crate::batch::{PassHint, PassOutput};
use crate::resolve::{embedded_htmls, Strategy};

/// Fraction of a page's URLs that persist across one hour (paper Fig 7).
pub const PERSISTENCE_1H: f64 = 0.70;

/// Fraction of a page's URLs that persist across one week (paper Fig 7).
pub const PERSISTENCE_1WEEK: f64 = 0.50;

/// TTL (in hour buckets) calibrated to the Fig 7 persistence curve: after
/// one bucket the fastest-churning ~30% of hint targets are gone, and a
/// stale list starts costing more in wasted fetches than it saves in
/// discovery. See the module docs for the full argument.
pub const CALIBRATED_TTL_HOURS: u64 = 1;

/// Whether a client actually obtained resource `id` during the load (from
/// the network or its cache) — the ground truth observed feedback commits.
fn fetched_ok(result: &LoadResult, id: usize) -> bool {
    result
        .resources
        .get(id)
        .is_some_and(|t| !t.failed && (t.requested.is_some() || t.from_cache))
}

/// Turn one observed client load into a committable pass: for the root
/// document and each embedded HTML, the markup-visible children the client
/// actually fetched, as hints in tier order.
///
/// Only `via_markup` children are fed back — per-load and user-personalized
/// URLs are exactly what Vroom never hints, and committing them would
/// poison the shared store with one client's noise. The result goes through
/// [`crate::batch::commit_pass_at`] with the observing client's bucket, so
/// a store under a TTL policy treats real-traffic feedback exactly like a
/// crawler pass of the same age.
pub fn observed_pass(page: &Page, result: &LoadResult) -> PassOutput {
    let mut docs = vec![0usize];
    docs.extend(embedded_htmls(page));
    let entries = docs
        .into_iter()
        .filter_map(|doc| {
            let mut targets: Vec<PassHint> = page
                .children(doc)
                .filter(|r| r.via_markup && fetched_ok(result, r.id))
                // vroom-lint: allow(hot-path-alloc) -- the observed pass owns its URLs; once per learning commit, off the serving path
                .map(|r| (r.url.clone(), r.hint_tier(), r.size))
                .collect();
            if targets.is_empty() {
                return None;
            }
            // Tier order, as the wire scanner emits (stable sort keeps
            // document order within a tier).
            targets.sort_by_key(|(_, tier, _)| *tier);
            // vroom-lint: allow(hot-path-alloc) -- the observed pass owns its URLs; once per learning commit, off the serving path
            Some((page.resources[doc].url.clone(), targets))
        })
        .collect();
    PassOutput { entries }
}

/// Vroom hint quality as a function of hint age: `(age, accuracy)` for
/// every age in `0..=max_age_hours`, with the resolver pinned to the hour
/// the hints were (hypothetically) resolved and the client load pinned to
/// `ctx.hours` — the per-site curve behind the freshness exhibit.
pub fn hint_quality_by_age(
    generator: &PageGenerator,
    ctx: &LoadContext,
    server_seed: u64,
    max_age_hours: u64,
) -> Vec<(u64, Accuracy)> {
    (0..=max_age_hours)
        .map(|age| {
            (
                age,
                evaluate_aged(generator, ctx, Strategy::Vroom, server_seed, age),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::commit_pass_at;
    use crate::store::{EvictionPolicy, HintStore, ShardedStore};
    use vroom_browser::config::{FetchPolicy, LoadConfig};
    use vroom_browser::BrowserEngine;
    use vroom_intern::UrlTable;
    use vroom_net::NetworkProfile;
    use vroom_pages::{DeviceClass, SiteProfile};

    fn ctx(h: f64) -> LoadContext {
        LoadContext {
            hours: h,
            user_id: 42,
            device: DeviceClass::PhoneLarge,
            nonce: 7,
        }
    }

    fn load(page: &Page) -> LoadResult {
        let mut cfg = LoadConfig::http2_baseline();
        cfg.fetch_policy = FetchPolicy::OnDiscovery;
        BrowserEngine::load(page, &NetworkProfile::lte(), &cfg)
    }

    #[test]
    fn observed_pass_commits_markup_children_the_client_fetched() {
        let g = PageGenerator::new(SiteProfile::news(), 555);
        let c = ctx(2000.0);
        let page = g.snapshot(&c);
        let result = load(&page);
        let obs = observed_pass(&page, &result);
        assert!(!obs.entries.is_empty(), "a news page yields observed hints");
        assert_eq!(obs.entries[0].0, page.url, "root document first");
        for (html, targets) in &obs.entries {
            assert!(!targets.is_empty());
            let doc = page
                .resources
                .iter()
                .find(|r| &r.url == html)
                .expect("entry key is a page document");
            for (url, tier, size) in targets {
                let child = page
                    .children(doc.id)
                    .find(|r| &r.url == url)
                    .expect("every target is a child of its document");
                assert!(child.via_markup, "only markup-visible URLs fed back");
                assert_eq!(*tier, child.hint_tier());
                assert_eq!(*size, child.size);
            }
            // Tier-ordered, like the wire scanner's output.
            assert!(targets.windows(2).all(|w| w[0].1 <= w[1].1));
        }

        // The observed pass round-trips through the store like any other.
        let store = ShardedStore::new(4);
        let mut urls = UrlTable::new();
        let keys = commit_pass_at(&obs, &store, &mut urls, 2000);
        let read = store.get_fresh(keys[0], 2000, EvictionPolicy::Ttl(1));
        assert_eq!(
            read.hints().expect("root entry readable").len(),
            obs.entries[0].1.len()
        );
    }

    #[test]
    fn observed_pass_skips_failed_resources() {
        let g = PageGenerator::new(SiteProfile::news(), 556);
        let page = g.snapshot(&ctx(2000.0));
        let mut result = load(&page);
        // Pretend every resource failed: nothing must be fed back.
        for t in &mut result.resources {
            t.failed = true;
        }
        let obs = observed_pass(&page, &result);
        assert!(obs.entries.is_empty());
    }

    #[test]
    fn hint_quality_decays_with_age() {
        // Median the curve over several sites: per-site curves are noisy
        // (an individual page may churn little in 6 hours).
        let mut fn_by_age = vec![Vec::new(); 7];
        for seed in 0..12u64 {
            let g = PageGenerator::new(SiteProfile::news(), 7400 + seed);
            let curve = hint_quality_by_age(&g, &ctx(1500.0 + seed as f64), 1, 6);
            assert_eq!(curve.len(), 7);
            for (age, acc) in curve {
                fn_by_age[age as usize].push(acc.false_negative + acc.false_positive);
            }
        }
        let median = |v: &mut Vec<f64>| {
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        let fresh = median(&mut fn_by_age[0]);
        let stale = median(&mut fn_by_age[6]);
        assert!(
            stale > fresh,
            "6-hour-old hints must score worse (FN+FP) than fresh ones: {stale:.3} vs {fresh:.3}"
        );
    }

    #[test]
    fn calibration_constants_match_the_corpus_model() {
        // The generator's churn model is built from these same Fig 7
        // anchors; keep the calibration constants tied to them.
        assert!(PERSISTENCE_1H > PERSISTENCE_1WEEK);
        assert!((0.0..=1.0).contains(&PERSISTENCE_1WEEK));
        assert_eq!(CALIBRATED_TTL_HOURS, 1);
    }
}
