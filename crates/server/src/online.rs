//! Online HTML analysis against *real markup* (paper §4.1.2).
//!
//! The simulator-facing resolver reads `via_markup` flags straight from the
//! page model; this module closes the loop for the wire path: it renders the
//! page's actual HTML, runs the real scanner over the bytes, and converts
//! the findings into hints — demonstrating that the markup, the scanner, and
//! the model agree.

use std::collections::BTreeMap;

use vroom_browser::config::Hint;
use vroom_html::{scan_html, ExecMode, ResourceKind, Url};
use vroom_intern::UrlTable;
use vroom_pages::{render_html, Page, ResourceId};

/// Size hint for a scanned URL the server has no stored copy of (a
/// churned or externally-referenced resource): a mid-range guess keeps the
/// scheduler from treating the unknown as either trivial or dominant.
pub const UNKNOWN_SIZE_HINT: u64 = 10_000;

/// Tier assignment from scanner output alone (the server has no model
/// labels on the wire): processed kinds are preload unless async/defer;
/// embedded documents and payload bytes are unimportant.
fn tier_of(kind: ResourceKind, exec: ExecMode) -> u8 {
    match kind {
        ResourceKind::Js if exec != ExecMode::Sync => 1,
        ResourceKind::Css | ResourceKind::Js => 0,
        // An embedded document is low priority (processed after the root).
        ResourceKind::Html => 2,
        _ => 2,
    }
}

/// The stored size for a scanned URL, or [`UNKNOWN_SIZE_HINT`] when the
/// server holds no copy of it (the URL churned out from under the markup,
/// or points somewhere the server never crawled).
fn size_for(sizes: &BTreeMap<&Url, u64>, url: &Url) -> u64 {
    sizes.get(url).copied().unwrap_or(UNKNOWN_SIZE_HINT)
}

/// Scan the rendered markup of `html_id` and produce hints for everything
/// the document statically references. Scanned URLs are interned into
/// `urls`.
pub fn scan_served_html(page: &Page, html_id: ResourceId, urls: &mut UrlTable) -> Vec<Hint> {
    let base = &page.resources[html_id].url;
    let markup = render_html(page, html_id);
    // Size from the page when the URL matches a real resource (the server
    // knows sizes of content it stores). One URL→size map for the whole
    // scan, not a linear rescan of `page.resources` per hint.
    let sizes: BTreeMap<&Url, u64> = page.resources.iter().map(|r| (&r.url, r.size)).collect();
    let mut hints: Vec<Hint> = scan_html(base, &markup)
        .into_iter()
        .map(|d| {
            let size = size_for(&sizes, &d.url);
            Hint {
                url: urls.intern(d.url),
                tier: tier_of(d.kind, d.exec),
                size_hint: size,
            }
        })
        .collect();
    hints.sort_by_key(|h| h.tier);
    hints
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use vroom_html::Url;
    use vroom_pages::{LoadContext, PageGenerator, SiteProfile};

    #[test]
    fn scanner_output_matches_model_markup_children() {
        let page = PageGenerator::new(SiteProfile::news(), 321).snapshot(&LoadContext::reference());
        let mut urls = UrlTable::new();
        let hints = scan_served_html(&page, 0, &mut urls);
        let hinted: BTreeSet<&Url> = hints.iter().map(|h| urls.get(h.url)).collect();
        for child in page.children(0) {
            assert_eq!(
                hinted.contains(&child.url),
                child.via_markup,
                "scanner and model must agree on {}",
                child.url
            );
        }
    }

    #[test]
    fn tiers_from_markup_match_model_tiers_for_main_resources() {
        let page = PageGenerator::new(SiteProfile::news(), 322).snapshot(&LoadContext::reference());
        let mut urls = UrlTable::new();
        let hints = scan_served_html(&page, 0, &mut urls);
        for h in &hints {
            let url = urls.get(h.url);
            let model = page.resources.iter().find(|r| &r.url == url).unwrap();
            assert_eq!(
                h.tier,
                model.hint_tier(),
                "tier mismatch for {url} ({:?})",
                model.kind
            );
        }
    }

    #[test]
    fn sizes_resolve_from_the_store() {
        let page = PageGenerator::new(SiteProfile::news(), 323).snapshot(&LoadContext::reference());
        let mut urls = UrlTable::new();
        let hints = scan_served_html(&page, 0, &mut urls);
        for h in &hints {
            let url = urls.get(h.url);
            let model = page.resources.iter().find(|r| &r.url == url).unwrap();
            assert_eq!(h.size_hint, model.size);
        }
    }

    #[test]
    fn unmatched_url_falls_back_to_the_named_constant() {
        let page = PageGenerator::new(SiteProfile::news(), 324).snapshot(&LoadContext::reference());
        let sizes: BTreeMap<&Url, u64> = page.resources.iter().map(|r| (&r.url, r.size)).collect();
        // A known URL resolves to its stored size...
        let known = &page.resources[1];
        assert_eq!(size_for(&sizes, &known.url), known.size);
        // ...while a URL the server holds no copy of (churned out from
        // under the markup) gets the explicit unknown-size fallback.
        let churned = Url::https("cdn.example", "/rotated-away.js");
        assert!(page.resources.iter().all(|r| r.url != churned));
        assert_eq!(size_for(&sizes, &churned), UNKNOWN_SIZE_HINT);
    }
}
