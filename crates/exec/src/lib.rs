//! Deterministic parallel execution for the experiment harness.
//!
//! The simulation made every per-site load a pure function of
//! `(site, ctx, seeds)` (DESIGN.md §2a); this crate turns that purity into
//! wall-clock speed without giving up byte-identical output. The one
//! primitive, [`par_map_indexed`], fans a slice out over a bounded pool of
//! `std` threads and collects each result into the slot of its *input*
//! index, so the returned `Vec` — and therefore everything rendered from
//! it — is identical for any worker count and any completion order.
//!
//! Output invariance argument, in three steps:
//!  1. the mapped closure is pure (enforced by `vroom-lint`'s `sim-purity`
//!     rule, which keeps analyzing closure bodies passed through here);
//!  2. results are placed by input index, not arrival order, so scheduling
//!     cannot permute them;
//!  3. `workers <= 1` bypasses threads entirely and the result is defined
//!     to equal that sequential reference.
//! Hence `par_map_indexed(items, w, f) == par_map_indexed(items, 1, f)`
//! for every `w` — the property the proptest in `tests/tests/parallel.rs`
//! and the `run_all` golden byte-identity test both pin down.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The worker count to use when the user asked for "as fast as the
/// hardware allows": the machine's available parallelism, `1` when that
/// cannot be determined.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on `workers` threads, returning results in input
/// order. `f` receives `(index, &item)` exactly once per item.
///
/// `workers <= 1` (or fewer than two items) runs inline on the calling
/// thread with no pool at all — the sequential reference the parallel
/// path must, and does, reproduce byte-for-byte.
pub fn par_map_indexed<I, T, F>(items: &[I], workers: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let workers = workers.min(items.len());
    let chunk = claim_chunk(items.len(), workers);
    let next = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, T)>();
    // vroom-lint: allow(sim-purity) -- the workspace's single sanctioned thread pool: workers race only for *indices*; results land in input-index slots, so output is schedule-invariant
    std::thread::scope(|scope| {
        {
            // Scope the original sender to this block: each worker owns a
            // clone, and the last sender hanging up is what ends the
            // collection loop below.
            let tx = tx;
            for _ in 0..workers {
                let tx = tx.clone();
                let (next, f) = (&next, &f);
                scope.spawn(move || loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= items.len() {
                        break;
                    }
                    for i in start..(start + chunk).min(items.len()) {
                        if tx.send((i, f(i, &items[i]))).is_err() {
                            return; // receiver gone: a sibling panicked mid-collect
                        }
                    }
                });
            }
        }
        let mut slots: Vec<Option<T>> = (0..items.len()).map(|_| None).collect();
        for (i, value) in rx {
            slots[i] = Some(value);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index produced exactly once"))
            .collect()
    })
}

/// Indices-per-claim for the work-stealing counter: large enough to
/// amortize the atomic (and the cache-line ping-pong it causes) over many
/// items, small enough that the tail still load-balances — 8 claims per
/// worker leaves plenty of stealing opportunity for uneven item costs.
fn claim_chunk(items: usize, workers: usize) -> usize {
    (items / (workers.max(1) * 8)).max(1)
}

/// A job shipped to a pool worker: runs once against the worker's
/// long-lived scratch state.
type Job<S> = Box<dyn FnOnce(&mut S) + Send>;

/// A persistent worker pool with per-worker scratch state `S`.
///
/// [`par_map_indexed`] spawns and joins OS threads on every call — fine for
/// one fan-out per process, but a fleet run fans out *twice per batch*
/// (resolver passes, then client loads), hundreds of times per run, and the
/// spawn/join tax plus the cold per-load allocations start to dominate once
/// the per-item work is sub-millisecond. `Pool` keeps the threads (and each
/// thread's `S`, built once via `Default`) alive across calls.
///
/// [`Pool::run`] has the same output contract as [`par_map_indexed`]:
/// results land in input-index slots, so the returned `Vec` is
/// byte-identical for any worker count and any completion order. The
/// scratch state is *per worker*, never shared and never migrated between
/// threads, so a job's result may depend on `S` only in ways that are
/// observationally pure (buffer reuse), which `vroom-lint`'s `sim-purity`
/// rule and the pool-vs-sequential proptests both police.
///
/// `run` returns only after every worker has acknowledged completing its
/// jobs, and workers acknowledge *after* dropping the job closure — so any
/// `Arc` the caller moved into `f` is guaranteed to have its borrowed
/// worker clones released by the time `run` returns. Callers exploit this
/// as a barrier: `Arc::get_mut` on shared state succeeds between calls.
pub struct Pool<S> {
    senders: Vec<crossbeam::channel::Sender<Job<S>>>,
    ack_rx: crossbeam::channel::Receiver<()>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl<S: Default + 'static> Pool<S> {
    /// Spawn a pool of `workers.max(1)` long-lived threads, each owning a
    /// fresh `S::default()` scratch.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (ack_tx, ack_rx) = crossbeam::channel::unbounded::<()>();
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = crossbeam::channel::unbounded::<Job<S>>();
            // vroom-lint: allow(hot-path-alloc) -- one channel handle per worker, once at pool construction
            let ack_tx = ack_tx.clone();
            // vroom-lint: allow(sim-purity) -- the pool's worker threads: jobs race only for indices; results land in input-index slots (see Pool docs)
            handles.push(std::thread::spawn(move || {
                let mut state = S::default();
                while let Ok(job) = rx.recv() {
                    job(&mut state);
                    // The job closure (and every Arc it captured) is dropped
                    // by the call above; only then acknowledge, so the
                    // caller's post-`run` `Arc::get_mut` barrier holds.
                    let _ = ack_tx.send(());
                }
            }));
            senders.push(tx);
        }
        Pool {
            senders,
            ack_rx,
            handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Map `f` over `items` on the pool, returning results in input order.
    /// `f` receives `(&mut scratch, index, &item)` exactly once per item;
    /// which worker's scratch an item sees is schedule-dependent, so `f`
    /// must be pure modulo scratch reuse (see the type-level docs).
    pub fn dispatch<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send + Sync + 'static,
        T: Send + 'static,
        F: Fn(&mut S, usize, &I) -> T + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let chunk = claim_chunk(n, self.senders.len());
        let shared = Arc::new((items, AtomicUsize::new(0), f));
        let (res_tx, res_rx) = crossbeam::channel::unbounded::<(usize, T)>();
        let mut dispatched = 0usize;
        for sender in &self.senders {
            // vroom-lint: allow(hot-path-alloc) -- one refcount bump per worker per fan-out; the items are shared, never copied
            let shared = Arc::clone(&shared);
            // vroom-lint: allow(hot-path-alloc) -- one result-channel handle per worker per fan-out
            let res_tx = res_tx.clone();
            let job: Job<S> = Box::new(move |state| {
                let (items, next, f) = &*shared;
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= items.len() {
                        break;
                    }
                    for i in start..(start + chunk).min(items.len()) {
                        if res_tx.send((i, f(state, i, &items[i]))).is_err() {
                            return; // receiver gone: a sibling job panicked
                        }
                    }
                }
            });
            sender.send(job).expect("pool worker thread alive");
            dispatched += 1;
        }
        drop(res_tx);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, value) in res_rx {
            slots[i] = Some(value);
        }
        // A panicked job never acks, so fail on missing results *before*
        // blocking on the barrier.
        assert!(
            slots.iter().all(Option::is_some),
            "every index produced exactly once"
        );
        // Ack barrier: one acknowledgement per dispatched job, sent after
        // the job (and its Arc clones) dropped.
        for _ in 0..dispatched {
            self.ack_rx
                .recv()
                .expect("pool worker acknowledged its job");
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index produced exactly once"))
            .collect()
    }
}

impl<S> Drop for Pool<S> {
    fn drop(&mut self) {
        // Hang up the job channels; workers exit their recv loops.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map_for_every_worker_count() {
        let items: Vec<u64> = (0..37).collect();
        let reference: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| i as u64 * 1000 + x * 3)
            .collect();
        for workers in [0, 1, 2, 3, 8, 64] {
            let got = par_map_indexed(&items, workers, |i, x| i as u64 * 1000 + x * 3);
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u8> = Vec::new();
        assert!(par_map_indexed(&none, 8, |_, x| *x).is_empty());
        assert_eq!(par_map_indexed(&[41], 8, |_, x| x + 1), vec![42]);
    }

    #[test]
    fn order_restored_under_adversarial_completion_order() {
        // Early indices do the most work, so later items finish first on a
        // real pool; the output must still be in input order.
        let items: Vec<usize> = (0..16).collect();
        let got = par_map_indexed(&items, 4, |i, _| {
            let mut acc = 0u64;
            for k in 0..(16 - i) * 100_000 {
                acc = acc.wrapping_add(k as u64);
            }
            (i, acc % 7)
        });
        let idx: Vec<usize> = got.iter().map(|(i, _)| *i).collect();
        assert_eq!(idx, items);
    }

    #[test]
    fn workers_beyond_item_count_are_harmless() {
        let items = [1, 2, 3];
        assert_eq!(par_map_indexed(&items, 1000, |_, x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn available_workers_is_at_least_one() {
        assert!(available_workers() >= 1);
    }

    #[test]
    fn claim_chunk_amortizes_but_never_starves() {
        assert_eq!(claim_chunk(0, 4), 1);
        assert_eq!(claim_chunk(3, 8), 1);
        assert_eq!(claim_chunk(1000, 4), 31);
        assert!(claim_chunk(1000, 4) * 4 * 8 <= 1024);
    }

    #[test]
    fn pool_matches_sequential_map_for_every_worker_count() {
        let items: Vec<u64> = (0..53).collect();
        let reference: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| i as u64 * 1000 + x * 3)
            .collect();
        for workers in [0, 1, 2, 3, 8] {
            let pool: Pool<()> = Pool::new(workers);
            assert_eq!(pool.workers(), workers.max(1));
            let got = pool.dispatch(items.clone(), |_, i, x| i as u64 * 1000 + x * 3);
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn pool_survives_many_runs_and_empty_inputs() {
        let pool: Pool<()> = Pool::new(4);
        assert!(pool.dispatch(Vec::<u8>::new(), |_, _, x| *x).is_empty());
        for round in 0..50u64 {
            let got = pool.dispatch(vec![round, round + 1], |_, _, x| x * 2);
            assert_eq!(got, vec![round * 2, round * 2 + 2]);
        }
    }

    #[test]
    fn pool_scratch_is_reused_but_output_is_schedule_invariant() {
        // Scratch counts how many jobs each worker ran; the *output* must
        // not depend on it (purity modulo reuse).
        #[derive(Default)]
        struct Counter(u64);
        let pool: Pool<Counter> = Pool::new(2);
        for _ in 0..20 {
            let got = pool.dispatch((0..10u64).collect::<Vec<_>>(), |s, i, x| {
                s.0 += 1;
                (i as u64) + x
            });
            assert_eq!(got, (0..10u64).map(|x| x * 2).collect::<Vec<_>>());
        }
        // Reuse check on a single-worker pool, where the claim race can't
        // route jobs away from a scratch: 20 runs x 10 items leave the one
        // counter at exactly 200, proving state persists across dispatches.
        let pool: Pool<Counter> = Pool::new(1);
        for _ in 0..20 {
            pool.dispatch((0..10u64).collect::<Vec<_>>(), |s, _, x| {
                s.0 += 1;
                *x
            });
        }
        let counts = pool.dispatch(vec![()], |s, _, _| s.0);
        assert_eq!(counts, vec![200]);
    }

    #[test]
    fn pool_ack_barrier_releases_shared_arcs() {
        let data = Arc::new(vec![1u64, 2, 3]);
        let pool: Pool<()> = Pool::new(3);
        let captured = Arc::clone(&data);
        let got = pool.dispatch(vec![0usize, 1, 2], move |_, _, &i| captured[i]);
        assert_eq!(got, vec![1, 2, 3]);
        // The barrier guarantees every worker's clone of `captured` is
        // dropped before `run` returns: ours is the only reference left.
        let mut data = data;
        assert!(Arc::get_mut(&mut data).is_some());
    }
}
