//! Deterministic parallel execution for the experiment harness.
//!
//! The simulation made every per-site load a pure function of
//! `(site, ctx, seeds)` (DESIGN.md §2a); this crate turns that purity into
//! wall-clock speed without giving up byte-identical output. The one
//! primitive, [`par_map_indexed`], fans a slice out over a bounded pool of
//! `std` threads and collects each result into the slot of its *input*
//! index, so the returned `Vec` — and therefore everything rendered from
//! it — is identical for any worker count and any completion order.
//!
//! Output invariance argument, in three steps:
//!  1. the mapped closure is pure (enforced by `vroom-lint`'s `sim-purity`
//!     rule, which keeps analyzing closure bodies passed through here);
//!  2. results are placed by input index, not arrival order, so scheduling
//!     cannot permute them;
//!  3. `workers <= 1` bypasses threads entirely and the result is defined
//!     to equal that sequential reference.
//! Hence `par_map_indexed(items, w, f) == par_map_indexed(items, 1, f)`
//! for every `w` — the property the proptest in `tests/tests/parallel.rs`
//! and the `run_all` golden byte-identity test both pin down.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// The worker count to use when the user asked for "as fast as the
/// hardware allows": the machine's available parallelism, `1` when that
/// cannot be determined.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on `workers` threads, returning results in input
/// order. `f` receives `(index, &item)` exactly once per item.
///
/// `workers <= 1` (or fewer than two items) runs inline on the calling
/// thread with no pool at all — the sequential reference the parallel
/// path must, and does, reproduce byte-for-byte.
pub fn par_map_indexed<I, T, F>(items: &[I], workers: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let workers = workers.min(items.len());
    let next = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, T)>();
    // vroom-lint: allow(sim-purity) -- the workspace's single sanctioned thread pool: workers race only for *indices*; results land in input-index slots, so output is schedule-invariant
    std::thread::scope(|scope| {
        {
            // Scope the original sender to this block: each worker owns a
            // clone, and the last sender hanging up is what ends the
            // collection loop below.
            let tx = tx;
            for _ in 0..workers {
                let tx = tx.clone();
                let (next, f) = (&next, &f);
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    if tx.send((i, f(i, &items[i]))).is_err() {
                        break; // receiver gone: a sibling panicked mid-collect
                    }
                });
            }
        }
        let mut slots: Vec<Option<T>> = (0..items.len()).map(|_| None).collect();
        for (i, value) in rx {
            slots[i] = Some(value);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index produced exactly once"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map_for_every_worker_count() {
        let items: Vec<u64> = (0..37).collect();
        let reference: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| i as u64 * 1000 + x * 3)
            .collect();
        for workers in [0, 1, 2, 3, 8, 64] {
            let got = par_map_indexed(&items, workers, |i, x| i as u64 * 1000 + x * 3);
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u8> = Vec::new();
        assert!(par_map_indexed(&none, 8, |_, x| *x).is_empty());
        assert_eq!(par_map_indexed(&[41], 8, |_, x| x + 1), vec![42]);
    }

    #[test]
    fn order_restored_under_adversarial_completion_order() {
        // Early indices do the most work, so later items finish first on a
        // real pool; the output must still be in input order.
        let items: Vec<usize> = (0..16).collect();
        let got = par_map_indexed(&items, 4, |i, _| {
            let mut acc = 0u64;
            for k in 0..(16 - i) * 100_000 {
                acc = acc.wrapping_add(k as u64);
            }
            (i, acc % 7)
        });
        let idx: Vec<usize> = got.iter().map(|(i, _)| *i).collect();
        assert_eq!(idx, items);
    }

    #[test]
    fn workers_beyond_item_count_are_harmless() {
        let items = [1, 2, 3];
        assert_eq!(par_map_indexed(&items, 1000, |_, x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn available_workers_is_at_least_one() {
        assert!(available_workers() >= 1);
    }
}
