//! The speedup-vs-hint-age sweep behind `vroom-bench freshness`.
//!
//! The paper's Fig 17 asks what stale dependency knowledge costs: Vroom's
//! hints are resolved ahead of time, so by the time a client arrives they
//! are some hours old and the page has churned underneath them. This module
//! sweeps that age directly. For each `(hint age, eviction policy)` cell it
//! builds a fresh store, runs the crawler passes *age* hours before the
//! serving hour, and then loads the same deterministic client population at
//! the serving hour — under the fault layer's hint corruption, so the
//! exhibit measures aged knowledge on an imperfect wire, not a lab-clean
//! one. A no-hints baseline over the identical population turns each cell's
//! onload percentiles into speedups.
//!
//! The three policies bracket the design space:
//!
//! * [`EvictionPolicy::Never`] — serve whatever is stored, however old:
//!   speedup decays with age as stale hints buy wasted fetches.
//! * [`EvictionPolicy::Ttl`] — entries past the Fig 7-calibrated TTL are
//!   evicted, so past one bucket of staleness the fleet degrades to the
//!   baseline (speedup → 1.0) instead of paying for bad hints.
//! * [`EvictionPolicy::RefreshOnMiss`] — the front-end's first stale read
//!   per site admits a fresh resolver pass, so clients get current hints at
//!   the cost of [`FreshnessCell::refresh_passes`] re-resolutions.
//!
//! Everything here is deterministic: passes and loads fan out over
//! [`vroom_exec::par_map_indexed`], counters are logical, and the report is
//! byte-identical at any worker count (pinned by `tests/tests/fleet.rs`).

use std::collections::BTreeMap;

use vroom_browser::metrics::percentile_sorted;
use vroom_intern::{UrlId, UrlTable};
use vroom_net::json::Value;
use vroom_net::{FaultPlan, NetworkProfile};
use vroom_pages::{Corpus, DeviceClass, LoadContext};
use vroom_server::batch::{commit_pass_at, run_pass};
use vroom_server::freshness::{hint_quality_by_age, CALIBRATED_TTL_HOURS};
use vroom_server::store::{EvictionPolicy, HintStore, ShardedStore};

use crate::{load_client, mix, ClientSpec, FleetConfig, FleetScratch, FLEET_BASE_HOURS};

/// Configuration of one freshness sweep.
#[derive(Debug, Clone)]
pub struct FreshnessConfig {
    /// Clients loaded per cell (the same derived population every cell).
    pub clients: usize,
    /// Distinct sites (a prefix of the News+Sports corpus).
    pub sites: usize,
    /// Sweep seed: client derivation and per-client corruption plans.
    pub seed: u64,
    /// Corpus seed (site structures).
    pub corpus_seed: u64,
    /// Seed for the server's crawler passes.
    pub server_seed: u64,
    /// Hint-store shard count (each cell gets a fresh store).
    pub shards: usize,
    /// Hint ages swept: `0..=max_age_hours` hour buckets.
    pub max_age_hours: u64,
    /// TTL for the `Ttl` and `RefreshOnMiss` policy columns, in hour
    /// buckets (defaults to the Fig 7 calibration).
    pub ttl_hours: u64,
    /// Fraction of served hints the fault layer corrupts to stale URLs.
    /// Must stay below the client policy's discard threshold (0.5) or the
    /// whole hint set is thrown away and every cell collapses to baseline.
    pub hint_corruption: f64,
    /// Worker threads; the report is byte-identical for every value.
    pub workers: usize,
    /// The access network every client loads over.
    pub profile: NetworkProfile,
}

impl Default for FreshnessConfig {
    fn default() -> Self {
        FreshnessConfig {
            clients: 120,
            sites: 6,
            seed: 0xF8E5,
            corpus_seed: 7,
            server_seed: 77,
            shards: 8,
            max_age_hours: 6,
            ttl_hours: CALIBRATED_TTL_HOURS,
            // Calibrated so the exhibit crosses 1.0 one bucket past the TTL:
            // at 0.40 a store serving hints two or more hours stale makes
            // loads *slower* than hintless, so Ttl(1) overtakes Never.
            hint_corruption: 0.40,
            workers: 1,
            profile: NetworkProfile::lte(),
        }
    }
}

impl FreshnessConfig {
    /// A reduced configuration for quick tests.
    pub fn quick(clients: usize, sites: usize, max_age_hours: u64) -> Self {
        FreshnessConfig {
            clients,
            sites,
            max_age_hours,
            ..Default::default()
        }
    }
}

/// One `(hint age, eviction policy)` cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FreshnessCell {
    /// How many hour buckets before the serving hour the hints were
    /// resolved.
    pub age_hours: u64,
    /// Eviction policy label (`never`, `ttl(1)`, `refresh-on-miss(1)`).
    pub policy: String,
    /// Median onload across the cell's clients (simulated ms).
    pub onload_p50_ms: f64,
    /// 99th-percentile onload (simulated ms).
    pub onload_p99_ms: f64,
    /// Baseline p50 onload over this cell's p50 (`> 1` = hints help).
    pub speedup_p50: f64,
    /// Baseline p99 onload over this cell's p99.
    pub speedup_p99: f64,
    /// HTML documents served hints out of the store.
    pub hint_hits: u64,
    /// HTML documents that missed the store (including logical evictions).
    pub hint_misses: u64,
    /// HTML documents served *stale* hints (RefreshOnMiss only).
    pub stale_served: u64,
    /// Store reads classified stale.
    pub stale_reads: u64,
    /// Entries physically removed by the TTL sweep.
    pub evictions: u64,
    /// Resolver passes run for this cell (aged passes + refreshes).
    pub resolver_passes: u64,
    /// Fresh re-resolutions admitted by stale front-end probes
    /// (RefreshOnMiss only).
    pub refresh_passes: u64,
    /// Bytes wasted on inaccurate hints/pushes across the cell.
    pub wasted_bytes: u64,
}

/// Median hint accuracy at one age, across the sweep's sites.
#[derive(Debug, Clone, PartialEq)]
pub struct AgeAccuracy {
    /// Hint age in hour buckets.
    pub age_hours: u64,
    /// Median false-negative fraction (missed predictable URLs).
    pub false_negative: f64,
    /// Median false-positive fraction (extraneous URLs).
    pub false_positive: f64,
}

/// The full sweep: a no-hints baseline, one cell per `(age, policy)`, and
/// the per-age accuracy curve behind it. Deterministic at any worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct FreshnessReport {
    /// Clients loaded per cell.
    pub clients_per_cell: u64,
    /// Distinct sites.
    pub sites: u64,
    /// Hint-store shards per cell.
    pub shards: u64,
    /// TTL used by the `Ttl` / `RefreshOnMiss` columns.
    pub ttl_hours: u64,
    /// Hint-corruption fraction applied to every hinted load.
    pub hint_corruption: f64,
    /// Median onload of the no-hints baseline (simulated ms).
    pub baseline_p50_ms: f64,
    /// 99th-percentile onload of the baseline (simulated ms).
    pub baseline_p99_ms: f64,
    /// Cells ordered by `(age, policy)`: `never`, `ttl`, `refresh-on-miss`
    /// within each age.
    pub cells: Vec<FreshnessCell>,
    /// Median resolver accuracy per hint age (no store involved — the
    /// analytic curve the cells' speedups should track).
    pub accuracy_by_age: Vec<AgeAccuracy>,
}

impl FreshnessReport {
    /// The deterministic text report.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("==== freshness ====\n");
        out.push_str(&format!(
            "clients/cell {}  sites {}  shards {}  ttl {} h  corruption {:.2}\n",
            self.clients_per_cell, self.sites, self.shards, self.ttl_hours, self.hint_corruption
        ));
        out.push_str(&format!(
            "baseline (no hints): p50 {:.1} ms  p99 {:.1} ms\n",
            self.baseline_p50_ms, self.baseline_p99_ms
        ));
        out.push_str(
            "age policy              p50 ms  speedup    hits  misses   stale   evict  passes\n",
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{:>3} {:<18} {:>8.1} {:>8.3} {:>7} {:>7} {:>7} {:>7} {:>7}\n",
                c.age_hours,
                c.policy,
                c.onload_p50_ms,
                c.speedup_p50,
                c.hint_hits,
                c.hint_misses,
                c.stale_served,
                c.evictions,
                c.resolver_passes,
            ));
        }
        out.push_str("accuracy by age (median FN / FP):\n");
        for a in &self.accuracy_by_age {
            out.push_str(&format!(
                "  {:>3} h: {:.3} / {:.3}\n",
                a.age_hours, a.false_negative, a.false_positive
            ));
        }
        out
    }

    /// The deterministic metrics as a canonical-codec JSON tree — the
    /// `metrics` object of `BENCH_freshness.json`.
    pub fn to_json_value(&self) -> Value {
        // An integral float (e.g. a speedup of exactly 1.0) must be emitted
        // as an Int: the canonical codec prints `1.0` as `1` and parses `1`
        // back as Int, so a Float here would never compare equal to its own
        // round trip — and the CI gate compares parsed values.
        let num = |x: f64| {
            let r = (x * 1e3).round() / 1e3;
            if r >= 0.0 && r.fract() == 0.0 && r <= u64::MAX as f64 {
                Value::Int(r as u64)
            } else {
                Value::Float(r)
            }
        };
        let mut m = BTreeMap::new();
        m.insert("clients_per_cell".into(), Value::Int(self.clients_per_cell));
        m.insert("sites".into(), Value::Int(self.sites));
        m.insert("shards".into(), Value::Int(self.shards));
        m.insert("ttl_hours".into(), Value::Int(self.ttl_hours));
        m.insert("hint_corruption".into(), num(self.hint_corruption));
        m.insert("baseline_p50_ms".into(), num(self.baseline_p50_ms));
        m.insert("baseline_p99_ms".into(), num(self.baseline_p99_ms));
        let cells = self
            .cells
            .iter()
            .map(|c| {
                let mut e = BTreeMap::new();
                e.insert("age_hours".into(), Value::Int(c.age_hours));
                e.insert("policy".into(), Value::Str(c.policy.clone()));
                e.insert("onload_p50_ms".into(), num(c.onload_p50_ms));
                e.insert("onload_p99_ms".into(), num(c.onload_p99_ms));
                e.insert("speedup_p50".into(), num(c.speedup_p50));
                e.insert("speedup_p99".into(), num(c.speedup_p99));
                e.insert("hint_hits".into(), Value::Int(c.hint_hits));
                e.insert("hint_misses".into(), Value::Int(c.hint_misses));
                e.insert("stale_served".into(), Value::Int(c.stale_served));
                e.insert("stale_reads".into(), Value::Int(c.stale_reads));
                e.insert("evictions".into(), Value::Int(c.evictions));
                e.insert("resolver_passes".into(), Value::Int(c.resolver_passes));
                e.insert("refresh_passes".into(), Value::Int(c.refresh_passes));
                e.insert("wasted_bytes".into(), Value::Int(c.wasted_bytes));
                Value::Object(e)
            })
            .collect();
        m.insert("cells".into(), Value::Array(cells));
        let acc = self
            .accuracy_by_age
            .iter()
            .map(|a| {
                let mut e = BTreeMap::new();
                e.insert("age_hours".into(), Value::Int(a.age_hours));
                e.insert("false_negative".into(), num(a.false_negative));
                e.insert("false_positive".into(), num(a.false_positive));
                Value::Object(e)
            })
            .collect();
        m.insert("accuracy_by_age".into(), Value::Array(acc));
        Value::Object(m)
    }
}

/// The policy columns of the sweep, in cell order.
fn policies(ttl: u64) -> [EvictionPolicy; 3] {
    [
        EvictionPolicy::Never,
        EvictionPolicy::Ttl(ttl),
        EvictionPolicy::RefreshOnMiss(ttl),
    ]
}

/// Run the sweep. Deterministic: byte-identical for any `cfg.workers`.
pub fn run_freshness(cfg: &FreshnessConfig) -> FreshnessReport {
    let sites = cfg.sites.max(1);
    let corpus = Corpus::news_and_sports_capped(cfg.corpus_seed, Some(sites));
    // The client population: derived exactly like a span-0 fleet's, so the
    // sweep measures store policy differences over identical loads.
    let fleet_cfg = FleetConfig {
        clients: cfg.clients,
        seed: cfg.seed,
        sites,
        corpus_seed: cfg.corpus_seed,
        server_seed: cfg.server_seed,
        shards: cfg.shards,
        workers: cfg.workers,
        profile: cfg.profile.clone(),
        ..FleetConfig::default()
    };
    let specs: Vec<ClientSpec> = (0..cfg.clients)
        .map(|id| ClientSpec::derive(&fleet_cfg, id))
        .collect();

    let baseline = run_cell(cfg, &corpus, &specs, None);
    let mut cells = Vec::new();
    for age in 0..=cfg.max_age_hours {
        for policy in policies(cfg.ttl_hours) {
            let mut cell = run_cell(cfg, &corpus, &specs, Some((policy, age)));
            cell.speedup_p50 = baseline.onload_p50_ms / cell.onload_p50_ms;
            cell.speedup_p99 = baseline.onload_p99_ms / cell.onload_p99_ms;
            cells.push(cell);
        }
    }

    // The analytic curve: resolver accuracy per age, median across sites
    // (individual pages churn noisily; the fleet-level exhibit should not).
    let curves: Vec<Vec<(u64, vroom_server::Accuracy)>> = corpus
        .sites
        .iter()
        .enumerate()
        .map(|(s, g)| {
            let ctx = LoadContext {
                hours: FLEET_BASE_HOURS,
                user_id: mix(cfg.seed, 0xACC0 ^ s as u64),
                device: DeviceClass::PhoneLarge,
                nonce: mix(cfg.seed ^ 0xACC1, s as u64),
            };
            hint_quality_by_age(g, &ctx, cfg.server_seed, cfg.max_age_hours)
        })
        .collect();
    let median = |mut v: Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let accuracy_by_age = (0..=cfg.max_age_hours)
        .map(|age| AgeAccuracy {
            age_hours: age,
            false_negative: median(
                curves
                    .iter()
                    .map(|c| c[age as usize].1.false_negative)
                    .collect(),
            ),
            false_positive: median(
                curves
                    .iter()
                    .map(|c| c[age as usize].1.false_positive)
                    .collect(),
            ),
        })
        .collect();

    FreshnessReport {
        clients_per_cell: cfg.clients as u64,
        sites: sites as u64,
        shards: cfg.shards as u64,
        ttl_hours: cfg.ttl_hours,
        hint_corruption: cfg.hint_corruption,
        baseline_p50_ms: baseline.onload_p50_ms,
        baseline_p99_ms: baseline.onload_p99_ms,
        cells,
        accuracy_by_age,
    }
}

/// One cell: a fresh store populated with `age`-hour-old passes (none for
/// the baseline), then the whole client population loaded at the serving
/// hour. Speedups are zeroed — the caller fills them in from the baseline.
fn run_cell(
    cfg: &FreshnessConfig,
    corpus: &Corpus,
    specs: &[ClientSpec],
    setup: Option<(EvictionPolicy, u64)>,
) -> FreshnessCell {
    let store = ShardedStore::new(cfg.shards);
    let mut urls = UrlTable::new();
    let now = FLEET_BASE_HOURS as i64;
    let policy = setup.map_or(EvictionPolicy::Never, |(p, _)| p);
    let mut resolver_passes = 0u64;
    let mut refresh_passes = 0u64;

    if let Some((policy, age)) = setup {
        // The crawler ran `age` buckets before the serving hour: commit the
        // passes versioned at that bucket and let the policy judge them.
        let resolved_at = now - age as i64;
        let idx: Vec<usize> = (0..corpus.sites.len()).collect();
        let passes = vroom_exec::par_map_indexed(&idx, cfg.workers, |_, &s| {
            run_pass(
                &corpus.sites[s],
                resolved_at as f64,
                DeviceClass::PhoneLarge,
                cfg.server_seed,
            )
        });
        let mut roots: Vec<Option<UrlId>> = Vec::new();
        for pass in &passes {
            let keys = commit_pass_at(pass, &store, &mut urls, resolved_at);
            roots.push(keys.first().copied());
            resolver_passes += 1;
        }
        // The serving hour's maintenance, before any client arrives:
        // the TTL sweep physically drops expired entries...
        if let EvictionPolicy::Ttl(h) = policy {
            store.evict_resolved_before(now - h as i64);
        }
        // ...and the RefreshOnMiss front-end probes each site's root once;
        // a stale probe admits one fresh re-resolution at the serving hour.
        if matches!(policy, EvictionPolicy::RefreshOnMiss(_)) {
            for (s, root) in roots.iter().enumerate() {
                let Some(root) = *root else { continue };
                if store.get_fresh(root, now, policy).is_stale() {
                    let pass = run_pass(
                        &corpus.sites[s],
                        now as f64,
                        DeviceClass::PhoneLarge,
                        cfg.server_seed,
                    );
                    commit_pass_at(&pass, &store, &mut urls, now);
                    resolver_passes += 1;
                    refresh_passes += 1;
                }
            }
        }
    }

    // Load phase: store frozen, loads pure — fan out freely. The baseline
    // skips the corruption plan (it has no hints to corrupt, and a clean
    // denominator keeps speedups interpretable).
    let urls = std::sync::Arc::new(urls);
    let outcomes = vroom_exec::par_map_indexed(specs, cfg.workers, |_, spec| {
        let plan = if setup.is_some() && cfg.hint_corruption > 0.0 {
            FaultPlan::hint_corruption_only(
                mix(cfg.seed ^ 0x0F41_77C5, spec.id as u64),
                cfg.hint_corruption,
            )
        } else {
            FaultPlan::none()
        };
        let mut scratch = FleetScratch::default();
        load_client(
            &cfg.profile,
            policy,
            spec,
            &corpus.sites[spec.site],
            &urls,
            &store,
            &plan,
            &mut scratch,
        )
    });

    let mut onloads: Vec<f64> = outcomes
        .iter()
        .map(|o| o.result.plt.as_secs_f64() * 1e3)
        .collect();
    onloads.sort_by(f64::total_cmp);
    let fresh = store.freshness_stats();
    FreshnessCell {
        age_hours: setup.map_or(0, |(_, a)| a),
        policy: policy.label(),
        onload_p50_ms: percentile_sorted(&onloads, 0.50),
        onload_p99_ms: percentile_sorted(&onloads, 0.99),
        speedup_p50: 0.0,
        speedup_p99: 0.0,
        hint_hits: outcomes.iter().map(|o| o.hint_hits).sum(),
        hint_misses: outcomes.iter().map(|o| o.hint_misses).sum(),
        stale_served: outcomes.iter().map(|o| o.hint_stale).sum(),
        stale_reads: fresh.iter().map(|f| f.stale).sum(),
        evictions: fresh.iter().map(|f| f.evictions).sum(),
        resolver_passes,
        refresh_passes,
        wasted_bytes: outcomes.iter().map(|o| o.result.wasted_bytes).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shape_and_cell_order() {
        let cfg = FreshnessConfig::quick(8, 2, 2);
        let r = run_freshness(&cfg);
        assert_eq!(r.cells.len(), 9, "3 ages x 3 policies");
        assert_eq!(r.accuracy_by_age.len(), 3);
        for (i, c) in r.cells.iter().enumerate() {
            assert_eq!(c.age_hours as usize, i / 3);
            let want = ["never", "ttl(1)", "refresh-on-miss(1)"][i % 3];
            assert_eq!(c.policy, want);
        }
        assert!(r.baseline_p50_ms > 0.0);
        for c in &r.cells {
            assert!(c.onload_p50_ms > 0.0);
            assert!(c.speedup_p50 > 0.0);
        }
    }

    #[test]
    fn ttl_column_degrades_to_baseline_past_the_ttl() {
        let cfg = FreshnessConfig::quick(8, 2, 2);
        let r = run_freshness(&cfg);
        // Age 2 > ttl 1: every entry swept, every read a miss, and with no
        // hints left the loads are the baseline loads exactly.
        let cell = r
            .cells
            .iter()
            .find(|c| c.age_hours == 2 && c.policy == "ttl(1)")
            .unwrap();
        assert!(cell.evictions > 0);
        assert_eq!(cell.hint_hits, 0);
        assert_eq!(cell.onload_p50_ms, r.baseline_p50_ms);
        assert_eq!(cell.speedup_p50, 1.0);
        // Fresh hints (age 0) are never evicted.
        let fresh = r
            .cells
            .iter()
            .find(|c| c.age_hours == 0 && c.policy == "ttl(1)")
            .unwrap();
        assert_eq!(fresh.evictions, 0);
        assert!(fresh.hint_hits > 0);
    }

    #[test]
    fn refresh_on_miss_refreshes_stale_sites() {
        let cfg = FreshnessConfig::quick(8, 2, 2);
        let r = run_freshness(&cfg);
        let stale = r
            .cells
            .iter()
            .find(|c| c.age_hours == 2 && c.policy == "refresh-on-miss(1)")
            .unwrap();
        assert_eq!(stale.refresh_passes, 2, "every stale site re-resolved");
        assert_eq!(stale.resolver_passes, 4, "2 aged passes + 2 refreshes");
        let fresh = r
            .cells
            .iter()
            .find(|c| c.age_hours == 0 && c.policy == "refresh-on-miss(1)")
            .unwrap();
        assert_eq!(fresh.refresh_passes, 0);
    }

    #[test]
    fn report_render_and_json_are_consistent() {
        let r = run_freshness(&FreshnessConfig::quick(4, 1, 1));
        let rendered = r.render();
        assert!(rendered.starts_with("==== freshness ===="));
        assert!(rendered.contains("baseline (no hints)"));
        let Value::Object(m) = r.to_json_value() else {
            panic!("metrics must be an object");
        };
        assert!(m.contains_key("baseline_p50_ms"));
        let Some(Value::Array(cells)) = m.get("cells") else {
            panic!("cells array");
        };
        assert_eq!(cells.len(), r.cells.len());
    }
}
