//! `vroom-fleet` — fleet-scale serving simulation: one shared Vroom server,
//! thousands of concurrent clients.
//!
//! The paper's deployment story (§6) is a front-end resolution server
//! answering many loads at once; the rest of this workspace models a
//! *single* page load. This crate closes the gap with a throughput mode
//! whose every moving part is deterministic:
//!
//! * **Clients** — `N` simulated clients, each fully derived from the fleet
//!   seed (site, virtual arrival time, device, cookie identity, nonce are
//!   pure hashes of `(seed, client id)`).
//! * **Batched resolution** — clients arriving within one batch window
//!   share a single resolver pass ([`vroom_server::batch`]): the expensive
//!   offline-intersection + online-scan pipeline runs once per
//!   (site, hour, device-bucket), not once per request.
//! * **Sharded hint store** — resolver output is filed in a
//!   [`ShardedStore`] routed by [`vroom_intern::UrlId::shard`]; every load
//!   reads its page's hint lists back out of the store, bumping the
//!   per-shard logical access counters the report exposes as contention
//!   figures.
//! * **Per-origin connection reuse** — the fleet tracks which origins
//!   already hold a warm server connection; later loads touching the same
//!   origin count as reuses (a counter model: reuse does not alter the
//!   simulated load itself).
//! * **Parallel execution** — batches fan resolver passes and client loads
//!   over [`vroom_exec::par_map_indexed`], so the report is byte-identical
//!   at any worker count.
//!
//! Determinism argument: batch membership and batch order are pure
//! functions of the seed; resolver passes are pure and committed in a fixed
//! order between batches (so shared-table ids are deterministic); client
//! loads within a batch read a frozen store snapshot-equivalent (no writes
//! happen during the load phase) and land in input-index slots; the shard
//! counters are *logical* — one bump per operation — so their totals depend
//! on the workload, never on scheduling. Everything in [`FleetReport`] is
//! therefore identical for any `workers`, which `tests/tests/fleet.rs` pins
//! byte-for-byte. Wall-clock throughput (loads/sec) is measured *outside*
//! this crate by `vroom-bench fleet` and kept in a separate `timing`
//! section of `BENCH_fleet.json`.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use vroom::policy::apply_fault_plan;
use vroom_browser::config::{FetchPolicy, LoadConfig, ServerModel};
use vroom_browser::metrics::percentile_sorted;
use vroom_browser::{BrowserEngine, EngineScratch, LoadResult};
use vroom_exec::Pool;
use vroom_intern::{UrlId, UrlTable};
use vroom_net::json::Value;
use vroom_net::{FaultPlan, NetworkProfile};
use vroom_pages::{Corpus, DeviceClass, LoadContext, PageGenerator};
use vroom_server::batch::{commit_pass_at, run_pass, PassOutput};
use vroom_server::freshness::observed_pass;
use vroom_server::push_policy::{select_pushes, PushPolicy};
use vroom_server::resolve::embedded_htmls;
use vroom_server::store::{EvictionPolicy, HintStore, ShardStats, ShardedStore};

pub mod freshness;

pub use freshness::{run_freshness, AgeAccuracy, FreshnessCell, FreshnessConfig, FreshnessReport};

/// The simulated wall-clock hour the fleet starts in. With
/// [`FleetConfig::span_hours`]` == 0` every client arrives within this one
/// hour bucket, so a site needs exactly one resolver pass for the whole
/// run; larger spans spread arrivals over `span_hours + 1` buckets.
pub const FLEET_BASE_HOURS: f64 = 2000.0;

/// Milliseconds per hour bucket.
const MS_PER_HOUR: u64 = 3_600_000;

/// Upper bound on [`FleetConfig::arrival_span_ms`]: the sub-hour arrival
/// offset must stay inside one hour bucket, or per-bucket resolver-pass
/// batching silently breaks (clients would claim an hour their context
/// does not live in). Larger requested spans are clamped here and surfaced
/// through the report's freshness section; spread arrivals across hours
/// with [`FleetConfig::span_hours`] instead.
pub const MAX_ARRIVAL_SPAN_MS: u64 = MS_PER_HOUR;

/// Which clients an injected fault plan applies to, and how hard it hits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetFaults {
    /// Seed for per-client plan derivation.
    pub seed: u64,
    /// Plan severity in `[0, 1]`; `<= 0` disables every plan (the inactive
    /// configuration the chaos suite proves byte-identical to no faults).
    pub severity: f64,
    /// Apply the plan to every `one_in`-th client (`client_id % one_in ==
    /// 0`); `1` = every client, `0` = nobody.
    pub one_in: u64,
}

impl FleetFaults {
    /// The fault plan for one client: inactive unless this client is
    /// selected, otherwise seeded from `(seed, client id)` so faults are
    /// independent across clients.
    pub fn plan_for(&self, client: u64) -> FaultPlan {
        if self.severity <= 0.0 || self.one_in == 0 || client % self.one_in != 0 {
            FaultPlan::none()
        } else {
            FaultPlan::from_seed(mix(self.seed, client), self.severity)
        }
    }
}

/// Configuration of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of simulated clients.
    pub clients: usize,
    /// Fleet seed; every per-client parameter derives from it.
    pub seed: u64,
    /// Number of distinct sites the clients are spread over (a prefix of
    /// the News+Sports corpus).
    pub sites: usize,
    /// Corpus seed (site structures).
    pub corpus_seed: u64,
    /// Seed for the server's crawls.
    pub server_seed: u64,
    /// Hint-store shard count.
    pub shards: usize,
    /// Virtual batch window: clients whose arrival falls in the same
    /// window share one resolver admission round.
    pub batch_window_ms: u64,
    /// Client arrivals spread uniformly over this virtual span *within
    /// their hour bucket* (clamped to [`MAX_ARRIVAL_SPAN_MS`]).
    pub arrival_span_ms: u64,
    /// Hour buckets beyond the base hour that arrivals spread over: each
    /// client derives an hour offset in `0..=span_hours`, so `0` (the
    /// default) keeps the whole fleet inside [`FLEET_BASE_HOURS`].
    pub span_hours: u64,
    /// How stored hint entries age out ([`EvictionPolicy::Never`] is the
    /// pre-freshness behavior, byte-identical to it).
    pub policy: EvictionPolicy,
    /// Feed each batch's *observed* client loads back into the store (one
    /// commit per site per batch, from the site's first arrival). Off by
    /// default: the store then only ever holds crawler-pass output.
    pub learn_from_loads: bool,
    /// Worker threads for resolver passes and client loads (`1` =
    /// sequential). The report is byte-identical for every value.
    pub workers: usize,
    /// The access network every client loads over.
    pub profile: NetworkProfile,
    /// Optional fault injection.
    pub faults: Option<FleetFaults>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            clients: 1000,
            seed: 0xF1EE7,
            sites: 8,
            corpus_seed: 7,
            server_seed: 77,
            shards: 16,
            batch_window_ms: 100,
            arrival_span_ms: 10_000,
            span_hours: 0,
            policy: EvictionPolicy::Never,
            learn_from_loads: false,
            workers: 1,
            profile: NetworkProfile::lte(),
            faults: None,
        }
    }
}

impl FleetConfig {
    /// A reduced configuration for quick tests.
    pub fn quick(clients: usize, sites: usize) -> Self {
        FleetConfig {
            clients,
            sites,
            ..Default::default()
        }
    }

    /// The configuration with `arrival_span_ms` clamped to
    /// [`MAX_ARRIVAL_SPAN_MS`], plus the original (over-limit) value when a
    /// clamp happened (`0` otherwise) — rendered as a warning counter in
    /// the report's freshness section rather than silently ignored.
    pub fn validated(&self) -> (FleetConfig, u64) {
        if self.arrival_span_ms > MAX_ARRIVAL_SPAN_MS {
            // vroom-lint: allow(hot-path-alloc) -- one config clone per run, before any client is served
            let mut cfg = self.clone();
            cfg.arrival_span_ms = MAX_ARRIVAL_SPAN_MS;
            (cfg, self.arrival_span_ms)
        } else {
            // vroom-lint: allow(hot-path-alloc) -- one config clone per run, before any client is served
            (self.clone(), 0)
        }
    }
}

/// splitmix-style hash used for every per-client derivation.
fn mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One client's derived parameters — a pure function of (fleet seed, id).
#[derive(Debug, Clone, Copy)]
struct ClientSpec {
    id: usize,
    site: usize,
    /// Sub-hour arrival offset within the client's hour bucket; kept below
    /// [`MAX_ARRIVAL_SPAN_MS`] by [`FleetConfig::validated`] so it can
    /// never push the context into a different bucket than [`bucket`].
    ///
    /// [`bucket`]: ClientSpec::bucket
    arrival_ms: u64,
    /// Hour buckets past [`FLEET_BASE_HOURS`] this client arrives in
    /// (always `0` when the fleet's `span_hours` is `0`).
    hour_offset: u64,
    device: DeviceClass,
    user_id: u64,
    nonce: u64,
}

impl ClientSpec {
    fn derive(cfg: &FleetConfig, id: usize) -> ClientSpec {
        let id64 = id as u64;
        // The fleet is a mobile population: phone devices only, so the
        // server's phone-bucket resolver pass serves every client. (Large
        // vs small phones still differ in CPU speed and DPR-keyed URLs —
        // slightly wrong hints for the minority device are part of the
        // model, as in the paper's Fig 9.)
        let device = if mix(cfg.seed, id64 * 4 + 1) % 2 == 0 {
            DeviceClass::PhoneLarge
        } else {
            DeviceClass::PhoneSmall
        };
        ClientSpec {
            id,
            site: (mix(cfg.seed, id64 * 4) % cfg.sites.max(1) as u64) as usize,
            arrival_ms: mix(cfg.seed, id64 * 4 + 2) % cfg.arrival_span_ms.max(1),
            // A fresh hash stream: span-0 fleets keep every other derived
            // parameter byte-identical to the pre-freshness fleet.
            hour_offset: mix(cfg.seed ^ 0x5A9B_00C3, id64) % (cfg.span_hours + 1),
            device,
            user_id: mix(cfg.seed, id64 * 4 + 3),
            nonce: mix(cfg.seed ^ 0x0C11E27, id64),
        }
    }

    /// Total virtual arrival time: the hour offset plus the sub-hour
    /// offset — what arrivals sort and batch by.
    fn arrival_total_ms(&self) -> u64 {
        self.hour_offset * MS_PER_HOUR + self.arrival_ms
    }

    /// The hour bucket this client arrives (and reads the store) in.
    fn bucket(&self) -> i64 {
        FLEET_BASE_HOURS as i64 + self.hour_offset as i64
    }

    fn ctx(&self) -> LoadContext {
        LoadContext {
            // Sub-hour arrival offset: stays inside the client's hour
            // bucket (arrival_ms < MAX_ARRIVAL_SPAN_MS by validation).
            hours: self.bucket() as f64 + self.arrival_ms as f64 / MS_PER_HOUR as f64,
            user_id: self.user_id,
            device: self.device,
            nonce: self.nonce,
        }
    }
}

/// What one client's load produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientOutcome {
    /// Client id (index into the fleet).
    pub id: usize,
    /// Site index the client loaded.
    pub site: usize,
    /// Virtual arrival time within the run.
    pub arrival_ms: u64,
    /// Whether an active fault plan was applied to this client.
    pub faulted: bool,
    /// HTML documents whose hints were found in the shared store.
    pub hint_hits: u64,
    /// HTML documents with no store entry (churned iframe URLs, mostly),
    /// including entries the eviction policy logically evicted.
    pub hint_misses: u64,
    /// HTML documents served *stale* hints (counted in `hint_hits` too):
    /// nonzero only under [`EvictionPolicy::RefreshOnMiss`], where it
    /// triggers a re-resolution admission in the next batch.
    pub hint_stale: u64,
    /// Distinct origins the load touched, sorted.
    pub origins: Vec<String>,
    /// The full simulated load result.
    pub result: LoadResult,
}

/// Aggregate report of one fleet run. Every field is deterministic: equal
/// configs produce byte-identical reports at any worker count. Wall-clock
/// throughput is intentionally absent — `vroom-bench fleet` measures it
/// around this crate and files it in a separate `timing` section.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Simulated clients.
    pub clients: u64,
    /// Distinct sites.
    pub sites: u64,
    /// Hint-store shards.
    pub shards: u64,
    /// Batch window (virtual ms).
    pub batch_window_ms: u64,
    /// Batches executed.
    pub batches: u64,
    /// Resolver passes run (≤ sites: passes are shared within and across
    /// batches through the store).
    pub resolver_passes: u64,
    /// Live hint-store entries at end of run.
    pub store_entries: u64,
    /// Per-shard access counters, in shard order.
    pub shard_stats: Vec<ShardStats>,
    /// HTML documents served hints out of the store.
    pub hint_hits: u64,
    /// HTML documents that missed the store.
    pub hint_misses: u64,
    /// Origins that required a new server connection.
    pub origins_opened: u64,
    /// Loads that found their origin's connection already warm.
    pub origin_reuses: u64,
    /// Median onload across the fleet (simulated ms).
    pub onload_p50_ms: f64,
    /// 99th-percentile onload (simulated ms).
    pub onload_p99_ms: f64,
    /// Clients that ran under an active fault plan.
    pub faulted_clients: u64,
    /// Clients with at least one failed resource.
    pub failed_loads: u64,
    /// Failed resources across the fleet.
    pub failed_resources: u64,
    /// Retries across the fleet.
    pub retries: u64,
    /// RST_STREAM-equivalent events.
    pub rst_streams: u64,
    /// GOAWAY-equivalent events.
    pub goaways: u64,
    /// Timed-out attempts.
    pub timeouts: u64,
    /// Bytes fetched that belonged to the pages.
    pub useful_bytes: u64,
    /// Bytes wasted on inaccurate hints/pushes.
    pub wasted_bytes: u64,
    /// Freshness-loop accounting. `None` for a legacy run (policy `Never`,
    /// zero span, no learning, nothing clamped), in which case the render
    /// and JSON are byte-identical to the pre-freshness report.
    pub freshness: Option<FleetFreshness>,
}

/// The freshness section of a [`FleetReport`]: everything the hint-aging
/// loop did during the run. All counters are logical and therefore
/// byte-identical at any worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetFreshness {
    /// The eviction policy label (`never`, `ttl(1)`, `refresh-on-miss(1)`).
    pub policy: String,
    /// Hour buckets past the base hour arrivals spread over.
    pub span_hours: u64,
    /// Store reads classified stale (logically evicted or served stale).
    pub stale_reads: u64,
    /// HTML documents served stale hints (RefreshOnMiss only).
    pub stale_served: u64,
    /// Entries physically removed by TTL sweeps.
    pub evictions: u64,
    /// Resolver passes re-run for a site that already had one (TTL expiry
    /// or stale-read admissions).
    pub refresh_passes: u64,
    /// Observed-load commits fed back into the store.
    pub observed_commits: u64,
    /// The requested `arrival_span_ms` when it exceeded
    /// [`MAX_ARRIVAL_SPAN_MS`] and was clamped; `0` when no clamp happened.
    pub arrival_span_clamped_from_ms: u64,
}

impl FleetReport {
    /// Store hit rate in percent (0 when nothing was looked up).
    pub fn hint_hit_rate(&self) -> f64 {
        let total = self.hint_hits + self.hint_misses;
        if total == 0 {
            return 0.0;
        }
        self.hint_hits as f64 * 100.0 / total as f64
    }

    /// The deterministic text report.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("==== fleet ====\n");
        out.push_str(&format!(
            "clients {}  sites {}  shards {}  window {} ms  batches {}\n",
            self.clients, self.sites, self.shards, self.batch_window_ms, self.batches
        ));
        out.push_str(&format!(
            "resolver passes {}  store entries {}\n",
            self.resolver_passes, self.store_entries
        ));
        out.push_str(&format!(
            "hints: hits {}  misses {}  hit rate {:.1}%\n",
            self.hint_hits,
            self.hint_misses,
            self.hint_hit_rate()
        ));
        out.push_str(&format!(
            "origins: opened {}  reused {}\n",
            self.origins_opened, self.origin_reuses
        ));
        out.push_str(&format!(
            "onload: p50 {:.1} ms  p99 {:.1} ms\n",
            self.onload_p50_ms, self.onload_p99_ms
        ));
        out.push_str(&format!(
            "faults: faulted clients {}  failed loads {}  failed resources {}  \
             retries {}  rst {}  goaway {}  timeouts {}\n",
            self.faulted_clients,
            self.failed_loads,
            self.failed_resources,
            self.retries,
            self.rst_streams,
            self.goaways,
            self.timeouts
        ));
        out.push_str(&format!(
            "bytes: useful {}  wasted {}\n",
            self.useful_bytes, self.wasted_bytes
        ));
        if let Some(f) = &self.freshness {
            if f.arrival_span_clamped_from_ms > 0 {
                out.push_str(&format!(
                    "warning: arrival span clamped {} -> {} ms (use span_hours to cross buckets)\n",
                    f.arrival_span_clamped_from_ms, MAX_ARRIVAL_SPAN_MS
                ));
            }
            out.push_str(&format!(
                "freshness: policy {}  span {} h  stale reads {}  stale served {}  \
                 evictions {}  refresh passes {}  observed commits {}\n",
                f.policy,
                f.span_hours,
                f.stale_reads,
                f.stale_served,
                f.evictions,
                f.refresh_passes,
                f.observed_commits
            ));
        }
        out.push_str("shard   reads    hits  writes entries\n");
        for (i, s) in self.shard_stats.iter().enumerate() {
            out.push_str(&format!(
                "  {:>3} {:>7} {:>7} {:>7} {:>7}\n",
                i, s.reads, s.hits, s.writes, s.entries
            ));
        }
        out
    }

    /// The deterministic metrics as a canonical-codec JSON tree — the
    /// `metrics` object of `BENCH_fleet.json`.
    pub fn to_json_value(&self) -> Value {
        let round3 = |x: f64| (x * 1e3).round() / 1e3;
        let mut m = BTreeMap::new();
        m.insert("clients".into(), Value::Int(self.clients));
        m.insert("sites".into(), Value::Int(self.sites));
        m.insert("shards".into(), Value::Int(self.shards));
        m.insert("batch_window_ms".into(), Value::Int(self.batch_window_ms));
        m.insert("batches".into(), Value::Int(self.batches));
        m.insert("resolver_passes".into(), Value::Int(self.resolver_passes));
        m.insert("store_entries".into(), Value::Int(self.store_entries));
        m.insert("hint_hits".into(), Value::Int(self.hint_hits));
        m.insert("hint_misses".into(), Value::Int(self.hint_misses));
        m.insert("origins_opened".into(), Value::Int(self.origins_opened));
        m.insert("origin_reuses".into(), Value::Int(self.origin_reuses));
        m.insert(
            "onload_p50_ms".into(),
            Value::Float(round3(self.onload_p50_ms)),
        );
        m.insert(
            "onload_p99_ms".into(),
            Value::Float(round3(self.onload_p99_ms)),
        );
        m.insert("faulted_clients".into(), Value::Int(self.faulted_clients));
        m.insert("failed_loads".into(), Value::Int(self.failed_loads));
        m.insert("failed_resources".into(), Value::Int(self.failed_resources));
        m.insert("retries".into(), Value::Int(self.retries));
        m.insert("rst_streams".into(), Value::Int(self.rst_streams));
        m.insert("goaways".into(), Value::Int(self.goaways));
        m.insert("timeouts".into(), Value::Int(self.timeouts));
        m.insert("useful_bytes".into(), Value::Int(self.useful_bytes));
        m.insert("wasted_bytes".into(), Value::Int(self.wasted_bytes));
        let shards = self
            .shard_stats
            .iter()
            .map(|s| {
                let mut e = BTreeMap::new();
                e.insert("reads".into(), Value::Int(s.reads));
                e.insert("hits".into(), Value::Int(s.hits));
                e.insert("writes".into(), Value::Int(s.writes));
                e.insert("entries".into(), Value::Int(s.entries));
                Value::Object(e)
            })
            .collect();
        m.insert("shard_stats".into(), Value::Array(shards));
        if let Some(f) = &self.freshness {
            let mut fo = BTreeMap::new();
            fo.insert("policy".into(), Value::Str(f.policy.clone()));
            fo.insert("span_hours".into(), Value::Int(f.span_hours));
            fo.insert("stale_reads".into(), Value::Int(f.stale_reads));
            fo.insert("stale_served".into(), Value::Int(f.stale_served));
            fo.insert("evictions".into(), Value::Int(f.evictions));
            fo.insert("refresh_passes".into(), Value::Int(f.refresh_passes));
            fo.insert("observed_commits".into(), Value::Int(f.observed_commits));
            fo.insert(
                "arrival_span_clamped_from_ms".into(),
                Value::Int(f.arrival_span_clamped_from_ms),
            );
            m.insert("freshness".into(), Value::Object(fo));
        }
        Value::Object(m)
    }
}

/// A finished fleet run: the aggregate report plus every client's outcome
/// (in client-id order, for per-client assertions in the test tier).
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// Aggregate, deterministic report.
    pub report: FleetReport,
    /// Per-client outcomes, sorted by client id.
    pub outcomes: Vec<ClientOutcome>,
}

/// Per-worker scratch state a [`Pool`] worker keeps alive across the many
/// client loads it runs: the browser engine's internal buffers. Reuse is
/// observationally pure — a recycled scratch produces byte-identical
/// results to a fresh one (pinned by the pipelined-vs-reference proptest).
#[derive(Default)]
pub struct FleetScratch {
    engine: EngineScratch,
}

/// Wall-clock time spent in each stage of a fleet run, in seconds.
/// Populated only when [`run_fleet_instrumented`] is given a clock; all
/// zeros otherwise. Purely diagnostic: none of it feeds the report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FleetStageTiming {
    /// Dedicated resolver-pass fan-outs: cold-start passes (first batch)
    /// and refresh admissions that could not be overlapped.
    pub pass_s: f64,
    /// Sequential store commits between fan-outs.
    pub commit_s: f64,
    /// The combined fan-outs: client loads overlapped with the *next*
    /// batch's arrival-driven resolver passes.
    pub load_s: f64,
    /// Sequential post-batch accounting (origin pool, learning commits).
    pub account_s: f64,
}

/// One unit of work in the combined per-batch fan-out: a client load of
/// the current batch, or a prefetched resolver pass for the next batch.
enum FleetWork {
    Load(ClientSpec),
    Pass { site: usize, bucket: i64 },
}

enum FleetDone {
    Load(Box<ClientOutcome>),
    Pass(PassOutput),
}

/// Mutable cross-batch accounting state, shared by the pipelined
/// implementation and the unpipelined reference.
#[derive(Default)]
struct FleetAccum {
    /// The hour bucket each site's store entries were last resolved at.
    last_pass: BTreeMap<usize, i64>,
    /// Sites whose stale reads admitted a re-resolution (RefreshOnMiss).
    pending_refresh: BTreeSet<usize>,
    resolver_passes: u64,
    refresh_passes: u64,
    observed_commits: u64,
    warm_origins: BTreeSet<String>,
    origins_opened: u64,
    origin_reuses: u64,
    outcomes: Vec<ClientOutcome>,
}

impl FleetAccum {
    /// Admission: which (site, bucket) pairs need a resolver pass for this
    /// batch's *arrivals* — sites never passed and sites whose pass expired
    /// under the TTL. (Stale-read refresh admissions are a separate input:
    /// they depend on the previous batch's outcomes.) Deterministic order
    /// (BTreeSet) so commit order — and therefore shared-table id
    /// assignment — is schedule-independent; ascending buckets make the
    /// newest pass win for a site admitted at two buckets.
    ///
    /// Depends only on `last_pass`, which commits alone update — that is
    /// what lets the pipelined path compute batch k+1's arrival admissions
    /// during batch k's load phase.
    fn arrivals_needed(
        &self,
        batch: &[ClientSpec],
        policy: EvictionPolicy,
    ) -> BTreeSet<(usize, i64)> {
        let mut needed = BTreeSet::new();
        for spec in batch {
            let due = match (self.last_pass.get(&spec.site), policy) {
                (None, _) => true,
                (Some(_), EvictionPolicy::Never) => false,
                (Some(&at), EvictionPolicy::Ttl(h)) => spec.bucket() - at > h as i64,
                // Stale reads, not arrivals, admit refresh passes.
                (Some(_), EvictionPolicy::RefreshOnMiss(_)) => false,
            };
            if due {
                needed.insert((spec.site, spec.bucket()));
            }
        }
        needed
    }

    /// Record one committed pass.
    fn committed(&mut self, site: usize, bucket: i64) {
        let prior = self.last_pass.insert(site, bucket);
        self.resolver_passes += 1;
        self.refresh_passes += prior.is_some() as u64;
    }

    /// Sequential post-batch accounting, in arrival order: the origin
    /// pool models per-origin connection reuse across the fleet, stale
    /// serves admit refresh passes, and (when enabled) each site's
    /// first observed load of the batch is committed back to the store.
    fn account_batch(
        &mut self,
        cfg: &FleetConfig,
        corpus: &Corpus,
        store: &ShardedStore,
        urls: &mut Arc<UrlTable>,
        batch: &[ClientSpec],
        batch_outcomes: Vec<ClientOutcome>,
    ) {
        let mut learned: BTreeSet<usize> = BTreeSet::new();
        for (spec, outcome) in batch.iter().zip(batch_outcomes) {
            if outcome.hint_stale > 0 {
                self.pending_refresh.insert(outcome.site);
            }
            if cfg.learn_from_loads && learned.insert(spec.site) {
                // The page is memoized per (site, context): this re-borrow
                // is the same snapshot the load itself used.
                let page = corpus.sites[spec.site].snapshot_arc(&spec.ctx());
                let observed = observed_pass(&page, &outcome.result);
                if !observed.entries.is_empty() {
                    let table =
                        Arc::get_mut(urls).expect("no table refs outstanding between fan-outs");
                    commit_pass_at(&observed, store, table, spec.bucket());
                    self.observed_commits += 1;
                }
            }
            for origin in &outcome.origins {
                if self.warm_origins.contains(origin) {
                    self.origin_reuses += 1;
                } else {
                    // vroom-lint: allow(hot-path-alloc) -- one clone per first-seen origin; bounded by distinct origins, not loads
                    self.warm_origins.insert(origin.clone());
                    self.origins_opened += 1;
                }
            }
            self.outcomes.push(outcome);
        }
    }

    /// Assemble the final report from the accumulated state.
    fn finish(
        mut self,
        cfg: &FleetConfig,
        clamped_from: u64,
        store: &ShardedStore,
        window: u64,
        batches: u64,
    ) -> FleetRun {
        self.outcomes.sort_by_key(|o| o.id);
        let outcomes = self.outcomes;

        let mut onloads: Vec<f64> = outcomes
            .iter()
            .map(|o| o.result.plt.as_secs_f64() * 1e3)
            .collect();
        onloads.sort_by(f64::total_cmp);

        let sum = |f: &dyn Fn(&ClientOutcome) -> u64| outcomes.iter().map(f).sum::<u64>();
        // The freshness section only exists when the freshness machinery
        // was in play: a legacy run's report stays byte-identical.
        let freshness = (cfg.policy != EvictionPolicy::Never
            || cfg.span_hours > 0
            || cfg.learn_from_loads
            || clamped_from > 0)
            .then(|| {
                let fresh = store.freshness_stats();
                FleetFreshness {
                    policy: cfg.policy.label(),
                    span_hours: cfg.span_hours,
                    stale_reads: fresh.iter().map(|f| f.stale).sum(),
                    stale_served: sum(&|o| o.hint_stale),
                    evictions: fresh.iter().map(|f| f.evictions).sum(),
                    refresh_passes: self.refresh_passes,
                    observed_commits: self.observed_commits,
                    arrival_span_clamped_from_ms: clamped_from,
                }
            });
        let report = FleetReport {
            clients: cfg.clients as u64,
            sites: cfg.sites.max(1) as u64,
            shards: store.shard_count() as u64,
            batch_window_ms: window,
            batches,
            resolver_passes: self.resolver_passes,
            store_entries: store.len() as u64,
            shard_stats: store.shard_stats(),
            hint_hits: sum(&|o| o.hint_hits),
            hint_misses: sum(&|o| o.hint_misses),
            origins_opened: self.origins_opened,
            origin_reuses: self.origin_reuses,
            onload_p50_ms: percentile_sorted(&onloads, 0.50),
            onload_p99_ms: percentile_sorted(&onloads, 0.99),
            faulted_clients: sum(&|o| o.faulted as u64),
            failed_loads: sum(&|o| (o.result.failed_resources > 0) as u64),
            failed_resources: sum(&|o| o.result.failed_resources as u64),
            retries: sum(&|o| o.result.retries as u64),
            rst_streams: sum(&|o| o.result.rst_streams as u64),
            goaways: sum(&|o| o.result.goaways as u64),
            timeouts: sum(&|o| o.result.timeouts as u64),
            useful_bytes: sum(&|o| o.result.useful_bytes),
            wasted_bytes: sum(&|o| o.result.wasted_bytes),
            freshness,
        };
        FleetRun { report, outcomes }
    }
}

/// Derive, sort, and window the fleet's clients.
fn plan_batches(cfg: &FleetConfig) -> (Vec<Vec<ClientSpec>>, u64) {
    // Derive and order clients by virtual arrival (ties by id).
    let mut specs: Vec<ClientSpec> = (0..cfg.clients)
        .map(|id| ClientSpec::derive(cfg, id))
        .collect();
    specs.sort_by_key(|s| (s.arrival_total_ms(), s.id));

    // Partition into batch windows (over total arrival time, so a span
    // across hour buckets yields per-bucket arrival clusters).
    let window = cfg.batch_window_ms.max(1);
    let mut batches: Vec<Vec<ClientSpec>> = Vec::new();
    for spec in specs {
        let bucket = spec.arrival_total_ms() / window;
        match batches.last_mut() {
            Some(last) if last[0].arrival_total_ms() / window == bucket => last.push(spec),
            _ => batches.push(vec![spec]),
        }
    }
    (batches, window)
}

/// Run the fleet. Deterministic: the returned report and outcomes are
/// byte-identical for any `cfg.workers` and across repeated runs with the
/// same config.
pub fn run_fleet(cfg: &FleetConfig) -> FleetRun {
    run_fleet_instrumented(cfg, None).0
}

/// [`run_fleet`] with an injected wall clock (seconds; any epoch) for the
/// per-stage breakdown `vroom-bench fleet` files under `timing`. The clock
/// stays injected so this crate never touches `std::time` — simulated
/// results must be a pure function of the config, and the caller's clock
/// reads only bracket stages, never feed them.
///
/// Execution is *pipelined*: each batch's fan-out combines the batch's
/// client loads with the **next** batch's arrival-driven resolver passes
/// (both pure in the frozen shared state), so resolver work hides behind
/// load work instead of serializing with it. Commits stay sequential, in
/// batch order, between fan-outs; refresh admissions (which depend on the
/// previous batch's outcomes) are never prefetched. The report is
/// byte-identical to [`run_fleet_unpipelined`], which the fleet proptests
/// pin.
pub fn run_fleet_instrumented(
    cfg: &FleetConfig,
    clock: Option<&dyn Fn() -> f64>,
) -> (FleetRun, FleetStageTiming) {
    let (cfg, clamped_from) = cfg.validated();
    let cfg = &cfg;
    let now = || clock.map_or(0.0, |c| c());
    let corpus = Arc::new(Corpus::news_and_sports_capped(
        cfg.corpus_seed,
        Some(cfg.sites.max(1)),
    ));
    let store = Arc::new(ShardedStore::new(cfg.shards));
    let mut urls = Arc::new(UrlTable::new());
    let (batches, window) = plan_batches(cfg);
    let pool: Pool<FleetScratch> = Pool::new(cfg.workers);

    let mut accum = FleetAccum::default();
    let mut timing = FleetStageTiming::default();
    // Passes computed ahead of their batch by a previous combined fan-out.
    let mut prefetched: BTreeMap<(usize, i64), PassOutput> = BTreeMap::new();

    for (bi, batch) in batches.iter().enumerate() {
        let batch_bucket = batch
            .iter()
            .map(|s| s.bucket())
            .min()
            .unwrap_or(FLEET_BASE_HOURS as i64);

        // TTL policy: a sequential eviction sweep between batches — reads
        // never mutate the maps, so the parallel load phase stays pure.
        if let EvictionPolicy::Ttl(h) = cfg.policy {
            store.evict_resolved_before(batch_bucket - h as i64);
        }

        let mut needed = accum.arrivals_needed(batch, cfg.policy);
        for &site in &accum.pending_refresh {
            needed.insert((site, batch_bucket));
        }
        accum.pending_refresh.clear();

        // Run whatever this batch needs that no previous fan-out prefetched:
        // the cold start (first batch) and refresh admissions.
        let t0 = now();
        let missing: Vec<(usize, i64)> = needed
            .iter()
            .filter(|key| !prefetched.contains_key(key))
            .copied()
            .collect();
        if !missing.is_empty() {
            for (key, out) in run_passes_on_pool(&pool, cfg, &corpus, missing) {
                prefetched.insert(key, out);
            }
        }
        let t1 = now();
        timing.pass_s += t1 - t0;

        // Sequential commits, in deterministic (site, bucket) order. The
        // pool's ack barrier guarantees every worker dropped its table Arc,
        // so `get_mut` is exclusive access, not a copy.
        for &(site, bucket) in &needed {
            let pass = prefetched
                .remove(&(site, bucket))
                .expect("admitted pass was just run or prefetched");
            let table =
                Arc::get_mut(&mut urls).expect("no table refs outstanding between fan-outs");
            commit_pass_at(&pass, store.as_ref(), table, bucket);
            accum.committed(site, bucket);
        }
        let t2 = now();
        timing.commit_s += t2 - t1;

        // The combined fan-out: this batch's loads (against the store
        // frozen above) plus the next batch's arrival-driven passes (pure —
        // they read neither store nor table). Passes lead so the expensive
        // items never straggle behind the claim counter.
        let next_arrivals: Vec<(usize, i64)> = match batches.get(bi + 1) {
            Some(next) => accum
                .arrivals_needed(next, cfg.policy)
                .into_iter()
                .collect(),
            // vroom-lint: allow(hot-path-alloc) -- Vec::new is allocation-free
            None => Vec::new(),
        };
        // vroom-lint: allow(hot-path-alloc) -- one work list per batch, amortized across its items
        let mut work: Vec<FleetWork> = Vec::with_capacity(next_arrivals.len() + batch.len());
        work.extend(
            next_arrivals
                .iter()
                .map(|&(site, bucket)| FleetWork::Pass { site, bucket }),
        );
        work.extend(batch.iter().map(|&spec| FleetWork::Load(spec)));

        let shared_corpus = Arc::clone(&corpus);
        let shared_urls = Arc::clone(&urls);
        let shared_store = Arc::clone(&store);
        // vroom-lint: allow(hot-path-alloc) -- one profile clone per batch for the 'static closure
        let profile = cfg.profile.clone();
        let (policy, faults, server_seed) = (cfg.policy, cfg.faults, cfg.server_seed);
        let done = pool.dispatch(work, move |scratch, _, item| match *item {
            FleetWork::Pass { site, bucket } => FleetDone::Pass(run_pass(
                &shared_corpus.sites[site],
                bucket as f64,
                DeviceClass::PhoneLarge,
                server_seed,
            )),
            FleetWork::Load(ref spec) => {
                let plan = match &faults {
                    Some(f) => f.plan_for(spec.id as u64),
                    None => FaultPlan::none(),
                };
                FleetDone::Load(Box::new(load_client(
                    &profile,
                    policy,
                    spec,
                    &shared_corpus.sites[spec.site],
                    &shared_urls,
                    shared_store.as_ref(),
                    &plan,
                    scratch,
                )))
            }
        });
        let t3 = now();
        timing.load_s += t3 - t2;

        let mut done = done.into_iter();
        for &key in &next_arrivals {
            match done.next() {
                Some(FleetDone::Pass(out)) => {
                    prefetched.insert(key, out);
                }
                _ => unreachable!("pass results lead the fan-out, in input order"),
            }
        }
        let batch_outcomes: Vec<ClientOutcome> = done
            .map(|d| match d {
                FleetDone::Load(outcome) => *outcome,
                FleetDone::Pass(_) => {
                    unreachable!("load results trail the fan-out, in input order")
                }
            })
            .collect();

        accum.account_batch(cfg, &corpus, &store, &mut urls, batch, batch_outcomes);
        timing.account_s += now() - t3;
    }
    debug_assert!(prefetched.is_empty(), "every prefetched pass is consumed");

    let run = accum.finish(cfg, clamped_from, &store, window, batches.len() as u64);
    (run, timing)
}

/// Fan a set of resolver passes over the pool. Pure per item; each key is
/// returned alongside its output, in input order.
fn run_passes_on_pool(
    pool: &Pool<FleetScratch>,
    cfg: &FleetConfig,
    corpus: &Arc<Corpus>,
    keys: Vec<(usize, i64)>,
) -> Vec<((usize, i64), PassOutput)> {
    let shared_corpus = Arc::clone(corpus);
    let server_seed = cfg.server_seed;
    pool.dispatch(keys, move |_, _, &(site, bucket)| {
        (
            (site, bucket),
            run_pass(
                &shared_corpus.sites[site],
                bucket as f64,
                DeviceClass::PhoneLarge,
                server_seed,
            ),
        )
    })
}

/// The unpipelined reference implementation: two spawn/join fan-outs per
/// batch on [`vroom_exec::par_map_indexed`], a fresh engine scratch per
/// load, no cross-batch overlap — the executable specification the
/// pipelined [`run_fleet`] must (and, per the fleet proptests, does)
/// reproduce byte-for-byte at every worker count.
pub fn run_fleet_unpipelined(cfg: &FleetConfig) -> FleetRun {
    let (cfg, clamped_from) = cfg.validated();
    let cfg = &cfg;
    let corpus = Corpus::news_and_sports_capped(cfg.corpus_seed, Some(cfg.sites.max(1)));
    let store = ShardedStore::new(cfg.shards);
    let mut urls = Arc::new(UrlTable::new());
    let (batches, window) = plan_batches(cfg);

    let mut accum = FleetAccum::default();

    for batch in &batches {
        let batch_bucket = batch
            .iter()
            .map(|s| s.bucket())
            .min()
            .unwrap_or(FLEET_BASE_HOURS as i64);

        if let EvictionPolicy::Ttl(h) = cfg.policy {
            store.evict_resolved_before(batch_bucket - h as i64);
        }

        let mut needed = accum.arrivals_needed(batch, cfg.policy);
        for &site in &accum.pending_refresh {
            needed.insert((site, batch_bucket));
        }
        accum.pending_refresh.clear();
        let needed: Vec<(usize, i64)> = needed.into_iter().collect();

        // The expensive half fans out; the cheap commits stay sequential.
        let passes = vroom_exec::par_map_indexed(&needed, cfg.workers, |_, &(site, bucket)| {
            run_pass(
                &corpus.sites[site],
                bucket as f64,
                DeviceClass::PhoneLarge,
                cfg.server_seed,
            )
        });
        for (&(site, bucket), pass) in needed.iter().zip(&passes) {
            let table =
                Arc::get_mut(&mut urls).expect("no table refs outstanding between fan-outs");
            commit_pass_at(pass, &store, table, bucket);
            accum.committed(site, bucket);
        }

        // Load phase: the store is frozen (no writes until the next batch),
        // so every client's load is a pure function of its spec and the
        // shared state committed above.
        let batch_outcomes = vroom_exec::par_map_indexed(batch, cfg.workers, |_, spec| {
            let plan = match &cfg.faults {
                Some(f) => f.plan_for(spec.id as u64),
                None => FaultPlan::none(),
            };
            let mut scratch = FleetScratch::default();
            load_client(
                &cfg.profile,
                cfg.policy,
                spec,
                &corpus.sites[spec.site],
                &urls,
                &store,
                &plan,
                &mut scratch,
            )
        });

        accum.account_batch(cfg, &corpus, &store, &mut urls, batch, batch_outcomes);
    }

    accum.finish(cfg, clamped_from, &store, window, batches.len() as u64)
}

/// One client's load against the shared server state. Pure in the shared
/// state: only reads `urls` and `store` (read locks + logical counters).
/// Store reads are classified by `policy` at the client's own hour bucket;
/// a stale serve still feeds the load (old hints beat none) but is counted
/// so the caller can admit a refresh.
///
/// The load resolves hints against the *shared* intern table directly: the
/// store files hint lists under shared-table ids, and the engine only ever
/// looks ids up by equality (never iterates in id order), so handing every
/// client the server's one `Arc`'d table is behaviorally identical to the
/// old per-load re-interning — minus one table build and one hint-list
/// copy per document per load.
#[allow(clippy::too_many_arguments)]
fn load_client(
    profile: &NetworkProfile,
    policy: EvictionPolicy,
    spec: &ClientSpec,
    site: &PageGenerator,
    urls: &Arc<UrlTable>,
    store: &dyn HintStore,
    plan: &FaultPlan,
    scratch: &mut FleetScratch,
) -> ClientOutcome {
    let ctx = spec.ctx();
    let page = site.snapshot_arc(&ctx);

    let mut load_cfg = LoadConfig::http2_baseline();
    load_cfg.cpu_factor = ctx.device.cpu_factor();
    load_cfg.fetch_policy = FetchPolicy::VroomStaged;
    load_cfg.ordered_responses = true;

    // Gather the HTML documents this load will request (root + iframes)
    // and pull each one's hints out of the shared store. The stored lists
    // already carry shared-table ids and are refcounted, so serving a
    // client is a map insert per document — no translation, no copy.
    let mut server = ServerModel::default();
    let mut hint_hits = 0u64;
    let mut hint_misses = 0u64;
    let mut hint_stale = 0u64;
    let mut htmls = vec![&page.url];
    htmls.extend(
        embedded_htmls(&page)
            .into_iter()
            .map(|f| &page.resources[f].url),
    );
    // Resolve every document's shared id first, then fetch all hint lists
    // in one batched store pass: one lock acquisition per touched shard
    // instead of one per document. Only resolved ids reach the store, so
    // the logical read/hit counters match the per-document form exactly.
    let ids: Vec<Option<UrlId>> = htmls.iter().map(|&h| urls.lookup(h)).collect();
    let resolved: Vec<UrlId> = ids.iter().filter_map(|i| *i).collect();
    let mut fetched = store
        .get_fresh_many(&resolved, spec.bucket(), policy)
        .into_iter();
    for (html, id) in htmls.iter().zip(&ids) {
        let read = match id {
            Some(_) => fetched.next(),
            None => None,
        };
        let stored = match read {
            Some(read) => {
                hint_stale += read.is_stale() as u64;
                read.into_hints()
            }
            None => None,
        };
        let (Some(stored), &Some(html_id)) = (stored, id) else {
            hint_misses += 1;
            continue;
        };
        hint_hits += 1;
        let pushes = select_pushes(PushPolicy::HighPriorityLocal, &html.host, &stored, urls);
        if !pushes.is_empty() {
            server.pushes.insert(html_id, pushes);
        }
        server.hints.insert(html_id, stored);
    }
    load_cfg.urls = Arc::clone(urls);
    load_cfg.server = server;

    let faulted = plan.is_active();
    if faulted {
        apply_fault_plan(&mut load_cfg, plan);
    }

    let result = BrowserEngine::load_with_scratch(&page, profile, &load_cfg, &mut scratch.engine);
    let origins: Vec<String> = page
        .resources
        .iter()
        .map(|r| r.url.origin())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    ClientOutcome {
        id: spec.id,
        site: spec.site,
        arrival_ms: spec.arrival_ms,
        faulted,
        hint_hits,
        hint_misses,
        hint_stale,
        origins,
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_derivation_is_deterministic_and_in_range() {
        let cfg = FleetConfig::quick(64, 4);
        for id in 0..64 {
            let a = ClientSpec::derive(&cfg, id);
            let b = ClientSpec::derive(&cfg, id);
            assert_eq!(a.site, b.site);
            assert_eq!(a.arrival_ms, b.arrival_ms);
            assert_eq!(a.nonce, b.nonce);
            assert!(a.site < 4);
            assert!(a.arrival_ms < cfg.arrival_span_ms);
            assert_eq!(a.device.bucket(), "phone");
        }
    }

    #[test]
    fn small_fleet_shares_resolver_passes() {
        let cfg = FleetConfig::quick(40, 3);
        let run = run_fleet(&cfg);
        let r = &run.report;
        assert_eq!(r.clients, 40);
        assert_eq!(r.resolver_passes, 3, "one pass per site, shared by all");
        assert!(r.hint_hits > 0, "root documents hit the store");
        assert!(
            r.hint_hits > r.hint_misses,
            "hits {} should dominate misses {}",
            r.hint_hits,
            r.hint_misses
        );
        assert!(r.origin_reuses > r.origins_opened);
        assert!(r.onload_p99_ms >= r.onload_p50_ms);
        assert!(r.onload_p50_ms > 0.0);
        assert_eq!(r.shard_stats.len(), r.shards as usize);
        let reads: u64 = r.shard_stats.iter().map(|s| s.reads).sum();
        assert_eq!(reads, r.hint_hits + r.hint_misses);
        assert_eq!(r.faulted_clients, 0);
    }

    #[test]
    fn fleet_outcomes_are_in_client_id_order() {
        let run = run_fleet(&FleetConfig::quick(25, 2));
        let ids: Vec<usize> = run.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, (0..25).collect::<Vec<_>>());
    }

    #[test]
    fn report_json_matches_render_fields() {
        let run = run_fleet(&FleetConfig::quick(16, 2));
        let Value::Object(m) = run.report.to_json_value() else {
            panic!("metrics must be an object");
        };
        assert_eq!(m.get("clients"), Some(&Value::Int(16)));
        assert!(m.contains_key("onload_p50_ms"));
        assert!(m.contains_key("shard_stats"));
        let rendered = run.report.render();
        assert!(rendered.starts_with("==== fleet ===="));
        assert!(rendered.contains("resolver passes"));
    }

    #[test]
    fn fault_selector_respects_one_in() {
        let f = FleetFaults {
            seed: 5,
            severity: 0.8,
            one_in: 3,
        };
        assert!(f.plan_for(0).is_active());
        assert!(!f.plan_for(1).is_active());
        assert!(!f.plan_for(2).is_active());
        assert!(f.plan_for(3).is_active());
        let off = FleetFaults { severity: 0.0, ..f };
        assert!(!off.plan_for(0).is_active());
        let nobody = FleetFaults { one_in: 0, ..f };
        assert!(!nobody.plan_for(0).is_active());
    }
}
