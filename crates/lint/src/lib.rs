//! `vroom-lint` — call-graph semantic analysis for the Vroom workspace.
//!
//! The simulation's headline guarantee is determinism: the same seed and
//! the same page corpus must produce byte-identical event traces and
//! metrics. That guarantee is easy to break silently — one `Instant::now()`
//! in a helper three calls below the engine, one `HashMap` iteration
//! feeding an event queue — so this crate enforces the invariants
//! *statically*, over the workspace's own source text, with no external
//! dependencies beyond the workspace JSON codec.
//!
//! The pipeline:
//!
//! 1. [`lexer`] blanks comments and literals while preserving byte
//!    positions, and collects per-line waivers;
//! 2. [`parse`] builds one [`parse::FileSummary`] per file — fns with
//!    their call and effect sites, enums, and protocol matches — plus the
//!    per-file rule findings ([`rules`]);
//! 3. [`cache`] optionally replays summaries for unchanged files (keyed by
//!    content hash; behaviorally invisible);
//! 4. [`callgraph`] links the summaries into a conservative workspace call
//!    graph (over-approximating on every ambiguity);
//! 5. [`reach`] walks it for the interprocedural rule families —
//!    `sim-purity`, `panic-reachable`, `hot-path-alloc`,
//!    `protocol-exhaustive`, and the `lock-safety` triple (`lock-order`,
//!    `blocking-under-lock`, `lock-in-hot-loop`);
//! 6. [`baseline`] reconciles findings against the checked-in ratchet, and
//!    [`sarif`] renders the report as canonical SARIF JSON.
//!
//! Escape hatches are explicit and audited: a line can carry
//! `// vroom-lint: allow(<rule>) -- <reason>` (the reason is mandatory),
//! and pre-existing debt lives in a checked-in ratchet baseline
//! (`lint-baseline.txt`) that may only shrink.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod cache;
pub mod callgraph;
pub mod hotpaths;
pub mod lexer;
pub mod parse;
pub mod reach;
pub mod rules;
pub mod sarif;
pub mod source;

use baseline::Reconciled;
use parse::FileSummary;
use rules::Violation;
use source::SourceFile;
use std::path::{Path, PathBuf};

/// Outcome of a full lint run.
#[derive(Debug)]
pub struct Report {
    /// Violations not absorbed by the baseline.
    pub new_violations: Vec<Violation>,
    /// Baseline entries whose violation no longer exists.
    pub stale_entries: Vec<baseline::Entry>,
    /// Total raw violations before baseline reconciliation.
    pub raw_count: usize,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Clean means no new violations (stale entries are reported separately
    /// and only fail under `--check-baseline`).
    pub fn is_clean(&self) -> bool {
        self.new_violations.is_empty()
    }
}

/// Analysis options. `Default` is a cold, cache-free run — what the
/// library tests and `analyze` use; the CLI opts into the cache.
#[derive(Debug, Default)]
pub struct Options {
    /// Read/write an incremental summary cache at this path.
    pub cache: Option<PathBuf>,
    /// Restrict reporting to these rule ids (expanded from `--rules`
    /// families by [`rules::resolve_rule_filter`]). Applies to baseline
    /// entries too — other families' debt must not read as stale when the
    /// run never looked for it.
    pub rules: Option<Vec<&'static str>>,
}

/// Lint in-memory sources — the pure entry point tests and fixtures use.
/// Runs the complete pipeline (per-file rules + call-graph rules) and
/// returns all violations sorted by (path, line, rule).
pub fn analyze_sources(files: &[SourceFile]) -> Vec<Violation> {
    let summaries: Vec<FileSummary> = files.iter().map(parse::summarize).collect();
    violations_of(&summaries, &hotpaths::HotPathConfig::default())
}

fn violations_of(summaries: &[FileSummary], hot: &hotpaths::HotPathConfig) -> Vec<Violation> {
    let mut out: Vec<Violation> = summaries.iter().flat_map(|s| s.local.clone()).collect();
    out.extend(reach::semantic_violations_with(summaries, hot));
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

/// Summarize every workspace file, consulting (and refreshing) the cache
/// when one is configured.
fn summarize_workspace(files: &[SourceFile], opts: &Options) -> Vec<FileSummary> {
    let Some(cache_path) = &opts.cache else {
        return files.iter().map(parse::summarize).collect();
    };
    let mut cache = cache::Cache::load(cache_path);
    let mut summaries = Vec::with_capacity(files.len());
    for file in files {
        let hash = cache::content_hash(&file.source);
        let summary = match cache.lookup(&file.path, &hash) {
            Some(hit) => hit,
            None => {
                let fresh = parse::summarize(file);
                cache.record(hash, fresh.clone());
                fresh
            }
        };
        summaries.push(summary);
    }
    let live: Vec<&str> = files.iter().map(|f| f.path.as_str()).collect();
    cache.retain_paths(&live);
    cache.store(cache_path);
    summaries
}

/// Lint the workspace rooted at (or above) `start`, reconciling against the
/// checked-in baseline if present. Cache-free; see [`analyze_with`].
pub fn analyze(start: &Path) -> Result<Report, String> {
    analyze_with(start, &Options::default())
}

/// Lint the workspace with explicit [`Options`].
pub fn analyze_with(start: &Path, opts: &Options) -> Result<Report, String> {
    let root = source::workspace_root(start)
        .ok_or_else(|| format!("no workspace Cargo.toml above {}", start.display()))?;
    let files = source::collect_sources(&root).map_err(|e| format!("walking workspace: {e}"))?;
    let hot = hotpaths::load(&root)?;
    let summaries = summarize_workspace(&files, opts);
    let mut violations = violations_of(&summaries, &hot);
    if let Some(keep) = &opts.rules {
        violations.retain(|v| keep.contains(&v.rule));
    }
    let raw_count = violations.len();
    let baseline_path = root.join(baseline::BASELINE_FILE);
    let mut entries = if baseline_path.is_file() {
        let text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?;
        baseline::parse(&text)?
    } else {
        Vec::new()
    };
    if let Some(keep) = &opts.rules {
        entries.retain(|e| keep.iter().any(|r| *r == e.rule));
    }
    let Reconciled {
        new_violations,
        stale_entries,
    } = baseline::reconcile(violations, &entries);
    Ok(Report {
        new_violations,
        stale_entries,
        raw_count,
        files_scanned: files.len(),
    })
}

/// Regenerate the baseline from the current tree and return its contents.
pub fn update_baseline(start: &Path) -> Result<String, String> {
    let root = source::workspace_root(start)
        .ok_or_else(|| format!("no workspace Cargo.toml above {}", start.display()))?;
    let files = source::collect_sources(&root).map_err(|e| format!("walking workspace: {e}"))?;
    let hot = hotpaths::load(&root)?;
    let summaries: Vec<FileSummary> = files.iter().map(parse::summarize).collect();
    let violations = violations_of(&summaries, &hot);
    let text = baseline::render(&violations);
    std::fs::write(root.join(baseline::BASELINE_FILE), &text)
        .map_err(|e| format!("writing baseline: {e}"))?;
    Ok(text)
}
