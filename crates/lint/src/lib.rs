//! `vroom-lint` — source-level static analysis for the Vroom workspace.
//!
//! The simulation's headline guarantee is determinism: the same seed and
//! the same page corpus must produce byte-identical event traces and
//! metrics. That guarantee is easy to break silently — one `Instant::now()`
//! in a shared code path, one `HashMap` iteration feeding an event queue —
//! so this crate enforces the invariants *statically*, over the workspace's
//! own source text, with zero external dependencies.
//!
//! Rules (see [`rules::RULE_IDS`]):
//!
//! * `wall-clock` — `Instant::now` / `SystemTime` outside bench binaries,
//! * `unordered-iter` — HashMap/HashSet iteration in sim-path crates,
//! * `ambient-randomness` — `thread_rng` & friends outside the seeded PRNG,
//! * `forbid-unsafe` — every crate root carries `#![forbid(unsafe_code)]`,
//! * `unwrap` — `.unwrap()`/`.expect(` ratchet in protocol crates,
//! * `float-eq` — exact float comparison in metrics code,
//! * `waiver-syntax` — malformed or unknown-rule waiver comments.
//!
//! Findings fire on *code*, not comments or string literals: a lexer pass
//! ([`lexer::lex`]) blanks comments and literals while preserving byte
//! positions, so diagnostics carry real `file:line` coordinates.
//!
//! Escape hatches are explicit and audited: a line can carry
//! `// vroom-lint: allow(<rule>) -- <reason>` (the reason is mandatory),
//! and pre-existing debt lives in a checked-in ratchet baseline
//! (`lint-baseline.txt`) that may only shrink.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod source;

use baseline::Reconciled;
use rules::Violation;
use source::SourceFile;
use std::path::Path;

/// Outcome of a full lint run.
#[derive(Debug)]
pub struct Report {
    /// Violations not absorbed by the baseline.
    pub new_violations: Vec<Violation>,
    /// Baseline entries whose violation no longer exists.
    pub stale_entries: Vec<baseline::Entry>,
    /// Total raw violations before baseline reconciliation.
    pub raw_count: usize,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Clean means no new violations (stale entries are reported separately
    /// and only fail under `--check-baseline`).
    pub fn is_clean(&self) -> bool {
        self.new_violations.is_empty()
    }
}

/// Lint in-memory sources — the pure entry point the integration tests use.
pub fn analyze_sources(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in files {
        let lexed = lexer::lex(&file.source);
        rules::check_file(file, &lexed, &mut out);
    }
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

/// Lint the workspace rooted at (or above) `start`, reconciling against the
/// checked-in baseline if present.
pub fn analyze(start: &Path) -> Result<Report, String> {
    let root = source::workspace_root(start)
        .ok_or_else(|| format!("no workspace Cargo.toml above {}", start.display()))?;
    let files = source::collect_sources(&root).map_err(|e| format!("walking workspace: {e}"))?;
    let violations = analyze_sources(&files);
    let raw_count = violations.len();
    let baseline_path = root.join(baseline::BASELINE_FILE);
    let entries = if baseline_path.is_file() {
        let text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?;
        baseline::parse(&text)?
    } else {
        Vec::new()
    };
    let Reconciled {
        new_violations,
        stale_entries,
    } = baseline::reconcile(violations, &entries);
    Ok(Report {
        new_violations,
        stale_entries,
        raw_count,
        files_scanned: files.len(),
    })
}

/// Regenerate the baseline from the current tree and return its contents.
pub fn update_baseline(start: &Path) -> Result<String, String> {
    let root = source::workspace_root(start)
        .ok_or_else(|| format!("no workspace Cargo.toml above {}", start.display()))?;
    let files = source::collect_sources(&root).map_err(|e| format!("walking workspace: {e}"))?;
    let violations = analyze_sources(&files);
    let text = baseline::render(&violations);
    std::fs::write(root.join(baseline::BASELINE_FILE), &text)
        .map_err(|e| format!("writing baseline: {e}"))?;
    Ok(text)
}
