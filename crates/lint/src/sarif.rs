//! SARIF 2.1.0 rendering of a lint report.
//!
//! Built on `vroom_net::json::Value`, whose `BTreeMap`-backed objects and
//! stable pretty-printer make the output canonical: same findings, same
//! bytes — which is what lets the cache-determinism test compare cold and
//! cached runs byte-for-byte, and what keeps CI artifact diffs readable.

use crate::rules::{self, Violation};
use crate::Report;
use std::collections::BTreeMap;
use vroom_net::json::Value;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    let mut m = BTreeMap::new();
    for (k, v) in fields {
        m.insert(k.to_string(), v);
    }
    Value::Object(m)
}

fn s(text: &str) -> Value {
    Value::Str(text.to_string())
}

/// Render a report as a SARIF 2.1.0 document (pretty-printed, sorted keys,
/// trailing newline). Results appear in the report's own deterministic
/// order: (path, line, rule).
pub fn render(report: &Report) -> String {
    let rules: Vec<Value> = rules::RULE_IDS
        .iter()
        .map(|id| {
            obj(vec![
                ("id", s(id)),
                (
                    "shortDescription",
                    obj(vec![("text", s(rules::rule_description(id)))]),
                ),
            ])
        })
        .collect();

    let results: Vec<Value> = report.new_violations.iter().map(result_of).collect();

    let stale: Vec<Value> = report
        .stale_entries
        .iter()
        .map(|e| {
            obj(vec![
                ("rule", s(e.rule.as_str())),
                ("path", s(e.path.as_str())),
                ("snippet", s(e.snippet.as_str())),
            ])
        })
        .collect();

    let run = obj(vec![
        (
            "tool",
            obj(vec![(
                "driver",
                obj(vec![
                    ("name", s("vroom-lint")),
                    ("informationUri", s("https://github.com/vroom/vroom")),
                    ("rules", Value::Array(rules)),
                ]),
            )]),
        ),
        ("columnKind", s("utf16CodeUnits")),
        ("results", Value::Array(results)),
        (
            "properties",
            obj(vec![
                ("filesScanned", Value::Int(report.files_scanned as u64)),
                ("rawFindings", Value::Int(report.raw_count as u64)),
                ("staleBaselineEntries", Value::Array(stale)),
            ]),
        ),
    ]);

    let doc = obj(vec![
        (
            "$schema",
            s("https://json.schemastore.org/sarif-2.1.0.json"),
        ),
        ("version", s("2.1.0")),
        ("runs", Value::Array(vec![run])),
    ]);

    let mut out = doc.to_pretty();
    out.push('\n');
    out
}

fn result_of(v: &Violation) -> Value {
    obj(vec![
        ("ruleId", s(v.rule)),
        ("level", s("error")),
        ("message", obj(vec![("text", s(&v.message))])),
        (
            "locations",
            Value::Array(vec![obj(vec![(
                "physicalLocation",
                obj(vec![
                    ("artifactLocation", obj(vec![("uri", s(&v.path))])),
                    (
                        "region",
                        obj(vec![
                            ("startLine", Value::Int(v.line as u64)),
                            ("snippet", obj(vec![("text", s(&v.snippet))])),
                        ]),
                    ),
                ]),
            )])]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        Report {
            new_violations: vec![
                Violation {
                    rule: "sim-purity",
                    path: "crates/net/src/x.rs".into(),
                    line: 3,
                    message: "wall-clock read".into(),
                    snippet: "let t = Instant::now();".into(),
                },
                Violation {
                    rule: "panic-reachable",
                    path: "crates/server/src/wire.rs".into(),
                    line: 9,
                    message: "unwrap".into(),
                    snippet: "x.unwrap()".into(),
                },
            ],
            stale_entries: vec![],
            raw_count: 2,
            files_scanned: 5,
        }
    }

    #[test]
    fn renders_valid_canonical_json() {
        let text = render(&sample_report());
        let v = Value::parse(text.trim_end()).expect("valid json");
        assert_eq!(v.get("version").unwrap().as_str(), Some("2.1.0"));
        let runs = match v.get("runs").unwrap() {
            Value::Array(a) => a,
            other => panic!("runs not an array: {other:?}"),
        };
        let results = match runs[0].get("results").unwrap() {
            Value::Array(a) => a,
            other => panic!("results not an array: {other:?}"),
        };
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("ruleId").unwrap().as_str(),
            Some("sim-purity")
        );
        // Rendering twice is byte-identical.
        assert_eq!(text, render(&sample_report()));
    }

    #[test]
    fn driver_lists_every_rule() {
        let text = render(&sample_report());
        for id in rules::RULE_IDS {
            assert!(text.contains(&format!("\"id\": \"{id}\"")), "{id}");
        }
    }
}
