//! CLI for the workspace linter.
//!
//! * `vroom-lint` — lint; exit 1 if violations beyond the baseline exist.
//! * `vroom-lint --update-baseline` — regenerate `lint-baseline.txt` from
//!   the current tree (use only to record that debt shrank).
//! * `vroom-lint --check-baseline` — like the default, but also exit 1 on
//!   stale baseline entries, keeping the ratchet honest in CI.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut update = false;
    let mut check_baseline = false;
    for arg in &args {
        match arg.as_str() {
            "--update-baseline" => update = true,
            "--check-baseline" => check_baseline = true,
            "--help" | "-h" => {
                println!(
                    "vroom-lint: determinism & protocol-invariant checks for the Vroom workspace\n\
                     \n\
                     USAGE: vroom-lint [--update-baseline | --check-baseline]\n\
                     \n\
                     Default mode lints the workspace and fails on violations not covered by\n\
                     lint-baseline.txt. --check-baseline additionally fails when baseline\n\
                     entries are stale (debt was paid down but the file was not regenerated).\n\
                     --update-baseline rewrites lint-baseline.txt from the current tree."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("vroom-lint: unknown flag {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    if update {
        return match vroom_lint::update_baseline(&cwd) {
            Ok(text) => {
                let entries = text
                    .lines()
                    .filter(|l| !l.is_empty() && !l.starts_with('#'))
                    .count();
                println!("vroom-lint: wrote lint-baseline.txt ({entries} entries)");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("vroom-lint: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match vroom_lint::analyze(&cwd) {
        Ok(report) => {
            for v in &report.new_violations {
                println!("{}:{}: {}: {}", v.path, v.line, v.rule, v.message);
            }
            for e in &report.stale_entries {
                println!(
                    "lint-baseline.txt: stale entry ({} in {}: {:?}) — debt paid down, \
                     regenerate with --update-baseline",
                    e.rule, e.path, e.snippet
                );
            }
            let fail = !report.is_clean() || (check_baseline && !report.stale_entries.is_empty());
            println!(
                "vroom-lint: {} files, {} raw finding(s), {} new, {} stale baseline entr{}",
                report.files_scanned,
                report.raw_count,
                report.new_violations.len(),
                report.stale_entries.len(),
                if report.stale_entries.len() == 1 {
                    "y"
                } else {
                    "ies"
                },
            );
            if fail {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("vroom-lint: {e}");
            ExitCode::FAILURE
        }
    }
}
