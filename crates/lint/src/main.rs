//! CLI for the workspace linter.
//!
//! * `vroom-lint` — lint; exit 1 if violations beyond the baseline exist.
//! * `vroom-lint --format json` — emit a SARIF 2.1.0 report on stdout
//!   (stable, sorted, byte-identical across cold and cached runs).
//! * `vroom-lint --no-cache` — skip the incremental summary cache
//!   (`target/vroom-lint-cache.json`); the default run uses it.
//! * `vroom-lint --rules lock-safety` — restrict the run to one or more
//!   comma-separated rule families (or bare rule ids); unknown names exit 2.
//! * `vroom-lint --update-baseline` — regenerate `lint-baseline.txt` from
//!   the current tree (use only to record that debt shrank).
//! * `vroom-lint --check-baseline` — like the default, but also exit 1 on
//!   stale baseline entries, keeping the ratchet honest in CI.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut update = false;
    let mut check_baseline = false;
    let mut no_cache = false;
    let mut json = false;
    let mut rules: Option<Vec<&'static str>> = None;
    let parse_rules = |spec: Option<&str>| -> Result<Vec<&'static str>, String> {
        let spec = spec.ok_or("--rules expects a comma-separated list of families")?;
        vroom_lint::rules::resolve_rule_filter(spec)
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--update-baseline" => update = true,
            "--check-baseline" => check_baseline = true,
            "--no-cache" => no_cache = true,
            "--rules" => match parse_rules(iter.next().map(String::as_str)) {
                Ok(r) => rules = Some(r),
                Err(e) => {
                    eprintln!("vroom-lint: {e}");
                    return ExitCode::from(2);
                }
            },
            s if s.starts_with("--rules=") => match parse_rules(Some(&s["--rules=".len()..])) {
                Ok(r) => rules = Some(r),
                Err(e) => {
                    eprintln!("vroom-lint: {e}");
                    return ExitCode::from(2);
                }
            },
            "--format" => match iter.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!(
                        "vroom-lint: --format expects `json` or `text`, got {:?}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            "--format=json" => json = true,
            "--format=text" => json = false,
            "--help" | "-h" => {
                println!(
                    "vroom-lint: call-graph determinism & protocol-invariant checks\n\
                     \n\
                     USAGE: vroom-lint [--format json|text] [--no-cache] [--rules <list>]\n\
                     \u{20}                 [--update-baseline | --check-baseline]\n\
                     \n\
                     Default mode lints the workspace and fails on violations not covered by\n\
                     lint-baseline.txt. --format json writes a SARIF 2.1.0 report to stdout.\n\
                     --rules restricts the run to a comma-separated list of rule families\n\
                     (e.g. `lock-safety`) or bare rule ids; unknown names exit 2.\n\
                     --no-cache forces a cold run (the default keeps an incremental summary\n\
                     cache in target/vroom-lint-cache.json; cached runs are byte-identical).\n\
                     --check-baseline additionally fails when baseline entries are stale\n\
                     (debt was paid down but the file was not regenerated).\n\
                     --update-baseline rewrites lint-baseline.txt from the current tree."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("vroom-lint: unknown flag {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    if update {
        return match vroom_lint::update_baseline(&cwd) {
            Ok(text) => {
                let entries = text
                    .lines()
                    .filter(|l| !l.is_empty() && !l.starts_with('#'))
                    .count();
                println!("vroom-lint: wrote lint-baseline.txt ({entries} entries)");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("vroom-lint: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let opts = vroom_lint::Options {
        cache: if no_cache {
            None
        } else {
            vroom_lint::source::workspace_root(&cwd)
                .map(|root| root.join("target").join("vroom-lint-cache.json"))
        },
        rules,
    };

    match vroom_lint::analyze_with(&cwd, &opts) {
        Ok(report) => {
            if json {
                print!("{}", vroom_lint::sarif::render(&report));
            } else {
                for v in &report.new_violations {
                    println!("{}:{}: {}: {}", v.path, v.line, v.rule, v.message);
                }
                for e in &report.stale_entries {
                    println!(
                        "lint-baseline.txt: stale entry ({} in {}: {:?}) — debt paid down, \
                         regenerate with --update-baseline",
                        e.rule, e.path, e.snippet
                    );
                }
                println!(
                    "vroom-lint: {} files, {} raw finding(s), {} new, {} stale baseline entr{}",
                    report.files_scanned,
                    report.raw_count,
                    report.new_violations.len(),
                    report.stale_entries.len(),
                    if report.stale_entries.len() == 1 {
                        "y"
                    } else {
                        "ies"
                    },
                );
            }
            let fail = !report.is_clean() || (check_baseline && !report.stale_entries.is_empty());
            if fail {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("vroom-lint: {e}");
            ExitCode::FAILURE
        }
    }
}
