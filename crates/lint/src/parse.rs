//! Lightweight Rust item/expression parser on top of [`crate::lexer`].
//!
//! Produces one [`FileSummary`] per source file: the functions it defines
//! (with their call sites and effect sites), the enums it declares, and the
//! `match` expressions that scrutinize enum variants. Summaries are the unit
//! of incremental caching ([`crate::cache`]) and the input to the workspace
//! call graph ([`crate::callgraph`]) and the reachability rules
//! ([`crate::reach`]).
//!
//! The parser is deliberately conservative: it never needs to be *right*
//! about Rust's grammar, only to over-approximate. Missing an impl header
//! widens method resolution (more candidate callees); attributing a nested
//! fn's body to both the nested fn and its parent adds edges, never removes
//! them. The one direction it must not err in is dropping calls or effects,
//! and the scanners below are all simple substring/byte scans over lexed
//! code (comments and literals blanked) for exactly that reason.

use crate::lexer;
use crate::rules::{self, Violation};
use crate::source::SourceFile;

/// How a call site names its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `helper(..)` — bare path, resolved by name (same crate preferred).
    Free,
    /// `recv.method(..)` — resolved by name + arity over all methods.
    Method,
    /// `Type::assoc(..)` / `module::helper(..)` — resolved through the
    /// qualifying path segment.
    Qualified,
}

impl CallKind {
    pub fn tag(self) -> &'static str {
        match self {
            CallKind::Free => "free",
            CallKind::Method => "method",
            CallKind::Qualified => "qualified",
        }
    }

    pub fn from_tag(tag: &str) -> Option<CallKind> {
        match tag {
            "free" => Some(CallKind::Free),
            "method" => Some(CallKind::Method),
            "qualified" => Some(CallKind::Qualified),
            _ => None,
        }
    }
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (last path segment).
    pub name: String,
    /// Qualifying segment for [`CallKind::Qualified`] (`Type` in
    /// `Type::assoc`, `module` in `module::helper`, or `Self`).
    pub qualifier: Option<String>,
    pub kind: CallKind,
    /// Number of argument expressions (excluding any receiver).
    pub args: usize,
    /// 1-based line of the call.
    pub line: usize,
    /// For [`CallKind::Method`]: the trailing identifier of the receiver
    /// expression (`map` in `self.map.get(..)`), or `None` when the
    /// receiver is a compound expression (`f(x).get(..)`). The lock-safety
    /// pass uses it to tell calls *on a guard* (which deref to the guarded
    /// std container) from calls that could re-enter workspace code.
    pub recv: Option<String>,
}

/// What an allocation/copy effect site does — the sub-lattice of
/// [`EffectKind::Alloc`] the `hot-path-alloc` rule reports on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocKind {
    /// `.clone()` — may be a deep copy or an `Arc` refcount bump; the rule
    /// over-approximates and waivers audit the cheap ones.
    Clone,
    /// `.to_vec()`.
    ToVec,
    /// `.to_owned()`.
    ToOwned,
    /// `.to_string()`.
    ToString,
    /// `String::from(..)`.
    StringFrom,
    /// `format!(..)`.
    Format,
    /// Slice `.concat()`.
    Concat,
    /// Slice/iterator `.join(..)`.
    Join,
    /// `copy_from_slice(..)` — the workspace's canonical byte-copy.
    CopyFromSlice,
    /// `Vec::new()` inside a loop body (loop-gated: a one-time `Vec::new`
    /// is free).
    VecNew,
    /// `with_capacity(..)` inside a loop body (loop-gated).
    WithCapacity,
}

impl AllocKind {
    /// Short token used in diagnostics ("alloc (clone)", ...).
    pub fn label(self) -> &'static str {
        match self {
            AllocKind::Clone => "clone",
            AllocKind::ToVec => "to_vec",
            AllocKind::ToOwned => "to_owned",
            AllocKind::ToString => "to_string",
            AllocKind::StringFrom => "String::from",
            AllocKind::Format => "format!",
            AllocKind::Concat => "concat",
            AllocKind::Join => "join",
            AllocKind::CopyFromSlice => "copy_from_slice",
            AllocKind::VecNew => "Vec::new in loop",
            AllocKind::WithCapacity => "with_capacity in loop",
        }
    }
}

/// What a blocking primitive does — the sub-lattice of
/// [`EffectKind::Blocking`] the `blocking-under-lock` rule reports on.
/// I/O and thread-spawn effects double as blocking effects but keep their
/// own kinds (their primary rule is `sim-purity`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// `thread::sleep(..)`.
    Sleep,
    /// Channel `.recv()` / `.recv_timeout(..)`.
    ChannelRecv,
    /// Channel `.send(..)` — blocks on bounded (sync) channels; the rule
    /// over-approximates the unbounded case.
    ChannelSend,
    /// Zero-arg `.join()` — a thread-handle join. The arg-taking slice
    /// `.join(sep)` stays an [`AllocKind::Join`].
    ThreadJoin,
}

impl BlockKind {
    /// Short token used in diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            BlockKind::Sleep => "thread::sleep",
            BlockKind::ChannelRecv => "channel recv",
            BlockKind::ChannelSend => "channel send",
            BlockKind::ThreadJoin => "thread join",
        }
    }
}

/// Effect families tracked for the reachability rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EffectKind {
    WallClock,
    Randomness,
    Fs,
    Net,
    UnorderedIter,
    ThreadSpawn,
    Panic,
    /// Heap allocation / byte copy (the `hot-path-alloc` rule).
    Alloc(AllocKind),
    /// Blocking primitive (the `blocking-under-lock` rule).
    Blocking(BlockKind),
}

impl EffectKind {
    /// The rule id a waiver/baseline entry references for this effect.
    pub fn rule(self) -> &'static str {
        match self {
            EffectKind::Panic => "panic-reachable",
            EffectKind::Alloc(_) => "hot-path-alloc",
            EffectKind::Blocking(_) => "blocking-under-lock",
            _ => "sim-purity",
        }
    }

    /// Human name used in diagnostics and the cache encoding.
    pub fn name(self) -> &'static str {
        match self {
            EffectKind::WallClock => "wall-clock read",
            EffectKind::Randomness => "ambient randomness",
            EffectKind::Fs => "filesystem access",
            EffectKind::Net => "network access",
            EffectKind::UnorderedIter => "unordered iteration",
            EffectKind::ThreadSpawn => "thread spawn",
            EffectKind::Panic => "panic site",
            EffectKind::Alloc(AllocKind::Clone) => "alloc clone",
            EffectKind::Alloc(AllocKind::ToVec) => "alloc to_vec",
            EffectKind::Alloc(AllocKind::ToOwned) => "alloc to_owned",
            EffectKind::Alloc(AllocKind::ToString) => "alloc to_string",
            EffectKind::Alloc(AllocKind::StringFrom) => "alloc string-from",
            EffectKind::Alloc(AllocKind::Format) => "alloc format",
            EffectKind::Alloc(AllocKind::Concat) => "alloc concat",
            EffectKind::Alloc(AllocKind::Join) => "alloc join",
            EffectKind::Alloc(AllocKind::CopyFromSlice) => "alloc copy-from-slice",
            EffectKind::Alloc(AllocKind::VecNew) => "alloc vec-new",
            EffectKind::Alloc(AllocKind::WithCapacity) => "alloc with-capacity",
            EffectKind::Blocking(BlockKind::Sleep) => "blocking sleep",
            EffectKind::Blocking(BlockKind::ChannelRecv) => "blocking channel-recv",
            EffectKind::Blocking(BlockKind::ChannelSend) => "blocking channel-send",
            EffectKind::Blocking(BlockKind::ThreadJoin) => "blocking thread-join",
        }
    }

    pub fn from_name(name: &str) -> Option<EffectKind> {
        match name {
            "wall-clock read" => Some(EffectKind::WallClock),
            "ambient randomness" => Some(EffectKind::Randomness),
            "filesystem access" => Some(EffectKind::Fs),
            "network access" => Some(EffectKind::Net),
            "unordered iteration" => Some(EffectKind::UnorderedIter),
            "thread spawn" => Some(EffectKind::ThreadSpawn),
            "panic site" => Some(EffectKind::Panic),
            "alloc clone" => Some(EffectKind::Alloc(AllocKind::Clone)),
            "alloc to_vec" => Some(EffectKind::Alloc(AllocKind::ToVec)),
            "alloc to_owned" => Some(EffectKind::Alloc(AllocKind::ToOwned)),
            "alloc to_string" => Some(EffectKind::Alloc(AllocKind::ToString)),
            "alloc string-from" => Some(EffectKind::Alloc(AllocKind::StringFrom)),
            "alloc format" => Some(EffectKind::Alloc(AllocKind::Format)),
            "alloc concat" => Some(EffectKind::Alloc(AllocKind::Concat)),
            "alloc join" => Some(EffectKind::Alloc(AllocKind::Join)),
            "alloc copy-from-slice" => Some(EffectKind::Alloc(AllocKind::CopyFromSlice)),
            "alloc vec-new" => Some(EffectKind::Alloc(AllocKind::VecNew)),
            "alloc with-capacity" => Some(EffectKind::Alloc(AllocKind::WithCapacity)),
            "blocking sleep" => Some(EffectKind::Blocking(BlockKind::Sleep)),
            "blocking channel-recv" => Some(EffectKind::Blocking(BlockKind::ChannelRecv)),
            "blocking channel-send" => Some(EffectKind::Blocking(BlockKind::ChannelSend)),
            "blocking thread-join" => Some(EffectKind::Blocking(BlockKind::ThreadJoin)),
            _ => None,
        }
    }

    /// Whether this effect can block the calling thread — the effect set
    /// `blocking-under-lock` reports when it is reachable with a guard live.
    /// I/O and thread spawns block as well as violating sim-purity.
    pub fn is_blocking(self) -> bool {
        matches!(
            self,
            EffectKind::Fs | EffectKind::Net | EffectKind::ThreadSpawn | EffectKind::Blocking(_)
        )
    }
}

/// One effect occurrence inside a function body.
#[derive(Debug, Clone)]
pub struct EffectSite {
    pub kind: EffectKind,
    /// 1-based line of the effect.
    pub line: usize,
    /// What triggered it (`Instant::now`, `.unwrap()`, `buf[`, ...).
    pub detail: String,
    /// Original (unlexed) source line, trimmed — becomes the diagnostic
    /// snippet, which the baseline keys on.
    pub snippet: String,
    /// A per-call-site waiver covers this line for the effect's rule.
    pub waived: bool,
    /// A waiver covers this line for `blocking-under-lock` specifically
    /// (an I/O effect's primary rule is `sim-purity`, but the same site can
    /// be reported by either family).
    pub waived_blocking: bool,
    /// Number of syntactic `loop`/`while`/`for` bodies enclosing the site —
    /// the `hot-path-alloc` ranking weight (an alloc at depth 1 runs per
    /// iteration; depth 0 runs once per call).
    pub loop_depth: usize,
}

/// Which lock-acquisition method a site calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockOp {
    /// `Mutex::lock`.
    Lock,
    /// `RwLock::read`.
    Read,
    /// `RwLock::write`.
    Write,
}

impl LockOp {
    pub fn label(self) -> &'static str {
        match self {
            LockOp::Lock => "lock",
            LockOp::Read => "read",
            LockOp::Write => "write",
        }
    }

    pub fn from_label(s: &str) -> Option<LockOp> {
        match s {
            "lock" => Some(LockOp::Lock),
            "read" => Some(LockOp::Read),
            "write" => Some(LockOp::Write),
            _ => None,
        }
    }
}

/// One lock acquisition inside a function body, with the lexical extent of
/// the guard it produces.
///
/// Spans are line-granular and deliberately **may-hold**: a guard bound
/// with `let` extends to the end of its enclosing block (or to the first
/// textual `drop(binding)`), a chained temporary dies at its statement end
/// (extended through the construct body when the statement is a
/// `for`/`while`/`if`/`match` header, matching Rust's scrutinee temporary
/// lifetimes), and a guard that is returned (`escapes`) is treated as live
/// to the end of every *caller* as well. Over-approximating the span adds
/// findings, never hides them; waivers audit the survivors.
#[derive(Debug, Clone)]
pub struct LockSite {
    pub op: LockOp,
    /// The lock's symbol within its file — the receiver's meaningful
    /// trailing identifier (`map` in `shard.map.read()`). The reach pass
    /// qualifies it with the file path to form the workspace identity;
    /// same-named locks in one file share an identity (over-approximation).
    pub id: String,
    /// 1-based line of the acquisition.
    pub line: usize,
    /// Original (unlexed) source line, trimmed — becomes the diagnostic
    /// snippet, which the baseline keys on.
    pub snippet: String,
    /// Syntactic loop bodies enclosing the acquisition — the
    /// `lock-in-hot-loop` ranking weight.
    pub loop_depth: usize,
    /// 1-based inclusive line range the guard is live, within this fn.
    pub span: (usize, usize),
    /// `Some(name)` when the guard is `let`-bound.
    pub binding: Option<String>,
    /// The guard is returned to the caller (tail expression or `return`).
    pub escapes: bool,
    /// The guard is an unnamed statement temporary (`m.lock().get(..)`):
    /// method calls chained on it deref to the guarded data, so the reach
    /// pass does not resolve them against workspace methods.
    pub stmt_temp: bool,
    /// Per-rule waivers covering the acquisition line.
    pub waived_order: bool,
    pub waived_blocking: bool,
    pub waived_hot: bool,
}

/// One function (free fn, inherent/trait method, or nested fn).
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// `Some(TypeName)` for fns inside an `impl Type` / `impl Trait for
    /// Type` / `trait Name` block.
    pub self_type: Option<String>,
    /// Takes a `self` receiver (method-call resolution candidate).
    pub has_self: bool,
    /// Parameter count, excluding `self`.
    pub arity: usize,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Inside a `#[cfg(test)]` region or a test file — excluded from the
    /// call graph entirely.
    pub is_test: bool,
    /// 1-based line of the body's closing brace (== `line` for bodyless
    /// trait-method declarations). Escaped guards are live to here.
    pub end_line: usize,
    pub calls: Vec<CallSite>,
    pub effects: Vec<EffectSite>,
    pub locks: Vec<LockSite>,
}

/// One enum declaration (workspace-wide variant table for
/// protocol-exhaustiveness).
#[derive(Debug, Clone)]
pub struct EnumDef {
    pub name: String,
    pub variants: Vec<String>,
}

/// One `match` whose patterns reference enum variants (`E::V`).
#[derive(Debug, Clone)]
pub struct MatchSite {
    /// The enum the match scrutinizes (majority of variant refs).
    pub enum_name: String,
    /// Variant names covered by explicit patterns, sorted + deduped.
    pub covered: Vec<String>,
    /// Has a `_` or bare-binding catch-all arm.
    pub catch_all: bool,
    /// 1-based line of the `match` keyword.
    pub line: usize,
    pub snippet: String,
    /// Waived via `allow(protocol-exhaustive)` on the match line.
    pub waived: bool,
}

/// Everything the workspace analysis needs to know about one file.
#[derive(Debug, Clone)]
pub struct FileSummary {
    pub path: String,
    pub is_test: bool,
    pub fns: Vec<FnItem>,
    pub enums: Vec<EnumDef>,
    pub matches: Vec<MatchSite>,
    /// `use path::Real as Alias;` renames, as (alias, real) pairs — lets
    /// the call graph resolve `Alias::assoc(..)` through the real type.
    pub aliases: Vec<(String, String)>,
    /// Per-file rule violations ([`rules::check_file`]), cached alongside
    /// the structural summary so a cache hit skips the whole file.
    pub local: Vec<Violation>,
}

/// Parse one file into its summary. This is the only entry point; it runs
/// the lexer, the per-file rules, and the item/expression scans.
pub fn summarize(file: &SourceFile) -> FileSummary {
    let lexed = lexer::lex(&file.source);
    let mut local = Vec::new();
    rules::check_file(file, &lexed, &mut local);

    let code = lexed.code.as_str();
    let lines = LineMap::new(code);
    let test_lines = rules::test_region_lines(code);
    let is_test_file = file.is_test_file();
    let in_test = |line: usize| is_test_file || test_lines.get(line - 1).copied().unwrap_or(false);
    let snippet_of = |line: usize| -> String {
        file.source
            .lines()
            .nth(line - 1)
            .unwrap_or("")
            .trim()
            .to_string()
    };

    let impls = impl_ranges(code);
    let mut fns = fn_items(code, &lines, &impls, &in_test);

    // Effects: scan the whole file once per family, then attribute each
    // site to its innermost enclosing fn. Sites outside any fn body
    // (consts, statics) cannot execute at runtime on the simulated path
    // and are dropped.
    for site in effect_sites(code, &lines) {
        let waived = lexed.is_waived(site.kind.rule(), site.line);
        let waived_blocking = lexed.is_waived("blocking-under-lock", site.line);
        if let Some(idx) = innermost_fn(&fns, site.pos) {
            fns[idx].item.effects.push(EffectSite {
                kind: site.kind,
                line: site.line,
                detail: site.detail,
                snippet: snippet_of(site.line),
                waived,
                waived_blocking,
                loop_depth: site.loop_depth,
            });
        }
    }

    // Lock acquisitions, attributed like effects. Sites outside any fn
    // (statics) cannot produce a live guard at runtime and are dropped.
    for site in lock_sites(code, &lines) {
        if let Some(idx) = innermost_fn(&fns, site.pos) {
            fns[idx].item.locks.push(LockSite {
                op: site.op,
                id: site.id,
                line: site.line,
                snippet: snippet_of(site.line),
                loop_depth: site.loop_depth,
                span: site.span,
                binding: site.binding,
                escapes: site.escapes,
                stmt_temp: site.stmt_temp,
                waived_order: lexed.is_waived("lock-order", site.line),
                waived_blocking: lexed.is_waived("blocking-under-lock", site.line),
                waived_hot: lexed.is_waived("lock-in-hot-loop", site.line),
            });
        }
    }

    // Calls: scan each fn body. Nested fn bodies are contained in their
    // parent's range, so the parent over-approximates by absorbing the
    // nested calls too; diagnostics dedup by (rule, path, line) downstream.
    for i in 0..fns.len() {
        let (start, end) = fns[i].body;
        fns[i].item.calls = call_sites(code, start, end, &lines);
    }

    let enums = enum_defs(code);
    let matches = match_sites(code, &lines, &in_test)
        .into_iter()
        .map(|m| MatchSite {
            snippet: snippet_of(m.line),
            waived: lexed.is_waived("protocol-exhaustive", m.line),
            enum_name: m.enum_name,
            covered: m.covered,
            catch_all: m.catch_all,
            line: m.line,
        })
        .collect();

    FileSummary {
        path: file.path.clone(),
        is_test: is_test_file,
        fns: fns.into_iter().map(|f| f.item).collect(),
        enums,
        matches,
        aliases: use_aliases(code),
        local,
    }
}

/// `(alias, real)` pairs from `use` declarations, including grouped lists
/// (`use x::{A as B, C as D};`).
fn use_aliases(code: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for at in rules::find_word(code, "use") {
        let stmt_end = code[at..].find(';').map(|i| at + i).unwrap_or(code.len());
        let stmt = &code[at..stmt_end];
        for as_at in rules::find_word(stmt, "as") {
            let Some(real) = rules_trailing_word(stmt[..as_at].trim_end()) else {
                continue;
            };
            let Some(alias) = first_ident(&stmt[as_at + 2..]) else {
                continue;
            };
            if alias == "_" {
                continue; // `use Trait as _;` — nothing to resolve through
            }
            out.push((alias, real));
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Summarize an in-memory source without touching disk (tests, fixtures).
pub fn summarize_source(path: &str, source: &str) -> FileSummary {
    summarize(&SourceFile {
        path: path.to_string(),
        source: source.to_string(),
    })
}

// ---------------------------------------------------------------------------
// Byte → line mapping
// ---------------------------------------------------------------------------

struct LineMap {
    /// Byte offset of the start of each line.
    starts: Vec<usize>,
}

impl LineMap {
    fn new(code: &str) -> LineMap {
        let mut starts = vec![0];
        for (i, b) in code.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineMap { starts }
    }

    /// 1-based line containing byte offset `pos`.
    fn line(&self, pos: usize) -> usize {
        self.starts.partition_point(|&s| s <= pos)
    }
}

// ---------------------------------------------------------------------------
// Items: impl blocks, fns, enums
// ---------------------------------------------------------------------------

struct ImplRange {
    start: usize,
    end: usize,
    self_type: String,
}

/// Brace-matched span starting at the `{` at `open`. Returns the offset one
/// past the closing `}` (or `code.len()` if unbalanced).
fn brace_span(code: &str, open: usize) -> usize {
    let mut depth = 0usize;
    for (i, b) in code[open..].bytes().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return open + i + 1;
                }
            }
            _ => {}
        }
    }
    code.len()
}

/// `impl` and `trait` block ranges with the type (or trait) name that
/// methods inside resolve under. `-> impl Trait` positions are filtered by
/// looking at the previous non-whitespace byte: item-level `impl`/`trait`
/// can only follow `}`, `;`, `]` (attribute), `{` (mod body), or the start
/// of the file.
fn impl_ranges(code: &str) -> Vec<ImplRange> {
    let mut out = Vec::new();
    for kw in ["impl", "trait"] {
        for at in rules::find_word(code, kw) {
            let prev = code[..at].trim_end().bytes().next_back();
            if !matches!(
                prev,
                None | Some(b'}') | Some(b';') | Some(b']') | Some(b'{')
            ) {
                continue;
            }
            let Some(open_rel) = code[at..].find('{') else {
                continue;
            };
            // `trait` objects (`dyn trait`) can't appear item-level; for
            // `impl`, the header between the keyword and `{` names the type.
            let open = at + open_rel;
            let header = &code[at + kw.len()..open];
            // A `;` in the header means this wasn't a block after all
            // (e.g. `trait alias = ...;` — not used here, but cheap to guard).
            if header.contains(';') {
                continue;
            }
            let name = if kw == "impl" {
                impl_self_type(header)
            } else {
                first_ident(header)
            };
            let Some(name) = name else { continue };
            out.push(ImplRange {
                start: open,
                end: brace_span(code, open),
                self_type: name,
            });
        }
    }
    out
}

/// The self type of an `impl` header: last path segment of the type after
/// `for` (trait impls) or after the generics (inherent impls), with
/// generic arguments and reference sigils stripped.
fn impl_self_type(header: &str) -> Option<String> {
    let ty = match split_at_word(header, "for") {
        Some((_, after)) => after,
        None => strip_leading_generics(header),
    };
    let ty = ty.trim().trim_start_matches('&').trim_start_matches("mut ");
    // Walk path segments up to generics: `hpack::Decoder<'a>` → `Decoder`.
    let base: &str = ty.split('<').next().unwrap_or(ty).trim();
    base.rsplit("::").next().and_then(first_ident)
}

/// Split `text` at the first word-boundary occurrence of `word`.
fn split_at_word<'a>(text: &'a str, word: &str) -> Option<(&'a str, &'a str)> {
    let at = *rules::find_word(text, word).first()?;
    Some((&text[..at], &text[at + word.len()..]))
}

/// Drop a leading `<...>` generics list (angle-bracket matched, `->`-aware).
fn strip_leading_generics(header: &str) -> &str {
    let t = header.trim_start();
    if !t.starts_with('<') {
        return t;
    }
    let bytes = t.as_bytes();
    let mut depth = 0i32;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'<' => depth += 1,
            b'>' if i > 0 && bytes[i - 1] == b'-' => {} // `->` in Fn bounds
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    return &t[i + 1..];
                }
            }
            _ => {}
        }
        i += 1;
    }
    t
}

fn first_ident(text: &str) -> Option<String> {
    let t = text.trim_start();
    let ident: String = t
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!ident.is_empty() && !ident.chars().next().unwrap().is_numeric()).then_some(ident)
}

struct ParsedFn {
    item: FnItem,
    /// Body byte range (open brace .. one past close), or `pos..pos` for
    /// bodyless trait-method declarations.
    body: (usize, usize),
}

/// All `fn` items in the file, with signatures parsed and bodies located.
fn fn_items(
    code: &str,
    lines: &LineMap,
    impls: &[ImplRange],
    in_test: &dyn Fn(usize) -> bool,
) -> Vec<ParsedFn> {
    let mut out = Vec::new();
    for at in rules::find_word(code, "fn") {
        let after = code[at + 2..].trim_start();
        // `fn(` is a fn-pointer type, not an item.
        let Some(name) = first_ident(after) else {
            continue;
        };
        if name.is_empty() {
            continue;
        }
        let name_at = at + 2 + (code[at + 2..].len() - after.len());
        let mut cursor = name_at + name.len();
        // Optional generics.
        let rest = code[cursor..].trim_start();
        if rest.starts_with('<') {
            let skipped = strip_leading_generics(rest);
            cursor += code[cursor..].len() - skipped.len();
        }
        // Parameter list.
        let rest = code[cursor..].trim_start();
        if !rest.starts_with('(') {
            continue;
        }
        let popen = cursor + (code[cursor..].len() - rest.len());
        let Some(pclose) = matching_paren(code, popen) else {
            continue;
        };
        let (has_self, arity) = parse_params(&code[popen + 1..pclose]);
        // Body: first `{` or `;` at paren/bracket depth 0 after the params
        // (skips return types and where clauses — neither can hold a bare
        // brace).
        let mut depth = 0i32;
        let mut body = None;
        for (i, b) in code[pclose + 1..].bytes().enumerate() {
            match b {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => {
                    let open = pclose + 1 + i;
                    body = Some((open, brace_span(code, open)));
                    break;
                }
                b';' if depth == 0 => {
                    body = Some((pclose + 1 + i, pclose + 1 + i));
                    break;
                }
                _ => {}
            }
        }
        let Some(body) = body else { continue };
        let line = lines.line(at);
        let self_type = impls
            .iter()
            .filter(|r| r.start <= at && at < r.end)
            .min_by_key(|r| r.end - r.start)
            .map(|r| r.self_type.clone());
        out.push(ParsedFn {
            item: FnItem {
                name,
                self_type,
                has_self,
                arity,
                line,
                is_test: in_test(line),
                end_line: lines.line(body.1.saturating_sub(1).max(body.0)),
                calls: Vec::new(),
                effects: Vec::new(),
                locks: Vec::new(),
            },
            body,
        });
    }
    out
}

/// Matching `)` for the `(` at `open`, tracking nested parens/brackets.
fn matching_paren(code: &str, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, b) in code[open..].bytes().enumerate() {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + i);
                }
            }
            _ => {}
        }
    }
    None
}

/// `(has_self, arity-excluding-self)` from a parameter list's inner text.
fn parse_params(params: &str) -> (bool, usize) {
    let pieces = split_top_level(params, b',');
    let mut has_self = false;
    let mut arity = 0;
    for (i, piece) in pieces.iter().enumerate() {
        let p = piece.trim();
        if p.is_empty() {
            continue;
        }
        if i == 0 && is_self_param(p) {
            has_self = true;
        } else {
            arity += 1;
        }
    }
    (has_self, arity)
}

/// `self`, `&self`, `&mut self`, `&'a self`, `mut self`, `self: Box<Self>`.
fn is_self_param(p: &str) -> bool {
    let mut t = p.trim_start_matches('&').trim_start();
    if t.starts_with('\'') {
        t = t
            .trim_start_matches(|c: char| c == '\'' || c.is_alphanumeric() || c == '_')
            .trim_start();
    }
    let t = t.strip_prefix("mut ").unwrap_or(t).trim_start();
    t == "self" || t.starts_with("self:") || t.starts_with("self ")
}

/// Split on `sep` at zero paren/bracket/brace/angle depth.
fn split_top_level(text: &str, sep: u8) -> Vec<&str> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'<' => angle += 1,
            b'>' if i > 0 && bytes[i - 1] == b'-' => {}
            b'>' => angle = (angle - 1).max(0),
            b if b == sep && depth == 0 && angle == 0 => {
                out.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    out.push(&text[start..]);
    out
}

/// Innermost fn whose body contains byte `pos`.
fn innermost_fn(fns: &[ParsedFn], pos: usize) -> Option<usize> {
    fns.iter()
        .enumerate()
        .filter(|(_, f)| f.body.0 < pos && pos < f.body.1)
        .min_by_key(|(_, f)| f.body.1 - f.body.0)
        .map(|(i, _)| i)
}

/// All enum declarations with their variant names.
fn enum_defs(code: &str) -> Vec<EnumDef> {
    let mut out = Vec::new();
    for at in rules::find_word(code, "enum") {
        let Some(name) = first_ident(&code[at + 4..]) else {
            continue;
        };
        let Some(open_rel) = code[at..].find('{') else {
            continue;
        };
        let open = at + open_rel;
        let end = brace_span(code, open);
        let body = &code[open + 1..end.saturating_sub(1).max(open + 1)];
        let mut variants = Vec::new();
        for piece in split_top_level(body, b',') {
            // Strip attributes (`#[...]`) — literals are already blanked.
            let mut p = piece.trim();
            while p.starts_with("#[") {
                match p.find(']') {
                    Some(i) => p = p[i + 1..].trim_start(),
                    None => break,
                }
            }
            if let Some(v) = first_ident(p) {
                if v.chars().next().is_some_and(|c| c.is_uppercase()) {
                    variants.push(v);
                }
            }
        }
        if !variants.is_empty() {
            out.push(EnumDef { name, variants });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Effects
// ---------------------------------------------------------------------------

struct RawEffect {
    kind: EffectKind,
    pos: usize,
    line: usize,
    detail: String,
    loop_depth: usize,
}

/// Substring needles per effect family. These are scanned over lexed code,
/// so strings and comments can mention them freely. All needles are matched
/// with an identifier boundary on the left (`MyInstant::now` is not a hit);
/// `fs::` also covers `std::fs::` paths.
const WALL_CLOCK_NEEDLES: [&str; 2] = ["Instant::now", "SystemTime"];
const RANDOM_NEEDLES: [&str; 4] = ["thread_rng", "rand::random", "fastrand::", "getrandom"];
const FS_NEEDLES: [&str; 3] = ["fs::", "File::", "OpenOptions"];
const NET_NEEDLES: [&str; 3] = ["TcpStream", "TcpListener", "UdpSocket"];
const THREAD_NEEDLES: [&str; 2] = ["thread::spawn", "thread::scope"];

/// Blocking-primitive needles (the `blocking-under-lock` rule). The
/// zero-arg forms are exact, so `stream.read(&mut buf)` or `parts.join(",")`
/// never match; `.send(` requires the literal method name (`send_data(`
/// does not match).
const BLOCKING_NEEDLES: [(&str, BlockKind); 5] = [
    ("thread::sleep", BlockKind::Sleep),
    (".recv()", BlockKind::ChannelRecv),
    (".recv_timeout(", BlockKind::ChannelRecv),
    (".send(", BlockKind::ChannelSend),
    (".join()", BlockKind::ThreadJoin),
];
const PANIC_NEEDLES: [&str; 6] = [
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
    ".unwrap()",
    ".expect(",
];

/// Allocation/copy needles for the `hot-path-alloc` rule. The last two are
/// loop-gated: constructing a container once per call is free, doing it per
/// iteration is the churn the rule exists to catch.
const ALLOC_NEEDLES: [(&str, AllocKind); 11] = [
    (".clone()", AllocKind::Clone),
    (".to_vec()", AllocKind::ToVec),
    (".to_owned()", AllocKind::ToOwned),
    (".to_string()", AllocKind::ToString),
    ("String::from", AllocKind::StringFrom),
    ("format!", AllocKind::Format),
    (".concat()", AllocKind::Concat),
    (".join(", AllocKind::Join),
    ("copy_from_slice(", AllocKind::CopyFromSlice),
    ("Vec::new()", AllocKind::VecNew),
    ("with_capacity(", AllocKind::WithCapacity),
];

/// Keywords that can directly precede a `[` that is *not* an index
/// expression (`&mut [u8]`, `x as [u8; 2]`, ...).
const NON_INDEX_WORDS: [&str; 8] = ["mut", "ref", "as", "dyn", "in", "return", "const", "static"];

fn effect_sites(code: &str, lines: &LineMap) -> Vec<RawEffect> {
    let loops = loop_spans(code);
    let depth_at = |pos: usize| loops.iter().filter(|&&(o, c)| o < pos && pos < c).count();
    let mut out = Vec::new();
    let push_needles = |needles: &[&str], kind: EffectKind, out: &mut Vec<RawEffect>| {
        for needle in needles {
            let mut from = 0;
            while let Some(pos) = code[from..].find(needle) {
                let at = from + pos;
                from = at + needle.len();
                // Identifier boundary on the left unless the needle itself
                // starts mid-token (`.unwrap()`).
                if needle.starts_with(|c: char| c.is_alphanumeric()) {
                    let prev = code[..at].chars().next_back();
                    if prev.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                        continue;
                    }
                }
                out.push(RawEffect {
                    kind,
                    pos: at,
                    line: lines.line(at),
                    detail: needle
                        .trim_end_matches('(')
                        .trim_end_matches("::")
                        .to_string(),
                    loop_depth: depth_at(at),
                });
            }
        }
    };
    push_needles(&WALL_CLOCK_NEEDLES, EffectKind::WallClock, &mut out);
    push_needles(&RANDOM_NEEDLES, EffectKind::Randomness, &mut out);
    push_needles(&FS_NEEDLES, EffectKind::Fs, &mut out);
    push_needles(&NET_NEEDLES, EffectKind::Net, &mut out);
    push_needles(&THREAD_NEEDLES, EffectKind::ThreadSpawn, &mut out);
    push_needles(&PANIC_NEEDLES, EffectKind::Panic, &mut out);
    for (needle, bk) in BLOCKING_NEEDLES {
        push_needles(&[needle], EffectKind::Blocking(bk), &mut out);
    }

    // Allocation/copy sites (`hot-path-alloc`). Same boundary rules as
    // above; the container constructors are only effects inside a loop.
    for (needle, ak) in ALLOC_NEEDLES {
        let mut from = 0;
        while let Some(pos) = code[from..].find(needle) {
            let at = from + pos;
            from = at + needle.len();
            if needle.starts_with(|c: char| c.is_alphanumeric()) {
                let prev = code[..at].chars().next_back();
                if prev.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                    continue;
                }
            }
            let depth = depth_at(at);
            if depth == 0 && matches!(ak, AllocKind::VecNew | AllocKind::WithCapacity) {
                continue;
            }
            out.push(RawEffect {
                kind: EffectKind::Alloc(ak),
                pos: at,
                line: lines.line(at),
                detail: ak.label().to_string(),
                loop_depth: depth,
            });
        }
    }

    // Indexing: `expr[` where expr ends in an identifier, `)` or `]`.
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        let before = code[..i].trim_end();
        let Some(prev) = before.bytes().next_back() else {
            continue;
        };
        let is_expr_end =
            prev == b')' || prev == b']' || (prev as char).is_alphanumeric() || prev == b'_';
        if !is_expr_end {
            continue;
        }
        if let Some(word) = rules_trailing_word(before) {
            if NON_INDEX_WORDS.contains(&word.as_str()) {
                continue;
            }
        }
        out.push(RawEffect {
            kind: EffectKind::Panic,
            pos: i,
            line: lines.line(i),
            detail: index_detail(before, code, i),
            loop_depth: depth_at(i),
        });
    }

    // Hash-container iteration (shared scanner with the legacy per-file
    // rule logic).
    for (line, name, how) in rules::unordered_iter_sites(code) {
        let pos = lines.starts[line - 1];
        out.push(RawEffect {
            kind: EffectKind::UnorderedIter,
            pos,
            line,
            detail: format!("`{name}` {how}"),
            loop_depth: depth_at(pos),
        });
    }

    out.sort_by(|a, b| (a.pos, a.kind.name()).cmp(&(b.pos, b.kind.name())));
    out.dedup_by(|a, b| a.pos == b.pos && a.kind == b.kind);
    out
}

/// Byte spans (open brace .. one past close) of every syntactic loop body:
/// `loop { .. }`, `while cond { .. }`, `for pat in expr { .. }`. Closures
/// passed to iterator adapters are *not* counted — the loop-depth weight is
/// deliberately a syntactic under-approximation (documented in DESIGN.md
/// §2f); a depth-0 alloc is still reported, just ranked lower.
fn loop_spans(code: &str) -> Vec<(usize, usize)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for kw in ["loop", "while", "for"] {
        for at in rules::find_word(code, kw) {
            // Find the body's `{` at zero paren/bracket depth. A `;` first
            // means no body here (`for` in a type position, etc.).
            let mut depth = 0i32;
            let mut open = None;
            let head_start = at + kw.len();
            for (i, &b) in bytes.iter().enumerate().skip(head_start) {
                match b {
                    b'(' | b'[' => depth += 1,
                    b')' | b']' => depth -= 1,
                    b'{' if depth == 0 => {
                        open = Some(i);
                        break;
                    }
                    b';' if depth == 0 => break,
                    _ => {}
                }
            }
            let Some(open) = open else { continue };
            // `impl Trait for Type {` and `for<'a>` bounds also start with
            // the word `for`; a loop header must contain ` in ` at depth 0.
            if kw == "for" && rules::find_word(&code[head_start..open], "in").is_empty() {
                continue;
            }
            out.push((open, brace_span(code, open)));
        }
    }
    out.sort();
    out.dedup();
    out
}

// ---------------------------------------------------------------------------
// Locks
// ---------------------------------------------------------------------------

struct RawLock {
    op: LockOp,
    id: String,
    pos: usize,
    line: usize,
    loop_depth: usize,
    span: (usize, usize),
    binding: Option<String>,
    escapes: bool,
    stmt_temp: bool,
}

/// Wrapper prefixes a lock declaration can hide behind
/// (`a: Arc<Mutex<..>>`, `Arc::new(Mutex::new(..))`).
const LOCK_WRAPPERS: [&str; 6] = ["Arc<", "Box<", "Rc<", "Arc::new(", "Box::new(", "Rc::new("];

/// Identifiers in this file declared (or initialized) as `Mutex`/`RwLock`:
/// field/param type ascriptions (`map: RwLock<..>`), `let` bindings, and
/// type aliases. Used to gate `.read()`/`.write()` acquisition sites —
/// `.lock()` is unambiguous, but `read`/`write` are common method names.
fn lock_symbols(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    for ty in ["Mutex", "RwLock"] {
        for at in rules::find_word(code, ty) {
            // Only type/constructor positions: `Mutex<` or `Mutex::new(`.
            let after = &code[at + ty.len()..];
            if !(after.starts_with('<') || after.starts_with("::new(")) {
                continue;
            }
            let mut before = code[..at].trim_end();
            loop {
                let Some(stripped) = LOCK_WRAPPERS.iter().find_map(|w| before.strip_suffix(w))
                else {
                    break;
                };
                before = stripped.trim_end();
            }
            let ident = if before.ends_with(':') && !before.ends_with("::") {
                rules_trailing_word(before[..before.len() - 1].trim_end())
            } else if before.ends_with('=') {
                rules_trailing_word(before[..before.len() - 1].trim_end())
            } else {
                None
            };
            if let Some(id) = ident {
                if !id.starts_with(|c: char| c.is_numeric()) && id != "mut" {
                    out.push(id);
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// The receiver's meaningful trailing identifier for an acquisition at
/// `dot` (the `.` of `.lock()`): the last dotted path segment that is not
/// `self` and not a numeric tuple index (`self.snap_cache.0.lock()` →
/// `snap_cache`). `None` when the receiver ends in `)`/`]` (compound
/// expression — no stable symbol).
fn receiver_symbol(code: &str, dot: usize) -> Option<String> {
    let mut start = dot;
    let bytes = code.as_bytes();
    while start > 0 {
        let c = bytes[start - 1] as char;
        if c.is_alphanumeric() || c == '_' || c == '.' {
            start -= 1;
        } else {
            break;
        }
    }
    code[start..dot]
        .split('.')
        .rev()
        .find(|seg| !seg.is_empty() && *seg != "self" && !seg.starts_with(|c: char| c.is_numeric()))
        .map(str::to_string)
}

/// Statement-start offset for a position: one past the nearest `;`, `{` or
/// `}` before it (lexing already blanked string/char literals).
fn stmt_start(code: &str, pos: usize) -> usize {
    code[..pos]
        .rfind(|c| c == ';' || c == '{' || c == '}')
        .map(|i| i + 1)
        .unwrap_or(0)
}

/// Whether the expression starting right after the acquisition call is
/// *guard-valued*: nothing but poison-recovery adapters and closing parens
/// up to the statement/block end. Returns the offset where the chain test
/// stopped. A chain that keeps going (`.get(`, `.remove(`, ...) means the
/// guard is an unnamed temporary.
fn guard_chain_end(code: &str, mut k: usize) -> (bool, usize) {
    loop {
        let rest = code[k..].trim_start();
        let off = k + (code[k..].len() - rest.len());
        if rest.starts_with(')') || rest.starts_with('?') {
            k = off + 1;
        } else if rest.starts_with(".unwrap()") {
            k = off + ".unwrap()".len();
        } else if rest.starts_with(".expect(")
            || rest.starts_with(".unwrap_or_else(")
            || rest.starts_with(".expect_err(")
        {
            let popen = off + rest.find('(').unwrap_or(0);
            match matching_paren(code, popen) {
                Some(close) => k = close + 1,
                None => return (false, off),
            }
        } else {
            let guard_valued = rest.is_empty() || rest.starts_with(';') || rest.starts_with('}');
            return (guard_valued, off);
        }
    }
}

/// First keyword of a statement (`let`, `return`, `for`, ...), if any.
fn stmt_keyword(stmt: &str) -> Option<&str> {
    let t = stmt.trim_start();
    ["let", "return", "for", "while", "if", "match"]
        .into_iter()
        .find(|kw| {
            t.starts_with(kw)
                && !t[kw.len()..].starts_with(|c: char| c.is_alphanumeric() || c == '_')
        })
}

/// End offset of the enclosing block: the `}` that closes the block the
/// position sits in (first `}` that takes brace depth negative).
fn enclosing_block_end(code: &str, pos: usize) -> usize {
    let mut depth = 0i32;
    for (i, b) in code[pos..].bytes().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth < 0 {
                    return pos + i;
                }
            }
            _ => {}
        }
    }
    code.len()
}

/// Statement end for a chained temporary: the first `;` at zero depth, or
/// the point where paren/bracket/brace depth goes negative (the temporary
/// is embedded in a larger expression and dies with it).
fn stmt_end(code: &str, pos: usize) -> usize {
    let mut depth = 0i32;
    for (i, b) in code[pos..].bytes().enumerate() {
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                depth -= 1;
                if depth < 0 {
                    return pos + i;
                }
            }
            b';' if depth == 0 => return pos + i,
            _ => {}
        }
    }
    code.len()
}

/// `drop(ident)` sites: `(pos, ident)` pairs for explicit guard releases.
fn drop_sites(code: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for at in rules::find_word(code, "drop") {
        let after = code[at + 4..].trim_start();
        if !after.starts_with('(') {
            continue;
        }
        if let Some(ident) = first_ident(&after[1..]) {
            out.push((at, ident));
        }
    }
    out
}

/// All lock acquisitions in the file, with guard spans. `.lock()` is taken
/// on any identifier-rooted receiver; `.read()`/`.write()` additionally
/// require the receiver symbol to be declared as a `Mutex`/`RwLock` in this
/// file, since those names are common on non-lock types.
fn lock_sites(code: &str, lines: &LineMap) -> Vec<RawLock> {
    let symbols = lock_symbols(code);
    let drops = drop_sites(code);
    let loops = loop_spans(code);
    let depth_at = |pos: usize| loops.iter().filter(|&&(o, c)| o < pos && pos < c).count();
    let mut out = Vec::new();
    for (needle, op) in [
        (".lock()", LockOp::Lock),
        (".read()", LockOp::Read),
        (".write()", LockOp::Write),
    ] {
        let mut from = 0;
        while let Some(rel) = code[from..].find(needle) {
            let at = from + rel;
            from = at + needle.len();
            let Some(sym) = receiver_symbol(code, at) else {
                continue;
            };
            if op != LockOp::Lock && !symbols.iter().any(|s| *s == sym) {
                continue;
            }
            let line = lines.line(at);
            let ss = stmt_start(code, at);
            let stmt = code[ss..at].trim_start();
            let kw = stmt_keyword(stmt);
            let (guard_valued, chain_end) = guard_chain_end(code, at + needle.len());
            let (span_end_pos, binding, escapes, stmt_temp);
            if guard_valued {
                match kw {
                    Some("let") => {
                        let after_let = stmt.trim_start()[3..].trim_start();
                        let after_mut = after_let.strip_prefix("mut ").unwrap_or(after_let);
                        binding = first_ident(after_mut);
                        escapes = false;
                        stmt_temp = false;
                        let block_end = enclosing_block_end(code, chain_end);
                        // An explicit `drop(binding)` inside the block ends
                        // the guard early.
                        let dropped = binding.as_ref().and_then(|b| {
                            drops
                                .iter()
                                .filter(|(p, id)| *p > at && *p < block_end && id == b)
                                .map(|(p, _)| *p)
                                .min()
                        });
                        span_end_pos = dropped.unwrap_or(block_end);
                    }
                    Some("return") | None => {
                        // Returned (or tail-expression) guard: it leaves
                        // this fn live; callers extend it via `escapes`.
                        binding = None;
                        escapes = true;
                        stmt_temp = false;
                        span_end_pos = chain_end;
                    }
                    _ => {
                        // Guard-valued inside a `for`/`while`/`if`/`match`
                        // header: scrutinee temporaries live through the
                        // construct body.
                        binding = None;
                        escapes = false;
                        stmt_temp = true;
                        span_end_pos = construct_body_end(code, ss, at);
                    }
                }
            } else {
                binding = None;
                escapes = false;
                stmt_temp = true;
                span_end_pos = match kw {
                    Some("for") | Some("while") | Some("if") | Some("match") => {
                        construct_body_end(code, ss, at)
                    }
                    _ => stmt_end(code, at + needle.len()),
                };
            }
            out.push(RawLock {
                op,
                id: sym,
                pos: at,
                line,
                loop_depth: depth_at(at),
                span: (
                    line,
                    lines.line(span_end_pos.min(code.len().saturating_sub(1))),
                ),
                binding,
                escapes,
                stmt_temp,
            });
        }
    }
    out.sort_by_key(|l| l.pos);
    out
}

/// End of the brace body following a `for`/`while`/`if`/`match` header
/// whose statement starts at `ss` (falls back to the statement end when no
/// body brace is found).
fn construct_body_end(code: &str, ss: usize, at: usize) -> usize {
    let mut depth = 0i32;
    for (i, b) in code[ss..].bytes().enumerate() {
        match b {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b'{' if depth == 0 => {
                let open = ss + i;
                return brace_span(code, open).saturating_sub(1);
            }
            b';' if depth == 0 => break,
            _ => {}
        }
    }
    stmt_end(code, at)
}

fn rules_trailing_word(before: &str) -> Option<String> {
    let w: String = before
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    (!w.is_empty()).then_some(w)
}

/// `buf[..n]` → `` `buf[..]` `` — short display of an index expression.
fn index_detail(before: &str, code: &str, open: usize) -> String {
    let base = rules_trailing_word(before).unwrap_or_else(|| "expr".to_string());
    let inner: String = code[open + 1..]
        .chars()
        .take_while(|&c| c != ']' && c != '\n')
        .take(12)
        .collect();
    format!("`{base}[{}]` indexing", inner.trim())
}

// ---------------------------------------------------------------------------
// Calls
// ---------------------------------------------------------------------------

/// Rust keywords that look like `ident(` call heads but aren't.
const CALL_KEYWORDS: [&str; 22] = [
    "if", "while", "for", "match", "loop", "return", "in", "as", "move", "let", "else", "fn",
    "ref", "mut", "use", "pub", "impl", "where", "break", "continue", "await", "box",
];

/// All call sites in `code[start..end]`.
fn call_sites(code: &str, start: usize, end: usize, lines: &LineMap) -> Vec<CallSite> {
    let mut out = Vec::new();
    let body = &code[start..end];
    let bytes = body.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if !(b as char).is_alphabetic() && b != b'_' {
            i += 1;
            continue;
        }
        // Read the identifier.
        let id_start = i;
        while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        let name = &body[id_start..i];
        // Optional turbofish: `collect::<Vec<_>>(`.
        let mut j = i;
        if body[j..].starts_with("::<") {
            let rest = strip_leading_generics(&body[j + 2..]);
            j = j + 2 + (body[j + 2..].len() - rest.len());
        }
        // Must be immediately followed by `(` (whitespace allowed).
        let after = body[j..].trim_start();
        if !after.starts_with('(') {
            continue;
        }
        // Macros (`name!(...)`) are not calls; panic-family macros are
        // already captured as effects.
        if after.starts_with("!(") || body[j..].starts_with('!') {
            continue;
        }
        if CALL_KEYWORDS.contains(&name) {
            continue;
        }
        let popen = j + (body[j..].len() - after.len());
        let Some(pclose) = matching_paren(body, popen) else {
            continue;
        };
        let args = count_args(&body[popen + 1..pclose]);
        let abs = start + id_start;
        let before = code[..abs].trim_end();
        let (kind, qualifier, recv) = if before.ends_with('.') {
            let recv = rules_trailing_word(before[..before.len() - 1].trim_end());
            (CallKind::Method, None, recv)
        } else if before.ends_with("::") {
            let qual = rules_trailing_word(before[..before.len() - 2].trim_end());
            match qual {
                Some(q) => (CallKind::Qualified, Some(q), None),
                None => (CallKind::Free, None, None),
            }
        } else {
            (CallKind::Free, None, None)
        };
        out.push(CallSite {
            name: name.to_string(),
            qualifier,
            kind,
            args,
            line: lines.line(abs),
            recv,
        });
    }
    out
}

/// Argument count of a call's inner text. Closure parameter lists without
/// parens (`|a, b| ...`) can inflate this; resolution falls back to
/// name-only matching when no candidate matches the arity, so an inflated
/// count widens the edge set rather than dropping it.
fn count_args(inner: &str) -> usize {
    let pieces = split_top_level(inner, b',');
    if pieces.len() == 1 && pieces[0].trim().is_empty() {
        0
    } else {
        pieces.len()
    }
}

// ---------------------------------------------------------------------------
// Matches
// ---------------------------------------------------------------------------

struct RawMatch {
    enum_name: String,
    covered: Vec<String>,
    catch_all: bool,
    line: usize,
}

fn match_sites(code: &str, lines: &LineMap, in_test: &dyn Fn(usize) -> bool) -> Vec<RawMatch> {
    let mut out = Vec::new();
    for at in rules::find_word(code, "match") {
        let line = lines.line(at);
        if in_test(line) {
            continue;
        }
        // Body opens at the first `{` at zero paren/bracket depth after the
        // scrutinee (struct literals are not allowed in match scrutinees).
        let mut depth = 0i32;
        let mut open = None;
        for (i, b) in code[at + 5..].bytes().enumerate() {
            match b {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => {
                    open = Some(at + 5 + i);
                    break;
                }
                b';' if depth == 0 => break,
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let end = brace_span(code, open);
        let body = &code[open + 1..end.saturating_sub(1).max(open + 1)];
        let arms = match_arms(body);
        if arms.is_empty() {
            continue;
        }
        let mut catch_all = false;
        let mut refs: Vec<(String, String)> = Vec::new(); // (enum, variant)
        for pat in &arms {
            let pat = strip_guard(pat);
            if is_catch_all(pat) {
                catch_all = true;
            }
            collect_variant_refs(pat, &mut refs);
        }
        if refs.is_empty() {
            continue;
        }
        // The scrutinized enum is the one with the most variant refs
        // (nested patterns can mention others); ties break toward the
        // first ref.
        let mut counts: Vec<(String, usize, usize)> = Vec::new();
        for (i, (e, _)) in refs.iter().enumerate() {
            match counts.iter_mut().find(|(name, _, _)| name == e) {
                Some((_, n, _)) => *n += 1,
                None => counts.push((e.clone(), 1, i)),
            }
        }
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.2.cmp(&b.2)));
        let enum_name = counts[0].0.clone();
        let mut covered: Vec<String> = refs
            .into_iter()
            .filter(|(e, _)| *e == enum_name)
            .map(|(_, v)| v)
            .collect();
        covered.sort();
        covered.dedup();
        out.push(RawMatch {
            enum_name,
            covered,
            catch_all,
            line,
        });
    }
    out
}

/// Pattern texts (the part before each `=>`) of a match body.
fn match_arms(body: &str) -> Vec<&str> {
    let bytes = body.as_bytes();
    let mut arms = Vec::new();
    let mut depth = 0i32;
    let mut arm_start = 0usize;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'=' if depth == 0 && bytes.get(i + 1) == Some(&b'>') => {
                arms.push(body[arm_start..i].trim());
                // Skip the arm value: a brace block or an expression up to
                // the next top-level comma.
                i += 2;
                let after = body[i..].trim_start();
                let off = i + (body[i..].len() - after.len());
                if after.starts_with('{') {
                    i = brace_span(body, off);
                } else {
                    let mut d = 0i32;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'(' | b'[' | b'{' => d += 1,
                            b')' | b']' | b'}' => {
                                if d == 0 {
                                    break;
                                }
                                d -= 1;
                            }
                            b',' if d == 0 => break,
                            _ => {}
                        }
                        i += 1;
                    }
                }
                // Skip a trailing comma.
                while i < bytes.len() && (bytes[i] == b',' || (bytes[i] as char).is_whitespace()) {
                    i += 1;
                }
                arm_start = i;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    arms
}

/// Drop a ` if guard` clause from a pattern.
fn strip_guard(pat: &str) -> &str {
    match split_at_word(pat, "if") {
        Some((before, _)) => before.trim(),
        None => pat,
    }
}

/// `_`, a bare lowercase binding, or `name @ _`.
fn is_catch_all(pat: &str) -> bool {
    let pat = pat.trim();
    if pat == "_" {
        return true;
    }
    if let Some((_, sub)) = pat.split_once('@') {
        return is_catch_all(sub);
    }
    !pat.is_empty()
        && pat.chars().all(|c| c.is_alphanumeric() || c == '_')
        && pat
            .chars()
            .next()
            .is_some_and(|c| c.is_lowercase() || c == '_')
}

/// Collect `Enum::Variant` references in a pattern.
fn collect_variant_refs(pat: &str, out: &mut Vec<(String, String)>) {
    let mut from = 0;
    while let Some(pos) = pat[from..].find("::") {
        let at = from + pos;
        from = at + 2;
        let Some(enum_name) = rules_trailing_word(pat[..at].trim_end()) else {
            continue;
        };
        let Some(variant) = first_ident(&pat[at + 2..]) else {
            continue;
        };
        let enum_upper = enum_name.chars().next().is_some_and(|c| c.is_uppercase());
        let var_upper = variant.chars().next().is_some_and(|c| c.is_uppercase());
        if enum_upper && var_upper {
            out.push((enum_name, variant));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summ(src: &str) -> FileSummary {
        summarize_source("crates/net/src/x.rs", src)
    }

    #[test]
    fn parses_free_fn_signature() {
        let s = summ("fn helper(a: u32, b: &str) -> bool { a > 0 && !b.is_empty() }\n");
        assert_eq!(s.fns.len(), 1);
        let f = &s.fns[0];
        assert_eq!(f.name, "helper");
        assert_eq!(f.arity, 2);
        assert!(!f.has_self);
        assert!(f.self_type.is_none());
        assert_eq!(f.line, 1);
    }

    #[test]
    fn parses_methods_with_self_type() {
        let src = "struct Conn;\n\
                   impl Conn {\n\
                       fn open(&mut self, id: u32) -> bool { self.check(id) }\n\
                       fn check(&self, id: u32) -> bool { id > 0 }\n\
                   }\n";
        let s = summ(src);
        assert_eq!(s.fns.len(), 2);
        assert!(s.fns.iter().all(|f| f.self_type.as_deref() == Some("Conn")));
        assert!(s.fns.iter().all(|f| f.has_self));
        assert_eq!(s.fns[0].arity, 1);
        let call = &s.fns[0].calls[0];
        assert_eq!(call.name, "check");
        assert_eq!(call.kind, CallKind::Method);
        assert_eq!(call.args, 1);
    }

    #[test]
    fn trait_impl_resolves_to_implementing_type() {
        let src = "impl WireClock for MonotonicClock {\n\
                       fn elapsed(&self) -> u64 { 0 }\n\
                   }\n";
        let s = summ(src);
        assert_eq!(s.fns[0].self_type.as_deref(), Some("MonotonicClock"));
    }

    #[test]
    fn use_aliases_capture_renames_including_groups() {
        let src = "use std::collections::HashMap as Map;\n\
                   use crate::wire::{WireServer as Server, WireClient};\n\
                   use std::io::Read as _;\n\
                   fn f() { let x = 1u32 as u64; }\n";
        let s = summ(src);
        assert_eq!(
            s.aliases,
            vec![
                ("Map".to_string(), "HashMap".to_string()),
                ("Server".to_string(), "WireServer".to_string()),
            ],
            "grouped renames captured; `as _` and cast expressions ignored"
        );
    }

    /// Every lock site in the file, in source order, regardless of which
    /// fn owns it.
    fn all_locks(s: &FileSummary) -> Vec<&LockSite> {
        s.fns.iter().flat_map(|f| f.locks.iter()).collect()
    }

    #[test]
    fn lock_guard_binding_spans_to_block_end_and_drop_truncates() {
        let src = "struct S {\n\
                       m: Mutex<u64>,\n\
                   }\n\
                   impl S {\n\
                       fn hold(&self) -> u64 {\n\
                           let g = self.m.lock();\n\
                           let v = *g;\n\
                           v\n\
                       }\n\
                       fn release_early(&self, n: u64) -> u64 {\n\
                           let g = self.m.lock();\n\
                           drop(g);\n\
                           n\n\
                       }\n\
                   }\n";
        let s = summ(src);
        let locks = all_locks(&s);
        assert_eq!(locks.len(), 2);
        assert_eq!(locks[0].op, LockOp::Lock);
        assert_eq!(locks[0].id, "m");
        assert_eq!(locks[0].binding.as_deref(), Some("g"));
        assert!(!locks[0].stmt_temp && !locks[0].escapes);
        assert_eq!(locks[0].span, (6, 9), "bound guard lives to block end");
        assert_eq!(locks[1].span, (11, 12), "explicit drop ends the guard");
    }

    #[test]
    fn lock_guard_rebinding_is_conservative() {
        // `let g = g;` moves the guard into a new binding; the original
        // site keeps its block-end span (may-hold: the data is still
        // locked, whatever the binding is called).
        let src = "struct S {\n\
                       m: Mutex<u64>,\n\
                   }\n\
                   impl S {\n\
                       fn go(&self) -> u64 {\n\
                           let g = self.m.lock();\n\
                           let g = g;\n\
                           *g\n\
                       }\n\
                   }\n";
        let s = summ(src);
        let locks = all_locks(&s);
        assert_eq!(locks.len(), 1);
        assert_eq!(locks[0].binding.as_deref(), Some("g"));
        assert!(
            locks[0].span.1 >= 8,
            "rebinding must not end the guard early: span {:?}",
            locks[0].span
        );
    }

    #[test]
    fn lock_guard_returned_from_helper_escapes() {
        let src = "struct S {\n\
                       m: Mutex<u64>,\n\
                   }\n\
                   impl S {\n\
                       fn grab(&self) {\n\
                           self.m.lock()\n\
                       }\n\
                       fn grab2(&self) {\n\
                           return self.m.lock();\n\
                       }\n\
                   }\n";
        let s = summ(src);
        let locks = all_locks(&s);
        assert_eq!(locks.len(), 2);
        for l in locks {
            assert!(l.escapes, "guard leaves the fn at line {}", l.line);
            assert_eq!(l.binding, None);
            assert!(!l.stmt_temp);
        }
    }

    #[test]
    fn lock_chained_temporary_dies_at_statement_end() {
        // `.unwrap()` is poison recovery, `.len()` ends the guard chain:
        // an unnamed temporary that dies with its statement, even under a
        // `let` (the binding holds the u64, not the guard).
        let src = "struct S {\n\
                       m: Mutex<Vec<u64>>,\n\
                   }\n\
                   impl S {\n\
                       fn peek(&self) -> u64 {\n\
                           let v = self.m.lock().unwrap().len();\n\
                           helper();\n\
                           v as u64\n\
                       }\n\
                   }\n\
                   fn helper() {}\n";
        let s = summ(src);
        let locks = all_locks(&s);
        assert_eq!(locks.len(), 1);
        assert!(locks[0].stmt_temp);
        assert_eq!(locks[0].binding, None);
        assert_eq!(locks[0].span, (6, 6), "temporary dies at the `;`");
    }

    #[test]
    fn lock_in_construct_header_lives_through_body() {
        // A scrutinee temporary (`for .. in m.lock()..`) lives through the
        // construct body, matching Rust's temporary lifetime rules.
        let src = "struct S {\n\
                       m: Mutex<Vec<u64>>,\n\
                   }\n\
                   impl S {\n\
                       fn sum(&self) -> u64 {\n\
                           let mut t = 0;\n\
                           for v in self.m.lock().unwrap().iter() {\n\
                               t += v;\n\
                           }\n\
                           t\n\
                       }\n\
                   }\n";
        let s = summ(src);
        let locks = all_locks(&s);
        assert_eq!(locks.len(), 1);
        assert!(locks[0].stmt_temp);
        assert_eq!(locks[0].span, (7, 9), "guard covers the loop body");
        assert_eq!(locks[0].loop_depth, 0, "the header is outside its own loop");
    }

    #[test]
    fn lock_guard_live_across_early_return_paths() {
        // An early `return` inside the guard's block does not shorten the
        // span: may-hold keeps the guard live to the block end.
        let src = "struct S {\n\
                       m: Mutex<u64>,\n\
                   }\n\
                   impl S {\n\
                       fn go(&self, quick: bool) -> u64 {\n\
                           let g = self.m.lock();\n\
                           if quick {\n\
                               return 0;\n\
                           }\n\
                           *g\n\
                       }\n\
                   }\n";
        let s = summ(src);
        let locks = all_locks(&s);
        assert_eq!(locks.len(), 1);
        assert!(
            locks[0].span.1 >= 10,
            "early return must not end the guard: span {:?}",
            locks[0].span
        );
    }

    #[test]
    fn read_write_sites_require_a_declared_lock_symbol() {
        // `.read()`/`.write()` are common method names; only receivers
        // declared as Mutex/RwLock in this file count as acquisitions.
        let src = "struct S {\n\
                       data: RwLock<u64>,\n\
                   }\n\
                   impl S {\n\
                       fn go(&self, file: &F) -> u64 {\n\
                           let g = self.data.read();\n\
                           let n = file.read();\n\
                           *g + n\n\
                       }\n\
                   }\n";
        let s = summ(src);
        let locks = all_locks(&s);
        assert_eq!(locks.len(), 1, "`file.read()` is not a lock");
        assert_eq!(locks[0].id, "data");
        assert_eq!(locks[0].op, LockOp::Read);
    }

    #[test]
    fn return_position_impl_trait_is_not_an_impl_block() {
        let src = "fn iter_urls<'a>(v: &'a [u32]) -> impl Iterator<Item = &'a u32> + 'a {\n\
                       v.iter()\n\
                   }\n";
        let s = summ(src);
        assert_eq!(s.fns.len(), 1);
        assert_eq!(s.fns[0].self_type, None, "no bogus `impl Iterator` block");
    }

    #[test]
    fn qualified_and_free_calls() {
        let src = "fn f() { helper(); Url::parse(1, 2); module::thing(3); Self::go(); }\n";
        let s = summ(src);
        let calls = &s.fns[0].calls;
        assert_eq!(calls.len(), 4);
        assert_eq!((calls[0].kind, calls[0].args), (CallKind::Free, 0));
        assert_eq!(calls[1].qualifier.as_deref(), Some("Url"));
        assert_eq!(calls[1].args, 2);
        assert_eq!(calls[2].qualifier.as_deref(), Some("module"));
        assert_eq!(calls[3].qualifier.as_deref(), Some("Self"));
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let src = "fn f(x: u32) -> u32 { if x > 0 { assert!(x < 9); } while x > 1 { } x }\n";
        let s = summ(src);
        assert!(s.fns[0].calls.is_empty(), "{:?}", s.fns[0].calls);
    }

    #[test]
    fn effects_attributed_to_enclosing_fn() {
        let src = "fn quiet() { let x = 1; }\n\
                   fn noisy() { let t = Instant::now(); }\n";
        let s = summ(src);
        assert!(s.fns[0].effects.is_empty());
        assert_eq!(s.fns[1].effects.len(), 1);
        assert_eq!(s.fns[1].effects[0].kind, EffectKind::WallClock);
        assert_eq!(s.fns[1].effects[0].line, 2);
    }

    #[test]
    fn panic_effects_cover_indexing_but_not_types() {
        let src = "fn f(buf: &[u8], n: usize) -> u8 {\n\
                       let head = &buf[..n];\n\
                       let _arr: [u8; 4] = [0; 4];\n\
                       let _s: &mut [u8] = &mut [];\n\
                       head[0]\n\
                   }\n";
        let s = summ(src);
        let panics: Vec<_> = s.fns[0]
            .effects
            .iter()
            .filter(|e| e.kind == EffectKind::Panic)
            .collect();
        assert_eq!(panics.len(), 2, "{panics:?}");
        assert_eq!(panics[0].line, 2);
        assert_eq!(panics[1].line, 5);
    }

    #[test]
    fn waived_effects_are_marked() {
        let src =
            "fn f() { let t = Instant::now(); } // vroom-lint: allow(sim-purity) -- test shim\n";
        let s = summ(src);
        assert!(s.fns[0].effects[0].waived);
    }

    #[test]
    fn enum_defs_and_match_coverage() {
        let src = "enum FrameType { Data, Headers, Ping }\n\
                   fn f(t: FrameType) -> u8 {\n\
                       match t {\n\
                           FrameType::Data => 0,\n\
                           FrameType::Headers | FrameType::Ping => 1,\n\
                       }\n\
                   }\n";
        let s = summ(src);
        assert_eq!(s.enums.len(), 1);
        assert_eq!(s.enums[0].variants, vec!["Data", "Headers", "Ping"]);
        assert_eq!(s.matches.len(), 1);
        let m = &s.matches[0];
        assert_eq!(m.enum_name, "FrameType");
        assert_eq!(m.covered, vec!["Data", "Headers", "Ping"]);
        assert!(!m.catch_all);
    }

    #[test]
    fn catch_all_detected_and_bindings_count() {
        let src = "fn f(t: FrameType) -> u8 {\n\
                       match t { FrameType::Data => 0, _ => 1 }\n\
                   }\n\
                   fn g(t: FrameType) -> u8 {\n\
                       match t { FrameType::Data => 0, other => 1 }\n\
                   }\n\
                   fn h(t: FrameType) -> u8 {\n\
                       match t { FrameType::Data => 0, s @ (FrameType::Ping | FrameType::Headers) => 1 }\n\
                   }\n";
        let s = summ(src);
        assert_eq!(s.matches.len(), 3);
        assert!(s.matches[0].catch_all, "wildcard");
        assert!(s.matches[1].catch_all, "bare binding");
        assert!(!s.matches[2].catch_all, "binding @ explicit variants");
    }

    #[test]
    fn nested_fn_effects_seen_by_both() {
        let src = "fn outer() {\n\
                       fn inner() { let t = Instant::now(); }\n\
                       inner();\n\
                   }\n";
        let s = summ(src);
        let inner = s.fns.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(inner.effects.len(), 1, "innermost fn owns the effect");
        let outer = s.fns.iter().find(|f| f.name == "outer").unwrap();
        assert!(outer.calls.iter().any(|c| c.name == "inner"));
    }

    #[test]
    fn alloc_effects_detected_with_loop_depth() {
        let src = "fn f(names: &[String]) -> Vec<String> {\n\
                       let mut out = Vec::new();\n\
                       for n in names {\n\
                           out.push(n.clone());\n\
                       }\n\
                       let once = names.to_vec();\n\
                       out.extend(once);\n\
                       out\n\
                   }\n";
        let s = summ(src);
        let allocs: Vec<_> = s.fns[0]
            .effects
            .iter()
            .filter(|e| matches!(e.kind, EffectKind::Alloc(_)))
            .collect();
        assert_eq!(allocs.len(), 2, "{allocs:?}");
        assert_eq!(allocs[0].kind, EffectKind::Alloc(AllocKind::Clone));
        assert_eq!(allocs[0].loop_depth, 1, "clone is inside the for body");
        assert_eq!(allocs[1].kind, EffectKind::Alloc(AllocKind::ToVec));
        assert_eq!(allocs[1].loop_depth, 0, "to_vec runs once per call");
    }

    #[test]
    fn container_constructors_only_flagged_inside_loops() {
        let src = "fn f(n: usize) {\n\
                       let _outer = Vec::<u8>::new();\n\
                       let mut i = 0;\n\
                       while i < n {\n\
                           let _per_iter: Vec<u8> = Vec::new();\n\
                           let _buf = String::with_capacity(64);\n\
                           i += 1;\n\
                       }\n\
                   }\n";
        let s = summ(src);
        let allocs: Vec<_> = s.fns[0]
            .effects
            .iter()
            .filter(|e| matches!(e.kind, EffectKind::Alloc(_)))
            .collect();
        assert_eq!(allocs.len(), 2, "{allocs:?}");
        assert!(allocs.iter().all(|e| e.loop_depth == 1));
        assert_eq!(allocs[0].kind, EffectKind::Alloc(AllocKind::VecNew));
        assert_eq!(allocs[1].kind, EffectKind::Alloc(AllocKind::WithCapacity));
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let src = "struct T;\n\
                   trait Go { fn go(&self) -> String; }\n\
                   impl Go for T {\n\
                       fn go(&self) -> String { \"x\".to_string() }\n\
                   }\n";
        let s = summ(src);
        let f = s
            .fns
            .iter()
            .find(|f| f.name == "go" && !f.effects.is_empty());
        let f = f.expect("impl'd go has the effect");
        assert_eq!(f.effects[0].kind, EffectKind::Alloc(AllocKind::ToString));
        assert_eq!(f.effects[0].loop_depth, 0, "impl-for block is not a loop");
    }

    #[test]
    fn nested_loops_stack_depth() {
        let src = "fn f(rows: &[Vec<u8>]) {\n\
                       for r in rows {\n\
                           loop {\n\
                               let _ = r.to_vec();\n\
                               break;\n\
                           }\n\
                       }\n\
                   }\n";
        let s = summ(src);
        let alloc = s.fns[0]
            .effects
            .iter()
            .find(|e| e.kind == EffectKind::Alloc(AllocKind::ToVec))
            .expect("to_vec found");
        assert_eq!(alloc.loop_depth, 2);
    }

    #[test]
    fn alloc_effect_names_roundtrip() {
        for ak in [
            AllocKind::Clone,
            AllocKind::ToVec,
            AllocKind::ToOwned,
            AllocKind::ToString,
            AllocKind::StringFrom,
            AllocKind::Format,
            AllocKind::Concat,
            AllocKind::Join,
            AllocKind::CopyFromSlice,
            AllocKind::VecNew,
            AllocKind::WithCapacity,
        ] {
            let kind = EffectKind::Alloc(ak);
            assert_eq!(EffectKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.rule(), "hot-path-alloc");
        }
    }

    #[test]
    fn test_fns_are_marked() {
        let src = "fn prod() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn helper() { let t = Instant::now(); }\n\
                   }\n";
        let s = summ(src);
        assert!(!s.fns.iter().find(|f| f.name == "prod").unwrap().is_test);
        assert!(s.fns.iter().find(|f| f.name == "helper").unwrap().is_test);
    }
}
