//! On-disk incremental cache for per-file summaries.
//!
//! Keyed by an FNV-1a content hash of each file's source: a hit replays
//! the stored [`FileSummary`] (structure, effects, *and* per-file rule
//! violations) without re-lexing or re-parsing; the workspace-global
//! phases (call graph, reachability, baseline reconciliation) always run
//! from summaries, so a cached run is behaviorally identical to a cold
//! one — proven byte-for-byte by the determinism test in
//! `tests/analyzer.rs`.
//!
//! The cache is advisory: unreadable, stale, or version-skewed files are
//! ignored (full re-parse), and writes go through a temp file + rename so
//! a concurrent reader never sees a torn document. Any write failure is
//! swallowed — a cache must never fail an analysis that would otherwise
//! succeed.

use crate::parse::{
    CallKind, CallSite, EffectKind, EffectSite, EnumDef, FileSummary, FnItem, LockOp, LockSite,
    MatchSite,
};
use crate::rules::{self, Violation};
use std::collections::BTreeMap;
use std::path::Path;
use vroom_net::json::Value;

/// Bump when the summary encoding changes; mismatched caches are discarded.
/// v2: effect sites gained `loop_depth` (hot-path-alloc ranking weight).
/// v3: lock-safety — fns gained `end_line` + `locks`, calls gained `recv`,
/// effects gained `waived_blocking` and the blocking kinds.
/// v4: the `sort-partial-cmp` rule joined the per-file pass; stale caches
/// would report a file clean without ever running it.
const CACHE_VERSION: u64 = 4;

/// FNV-1a 64-bit, rendered as fixed-width hex.
pub fn content_hash(source: &str) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in source.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    format!("{h:016x}")
}

/// A loaded cache: path → (content hash, summary).
#[derive(Default)]
pub struct Cache {
    entries: BTreeMap<String, (String, FileSummary)>,
}

impl Cache {
    /// Load from `path`; any failure yields an empty cache.
    pub fn load(path: &Path) -> Cache {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Cache::default();
        };
        let Ok(doc) = Value::parse(&text) else {
            return Cache::default();
        };
        if doc.get("version").and_then(Value::as_u64) != Some(CACHE_VERSION) {
            return Cache::default();
        }
        let Some(files) = doc.get("files").and_then(Value::as_object) else {
            return Cache::default();
        };
        let mut entries = BTreeMap::new();
        for (file_path, entry) in files {
            let Some(hash) = entry.get("hash").and_then(Value::as_str) else {
                continue;
            };
            let Some(summary) = entry
                .get("summary")
                .and_then(|v| decode_summary(file_path, v))
            else {
                continue;
            };
            entries.insert(file_path.clone(), (hash.to_string(), summary));
        }
        Cache { entries }
    }

    /// The cached summary for `path`, if its content hash still matches.
    pub fn lookup(&self, path: &str, hash: &str) -> Option<FileSummary> {
        self.entries
            .get(path)
            .filter(|(h, _)| h == hash)
            .map(|(_, s)| s.clone())
    }

    /// Record a freshly parsed summary.
    pub fn record(&mut self, hash: String, summary: FileSummary) {
        self.entries.insert(summary.path.clone(), (hash, summary));
    }

    /// Drop entries for files no longer in the source set.
    pub fn retain_paths(&mut self, live: &[&str]) {
        self.entries.retain(|p, _| live.contains(&p.as_str()));
    }

    /// Persist atomically (temp file + rename). Failures are ignored.
    pub fn store(&self, path: &Path) {
        let mut files = BTreeMap::new();
        for (file_path, (hash, summary)) in &self.entries {
            let mut entry = BTreeMap::new();
            entry.insert("hash".to_string(), Value::Str(hash.clone()));
            entry.insert("summary".to_string(), encode_summary(summary));
            files.insert(file_path.clone(), Value::Object(entry));
        }
        let mut doc = BTreeMap::new();
        doc.insert("version".to_string(), Value::Int(CACHE_VERSION));
        doc.insert("files".to_string(), Value::Object(files));
        let text = Value::Object(doc).to_pretty();
        let tmp = path.with_extension("tmp");
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if std::fs::write(&tmp, text).is_ok() {
            let _ = std::fs::rename(&tmp, path);
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn obj(fields: Vec<(&str, Value)>) -> Value {
    let mut m = BTreeMap::new();
    for (k, v) in fields {
        m.insert(k.to_string(), v);
    }
    Value::Object(m)
}

fn encode_summary(s: &FileSummary) -> Value {
    obj(vec![
        ("is_test", Value::Bool(s.is_test)),
        ("fns", Value::Array(s.fns.iter().map(encode_fn).collect())),
        (
            "enums",
            Value::Array(
                s.enums
                    .iter()
                    .map(|e| {
                        obj(vec![
                            ("name", Value::Str(e.name.clone())),
                            (
                                "variants",
                                Value::Array(e.variants.iter().cloned().map(Value::Str).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "matches",
            Value::Array(s.matches.iter().map(encode_match).collect()),
        ),
        (
            "aliases",
            Value::Array(
                s.aliases
                    .iter()
                    .map(|(alias, real)| {
                        Value::Array(vec![Value::Str(alias.clone()), Value::Str(real.clone())])
                    })
                    .collect(),
            ),
        ),
        (
            "local",
            Value::Array(s.local.iter().map(encode_violation).collect()),
        ),
    ])
}

fn encode_fn(f: &FnItem) -> Value {
    obj(vec![
        ("name", Value::Str(f.name.clone())),
        (
            "self_type",
            f.self_type.clone().map(Value::Str).unwrap_or(Value::Null),
        ),
        ("has_self", Value::Bool(f.has_self)),
        ("arity", Value::Int(f.arity as u64)),
        ("line", Value::Int(f.line as u64)),
        ("end_line", Value::Int(f.end_line as u64)),
        ("is_test", Value::Bool(f.is_test)),
        (
            "calls",
            Value::Array(
                f.calls
                    .iter()
                    .map(|c| {
                        obj(vec![
                            ("name", Value::Str(c.name.clone())),
                            (
                                "qualifier",
                                c.qualifier.clone().map(Value::Str).unwrap_or(Value::Null),
                            ),
                            ("kind", Value::Str(c.kind.tag().to_string())),
                            ("args", Value::Int(c.args as u64)),
                            ("line", Value::Int(c.line as u64)),
                            (
                                "recv",
                                c.recv.clone().map(Value::Str).unwrap_or(Value::Null),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "effects",
            Value::Array(
                f.effects
                    .iter()
                    .map(|e| {
                        obj(vec![
                            ("kind", Value::Str(e.kind.name().to_string())),
                            ("line", Value::Int(e.line as u64)),
                            ("detail", Value::Str(e.detail.clone())),
                            ("snippet", Value::Str(e.snippet.clone())),
                            ("waived", Value::Bool(e.waived)),
                            ("waived_blocking", Value::Bool(e.waived_blocking)),
                            ("loop_depth", Value::Int(e.loop_depth as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "locks",
            Value::Array(
                f.locks
                    .iter()
                    .map(|l| {
                        obj(vec![
                            ("op", Value::Str(l.op.label().to_string())),
                            ("id", Value::Str(l.id.clone())),
                            ("line", Value::Int(l.line as u64)),
                            ("snippet", Value::Str(l.snippet.clone())),
                            ("loop_depth", Value::Int(l.loop_depth as u64)),
                            ("span_start", Value::Int(l.span.0 as u64)),
                            ("span_end", Value::Int(l.span.1 as u64)),
                            (
                                "binding",
                                l.binding.clone().map(Value::Str).unwrap_or(Value::Null),
                            ),
                            ("escapes", Value::Bool(l.escapes)),
                            ("stmt_temp", Value::Bool(l.stmt_temp)),
                            ("waived_order", Value::Bool(l.waived_order)),
                            ("waived_blocking", Value::Bool(l.waived_blocking)),
                            ("waived_hot", Value::Bool(l.waived_hot)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn encode_match(m: &MatchSite) -> Value {
    obj(vec![
        ("enum", Value::Str(m.enum_name.clone())),
        (
            "covered",
            Value::Array(m.covered.iter().cloned().map(Value::Str).collect()),
        ),
        ("catch_all", Value::Bool(m.catch_all)),
        ("line", Value::Int(m.line as u64)),
        ("snippet", Value::Str(m.snippet.clone())),
        ("waived", Value::Bool(m.waived)),
    ])
}

fn encode_violation(v: &Violation) -> Value {
    obj(vec![
        ("rule", Value::Str(v.rule.to_string())),
        ("line", Value::Int(v.line as u64)),
        ("message", Value::Str(v.message.clone())),
        ("snippet", Value::Str(v.snippet.clone())),
    ])
}

// ---------------------------------------------------------------------------
// Decoding (any malformed node rejects the whole file entry)
// ---------------------------------------------------------------------------

fn get_str(v: &Value, key: &str) -> Option<String> {
    v.get(key)?.as_str().map(str::to_string)
}

fn get_usize(v: &Value, key: &str) -> Option<usize> {
    v.get(key)?.as_u64().map(|n| n as usize)
}

fn get_bool(v: &Value, key: &str) -> Option<bool> {
    match v.get(key)? {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

fn get_array<'a>(v: &'a Value, key: &str) -> Option<&'a Vec<Value>> {
    match v.get(key)? {
        Value::Array(a) => Some(a),
        _ => None,
    }
}

fn decode_summary(path: &str, v: &Value) -> Option<FileSummary> {
    let mut fns = Vec::new();
    for f in get_array(v, "fns")? {
        fns.push(decode_fn(f)?);
    }
    let mut enums = Vec::new();
    for e in get_array(v, "enums")? {
        let mut variants = Vec::new();
        for var in get_array(e, "variants")? {
            variants.push(var.as_str()?.to_string());
        }
        enums.push(EnumDef {
            name: get_str(e, "name")?,
            variants,
        });
    }
    let mut matches = Vec::new();
    for m in get_array(v, "matches")? {
        let mut covered = Vec::new();
        for c in get_array(m, "covered")? {
            covered.push(c.as_str()?.to_string());
        }
        matches.push(MatchSite {
            enum_name: get_str(m, "enum")?,
            covered,
            catch_all: get_bool(m, "catch_all")?,
            line: get_usize(m, "line")?,
            snippet: get_str(m, "snippet")?,
            waived: get_bool(m, "waived")?,
        });
    }
    let mut aliases = Vec::new();
    for pair in get_array(v, "aliases")? {
        let Value::Array(parts) = pair else {
            return None;
        };
        let [alias, real] = parts.as_slice() else {
            return None;
        };
        aliases.push((alias.as_str()?.to_string(), real.as_str()?.to_string()));
    }
    let mut local = Vec::new();
    for violation in get_array(v, "local")? {
        let rule_name = get_str(violation, "rule")?;
        let rule = rules::RULE_IDS
            .iter()
            .find(|id| **id == rule_name)
            .copied()?;
        local.push(Violation {
            rule,
            path: path.to_string(),
            line: get_usize(violation, "line")?,
            message: get_str(violation, "message")?,
            snippet: get_str(violation, "snippet")?,
        });
    }
    Some(FileSummary {
        path: path.to_string(),
        is_test: get_bool(v, "is_test")?,
        fns,
        enums,
        matches,
        aliases,
        local,
    })
}

fn decode_fn(v: &Value) -> Option<FnItem> {
    let mut calls = Vec::new();
    for c in get_array(v, "calls")? {
        calls.push(CallSite {
            name: get_str(c, "name")?,
            qualifier: match c.get("qualifier")? {
                Value::Null => None,
                Value::Str(s) => Some(s.clone()),
                _ => return None,
            },
            kind: CallKind::from_tag(&get_str(c, "kind")?)?,
            args: get_usize(c, "args")?,
            line: get_usize(c, "line")?,
            recv: match c.get("recv")? {
                Value::Null => None,
                Value::Str(s) => Some(s.clone()),
                _ => return None,
            },
        });
    }
    let mut effects = Vec::new();
    for e in get_array(v, "effects")? {
        effects.push(EffectSite {
            kind: EffectKind::from_name(&get_str(e, "kind")?)?,
            line: get_usize(e, "line")?,
            detail: get_str(e, "detail")?,
            snippet: get_str(e, "snippet")?,
            waived: get_bool(e, "waived")?,
            waived_blocking: get_bool(e, "waived_blocking")?,
            loop_depth: get_usize(e, "loop_depth")?,
        });
    }
    let mut locks = Vec::new();
    for l in get_array(v, "locks")? {
        locks.push(LockSite {
            op: LockOp::from_label(&get_str(l, "op")?)?,
            id: get_str(l, "id")?,
            line: get_usize(l, "line")?,
            snippet: get_str(l, "snippet")?,
            loop_depth: get_usize(l, "loop_depth")?,
            span: (get_usize(l, "span_start")?, get_usize(l, "span_end")?),
            binding: match l.get("binding")? {
                Value::Null => None,
                Value::Str(s) => Some(s.clone()),
                _ => return None,
            },
            escapes: get_bool(l, "escapes")?,
            stmt_temp: get_bool(l, "stmt_temp")?,
            waived_order: get_bool(l, "waived_order")?,
            waived_blocking: get_bool(l, "waived_blocking")?,
            waived_hot: get_bool(l, "waived_hot")?,
        });
    }
    Some(FnItem {
        name: get_str(v, "name")?,
        self_type: match v.get("self_type")? {
            Value::Null => None,
            Value::Str(s) => Some(s.clone()),
            _ => return None,
        },
        has_self: get_bool(v, "has_self")?,
        arity: get_usize(v, "arity")?,
        line: get_usize(v, "line")?,
        end_line: get_usize(v, "end_line")?,
        is_test: get_bool(v, "is_test")?,
        calls,
        effects,
        locks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::summarize_source;

    #[test]
    fn hash_is_stable_and_content_sensitive() {
        assert_eq!(content_hash("abc"), content_hash("abc"));
        assert_ne!(content_hash("abc"), content_hash("abd"));
        assert_eq!(content_hash("").len(), 16);
    }

    #[test]
    fn summary_roundtrips_through_encoding() {
        let src = "enum E { A, B }\n\
                   struct S;\n\
                   impl S {\n\
                       fn go(&self, x: u32) -> u32 { helper(x); self.go(x); x }\n\
                   }\n\
                   fn helper(x: u32) -> u32 { let b = &[1u8][..]; b[0] as u32 + x }\n\
                   fn pick(e: E) -> u8 { match e { E::A => 0, E::B => 1 } }\n";
        let original = summarize_source("crates/net/src/x.rs", src);
        let encoded = encode_summary(&original);
        // Through text, like a real disk roundtrip.
        let reparsed = Value::parse(&encoded.to_pretty()).unwrap();
        let decoded = decode_summary("crates/net/src/x.rs", &reparsed).unwrap();
        assert_eq!(decoded.fns.len(), original.fns.len());
        for (a, b) in decoded.fns.iter().zip(&original.fns) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.self_type, b.self_type);
            assert_eq!(a.arity, b.arity);
            assert_eq!(a.calls.len(), b.calls.len());
            assert_eq!(a.effects.len(), b.effects.len());
        }
        assert_eq!(decoded.enums.len(), 1);
        assert_eq!(decoded.matches.len(), 1);
    }

    #[test]
    fn cache_roundtrip_on_disk_and_stale_hash_misses() {
        let dir = std::env::temp_dir().join("vroom-lint-cache-test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("cache.json");
        let _ = std::fs::remove_file(&path);

        let summary = summarize_source("crates/net/src/x.rs", "fn f() {}\n");
        let hash = content_hash("fn f() {}\n");
        let mut cache = Cache::default();
        cache.record(hash.clone(), summary);
        cache.store(&path);

        let loaded = Cache::load(&path);
        assert!(loaded.lookup("crates/net/src/x.rs", &hash).is_some());
        assert!(
            loaded
                .lookup("crates/net/src/x.rs", "0000000000000000")
                .is_none(),
            "stale hash must miss"
        );
        assert!(loaded.lookup("crates/net/src/other.rs", &hash).is_none());

        // Corrupt cache is ignored, not fatal.
        std::fs::write(&path, "{ not json").unwrap();
        let corrupt = Cache::load(&path);
        assert!(corrupt.lookup("crates/net/src/x.rs", &hash).is_none());
        let _ = std::fs::remove_file(&path);
    }
}
