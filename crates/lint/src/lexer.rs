//! A small Rust lexer pass: blank out comments and string literals so rule
//! patterns fire on code only, and collect `vroom-lint: allow(...)` waiver
//! comments along the way.
//!
//! The output preserves byte positions — every stripped character becomes a
//! space (newlines are kept) — so line numbers computed against the stripped
//! text match the original source exactly.

/// One waiver comment: `// vroom-lint: allow(rule-a, rule-b) -- reason`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// Rules it waives.
    pub rules: Vec<String>,
    /// The justification after `--` (required).
    pub reason: String,
    /// Whether the comment is alone on its line (then it waives the *next*
    /// line as well as its own).
    pub own_line: bool,
}

/// A malformed waiver comment (reported as a violation by the engine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaiverError {
    /// 1-based line of the malformed comment.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

/// Result of lexing one file.
#[derive(Debug, Clone)]
pub struct Lexed {
    /// The source with comment and literal contents blanked to spaces.
    pub code: String,
    /// Parsed waiver comments.
    pub waivers: Vec<Waiver>,
    /// Malformed waiver comments.
    pub waiver_errors: Vec<WaiverError>,
}

impl Lexed {
    /// Whether `rule` is waived on `line` (1-based): either a same-line
    /// waiver, or an own-line waiver on the line above.
    pub fn is_waived(&self, rule: &str, line: usize) -> bool {
        self.waivers.iter().any(|w| {
            w.rules.iter().any(|r| r == rule)
                && (w.line == line || (w.own_line && w.line + 1 == line))
        })
    }
}

/// Strip comments and literals from Rust source, collecting waivers.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut code = Vec::with_capacity(bytes.len());
    let mut waivers = Vec::new();
    let mut waiver_errors = Vec::new();
    let mut line = 1usize;
    let mut line_start = true; // only whitespace seen so far on this line
    let mut i = 0;

    macro_rules! keep {
        ($b:expr) => {{
            code.push($b);
            if $b == b'\n' {
                line += 1;
                line_start = true;
            } else if !($b as char).is_ascii_whitespace() {
                line_start = false;
            }
        }};
    }
    macro_rules! blank {
        ($b:expr) => {{
            if $b == b'\n' {
                code.push(b'\n');
                line += 1;
                line_start = true;
            } else {
                code.push(b' ');
            }
        }};
    }

    // Shebang line (`#!/usr/bin/env ...`): not Rust tokens at all — blank it
    // before the scan so an apostrophe or quote in the interpreter path
    // cannot open a bogus literal. `#![...]` inner attributes are real code
    // and are left alone.
    if bytes.starts_with(b"#!") && bytes.get(2) != Some(&b'[') {
        while i < bytes.len() && bytes[i] != b'\n' {
            blank!(bytes[i]);
            i += 1;
        }
    }

    while i < bytes.len() {
        let b = bytes[i];
        // Line comment.
        if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            let own_line = line_start;
            let start = i;
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            let text = &source[start..i];
            // Waivers live in plain `//` comments only: doc comments
            // (`///`, `//!`) describe code — including, in this crate, the
            // waiver syntax itself — and must not activate it.
            let is_doc = text.starts_with("///") || text.starts_with("//!");
            if !is_doc {
                parse_waiver(text, line, own_line, &mut waivers, &mut waiver_errors);
            }
            for _ in start..i {
                code.push(b' ');
            }
            continue;
        }
        // Block comment (nested).
        if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let mut depth = 1;
            blank!(bytes[i]);
            blank!(bytes[i + 1]);
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    blank!(bytes[i]);
                    blank!(bytes[i + 1]);
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    blank!(bytes[i]);
                    blank!(bytes[i + 1]);
                    i += 2;
                } else {
                    blank!(bytes[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw (byte) string literal: r"..." / r#"..."# / br##"..."##.
        if b == b'r' || b == b'b' {
            if let Some((hashes, open)) = raw_string_open(&bytes[i..]) {
                // Keep the introducer, blank the contents.
                for _ in 0..open {
                    keep!(bytes[i]);
                    i += 1;
                }
                let closer: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat(b'#').take(hashes))
                    .collect();
                while i < bytes.len() && !bytes[i..].starts_with(&closer) {
                    blank!(bytes[i]);
                    i += 1;
                }
                for _ in 0..closer.len().min(bytes.len() - i) {
                    keep!(bytes[i]);
                    i += 1;
                }
                continue;
            }
        }
        // Plain (byte) string literal.
        if b == b'"' || (b == b'b' && bytes.get(i + 1) == Some(&b'"')) {
            if b == b'b' {
                keep!(b);
                i += 1;
            }
            keep!(bytes[i]); // opening quote
            i += 1;
            while i < bytes.len() {
                if bytes[i] == b'\\' && i + 1 < bytes.len() {
                    blank!(bytes[i]);
                    blank!(bytes[i + 1]);
                    i += 2;
                } else if bytes[i] == b'"' {
                    keep!(bytes[i]);
                    i += 1;
                    break;
                } else {
                    blank!(bytes[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime: treat as a literal when it closes with
        // a quote right after one (possibly escaped) character.
        if b == b'\'' {
            let is_escape = bytes.get(i + 1) == Some(&b'\\');
            let closes = if is_escape {
                true
            } else {
                // 'x' (any byte then quote); multibyte chars also land here
                // via the byte scan below.
                matches!(bytes.get(i + 2), Some(&b'\''))
                    || (bytes.get(i + 1).is_some_and(|c| *c >= 0x80)
                        && char_literal_len(&bytes[i + 1..]).is_some())
            };
            if closes {
                keep!(b);
                i += 1;
                while i < bytes.len() && bytes[i] != b'\'' {
                    if bytes[i] == b'\\' {
                        blank!(bytes[i]);
                        i += 1;
                    }
                    if i < bytes.len() {
                        blank!(bytes[i]);
                        i += 1;
                    }
                }
                if i < bytes.len() {
                    keep!(bytes[i]); // closing quote
                    i += 1;
                }
                continue;
            }
        }
        keep!(b);
        i += 1;
    }

    Lexed {
        code: String::from_utf8_lossy(&code).into_owned(),
        waivers,
        waiver_errors,
    }
}

/// `r`/`br` raw-string opener: returns (hash count, total introducer length
/// including the quote) if `bytes` starts one.
fn raw_string_open(bytes: &[u8]) -> Option<(usize, usize)> {
    let mut j = 0;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&b'"') {
        Some((hashes, j + 1))
    } else {
        None
    }
}

/// Length in bytes of a UTF-8 char literal body ending in `'`, if any.
fn char_literal_len(bytes: &[u8]) -> Option<usize> {
    let first = *bytes.first()?;
    let len = match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    };
    (bytes.get(len) == Some(&b'\'')).then_some(len)
}

const WAIVER_TAG: &str = "vroom-lint:";

fn parse_waiver(
    comment: &str,
    line: usize,
    own_line: bool,
    waivers: &mut Vec<Waiver>,
    errors: &mut Vec<WaiverError>,
) {
    let Some(tag_at) = comment.find(WAIVER_TAG) else {
        return;
    };
    let rest = comment[tag_at + WAIVER_TAG.len()..].trim();
    let mut fail = |message: String| {
        errors.push(WaiverError { line, message });
    };
    let Some(args) = rest.strip_prefix("allow(") else {
        fail(format!(
            "malformed waiver; expected `// vroom-lint: allow(<rule>) -- <reason>`, got {rest:?}"
        ));
        return;
    };
    let Some(close) = args.find(')') else {
        fail("waiver is missing the closing `)`".to_string());
        return;
    };
    let rules: Vec<String> = args[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        fail("waiver allows no rules".to_string());
        return;
    }
    let tail = args[close + 1..].trim();
    let Some(reason) = tail.strip_prefix("--") else {
        fail("waiver is missing a `-- <reason>` justification".to_string());
        return;
    };
    let reason = reason.trim().to_string();
    if reason.is_empty() {
        fail("waiver has an empty justification".to_string());
        return;
    }
    waivers.push(Waiver {
        line,
        rules,
        reason,
        own_line,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> String {
        lex(src).code
    }

    #[test]
    fn strips_line_comments() {
        let out = code_of("let a = 1; // Instant::now here\nlet b = 2;\n");
        assert!(!out.contains("Instant::now"));
        assert!(out.contains("let a = 1;"));
        assert!(out.contains("let b = 2;"));
        assert_eq!(out.lines().count(), 2, "line structure preserved");
    }

    #[test]
    fn strips_nested_block_comments() {
        let src = "a /* outer /* inner Instant::now */ still comment */ b\n";
        let out = code_of(src);
        assert!(!out.contains("Instant::now"));
        assert!(!out.contains("still comment"));
        assert!(out.starts_with('a'));
        assert!(out.trim_end().ends_with('b'));
        assert_eq!(out.len(), src.len());
    }

    #[test]
    fn block_comment_spanning_lines_keeps_line_numbers() {
        let src = "one /* c\nc2\nc3 */ two\nthree";
        let out = code_of(src);
        assert_eq!(out.lines().count(), src.lines().count());
        assert!(out.lines().nth(2).unwrap().contains("two"));
        assert!(out.lines().nth(3).unwrap().contains("three"));
    }

    #[test]
    fn strips_string_literals_but_keeps_quotes() {
        let out = code_of(r#"let s = "Instant::now // not a comment"; x()"#);
        assert!(!out.contains("Instant::now"));
        assert!(!out.contains("not a comment"));
        assert!(out.contains("let s = \""));
        assert!(out.contains("x()"), "code after the literal survives");
    }

    #[test]
    fn string_embedded_slashes_do_not_open_comments() {
        let out = code_of("let url = \"https://example.com\"; let live = 1;");
        assert!(out.contains("let live = 1;"));
        assert!(!out.contains("example.com"));
    }

    #[test]
    fn escaped_quotes_stay_inside_the_literal() {
        let out = code_of(r#"let s = "say \"HashMap\" now"; keys()"#);
        assert!(!out.contains("HashMap"));
        assert!(out.contains("keys()"));
    }

    #[test]
    fn strips_raw_strings() {
        let out = code_of(r##"let s = r#"Instant::now "quoted" //x"#; f()"##);
        assert!(!out.contains("Instant::now"));
        assert!(!out.contains("quoted"));
        assert!(out.contains("f()"));
    }

    #[test]
    fn raw_string_with_more_hashes() {
        let out = code_of("let s = r##\"body with \"# inside\"##; g()");
        assert!(!out.contains("body"));
        assert!(!out.contains("inside"));
        assert!(out.contains("g()"));
    }

    #[test]
    fn byte_strings_are_literals_too() {
        let out = code_of(r#"let b = b"SystemTime"; let r = br"thread_rng";"#);
        assert!(!out.contains("SystemTime"));
        assert!(!out.contains("thread_rng"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let out = code_of("fn f<'a>(x: &'a str) { let c = '\"'; let d = '\\n'; g(x) }");
        assert!(out.contains("fn f<'a>(x: &'a str)"), "lifetimes untouched");
        assert!(
            out.contains("g(x)"),
            "a quote char literal must not eat code"
        );
        assert!(!out.contains("\\n"));
    }

    #[test]
    fn shebang_line_is_blanked() {
        // The interpreter path is not Rust: an apostrophe or quote in it
        // must not open a char/string literal that swallows the real code.
        let src = "#!/usr/bin/env -S cargo 'x\nfn main() { Instant::now(); }\n";
        let out = code_of(src);
        assert!(!out.contains("/usr/bin/env"));
        assert!(out.contains("Instant::now()"), "code after shebang is live");
        assert_eq!(out.lines().count(), 2, "line structure preserved");
    }

    #[test]
    fn inner_attribute_is_not_a_shebang() {
        let src = "#![forbid(unsafe_code)]\nfn f() {}\n";
        let out = code_of(src);
        assert!(
            out.contains("#![forbid(unsafe_code)]"),
            "`#![...]` is real code, not a shebang"
        );
    }

    #[test]
    fn shebang_only_counts_at_file_start() {
        let src = "fn f() {}\n// #!/usr/bin/env not a shebang\nlet g = 1;\n";
        let out = code_of(src);
        assert!(out.contains("fn f() {}"));
        assert!(out.contains("let g = 1;"));
    }

    #[test]
    fn raw_byte_string_with_hashes() {
        let out = code_of("let b = br##\"thread_rng \"# deep\"##; h()");
        assert!(!out.contains("thread_rng"));
        assert!(!out.contains("deep"));
        assert!(out.contains("h()"));
    }

    #[test]
    fn unbalanced_nested_comment_does_not_panic() {
        // An unterminated inner comment runs to EOF; the lexer must not
        // index past the buffer.
        let out = code_of("a /* outer /* inner\nno close");
        assert!(out.starts_with('a'));
        assert!(!out.contains("inner"));
        assert!(!out.contains("no close"));
    }

    #[test]
    fn lifetime_in_turbofish_is_not_a_char() {
        let out = code_of("fn f() { g::<'static, u8>(1); let c = 'q'; live() }");
        assert!(out.contains("g::<'static, u8>(1)"), "lifetime kept as code");
        assert!(out.contains("live()"), "char literal closed correctly");
        assert!(!out.contains('q'), "char contents blanked");
    }

    #[test]
    fn waiver_parsing_happy_path() {
        let lexed = lex("foo(); // vroom-lint: allow(wall-clock) -- real wire needs it\n");
        assert_eq!(lexed.waivers.len(), 1);
        let w = &lexed.waivers[0];
        assert_eq!(w.line, 1);
        assert_eq!(w.rules, vec!["wall-clock".to_string()]);
        assert_eq!(w.reason, "real wire needs it");
        assert!(!w.own_line);
        assert!(lexed.is_waived("wall-clock", 1));
        assert!(
            !lexed.is_waived("wall-clock", 2),
            "inline waiver is same-line only"
        );
        assert!(!lexed.is_waived("unordered-iter", 1));
    }

    #[test]
    fn own_line_waiver_covers_next_line() {
        let lexed = lex("// vroom-lint: allow(unwrap, float-eq) -- test helper\nfoo();\nbar();\n");
        assert_eq!(lexed.waivers.len(), 1);
        assert!(lexed.waivers[0].own_line);
        assert_eq!(lexed.waivers[0].rules.len(), 2);
        assert!(lexed.is_waived("unwrap", 2));
        assert!(lexed.is_waived("float-eq", 2));
        assert!(!lexed.is_waived("unwrap", 3));
    }

    #[test]
    fn malformed_waivers_are_reported() {
        for bad in [
            "// vroom-lint: allow(wall-clock)",       // missing reason
            "// vroom-lint: allow(wall-clock) -- ",   // empty reason
            "// vroom-lint: allow() -- why",          // no rules
            "// vroom-lint: deny(wall-clock) -- why", // not allow
            "// vroom-lint: allow(wall-clock -- why", // unclosed paren
        ] {
            let lexed = lex(bad);
            assert!(lexed.waivers.is_empty(), "{bad}");
            assert_eq!(lexed.waiver_errors.len(), 1, "{bad}");
        }
    }

    #[test]
    fn waiver_inside_string_is_ignored() {
        let lexed = lex(r#"let s = "// vroom-lint: allow(unwrap) -- nope";"#);
        assert!(lexed.waivers.is_empty());
        assert!(lexed.waiver_errors.is_empty());
    }

    #[test]
    fn waiver_in_doc_comment_is_inert() {
        // Doc comments describe the syntax; they neither grant a waiver nor
        // trip the malformed-waiver check.
        for doc in [
            "//! Write `// vroom-lint: allow(wall-clock)` to waive.\nfn f() {}",
            "/// Use vroom-lint: allow(unwrap) here.\nfn f() {}",
        ] {
            let lexed = lex(doc);
            assert!(lexed.waivers.is_empty(), "{doc}");
            assert!(lexed.waiver_errors.is_empty(), "{doc}");
        }
    }
}
