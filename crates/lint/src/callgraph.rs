//! Workspace-wide symbol table and conservative call graph.
//!
//! Nodes are the non-test functions of every [`FileSummary`]; edges come
//! from the call sites the parser recorded. Resolution is deliberately an
//! over-approximation — when in doubt, an edge is added:
//!
//! * free calls resolve by name, preferring candidates in the caller's own
//!   crate, else falling back to every function with that name;
//! * method calls resolve by name + arity over every method in the
//!   workspace (trait dispatch collapses to "same name, same shape"); when
//!   no candidate matches exactly, lower-arity candidates are linked —
//!   the parser can only over-count arguments (closure commas), never
//!   under-count them, so the true target is never above the count;
//! * `Type::assoc` resolves through the impl self-type, with `Self::`
//!   mapped to the caller's own impl block and `use .. as ..` renames
//!   mapped back to the defining type.
//!
//! A type-qualified call whose type is *not* defined in the workspace
//! (`Vec::new`, `BTreeMap::from`, a vendored type) produces no edge: the
//! callee is std/vendored code that cannot call back into the workspace,
//! and closure arguments are already attributed to the calling function by
//! the parser, so dropping the edge loses no effects.
//!
//! False edges only widen reachability, so the reachability rules in
//! [`crate::reach`] can miss nothing that a precise graph would flag.

use crate::parse::{CallKind, FileSummary};
use std::collections::BTreeMap;

/// One call-graph node: fn `item` of file `file` in `summaries`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRef {
    pub file: usize,
    pub item: usize,
}

pub struct Graph<'a> {
    pub summaries: &'a [FileSummary],
    /// Dense node table, in (file, item) order.
    pub nodes: Vec<NodeRef>,
    /// Sorted adjacency lists, indexed by node id.
    pub edges: Vec<Vec<usize>>,
    /// Per-call-site resolution: for node id, `(call_idx, callee)` pairs
    /// where `call_idx` indexes the fn's `calls` vec. Unlike `edges`,
    /// self-edges are kept — a recursive call still holds the caller's
    /// guards across the call site.
    pub site_edges: Vec<Vec<(usize, usize)>>,
}

impl<'a> Graph<'a> {
    pub fn build(summaries: &'a [FileSummary]) -> Graph<'a> {
        let mut nodes = Vec::new();
        for (fi, file) in summaries.iter().enumerate() {
            for (ii, f) in file.fns.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                nodes.push(NodeRef { file: fi, item: ii });
            }
        }

        // Name-keyed candidate indices.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_type: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (id, n) in nodes.iter().enumerate() {
            let f = &summaries[n.file].fns[n.item];
            by_name.entry(&f.name).or_default().push(id);
            if f.has_self {
                methods.entry(&f.name).or_default().push(id);
            }
            if let Some(ty) = &f.self_type {
                by_type.entry((ty.as_str(), &f.name)).or_default().push(id);
            }
        }

        let crate_of = |path: &str| -> String {
            path.strip_prefix("crates/")
                .and_then(|p| p.split('/').next())
                .unwrap_or("")
                .to_string()
        };

        let mut edges = vec![Vec::new(); nodes.len()];
        let mut site_edges = vec![Vec::new(); nodes.len()];
        for (id, n) in nodes.iter().enumerate() {
            let file = &summaries[n.file];
            let caller = &file.fns[n.item];
            let caller_crate = crate_of(&file.path);
            let mut sites: Vec<(usize, usize)> = Vec::new();
            for (call_idx, call) in caller.calls.iter().enumerate() {
                let name = call.name.as_str();
                let mut out: Vec<usize> = Vec::new();
                match call.kind {
                    CallKind::Method => {
                        let all = methods.get(name).map(Vec::as_slice).unwrap_or(&[]);
                        let arity_of = |c: usize| {
                            let nf = nodes[c];
                            summaries[nf.file].fns[nf.item].arity
                        };
                        let exact: Vec<usize> = all
                            .iter()
                            .copied()
                            .filter(|&c| arity_of(c) == call.args)
                            .collect();
                        if exact.is_empty() {
                            // The parser can only over-count args (commas
                            // inside closure parameter lists), so the true
                            // target can sit below the count — never above.
                            out.extend(all.iter().copied().filter(|&c| arity_of(c) < call.args));
                        } else {
                            out.extend(exact);
                        }
                    }
                    CallKind::Qualified => {
                        let qual = call.qualifier.as_deref().unwrap_or("");
                        let type_qualified = qual.chars().next().is_some_and(|c| c.is_uppercase());
                        if type_qualified {
                            let ty = if qual == "Self" {
                                caller.self_type.as_deref().unwrap_or(qual)
                            } else {
                                // Map `use path::Real as Alias` back to the
                                // defining type before the table lookup.
                                file.aliases
                                    .iter()
                                    .find(|(alias, _)| alias == qual)
                                    .map(|(_, real)| real.as_str())
                                    .unwrap_or(qual)
                            };
                            if let Some(c) = by_type.get(&(ty, name)) {
                                out.extend_from_slice(c);
                            }
                            // else: the type is not defined in the workspace
                            // (std or vendored) — its associated fns cannot
                            // call back into workspace code, and closures in
                            // the argument list are already attributed to
                            // this caller. No edge.
                        } else {
                            // Module-qualified: same resolution as a free
                            // call (the module path is not tracked).
                            resolve_free(
                                name,
                                &caller_crate,
                                summaries,
                                &nodes,
                                &by_name,
                                &mut out,
                                &crate_of,
                            );
                        }
                    }
                    CallKind::Free => {
                        // `drop(x)` is std's consuming free fn — the
                        // guard-release idiom. It cannot invoke a workspace
                        // `Drop::drop` method by name (that requires
                        // `Drop::drop(&mut x)`), so linking it would make
                        // every explicit guard release look like a call
                        // made while the lock is held.
                        if name != "drop" {
                            resolve_free(
                                name,
                                &caller_crate,
                                summaries,
                                &nodes,
                                &by_name,
                                &mut out,
                                &crate_of,
                            );
                        }
                    }
                }
                out.sort_unstable();
                out.dedup();
                sites.extend(out.into_iter().map(|c| (call_idx, c)));
            }
            // The legacy adjacency list is derived from the per-site
            // resolution: flattened, deduped, self-edges removed.
            let mut out: Vec<usize> = sites.iter().map(|&(_, c)| c).collect();
            out.sort_unstable();
            out.dedup();
            out.retain(|&c| c != id);
            edges[id] = out;
            site_edges[id] = sites;
        }

        Graph {
            summaries,
            nodes,
            edges,
            site_edges,
        }
    }

    /// Node ids whose fn satisfies `pred`, in deterministic node order.
    pub fn select(&self, mut pred: impl FnMut(&str, &crate::parse::FnItem) -> bool) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                let file = &self.summaries[n.file];
                pred(&file.path, &file.fns[n.item])
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// BFS from `roots`. Returns, per node, `Some(predecessor)` if
    /// reachable (`pred == self` for roots). Deterministic: roots and
    /// adjacency lists are processed in sorted order.
    pub fn reachable(&self, roots: &[usize]) -> Vec<Option<usize>> {
        let mut pred: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        let mut sorted_roots: Vec<usize> = roots.to_vec();
        sorted_roots.sort_unstable();
        sorted_roots.dedup();
        for &r in &sorted_roots {
            pred[r] = Some(r);
            queue.push_back(r);
        }
        while let Some(at) = queue.pop_front() {
            for &next in &self.edges[at] {
                if pred[next].is_none() {
                    pred[next] = Some(at);
                    queue.push_back(next);
                }
            }
        }
        pred
    }

    /// Display name for diagnostics: `crate::Type::fn` / `crate::fn`.
    pub fn display(&self, id: usize) -> String {
        let n = self.nodes[id];
        let file = &self.summaries[n.file];
        let f = &file.fns[n.item];
        let krate = file
            .path
            .strip_prefix("crates/")
            .and_then(|p| p.split('/').next())
            .unwrap_or("workspace");
        match &f.self_type {
            Some(ty) => format!("{krate}::{ty}::{}", f.name),
            None => format!("{krate}::{}", f.name),
        }
    }

    /// Walk predecessors back to a root: `root -> ... -> id`, capped for
    /// readable messages.
    pub fn chain(&self, pred: &[Option<usize>], id: usize) -> Vec<usize> {
        let mut chain = vec![id];
        let mut at = id;
        for _ in 0..64 {
            match pred[at] {
                Some(p) if p != at => {
                    chain.push(p);
                    at = p;
                }
                _ => break,
            }
        }
        chain.reverse();
        chain
    }
}

#[allow(clippy::too_many_arguments)]
fn resolve_free(
    name: &str,
    caller_crate: &str,
    summaries: &[FileSummary],
    nodes: &[NodeRef],
    by_name: &BTreeMap<&str, Vec<usize>>,
    out: &mut Vec<usize>,
    crate_of: &dyn Fn(&str) -> String,
) {
    let Some(all) = by_name.get(name) else { return };
    let same_crate: Vec<usize> = all
        .iter()
        .copied()
        .filter(|&c| crate_of(&summaries[nodes[c].file].path) == caller_crate)
        .collect();
    if same_crate.is_empty() {
        out.extend_from_slice(all);
    } else {
        out.extend(same_crate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::summarize_source;

    fn graph_of(files: &[(&str, &str)]) -> Vec<FileSummary> {
        files.iter().map(|(p, s)| summarize_source(p, s)).collect()
    }

    fn find(g: &Graph, name: &str) -> usize {
        g.nodes
            .iter()
            .enumerate()
            .find(|(_, n)| g.summaries[n.file].fns[n.item].name == name)
            .map(|(id, _)| id)
            .unwrap()
    }

    #[test]
    fn direct_free_call_links() {
        let s = graph_of(&[(
            "crates/sim/src/a.rs",
            "pub fn entry() { helper(); }\nfn helper() {}\n",
        )]);
        let g = Graph::build(&s);
        let (entry, helper) = (find(&g, "entry"), find(&g, "helper"));
        assert_eq!(g.edges[entry], vec![helper]);
        let pred = g.reachable(&[entry]);
        assert!(pred[helper].is_some());
    }

    #[test]
    fn free_call_prefers_same_crate() {
        let s = graph_of(&[
            (
                "crates/sim/src/a.rs",
                "pub fn entry() { helper(); }\npub fn helper() {}\n",
            ),
            ("crates/net/src/b.rs", "pub fn helper() {}\n"),
        ]);
        let g = Graph::build(&s);
        let entry = find(&g, "entry");
        assert_eq!(g.edges[entry].len(), 1, "same-crate helper wins");
    }

    #[test]
    fn free_drop_never_links_to_drop_impls() {
        // `drop(guard)` is std's consuming release; a workspace `Drop::drop`
        // method is not callable by that name, so no edge may appear.
        let s = graph_of(&[(
            "crates/sim/src/a.rs",
            "struct S;\n\
             impl Drop for S { fn drop(&mut self) { helper(); } }\n\
             fn helper() {}\n\
             pub fn entry(s: S) { drop(s); }\n",
        )]);
        let g = Graph::build(&s);
        let entry = find(&g, "entry");
        assert!(g.edges[entry].is_empty(), "drop(x) must stay unresolved");
    }

    #[test]
    fn method_call_resolves_by_name_and_arity() {
        let s = graph_of(&[(
            "crates/sim/src/a.rs",
            "struct A;\n\
             impl A { fn go(&self, x: u32) {} fn go2(&self) {} }\n\
             struct B;\n\
             impl B { fn go(&self, x: u32, y: u32) {} }\n\
             pub fn entry(a: &A) { a.go(1); }\n",
        )]);
        let g = Graph::build(&s);
        let entry = find(&g, "entry");
        // Only the 1-arg `go` matches; B::go has arity 2.
        assert_eq!(g.edges[entry], vec![find(&g, "go")]);
    }

    #[test]
    fn trait_methods_over_approximate_across_impls() {
        // Two impls of the same trait method name+arity: a method call
        // links to both (dynamic dispatch collapsed by name+shape).
        let s = graph_of(&[(
            "crates/sim/src/a.rs",
            "impl Clock for Fast { fn tick(&self) {} }\n\
             impl Clock for Slow { fn tick(&self) { let t = Instant::now(); } }\n\
             pub fn entry(c: &dyn Clock) { c.tick(); }\n",
        )]);
        let g = Graph::build(&s);
        let entry = find(&g, "entry");
        assert_eq!(g.edges[entry].len(), 2, "both impls linked");
    }

    #[test]
    fn qualified_call_resolves_through_self_type() {
        let s = graph_of(&[(
            "crates/sim/src/a.rs",
            "struct A;\n\
             impl A { fn make() -> A { A } }\n\
             struct B;\n\
             impl B { fn make() -> B { B } }\n\
             pub fn entry() { let _ = A::make(); }\n",
        )]);
        let g = Graph::build(&s);
        let entry = find(&g, "entry");
        assert_eq!(g.edges[entry].len(), 1, "only A::make");
    }

    #[test]
    fn qualified_call_on_foreign_type_adds_no_edge() {
        // `BTreeMap::new()` must not link to every workspace fn named
        // `new` — std types cannot call back into the workspace.
        let s = graph_of(&[(
            "crates/sim/src/a.rs",
            "struct Rng;\n\
             impl Rng { fn new() -> Rng { Rng } }\n\
             pub fn entry() { let m = BTreeMap::new(); }\n",
        )]);
        let g = Graph::build(&s);
        let entry = find(&g, "entry");
        assert!(g.edges[entry].is_empty(), "no edge into Rng::new");
    }

    #[test]
    fn qualified_call_resolves_through_use_alias() {
        let s = graph_of(&[
            (
                "crates/sim/src/a.rs",
                "pub struct Engine;\nimpl Engine { pub fn boot() {} }\n",
            ),
            (
                "crates/net/src/b.rs",
                "use vroom_sim::Engine as Core;\npub fn entry() { Core::boot(); }\n",
            ),
        ]);
        let g = Graph::build(&s);
        let entry = find(&g, "entry");
        assert_eq!(
            g.edges[entry],
            vec![find(&g, "boot")],
            "alias maps to Engine"
        );
    }

    #[test]
    fn method_arity_mismatch_above_count_adds_no_edge() {
        // `handle.join()` (0 args) must not link to a 1-arg `join` method:
        // the parser never under-counts arguments.
        let s = graph_of(&[(
            "crates/html/src/a.rs",
            "struct Url;\n\
             impl Url { fn join(&self, other: &str) -> Url { Url } }\n\
             pub fn entry(h: std::thread::JoinHandle<()>) { let _ = h.join(); }\n",
        )]);
        let g = Graph::build(&s);
        let entry = find(&g, "entry");
        assert!(g.edges[entry].is_empty(), "0-arg join cannot be Url::join");
    }

    #[test]
    fn method_closure_overcount_falls_back_to_lower_arity() {
        // `|a, b|` commas inflate the count; the real 1-arg method must
        // still be linked.
        let s = graph_of(&[(
            "crates/sim/src/a.rs",
            "struct Q;\n\
             impl Q { fn drain_with(&self, f: fn(u32, u32) -> u32) {} }\n\
             pub fn entry(q: &Q) { q.drain_with(|a, b| a + b); }\n",
        )]);
        let g = Graph::build(&s);
        let entry = find(&g, "entry");
        assert_eq!(g.edges[entry], vec![find(&g, "drain_with")]);
    }

    #[test]
    fn cycles_terminate_and_stay_reachable() {
        let s = graph_of(&[(
            "crates/sim/src/a.rs",
            "pub fn a() { b(); }\npub fn b() { a(); c(); }\nfn c() {}\n",
        )]);
        let g = Graph::build(&s);
        let pred = g.reachable(&[find(&g, "a")]);
        assert!(pred[find(&g, "b")].is_some());
        assert!(pred[find(&g, "c")].is_some());
        let chain = g.chain(&pred, find(&g, "c"));
        assert_eq!(chain.len(), 3, "a -> b -> c");
    }

    #[test]
    fn test_fns_are_not_nodes() {
        let s = graph_of(&[(
            "crates/sim/src/a.rs",
            "pub fn prod() {}\n#[cfg(test)]\nmod tests { fn t() { super::prod(); } }\n",
        )]);
        let g = Graph::build(&s);
        assert_eq!(g.nodes.len(), 1);
    }
}
