//! The ratchet baseline: known pre-existing violations, checked in as
//! `lint-baseline.txt`. Entries are keyed on `(rule, path, trimmed source
//! line)` rather than line numbers, so unrelated edits above a baselined
//! site don't invalidate it. Matching respects multiplicity: two identical
//! baselined lines absorb at most two identical violations.

use crate::rules::Violation;
use std::collections::BTreeMap;

/// Name of the checked-in baseline file at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.txt";

/// One baseline entry (tab-separated on disk: `rule\tpath\tsnippet`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Entry {
    pub rule: String,
    pub path: String,
    pub snippet: String,
}

/// Result of reconciling current violations against the baseline.
#[derive(Debug, Default)]
pub struct Reconciled {
    /// Violations not covered by the baseline — these fail the build.
    pub new_violations: Vec<Violation>,
    /// Baseline entries with no matching violation — the debt was paid
    /// down; `--check-baseline` demands the file be regenerated.
    pub stale_entries: Vec<Entry>,
}

/// Parse the baseline file contents. Blank lines and `#` comments are
/// allowed. Returns an error message for malformed lines.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        match (parts.next(), parts.next(), parts.next()) {
            (Some(rule), Some(path), Some(snippet)) => entries.push(Entry {
                rule: rule.to_string(),
                path: path.to_string(),
                snippet: snippet.to_string(),
            }),
            _ => {
                return Err(format!(
                    "{BASELINE_FILE}:{}: expected `rule<TAB>path<TAB>snippet`, got {line:?}",
                    i + 1
                ))
            }
        }
    }
    Ok(entries)
}

/// Serialize violations as a fresh baseline (sorted, deterministic bytes).
pub fn render(violations: &[Violation]) -> String {
    let mut lines: Vec<String> = violations
        .iter()
        .map(|v| format!("{}\t{}\t{}", v.rule, v.path, v.snippet))
        .collect();
    lines.sort();
    let mut out = String::from(
        "# vroom-lint ratchet baseline: pre-existing violations tolerated until paid down.\n\
         # Regenerate with `cargo run -p vroom-lint -- --update-baseline` (only when debt shrinks).\n\
         # Format: rule<TAB>path<TAB>trimmed source line.\n",
    );
    for line in &lines {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Match violations against baseline entries with multiplicity.
pub fn reconcile(violations: Vec<Violation>, baseline: &[Entry]) -> Reconciled {
    let mut budget: BTreeMap<Entry, usize> = BTreeMap::new();
    for e in baseline {
        *budget.entry(e.clone()).or_insert(0) += 1;
    }
    let mut out = Reconciled::default();
    for v in violations {
        let key = Entry {
            rule: v.rule.to_string(),
            path: v.path.clone(),
            snippet: v.snippet.clone(),
        };
        match budget.get_mut(&key) {
            Some(n) if *n > 0 => *n -= 1,
            _ => out.new_violations.push(v),
        }
    }
    for (entry, n) in budget {
        for _ in 0..n {
            out.stale_entries.push(entry.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, path: &str, snippet: &str) -> Violation {
        Violation {
            rule,
            path: path.to_string(),
            line: 1,
            message: String::new(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn roundtrip_and_comments() {
        let text = render(&[v("unwrap", "crates/server/src/wire.rs", "x().unwrap();")]);
        let entries = parse(&text).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "unwrap");
        assert!(parse("garbage line no tabs").is_err());
    }

    #[test]
    fn reconcile_multiplicity() {
        let baseline = parse(&render(&[
            v("unwrap", "a.rs", "x().unwrap();"),
            v("unwrap", "a.rs", "x().unwrap();"),
        ]))
        .unwrap();
        // Two identical violations absorbed, a third is new.
        let r = reconcile(
            vec![
                v("unwrap", "a.rs", "x().unwrap();"),
                v("unwrap", "a.rs", "x().unwrap();"),
                v("unwrap", "a.rs", "x().unwrap();"),
            ],
            &baseline,
        );
        assert_eq!(r.new_violations.len(), 1);
        assert!(r.stale_entries.is_empty());
        // Only one violation now: one stale entry remains.
        let r = reconcile(vec![v("unwrap", "a.rs", "x().unwrap();")], &baseline);
        assert!(r.new_violations.is_empty());
        assert_eq!(r.stale_entries.len(), 1);
    }

    #[test]
    fn line_number_drift_does_not_invalidate() {
        let baseline = parse(&render(&[v("unwrap", "a.rs", "x().unwrap();")])).unwrap();
        let mut moved = v("unwrap", "a.rs", "x().unwrap();");
        moved.line = 99;
        let r = reconcile(vec![moved], &baseline);
        assert!(r.new_violations.is_empty());
        assert!(r.stale_entries.is_empty());
    }
}
