//! Workspace discovery: which `.rs` files get linted, and path-derived
//! facts the rules key on (owning crate, test-ness, metrics-ness).

use std::fs;
use std::path::{Path, PathBuf};

/// One source file, with its repo-relative forward-slash path.
#[derive(Debug, Clone)]
pub struct SourceFile {
    pub path: String,
    pub source: String,
}

impl SourceFile {
    /// The crate under `crates/<name>/` owning this file, if any.
    pub fn crate_name(&self) -> Option<&str> {
        self.path.strip_prefix("crates/")?.split('/').next()
    }

    /// Crate roots must carry `#![forbid(unsafe_code)]`: every `lib.rs`,
    /// `main.rs`, binary under `src/bin/`, integration test, bench, and
    /// example is a compilation root.
    pub fn is_crate_root(&self) -> bool {
        self.path.ends_with("/lib.rs")
            || self.path.ends_with("/main.rs")
            || self.path.contains("/src/bin/")
            || self.path.contains("/benches/")
            || self.path.starts_with("examples/")
            || self.path.contains("/tests/")
    }

    /// Test-only code: integration-test trees and `*_tests.rs` modules.
    /// (`#[cfg(test)]` regions inside other files are excluded separately.)
    pub fn is_test_file(&self) -> bool {
        self.path.contains("/tests/")
            || self.path.starts_with("tests/")
            || self.path.ends_with("_tests.rs")
    }

    /// Files holding metric/statistics computations, where the float-eq
    /// rule applies.
    pub fn is_metrics_code(&self) -> bool {
        let stem = self
            .path
            .rsplit('/')
            .next()
            .unwrap_or(&self.path)
            .trim_end_matches(".rs");
        ["metrics", "stats", "accuracy", "ablation", "summary"]
            .iter()
            .any(|k| stem.contains(k))
    }
}

/// Find the workspace root by walking up from `start` until a `Cargo.toml`
/// containing `[workspace]` appears.
pub fn workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = if start.is_dir() {
        start.to_path_buf()
    } else {
        start.parent()?.to_path_buf()
    };
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Collect every first-party `.rs` file under the workspace root, sorted by
/// path. `vendor/` (third-party stand-ins), `target/`, and `fixtures/`
/// directories (lint-input test data, deliberately full of violations) are
/// never scanned.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile {
                path: rel,
                source: fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(path: &str) -> SourceFile {
        SourceFile {
            path: path.to_string(),
            source: String::new(),
        }
    }

    #[test]
    fn crate_name_extraction() {
        assert_eq!(f("crates/http2/src/conn.rs").crate_name(), Some("http2"));
        assert_eq!(f("tests/tests/lint.rs").crate_name(), None);
    }

    #[test]
    fn root_and_test_classification() {
        assert!(f("crates/sim/src/lib.rs").is_crate_root());
        assert!(f("crates/bench/src/bin/run.rs").is_crate_root());
        assert!(f("tests/tests/lint.rs").is_crate_root());
        assert!(!f("crates/sim/src/rng.rs").is_crate_root());
        assert!(f("tests/tests/lint.rs").is_test_file());
        assert!(f("crates/browser/src/engine_tests.rs").is_test_file());
        assert!(!f("crates/browser/src/engine.rs").is_test_file());
    }

    #[test]
    fn metrics_classification() {
        assert!(f("crates/browser/src/metrics.rs").is_metrics_code());
        assert!(f("crates/server/src/accuracy.rs").is_metrics_code());
        assert!(!f("crates/browser/src/engine.rs").is_metrics_code());
    }
}
