//! Per-file workspace rules. Each one works on lexed (comment- and
//! literal-stripped) source, so string fixtures and docs never trigger it,
//! and consults per-line waivers before reporting.
//!
//! The three call-graph rule families (`sim-purity`, `panic-reachable`,
//! `protocol-exhaustive`) live in [`crate::reach`]; this module only hosts
//! the rules that are decidable from one file in isolation.

use crate::lexer::Lexed;
use crate::source::SourceFile;

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule id (what waivers and the baseline reference).
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Explanation with a suggested fix.
    pub message: String,
    /// The offending source line, trimmed (baseline matching keys on this,
    /// so entries survive unrelated line-number drift).
    pub snippet: String,
}

/// All rule ids, in reporting order. The first seven are interprocedural
/// (driven by the call graph in [`crate::reach`]); the rest are per-file.
/// `lock-order`, `blocking-under-lock` and `lock-in-hot-loop` together form
/// the `lock-safety` family (`--rules lock-safety` selects all three).
pub const RULE_IDS: [&str; 14] = [
    "sim-purity",
    "panic-reachable",
    "protocol-exhaustive",
    "hot-path-alloc",
    "lock-order",
    "blocking-under-lock",
    "lock-in-hot-loop",
    "ambient-randomness",
    "forbid-unsafe",
    "unwrap",
    "float-eq",
    "sort-partial-cmp",
    "retry-budget",
    "waiver-syntax",
];

/// Aggregate family names accepted by `--rules`, expanded to rule ids.
pub const RULE_FAMILIES: [(&str, &[&str]); 1] = [(
    "lock-safety",
    &["lock-order", "blocking-under-lock", "lock-in-hot-loop"],
)];

/// Expand a `--rules` argument: comma-separated family names from
/// [`RULE_FAMILIES`] or bare rule ids from [`RULE_IDS`]. Unknown tokens are
/// an error (the CLI exits 2) — a typo must not silently lint nothing.
pub fn resolve_rule_filter(spec: &str) -> Result<Vec<&'static str>, String> {
    let mut out: Vec<&'static str> = Vec::new();
    for tok in spec.split(',') {
        let tok = tok.trim();
        if tok.is_empty() {
            continue;
        }
        if let Some((_, members)) = RULE_FAMILIES.iter().find(|(f, _)| *f == tok) {
            out.extend(members.iter().copied());
        } else if let Some(id) = RULE_IDS.iter().find(|r| **r == tok) {
            out.push(id);
        } else {
            return Err(format!(
                "unknown rule family `{tok}` (families: {}; rules: {})",
                RULE_FAMILIES
                    .iter()
                    .map(|(f, _)| *f)
                    .collect::<Vec<_>>()
                    .join(", "),
                RULE_IDS.join(", "),
            ));
        }
    }
    if out.is_empty() {
        return Err("--rules needs at least one family or rule id".to_string());
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

/// One-line rule descriptions, keyed by id (used by the SARIF driver block).
pub fn rule_description(rule: &str) -> &'static str {
    match rule {
        "sim-purity" => {
            "code reachable from a simulation entrypoint must not touch wall-clock, \
             ambient randomness, the filesystem, the network, or unordered iteration"
        }
        "panic-reachable" => {
            "panic/unwrap/expect/indexing sites reachable from the wire server \
             accept loop must return typed errors (ratcheted)"
        }
        "protocol-exhaustive" => {
            "matches on protocol enums in crates/http2 must enumerate every \
             variant explicitly; no catch-all arms"
        }
        "hot-path-alloc" => {
            "allocation/copy sites reachable from a declared hot-path root \
             (lint-hotpaths.toml), ranked by enclosing loop depth; the wire \
             path must stay zero-copy"
        }
        "lock-order" => {
            "the workspace lock-acquisition graph must be acyclic: two locks \
             acquired in opposite orders on any pair of call paths (shard \
             locks counted per acquisition index) can deadlock"
        }
        "blocking-under-lock" => {
            "I/O, channel operations, sleeps, joins, or a second lock \
             acquisition must not be reachable while a guard is live; slow \
             work under a lock convoys every contending thread"
        }
        "lock-in-hot-loop" => {
            "lock acquisitions inside a loop reachable from a declared \
             hot-path root (lint-hotpaths.toml [lock_roots]), ranked by \
             enclosing loop depth; acquisitions amortize per batch or hoist"
        }
        "ambient-randomness" => "randomness must come from the seeded vroom_sim::Rng",
        "forbid-unsafe" => "unsafe code is banned workspace-wide",
        "unwrap" => "unwrap/expect ratchet in protocol crates",
        "float-eq" => "exact float comparison in metrics code",
        "sort-partial-cmp" => {
            "sort/min/max comparators built on partial_cmp panic (or lie) on \
             NaN; use total_cmp or a total-ordered key"
        }
        "retry-budget" => "request/data-frame loops must carry a RetryBudget or backoff",
        "waiver-syntax" => "malformed or unknown-rule waiver comments",
        _ => "unknown rule",
    }
}

/// Crates whose code runs inside the deterministic simulation path.
const SIM_PATH_CRATES: [&str; 5] = ["sim", "browser", "server", "net", "vroom"];

/// Crates whose non-test protocol code is held to the unwrap/expect ratchet.
const PROTOCOL_CRATES: [&str; 3] = ["http2", "hpack", "server"];

/// Run every rule against one file.
pub fn check_file(file: &SourceFile, lexed: &Lexed, out: &mut Vec<Violation>) {
    for err in &lexed.waiver_errors {
        out.push(Violation {
            rule: "waiver-syntax",
            path: file.path.clone(),
            line: err.line,
            message: err.message.clone(),
            snippet: file
                .source
                .lines()
                .nth(err.line - 1)
                .unwrap_or("")
                .trim()
                .to_string(),
        });
    }

    let mut report = |rule: &'static str, line: usize, message: String| {
        if lexed.is_waived(rule, line) {
            return;
        }
        out.push(Violation {
            rule,
            path: file.path.clone(),
            line,
            message,
            snippet: file
                .source
                .lines()
                .nth(line - 1)
                .unwrap_or("")
                .trim()
                .to_string(),
        });
    };

    for w in &lexed.waivers {
        for rule in &w.rules {
            if !RULE_IDS.contains(&rule.as_str()) {
                report(
                    "waiver-syntax",
                    w.line,
                    format!("waiver names unknown rule {rule:?}"),
                );
            }
        }
    }

    let test_lines = test_region_lines(&lexed.code);
    let crate_name = file.crate_name();

    ambient_randomness(file, lexed, &mut report);
    forbid_unsafe(file, lexed, &mut report);
    if crate_name.is_some_and(|c| PROTOCOL_CRATES.contains(&c)) && !file.is_test_file() {
        unwrap_ratchet(lexed, &test_lines, &mut report);
    }
    if crate_name.is_some_and(|c| PROTOCOL_CRATES.contains(&c) || SIM_PATH_CRATES.contains(&c))
        && !file.is_test_file()
    {
        retry_budget(lexed, &test_lines, &mut report);
    }
    if file.is_metrics_code() && !file.is_test_file() {
        float_eq(lexed, &test_lines, &mut report);
    }
    // Applies everywhere, tests included: a NaN-panicking comparator in a
    // test is a flake waiting for one bad sample.
    sort_partial_cmp(lexed, &mut report);
}

/// Rule `sort-partial-cmp`: `partial_cmp` inside the comparator argument of
/// a sort/min/max/binary-search call. `partial_cmp(..).unwrap()` panics the
/// first time a NaN shows up, and `unwrap_or(Ordering::Equal)` silently
/// breaks total-order invariants; `f64::total_cmp` is both total and cheap.
/// The comparator span is paren-matched, so multi-line closures are caught.
fn sort_partial_cmp(lexed: &Lexed, report: &mut impl FnMut(&'static str, usize, String)) {
    const METHODS: [&str; 6] = [
        ".sort_by(",
        ".sort_unstable_by(",
        ".max_by(",
        ".min_by(",
        ".binary_search_by(",
        ".partition_point(",
    ];
    let code = &lexed.code;
    for m in METHODS {
        let mut from = 0;
        while let Some(pos) = code[from..].find(m) {
            let at = from + pos;
            from = at + m.len();
            // Paren-match the argument list from the method's `(`.
            let open = at + m.len() - 1;
            let mut depth = 0usize;
            let mut end = code.len();
            for (i, b) in code[open..].bytes().enumerate() {
                match b {
                    b'(' => depth += 1,
                    b')' => {
                        depth -= 1;
                        if depth == 0 {
                            end = open + i;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if let Some(rel) = code[open..end].find("partial_cmp") {
                let line = code[..open + rel].bytes().filter(|&b| b == b'\n').count() + 1;
                let method = m.trim_start_matches('.').trim_end_matches('(');
                report(
                    "sort-partial-cmp",
                    line,
                    format!(
                        "`partial_cmp` in a `{method}` comparator is not a total order \
                         (NaN panics the unwrap or corrupts the sort); use \
                         `f64::total_cmp` or compare a total-ordered key"
                    ),
                );
            }
        }
    }
}

/// Rule `ambient-randomness`: the only randomness source is the seeded PRNG
/// in `crates/sim/src/rng.rs`.
fn ambient_randomness(
    file: &SourceFile,
    lexed: &Lexed,
    report: &mut impl FnMut(&'static str, usize, String),
) {
    if file.path == "crates/sim/src/rng.rs" {
        return;
    }
    for (line, text) in lines(&lexed.code) {
        for needle in ["thread_rng", "rand::random", "fastrand::", "getrandom"] {
            if text.contains(needle) {
                report(
                    "ambient-randomness",
                    line,
                    format!(
                        "ambient randomness ({needle}); derive a seeded vroom_sim::Rng instead \
                         so runs stay reproducible"
                    ),
                );
            }
        }
    }
}

/// Rule `forbid-unsafe`: every crate root carries `#![forbid(unsafe_code)]`,
/// and no `unsafe` blocks appear anywhere.
fn forbid_unsafe(
    file: &SourceFile,
    lexed: &Lexed,
    report: &mut impl FnMut(&'static str, usize, String),
) {
    if file.is_crate_root() && !lexed.code.contains("#![forbid(unsafe_code)]") {
        report(
            "forbid-unsafe",
            1,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }
    for (line, text) in lines(&lexed.code) {
        for idx in find_word(text, "unsafe") {
            let after = text[idx + "unsafe".len()..].trim_start();
            if after.starts_with('{')
                || after.starts_with("fn")
                || after.starts_with("impl")
                || after.starts_with("trait")
            {
                report(
                    "forbid-unsafe",
                    line,
                    "unsafe code is banned workspace-wide".to_string(),
                );
            }
        }
    }
}

/// Rule `unwrap`: ratchet on `.unwrap()` / `.expect(` in non-test protocol
/// code. Pre-existing debt lives in the baseline; new ones fail.
fn unwrap_ratchet(
    lexed: &Lexed,
    test_lines: &[bool],
    report: &mut impl FnMut(&'static str, usize, String),
) {
    for (line, text) in lines(&lexed.code) {
        if test_lines.get(line - 1).copied().unwrap_or(false) {
            continue;
        }
        for needle in [".unwrap()", ".expect("] {
            if text.contains(needle) {
                report(
                    "unwrap",
                    line,
                    format!(
                        "{needle} in protocol code can panic a connection; \
                         return a protocol error instead (ratcheted: pre-existing \
                         sites are baselined, new ones are rejected)"
                    ),
                );
            }
        }
    }
}

/// Rule `retry-budget`: a `loop`/`while` body that issues requests or data
/// frames must reference a retry budget or backoff. A bare retry loop spins
/// forever on a faulted peer; `vroom_net::RetryBudget` bounds attempts and
/// spaces them out.
fn retry_budget(
    lexed: &Lexed,
    test_lines: &[bool],
    report: &mut impl FnMut(&'static str, usize, String),
) {
    const FETCH_NEEDLES: [&str; 2] = ["send_request(", "send_data("];
    const BUDGET_NEEDLES: [&str; 3] = ["RetryBudget", "backoff", ".allows("];
    for (start_line, body) in loop_bodies(&lexed.code) {
        if test_lines.get(start_line - 1).copied().unwrap_or(false) {
            continue;
        }
        // Innermost-only: if a nested loop inside this body holds the fetch
        // call, the inner block is the one that must carry the budget.
        let past_open = body.find('{').map(|i| i + 1).unwrap_or(0);
        if loop_bodies(&body[past_open..])
            .iter()
            .any(|(_, inner)| FETCH_NEEDLES.iter().any(|n| inner.contains(n)))
        {
            continue;
        }
        let fetches = FETCH_NEEDLES.iter().find(|n| body.contains(*n));
        let budgeted = BUDGET_NEEDLES.iter().any(|n| body.contains(n));
        if let (Some(needle), false) = (fetches, budgeted) {
            report(
                "retry-budget",
                start_line,
                format!(
                    "bare retry loop: `{}` inside a loop with no RetryBudget/backoff in \
                     sight can spin forever against a faulted peer; thread a \
                     vroom_net::RetryBudget through it (ratcheted: pre-existing sites \
                     are baselined, new ones are rejected)",
                    needle.trim_end_matches('(')
                ),
            );
        }
    }
}

/// Every `loop { .. }` / `while cond { .. }` in `code`, as
/// `(1-based line of the keyword, text from the keyword through the
/// brace-matched close)`. Including the `while` condition lets a loop
/// gated on `budget.allows(n)` count as budgeted.
fn loop_bodies(code: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    for kw in ["loop", "while"] {
        for at in find_word(code, kw) {
            // The body opens at the first `{` after the keyword (and, for
            // `while`, after its condition — Rust conditions cannot contain
            // a bare `{`, so the first one is the body).
            let Some(open_rel) = code[at..].find('{') else {
                continue;
            };
            let open = at + open_rel;
            let mut depth = 0usize;
            let mut end = code.len();
            for (i, b) in code[open..].bytes().enumerate() {
                match b {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            end = open + i + 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let line = code[..at].bytes().filter(|&b| b == b'\n').count() + 1;
            out.push((line, &code[at..end]));
        }
    }
    out.sort_by_key(|(l, _)| *l);
    out
}

/// Rule `float-eq`: exact float comparison in metrics/stats code.
fn float_eq(
    lexed: &Lexed,
    test_lines: &[bool],
    report: &mut impl FnMut(&'static str, usize, String),
) {
    for (line, text) in lines(&lexed.code) {
        if test_lines.get(line - 1).copied().unwrap_or(false) {
            continue;
        }
        for op in ["==", "!="] {
            let mut from = 0;
            while let Some(pos) = text[from..].find(op) {
                let at = from + pos;
                from = at + op.len();
                // Skip `<=`, `>=`, `!=` seen as `=`-suffix, and pattern arms.
                if op == "==" && at > 0 && matches!(&text[at - 1..at], "<" | ">" | "!" | "=") {
                    continue;
                }
                let left = text[..at].trim_end();
                let right = text[at + op.len()..].trim_start();
                if ends_with_float(left) || starts_with_float(right) {
                    report(
                        "float-eq",
                        line,
                        format!(
                            "exact float comparison (`{op}`) in metrics code; \
                             compare against an epsilon or use integer SimTime"
                        ),
                    );
                }
            }
        }
    }
}

/// Hash-container iteration sites in `code`, as `(1-based line, binding
/// name, how)`. Shared with the effect scanner in [`crate::parse`]: under
/// the call-graph model these are *effects* attributed to their enclosing
/// function and reported only when reachable from a simulation entrypoint
/// (rule `sim-purity`).
pub(crate) fn unordered_iter_sites(code: &str) -> Vec<(usize, String, String)> {
    let symbols = hash_container_symbols(code);
    const ITER_METHODS: [&str; 7] = [
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_iter()",
        ".drain()",
    ];
    let mut out = Vec::new();
    for (line, text) in lines(code) {
        for m in ITER_METHODS {
            let mut from = 0;
            while let Some(pos) = text[from..].find(m) {
                let at = from + pos;
                from = at + m.len();
                if let Some(name) = receiver_ident(&text[..at]) {
                    if symbols.contains(&name) {
                        out.push((line, name, m.to_string()));
                    }
                }
            }
        }
        // `for .. in &map` / `for .. in &mut map` / `for .. in map`
        if let Some(pos) = text.find(" in ") {
            let mut expr = text[pos + 4..].trim_start();
            expr = expr.strip_prefix('&').unwrap_or(expr);
            expr = expr.strip_prefix("mut ").unwrap_or(expr).trim_start();
            let ident: String = expr
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '.')
                .collect();
            if let Some(last) = ident.rsplit('.').next() {
                if !last.is_empty() && symbols.contains(&last.to_string()) {
                    out.push((line, last.to_string(), "for-in".to_string()));
                }
            }
        }
    }
    out
}

/// Identifiers bound to `HashMap`/`HashSet` in this file: type-annotated
/// bindings (`x: HashMap<..>`, fields, params) and `x = HashMap::new()`
/// initializers.
fn hash_container_symbols(code: &str) -> Vec<String> {
    let mut symbols = Vec::new();
    for container in ["HashMap", "HashSet"] {
        let mut from = 0;
        while let Some(pos) = code[from..].find(container) {
            let at = from + pos;
            from = at + container.len();
            // Reject identifier continuations (e.g. `MyHashMapLike`).
            if code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                continue;
            }
            let after = &code[at + container.len()..];
            if !(after.starts_with('<') || after.starts_with("::")) {
                continue;
            }
            let before = code[..at].trim_end();
            // `ident : [& [mut]] HashMap<..>` (declaration or parameter).
            if let Some(name) = annotated_ident(before) {
                symbols.push(name);
            }
            // `ident = HashMap::new()` / `= HashMap::with_capacity(..)`.
            if let Some(stripped) = before.strip_suffix('=') {
                let stripped = stripped.trim_end();
                if let Some(name) = trailing_ident(stripped) {
                    symbols.push(name);
                }
            }
        }
    }
    symbols.sort();
    symbols.dedup();
    symbols
}

/// For text ending just before a `HashMap`, extract `ident` from
/// `ident : [& [mut]]`.
fn annotated_ident(before: &str) -> Option<String> {
    let mut t = before.trim_end();
    if let Some(s) = t.strip_suffix(':') {
        return trailing_ident(s.trim_end());
    }
    if let Some(s) = t.strip_suffix("mut") {
        t = s.trim_end();
    }
    let t = t.strip_suffix('&')?.trim_end();
    let t = t.strip_suffix(':')?;
    trailing_ident(t.trim_end())
}

/// The identifier at the end of `t`, if any.
fn trailing_ident(t: &str) -> Option<String> {
    let ident: String = t
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    (!ident.is_empty() && !ident.chars().next().unwrap().is_numeric()).then_some(ident)
}

/// The receiver identifier of a method call, from text ending at the `.`:
/// `self.streams` → `streams`, `map` → `map`.
fn receiver_ident(before: &str) -> Option<String> {
    trailing_ident(before.trim_end())
}

/// Map each 0-based line to whether it falls inside a `#[cfg(test)]`-gated
/// block (brace-matched on stripped code).
pub(crate) fn test_region_lines(code: &str) -> Vec<bool> {
    let n_lines = code.lines().count();
    let mut in_test = vec![false; n_lines];
    let mut search = 0;
    while let Some(pos) = code[search..].find("#[cfg(test)]") {
        let attr_at = search + pos;
        // The block starts at the first `{` after the attribute.
        let Some(open_rel) = code[attr_at..].find('{') else {
            break;
        };
        let open = attr_at + open_rel;
        let mut depth = 0usize;
        let mut end = code.len();
        for (i, b) in code[open..].bytes().enumerate() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + i;
                        break;
                    }
                }
                _ => {}
            }
        }
        let start_line = code[..attr_at].bytes().filter(|&b| b == b'\n').count();
        let end_line = code[..end].bytes().filter(|&b| b == b'\n').count();
        for flag in in_test
            .iter_mut()
            .take((end_line + 1).min(n_lines))
            .skip(start_line)
        {
            *flag = true;
        }
        search = end.max(attr_at + 1);
    }
    in_test
}

pub(crate) fn lines(code: &str) -> impl Iterator<Item = (usize, &str)> {
    code.lines().enumerate().map(|(i, l)| (i + 1, l))
}

/// All positions where `word` occurs with non-identifier characters (or
/// boundaries) on both sides.
pub(crate) fn find_word(text: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = text[from..].find(word) {
        let at = from + pos;
        from = at + word.len();
        let before_ok = at == 0
            || !text[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after_ok = !text[at + word.len()..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            out.push(at);
        }
    }
    out
}

fn ends_with_float(left: &str) -> bool {
    let token: String = left
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '_' || c.is_alphabetic())
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    is_float_token(&token)
}

fn starts_with_float(right: &str) -> bool {
    let token: String = right
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '_' || c.is_alphabetic())
        .collect();
    is_float_token(&token)
}

/// `1.0`, `0.5f64`, `2.`, `1e-3` — but not `3` or `x.y`.
fn is_float_token(token: &str) -> bool {
    let t = token.trim_end_matches("f64").trim_end_matches("f32");
    if t.is_empty() || !t.chars().next().unwrap().is_ascii_digit() {
        return false;
    }
    t.contains('.')
        && t.chars()
            .all(|c| c.is_ascii_digit() || c == '.' || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn check(path: &str, src: &str) -> Vec<Violation> {
        let file = SourceFile {
            path: path.to_string(),
            source: src.to_string(),
        };
        let lexed = lex(src);
        let mut out = Vec::new();
        check_file(&file, &lexed, &mut out);
        out
    }

    fn rules_of(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn unordered_iter_sites_found() {
        let src = "use std::collections::HashMap;\n\
                   struct S { streams: HashMap<u32, u8> }\n\
                   impl S { fn f(&self) { for id in self.streams.keys() { drop(id); } } }\n";
        let sites = unordered_iter_sites(src);
        assert_eq!(sites.len(), 1, "{sites:?}");
        assert_eq!(sites[0].0, 3);
        assert_eq!(sites[0].1, "streams");
        let for_in = "fn f(m: &HashMap<u32, u8>) { for (k, v) in &m { drop((k, v)); } }\n";
        assert_eq!(unordered_iter_sites(for_in).len(), 1);
        let btree = "fn f(m: &BTreeMap<u32, u8>) { for k in m.keys() { drop(k); } }\n";
        assert!(unordered_iter_sites(btree).is_empty(), "btree is ordered");
    }

    #[test]
    fn ambient_randomness_flagged_everywhere_but_rng() {
        let src = "#![forbid(unsafe_code)]\nfn f() { let x = rand::thread_rng(); }\n";
        let v = check("crates/pages/src/generate.rs", src);
        assert_eq!(rules_of(&v), vec!["ambient-randomness"]);
        assert!(check("crates/sim/src/rng.rs", src).is_empty());
    }

    #[test]
    fn forbid_unsafe_checks_roots_and_blocks() {
        let v = check("crates/html/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(rules_of(&v), vec!["forbid-unsafe"]);
        let v = check(
            "crates/html/src/tokenizer.rs",
            "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n",
        );
        assert_eq!(rules_of(&v), vec!["forbid-unsafe"]);
        assert!(check("crates/html/src/tokenizer.rs", "fn unsafe_name() {}\n").is_empty());
    }

    #[test]
    fn unwrap_ratchet_scope() {
        let src = "#![forbid(unsafe_code)]\nfn f() { x().unwrap(); }\n";
        assert_eq!(
            rules_of(&check("crates/http2/src/conn.rs", src)),
            vec!["unwrap"]
        );
        assert!(
            check("crates/browser/src/engine.rs", src).is_empty(),
            "not a protocol crate"
        );
        let test_src =
            "#![forbid(unsafe_code)]\n#[cfg(test)]\nmod tests {\n fn f() { x().unwrap(); }\n}\n";
        assert!(
            check("crates/http2/src/conn.rs", test_src).is_empty(),
            "tests exempt"
        );
    }

    #[test]
    fn float_eq_in_metrics_code() {
        let src = "#![forbid(unsafe_code)]\nfn f(x: f64) -> bool { x == 0.0 }\n";
        assert_eq!(
            rules_of(&check("crates/browser/src/metrics.rs", src)),
            vec!["float-eq"]
        );
        assert!(
            check("crates/browser/src/engine.rs", src).is_empty(),
            "only metrics/stats files"
        );
        let int_src = "#![forbid(unsafe_code)]\nfn f(x: u64) -> bool { x == 0 }\n";
        assert!(check("crates/browser/src/metrics.rs", int_src).is_empty());
        let cmp_src = "#![forbid(unsafe_code)]\nfn f(x: f64) -> bool { x >= 0.0 }\n";
        assert!(check("crates/browser/src/metrics.rs", cmp_src).is_empty());
    }

    #[test]
    fn retry_budget_flags_bare_send_loops() {
        let bare = "#![forbid(unsafe_code)]\n\
                    fn f(c: &mut Conn) {\n\
                    \u{20}   loop { c.send_request(&req, true); }\n\
                    }\n";
        let v = check("crates/server/src/wire.rs", bare);
        assert_eq!(rules_of(&v), vec!["retry-budget"]);
        assert_eq!(v[0].line, 3);
        assert!(v[0].message.contains("send_request"));
        assert!(
            check("crates/html/src/x.rs", bare).is_empty(),
            "only protocol/sim crates"
        );
    }

    #[test]
    fn retry_budget_accepts_budgeted_loops_and_tests() {
        let budgeted = "#![forbid(unsafe_code)]\n\
                        fn f(c: &mut Conn, b: &RetryBudget) {\n\
                        \u{20}   while b.allows(n) { c.send_request(&req, true); n += 1; }\n\
                        }\n";
        assert!(check("crates/server/src/wire.rs", budgeted).is_empty());
        let in_test = "#![forbid(unsafe_code)]\n\
                       #[cfg(test)]\nmod tests {\n\
                       \u{20}   fn f(c: &mut Conn) { loop { c.send_data(1, b, true); } }\n\
                       }\n";
        assert!(check("crates/server/src/wire.rs", in_test).is_empty());
    }

    #[test]
    fn retry_budget_blames_the_innermost_loop() {
        // The outer dispatch loop is fine; only the inner bare send loop
        // must carry the budget — and here it does.
        let nested = "#![forbid(unsafe_code)]\n\
                      fn f(c: &mut Conn) {\n\
                      \u{20}   loop {\n\
                      \u{20}       while n < 3 { c.send_data(1, b, false); wait(backoff(n)); }\n\
                      \u{20}   }\n\
                      }\n";
        assert!(check("crates/net/src/x.rs", nested).is_empty());
        let nested_bare = "#![forbid(unsafe_code)]\n\
                           fn f(c: &mut Conn) {\n\
                           \u{20}   loop {\n\
                           \u{20}       while n < 3 { c.send_data(1, b, false); }\n\
                           \u{20}   }\n\
                           }\n";
        let v = check("crates/net/src/x.rs", nested_bare);
        assert_eq!(rules_of(&v), vec!["retry-budget"]);
        assert_eq!(v[0].line, 4, "inner loop is the violation site");
    }

    #[test]
    fn sort_partial_cmp_flags_comparators_even_multiline_and_in_tests() {
        let one_line = "#![forbid(unsafe_code)]\n\
                        fn f(xs: &mut Vec<f64>) { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        let v = check("crates/browser/src/engine.rs", one_line);
        assert_eq!(rules_of(&v), vec!["sort-partial-cmp"]);
        assert_eq!(v[0].line, 2);

        // Multi-line closure: the span is paren-matched, not line-scanned.
        let multi = "#![forbid(unsafe_code)]\n\
                     fn f(xs: &mut Vec<R>) {\n\
                     \u{20}   xs.sort_by(|a, b| {\n\
                     \u{20}       a.frac\n\
                     \u{20}           .partial_cmp(&b.frac)\n\
                     \u{20}           .unwrap()\n\
                     \u{20}   });\n\
                     }\n";
        let v = check("crates/browser/src/engine.rs", multi);
        assert_eq!(rules_of(&v), vec!["sort-partial-cmp"]);
        assert_eq!(v[0].line, 5, "blamed on the partial_cmp line");

        // Test code is NOT exempt: a NaN flake in a test is still a flake.
        let in_test = "#![forbid(unsafe_code)]\n\
                       #[cfg(test)]\nmod tests {\n\
                       \u{20}   fn f(xs: &mut Vec<f64>) { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n\
                       }\n";
        assert_eq!(
            rules_of(&check("crates/browser/src/engine.rs", in_test)),
            vec!["sort-partial-cmp"]
        );
    }

    #[test]
    fn sort_partial_cmp_ignores_total_orders_and_unrelated_calls() {
        let total = "#![forbid(unsafe_code)]\n\
                     fn f(xs: &mut Vec<f64>) { xs.sort_by(f64::total_cmp); }\n";
        assert!(check("crates/browser/src/engine.rs", total).is_empty());
        let keyed = "#![forbid(unsafe_code)]\n\
                     fn f(xs: &mut Vec<(u64, f64)>) { xs.sort_by_key(|x| x.0); }\n";
        assert!(check("crates/browser/src/engine.rs", keyed).is_empty());
        // partial_cmp outside a comparator argument (e.g. a PartialOrd
        // impl) is not this rule's business.
        let imp = "#![forbid(unsafe_code)]\n\
                   impl PartialOrd for T {\n\
                   \u{20}   fn partial_cmp(&self, o: &T) -> Option<Ordering> { self.k.partial_cmp(&o.k) }\n\
                   }\n";
        assert!(check("crates/sim/src/queue.rs", imp).is_empty());
    }

    #[test]
    fn unknown_waiver_rule_is_reported() {
        let v = check(
            "crates/net/src/link.rs",
            "#![forbid(unsafe_code)]\nfn f() {} // vroom-lint: allow(no-such-rule) -- because\n",
        );
        assert_eq!(rules_of(&v), vec!["waiver-syntax"]);
    }
}
