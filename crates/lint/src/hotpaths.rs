//! Hot-path root configuration for the `hot-path-alloc` rule.
//!
//! Roots are declared in a checked-in `lint-hotpaths.toml` at the workspace
//! root so the set is reviewable in diffs. The parser handles exactly the
//! subset of TOML the file uses — two sections of `"key" = ["value", ...]`
//! lines — because the workspace vendors no TOML crate. The compiled-in
//! [`Default`] mirrors the checked-in file (a unit test keeps them in sync)
//! so in-memory analyses (fixtures, library tests) see the same roots
//! without touching the filesystem.

use std::path::Path;

/// Workspace-root-relative name of the config file.
pub const HOTPATHS_FILE: &str = "lint-hotpaths.toml";

/// Roots and exemptions for `hot-path-alloc` reachability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotPathConfig {
    /// `(file path, fn names)` — every listed fn defined in that file is a
    /// reachability root.
    pub roots: Vec<(String, Vec<String>)>,
    /// Path prefixes whose allocation sites are never reported even when
    /// name-based call resolution makes them look reachable.
    pub exempt: Vec<String>,
    /// `(file path, fn names)` — reachability roots for `lock-in-hot-loop`.
    /// A superset of `roots`: the serving hot paths plus the fleet/batch
    /// drivers, whose loops multiply every lock acquisition per client or
    /// per entry.
    pub lock_roots: Vec<(String, Vec<String>)>,
}

impl Default for HotPathConfig {
    fn default() -> Self {
        let root = |path: &str, fns: &[&str]| {
            (
                path.to_string(),
                fns.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            )
        };
        HotPathConfig {
            roots: vec![
                root("crates/browser/src/engine.rs", &["load"]),
                root(
                    "crates/fleet/src/lib.rs",
                    &["load_client", "run_fleet_instrumented"],
                ),
                root("crates/hpack/src/decoder.rs", &["decode"]),
                root("crates/hpack/src/encoder.rs", &["encode", "encode_into"]),
                root(
                    "crates/http2/src/conn.rs",
                    &["push_promise", "recv", "send_data", "send_header_block"],
                ),
                root("crates/http2/src/frame.rs", &["decode", "encode"]),
                root("crates/net/src/replay.rs", &["lookup_id"]),
                root(
                    "crates/server/src/wire.rs",
                    &["handle_request", "serve_connection"],
                ),
            ],
            exempt: vec![
                "crates/bench/".to_string(),
                "crates/html/".to_string(),
                "crates/intern/".to_string(),
                "crates/lint/".to_string(),
                "crates/pages/".to_string(),
                "crates/server/src/resolve.rs".to_string(),
                "crates/vroom/".to_string(),
            ],
            lock_roots: vec![
                root("crates/browser/src/engine.rs", &["load"]),
                root(
                    "crates/fleet/src/lib.rs",
                    &["load_client", "run_fleet", "run_fleet_instrumented"],
                ),
                root("crates/server/src/batch.rs", &["commit_pass"]),
                root(
                    "crates/server/src/wire.rs",
                    &["handle_request", "serve_connection"],
                ),
            ],
        }
    }
}

/// Load the config from `<root>/lint-hotpaths.toml`, falling back to the
/// compiled-in default when the file does not exist. A file that exists but
/// cannot be read or parsed is an error — silent fallback would quietly
/// turn the rule off.
pub fn load(root: &Path) -> Result<HotPathConfig, String> {
    let path = root.join(HOTPATHS_FILE);
    if !path.is_file() {
        return Ok(HotPathConfig::default());
    }
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Parse the `lint-hotpaths.toml` dialect: `#` comments, `[roots]` /
/// `[exempt]` section headers, and `"key" = ["a", "b"]` entries.
pub fn parse(text: &str) -> Result<HotPathConfig, String> {
    #[derive(PartialEq)]
    enum Section {
        None,
        Roots,
        Exempt,
        LockRoots,
    }
    let mut section = Section::None;
    let mut cfg = HotPathConfig {
        roots: Vec::new(),
        exempt: Vec::new(),
        lock_roots: Vec::new(),
    };
    for (i, raw) in text.lines().enumerate() {
        let no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line {
            "[roots]" => {
                section = Section::Roots;
                continue;
            }
            "[exempt]" => {
                section = Section::Exempt;
                continue;
            }
            "[lock_roots]" => {
                section = Section::LockRoots;
                continue;
            }
            _ if line.starts_with('[') => {
                return Err(format!("line {no}: unknown section {line}"));
            }
            _ => {}
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {no}: expected `key = [..]`"))?;
        let key = key_of(key.trim())
            .ok_or_else(|| format!("line {no}: key must be quoted or a bare identifier"))?;
        let items = parse_array(value.trim())
            .ok_or_else(|| format!("line {no}: value must be an array of quoted strings"))?;
        match section {
            Section::Roots => cfg.roots.push((key, items)),
            Section::LockRoots => cfg.lock_roots.push((key, items)),
            Section::Exempt if key == "prefixes" => cfg.exempt.extend(items),
            Section::Exempt => {
                return Err(format!("line {no}: unknown exempt key `{key}`"));
            }
            Section::None => {
                return Err(format!("line {no}: entry before any [section]"));
            }
        }
    }
    Ok(cfg)
}

/// A key is either a quoted string (paths) or a bare TOML identifier.
fn key_of(s: &str) -> Option<String> {
    if let Some(inner) = s.strip_prefix('"') {
        let inner = inner.strip_suffix('"')?;
        if inner.contains('"') {
            return None;
        }
        return Some(inner.to_string());
    }
    if !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Some(s.to_string());
    }
    None
}

/// `["a", "b"]` → `vec!["a", "b"]`. Only quoted strings, commas, and
/// whitespace may appear between the brackets.
fn parse_array(s: &str) -> Option<Vec<String>> {
    let inner = s.strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let body = rest.strip_prefix('"')?;
        let end = body.find('"')?;
        out.push(body[..end].to_string());
        rest = body[end + 1..].trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after.trim_start();
        } else if !rest.is_empty() {
            return None;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_keys_and_arrays() {
        let cfg = parse(
            "# comment\n\
             [roots]\n\
             \"crates/a/src/x.rs\" = [\"f\", \"g\"]\n\
             \n\
             [exempt]\n\
             prefixes = [\"crates/bench/\"]\n\
             \n\
             [lock_roots]\n\
             \"crates/a/src/y.rs\" = [\"h\"]\n",
        )
        .unwrap();
        assert_eq!(
            cfg.roots,
            vec![(
                "crates/a/src/x.rs".to_string(),
                vec!["f".to_string(), "g".to_string()]
            )]
        );
        assert_eq!(cfg.exempt, vec!["crates/bench/".to_string()]);
        assert_eq!(
            cfg.lock_roots,
            vec![("crates/a/src/y.rs".to_string(), vec!["h".to_string()])]
        );
    }

    #[test]
    fn malformed_lines_are_errors_not_silence() {
        assert!(parse("\"a\" = [\"f\"]\n").is_err(), "entry before section");
        assert!(
            parse("[roots]\n\"a\" \"b\" = [\"f\"]\n").is_err(),
            "malformed key"
        );
        assert!(parse("[roots]\n\"a\" = f\n").is_err(), "non-array value");
        assert!(parse("[surprise]\n").is_err(), "unknown section");
        assert!(
            parse("[exempt]\nother = [\"x\"]\n").is_err(),
            "unknown exempt key"
        );
    }

    #[test]
    fn checked_in_file_matches_compiled_in_default() {
        // The defaults exist so in-memory runs (fixtures, tests) agree with
        // filesystem runs; drift between the two would make `cargo run -p
        // vroom-lint` and the fixture suite disagree about reachability.
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(HOTPATHS_FILE);
        let text = std::fs::read_to_string(&path).expect("checked-in lint-hotpaths.toml");
        assert_eq!(parse(&text).unwrap(), HotPathConfig::default());
    }
}
