//! The five call-graph rule families: `sim-purity`, `panic-reachable`,
//! `hot-path-alloc`, `protocol-exhaustive`, and `lock-safety` (the
//! `lock-order` / `blocking-under-lock` / `lock-in-hot-loop` triple).
//!
//! All families are over-approximations in the safe direction: the call
//! graph adds edges when resolution is ambiguous, effect scanning is
//! syntactic, guard liveness is may-hold (DESIGN.md §2h), and match
//! coverage is judged by explicit variant references — so none of the
//! families can miss a violation that its lexical definitions cover.
//! The cost is occasional false positives, paid down with per-call-site
//! waivers or the ratchet baseline.

use crate::callgraph::Graph;
use crate::hotpaths::HotPathConfig;
use crate::parse::{CallKind, CallSite, EffectKind, FileSummary};
use crate::rules::Violation;
use std::collections::{BTreeMap, BTreeSet};

/// Simulation entrypoint crates: every non-test fn defined under these
/// paths is a sim-purity root. `src/bin/` is excluded — CLI frontends may
/// parse arguments from the environment.
const SIM_ROOT_PREFIXES: [&str; 2] = ["crates/sim/src/", "crates/vroom/src/"];

/// The wire server accept loop lives here; every non-test fn in the file is
/// a panic-reachability root.
const WIRE_ROOT_FILE: &str = "crates/server/src/wire.rs";

/// Files outside the simulator where wall-clock effects are the *product*,
/// not a leak: `crates/bench` (the perf-trajectory harness) and the vendored
/// criterion stand-in it drives time real executions by design, and
/// `crates/intern` is allocation machinery that never advances simulated
/// time. Call resolution is name-based and conservative, so a sim root can
/// appear to reach these files through any same-named method; they are
/// excluded from sim-purity diagnostics by definition site rather than
/// waived line by line.
const SIM_PURITY_EXEMPT_PREFIXES: [&str; 3] =
    ["crates/bench/", "crates/intern/", "vendor/criterion/"];

/// Enums whose matches in `crates/http2` must be exhaustive without
/// catch-alls. `ErrorCode` is the reproduction's name for the paper's
/// connection-error codes (`ConnError`).
const PROTOCOL_ENUMS: [&str; 5] = ["FrameType", "Frame", "StreamState", "ErrorCode", "Event"];
const PROTOCOL_PREFIX: &str = "crates/http2/";

/// Effect families the sim-purity rule bans. Thread spawning counts: a
/// stray thread makes completion order observable. The one sanctioned
/// site is `vroom_exec::par_map_indexed`, whose pool is waived in place
/// because it collects results by input index (closures passed through it
/// are still analyzed like any other code).
const PURITY_KINDS: [EffectKind; 6] = [
    EffectKind::WallClock,
    EffectKind::Randomness,
    EffectKind::Fs,
    EffectKind::Net,
    EffectKind::UnorderedIter,
    EffectKind::ThreadSpawn,
];

/// Run all interprocedural rules with the compiled-in hot-path roots.
pub fn semantic_violations(summaries: &[FileSummary]) -> Vec<Violation> {
    semantic_violations_with(summaries, &HotPathConfig::default())
}

/// Run all interprocedural rules over the workspace summaries.
pub fn semantic_violations_with(summaries: &[FileSummary], hot: &HotPathConfig) -> Vec<Violation> {
    let graph = Graph::build(summaries);
    let mut out = Vec::new();
    sim_purity(&graph, &mut out);
    panic_reachable(&graph, &mut out);
    hot_path_alloc(&graph, hot, &mut out);
    protocol_exhaustive(summaries, &mut out);
    lock_safety(&graph, hot, &mut out);
    // Nested fns are scanned by both themselves and their parent, and a
    // node can be reached from several roots; keep one diagnostic per
    // (rule, site).
    out.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    out.dedup_by(|a, b| a.rule == b.rule && a.path == b.path && a.line == b.line);
    out
}

fn sim_purity(graph: &Graph, out: &mut Vec<Violation>) {
    let roots = graph.select(|path, _| {
        SIM_ROOT_PREFIXES.iter().any(|p| path.starts_with(p)) && !path.contains("/bin/")
    });
    let pred = graph.reachable(&roots);
    for id in 0..graph.nodes.len() {
        if pred[id].is_none() {
            continue;
        }
        let n = graph.nodes[id];
        let file = &graph.summaries[n.file];
        if SIM_PURITY_EXEMPT_PREFIXES
            .iter()
            .any(|p| file.path.starts_with(p))
        {
            continue;
        }
        let f = &file.fns[n.item];
        for e in &f.effects {
            if !PURITY_KINDS.contains(&e.kind) || e.waived {
                continue;
            }
            let chain = graph.chain(&pred, id);
            let root = graph.display(chain[0]);
            let via = via_text(graph, &chain);
            out.push(Violation {
                rule: "sim-purity",
                path: file.path.clone(),
                line: e.line,
                message: format!(
                    "{} ({}) is reachable from simulation entrypoint `{root}`{via}; \
                     the deterministic path must take time from the engine, randomness \
                     from the seeded Rng, iterate ordered containers, and parallelize \
                     only through `vroom_exec::par_map_indexed`",
                    e.detail,
                    e.kind.name(),
                ),
                snippet: e.snippet.clone(),
            });
        }
    }
}

fn panic_reachable(graph: &Graph, out: &mut Vec<Violation>) {
    let roots = graph.select(|path, _| path == WIRE_ROOT_FILE);
    let pred = graph.reachable(&roots);
    for id in 0..graph.nodes.len() {
        if pred[id].is_none() {
            continue;
        }
        let n = graph.nodes[id];
        let file = &graph.summaries[n.file];
        let f = &file.fns[n.item];
        for e in &f.effects {
            if e.kind != EffectKind::Panic || e.waived {
                continue;
            }
            let chain = graph.chain(&pred, id);
            let root = graph.display(chain[0]);
            let via = via_text(graph, &chain);
            out.push(Violation {
                rule: "panic-reachable",
                path: file.path.clone(),
                line: e.line,
                message: format!(
                    "{} can panic and is reachable from the wire server accept path \
                     (`{root}`{via}); return a typed error instead (ratcheted: \
                     pre-existing sites are baselined, new ones are rejected)",
                    e.detail,
                ),
                snippet: e.snippet.clone(),
            });
        }
    }
}

fn hot_path_alloc(graph: &Graph, cfg: &HotPathConfig, out: &mut Vec<Violation>) {
    let roots = graph.select(|path, f| {
        cfg.roots
            .iter()
            .any(|(p, fns)| p == path && fns.iter().any(|n| n == &f.name))
    });
    if roots.is_empty() {
        return;
    }
    let pred = graph.reachable(&roots);
    struct Finding {
        weight: usize,
        path: String,
        line: usize,
        detail: String,
        snippet: String,
        root: String,
        via: String,
    }
    let mut found: Vec<Finding> = Vec::new();
    for id in 0..graph.nodes.len() {
        if pred[id].is_none() {
            continue;
        }
        let n = graph.nodes[id];
        let file = &graph.summaries[n.file];
        if cfg.exempt.iter().any(|p| file.path.starts_with(p)) {
            continue;
        }
        let f = &file.fns[n.item];
        for e in &f.effects {
            if !matches!(e.kind, EffectKind::Alloc(_)) || e.waived {
                continue;
            }
            let chain = graph.chain(&pred, id);
            found.push(Finding {
                weight: e.loop_depth,
                path: file.path.clone(),
                line: e.line,
                detail: e.detail.clone(),
                snippet: e.snippet.clone(),
                root: graph.display(chain[0]),
                via: via_text(graph, &chain),
            });
        }
    }
    // Nested fns are scanned by both themselves and their parent, and a
    // site may be reached from several roots; keep one finding per site,
    // preferring the shortest chain, so ranks count distinct sites.
    found.sort_by(|a, b| {
        (&a.path, a.line, &a.detail, a.via.len()).cmp(&(&b.path, b.line, &b.detail, b.via.len()))
    });
    found.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.detail == b.detail);
    // Rank by loop depth: an alloc inside a per-frame loop outranks a
    // once-per-load alloc. Ties break on (path, line, detail) so the
    // ordering — and thus every message — is deterministic.
    found.sort_by(|a, b| {
        (std::cmp::Reverse(a.weight), &a.path, a.line, &a.detail).cmp(&(
            std::cmp::Reverse(b.weight),
            &b.path,
            b.line,
            &b.detail,
        ))
    });
    let total = found.len();
    for (i, fd) in found.iter().enumerate() {
        out.push(Violation {
            rule: "hot-path-alloc",
            path: fd.path.clone(),
            line: fd.line,
            message: format!(
                "hot-path alloc ({}) reachable from `{}`{}; loop depth {}, rank {} of {total} — \
                 the wire path stays zero-copy: share via SharedBytes/SharedStr or reuse a \
                 scratch buffer instead of allocating per item",
                fd.detail,
                fd.root,
                fd.via,
                fd.weight,
                i + 1,
            ),
            snippet: fd.snippet.clone(),
        });
    }
}

/// A lock guard that may be live somewhere inside one fn: either one of the
/// fn's own acquisitions, or a guard a callee returned into this fn.
#[derive(Clone)]
struct GuardView {
    /// Workspace identity: `<defining file path>::<receiver symbol>`.
    id: String,
    /// 1-based acquisition line in this fn (the obtaining call's line for
    /// guards returned by a helper).
    line: usize,
    /// Inclusive line range the guard may be live, within this fn.
    span: (usize, usize),
    binding: Option<String>,
    stmt_temp: bool,
}

/// Where a possibly-held lock was acquired, for diagnostics. `chain` is the
/// call path (node ids) from the holding fn to the fn being diagnosed,
/// capped so messages stay readable.
#[derive(Clone)]
struct Origin {
    path: String,
    line: usize,
    binding: Option<String>,
    chain: Vec<usize>,
}

/// Is `call` a method call *on the guard itself*? Such calls deref to the
/// guarded std container (`guard.remove(..)`, `cache.insert(..)`) — the
/// workspace fns they name-collide with can never run under this guard, so
/// pairing them would manufacture false lock-order/blocking findings. Free
/// calls are never suppressed: `helper(&mut guard)` really does run the
/// workspace `helper` with the lock held.
fn on_guard(g: &GuardView, call: &CallSite) -> bool {
    if call.kind != CallKind::Method {
        return false;
    }
    // The acquisition statement's own chain (`m.lock().expect("..")`) parses
    // as method calls with a compound receiver on the guard's line; they
    // *produce* the guard rather than run under it.
    if call.recv.is_none() && call.line == g.line {
        return true;
    }
    match (&g.binding, g.stmt_temp) {
        // `guard.insert(..)` on a bound guard.
        (Some(b), _) => call.recv.as_deref() == Some(b.as_str()),
        // A statement temporary's chained calls (`m.lock().unwrap().get(..)`)
        // have a compound receiver the parser records as `None`.
        (None, true) => call.recv.is_none(),
        _ => false,
    }
}

/// The `lock-safety` family: compute the set of locks possibly held at
/// every call site (a may-hold lattice of `(lock identity, origin)` pairs,
/// DESIGN.md §2h), then report acquisition-order cycles, blocking work
/// under a live guard, and loop-carried acquisitions on hot paths.
fn lock_safety(graph: &Graph, cfg: &HotPathConfig, out: &mut Vec<Violation>) {
    let n = graph.nodes.len();
    let file_fn = |id: usize| {
        let nr = graph.nodes[id];
        let file = &graph.summaries[nr.file];
        (file, &file.fns[nr.item])
    };
    let qualify = |path: &str, sym: &str| format!("{path}::{sym}");

    // Per-node guard views. The first `locks.len()` entries are the fn's
    // own acquisitions in source order; after those come pseudo-guards for
    // calls to helpers that return their guard (`escapes`), live from the
    // call to the end of the caller's body — the caller's own binding of
    // the returned guard is not tracked, so this over-approximates.
    let mut guards: Vec<Vec<GuardView>> = vec![Vec::new(); n];
    for id in 0..n {
        let (file, f) = file_fn(id);
        for lk in &f.locks {
            guards[id].push(GuardView {
                id: qualify(&file.path, &lk.id),
                line: lk.line,
                span: lk.span,
                binding: lk.binding.clone(),
                stmt_temp: lk.stmt_temp,
            });
        }
        for &(call_idx, callee) in &graph.site_edges[id] {
            let call = &f.calls[call_idx];
            let (cfile, cf) = file_fn(callee);
            for lk in cf.locks.iter().filter(|l| l.escapes) {
                guards[id].push(GuardView {
                    id: qualify(&cfile.path, &lk.id),
                    line: call.line,
                    span: (call.line, f.end_line),
                    binding: None,
                    stmt_temp: false,
                });
            }
        }
    }

    // Fixpoint: locks possibly held at fn entry. A guard crosses a call
    // site when its span covers the call line (entry-held guards cover the
    // whole body) and the call is not on the guard itself. First-wins
    // insertion over a sorted worklist keeps origins deterministic; the
    // map only grows, so the loop terminates.
    let mut entry: Vec<BTreeMap<String, Origin>> = vec![BTreeMap::new(); n];
    let mut work: BTreeSet<usize> = (0..n).collect();
    while let Some(u) = work.pop_first() {
        let (ufile, uf) = file_fn(u);
        for &(call_idx, v) in &graph.site_edges[u] {
            let call = &uf.calls[call_idx];
            let mut incoming: Vec<(String, Origin)> = Vec::new();
            for g in &guards[u] {
                if g.span.0 <= call.line && call.line <= g.span.1 && !on_guard(g, call) {
                    incoming.push((
                        g.id.clone(),
                        Origin {
                            path: ufile.path.clone(),
                            line: g.line,
                            binding: g.binding.clone(),
                            chain: vec![u, v],
                        },
                    ));
                }
            }
            for (gid, o) in &entry[u] {
                let mut chain = o.chain.clone();
                if chain.len() < 8 {
                    chain.push(v);
                }
                incoming.push((gid.clone(), Origin { chain, ..o.clone() }));
            }
            for (gid, o) in incoming {
                if let std::collections::btree_map::Entry::Vacant(slot) = entry[v].entry(gid) {
                    slot.insert(o);
                    work.insert(v);
                }
            }
        }
    }

    let held_text = |o: &Origin| -> String {
        let binding = o
            .binding
            .as_ref()
            .map(|b| format!(" as `{b}`"))
            .unwrap_or_default();
        let hops: Vec<String> = o
            .chain
            .iter()
            .map(|&id| format!("`{}`", graph.display(id)))
            .collect();
        format!(
            " (guard bound at {}:{}{}, held via {})",
            o.path,
            o.line,
            binding,
            hops.join(" -> "),
        )
    };

    // --- blocking-under-lock: blocking effects with a live guard ---------
    for id in 0..n {
        let (file, f) = file_fn(id);
        for e in &f.effects {
            if !e.kind.is_blocking() || e.waived_blocking {
                continue;
            }
            let local = guards[id]
                .iter()
                .find(|g| g.span.0 <= e.line && e.line <= g.span.1);
            let witness = if let Some(g) = local {
                let binding = g
                    .binding
                    .as_ref()
                    .map(|b| format!(" as `{b}`"))
                    .unwrap_or_default();
                format!(" (guard bound at {}:{}{})", file.path, g.line, binding)
            } else if let Some((_, o)) = entry[id].iter().next() {
                held_text(o)
            } else {
                continue;
            };
            let gid = local
                .map(|g| g.id.clone())
                .unwrap_or_else(|| entry[id].keys().next().unwrap().clone());
            out.push(Violation {
                rule: "blocking-under-lock",
                path: file.path.clone(),
                line: e.line,
                message: format!(
                    "{} ({}) can run while the `{gid}` guard is live{witness}; \
                     every waiter on that lock stalls behind this call — shrink \
                     the critical section so the guard drops first",
                    e.detail,
                    e.kind.name(),
                ),
                snippet: e.snippet.clone(),
            });
        }
    }

    // --- nested acquisitions: order edges + blocking at the inner site ---
    // Directed acquisition-graph edges `outer -> inner`, each with its
    // lexicographically smallest witness (path, line, snippet, held-info).
    type Witness = (String, usize, String, String);
    let mut order_edges: BTreeMap<(String, String), Witness> = BTreeMap::new();
    let record =
        |edges: &mut BTreeMap<(String, String), Witness>, from: String, to: String, w: Witness| {
            match edges.entry((from, to)) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(w);
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    if (&w.0, w.1) < (&o.get().0, o.get().1) {
                        o.insert(w);
                    }
                }
            }
        };
    for id in 0..n {
        let (file, f) = file_fn(id);
        for (i, inner) in f.locks.iter().enumerate() {
            let inner_id = qualify(&file.path, &inner.id);
            // Outer candidates, deterministically ordered: local guards in
            // source order, then entry-held locks by identity.
            let mut outers: Vec<(String, String)> = Vec::new(); // (gid, held text)
            for (j, g) in guards[id].iter().enumerate() {
                if j == i {
                    continue;
                }
                let covers = g.span.0 <= inner.line && inner.line <= g.span.1;
                let before = g.line < inner.line || (g.line == inner.line && j < i);
                if covers && before {
                    let binding = g
                        .binding
                        .as_ref()
                        .map(|b| format!(" as `{b}`"))
                        .unwrap_or_default();
                    outers.push((
                        g.id.clone(),
                        format!(" (guard bound at {}:{}{})", file.path, g.line, binding),
                    ));
                }
            }
            for (gid, o) in &entry[id] {
                outers.push((gid.clone(), held_text(o)));
            }
            for (outer_id, held) in &outers {
                if *outer_id == inner_id {
                    // Same identity re-acquired while held: a self-cycle on
                    // the acquisition graph, rendered with per-acquisition
                    // indices (shard locks share a symbol; the index is the
                    // acquisition order).
                    if !inner.waived_order {
                        out.push(Violation {
                            rule: "lock-order",
                            path: file.path.clone(),
                            line: inner.line,
                            message: format!(
                                "`{inner_id}` is re-acquired while already held{held} — \
                                 acquisition cycle `{inner_id}#0` -> `{inner_id}#1`; \
                                 Mutex::lock and RwLock::write self-deadlock here, and \
                                 two shard guards from one pool must be taken in a \
                                 fixed index order",
                            ),
                            snippet: inner.snippet.clone(),
                        });
                    }
                } else {
                    if !inner.waived_order {
                        record(
                            &mut order_edges,
                            outer_id.clone(),
                            inner_id.clone(),
                            (
                                file.path.clone(),
                                inner.line,
                                inner.snippet.clone(),
                                held.clone(),
                            ),
                        );
                    }
                    // A second lock is itself a blocking wait under the
                    // first — report even when no cycle exists yet.
                    if !inner.waived_blocking {
                        out.push(Violation {
                            rule: "blocking-under-lock",
                            path: file.path.clone(),
                            line: inner.line,
                            message: format!(
                                "`{inner_id}` is acquired while the `{outer_id}` guard \
                                 is live{held}; nested acquisition blocks every waiter \
                                 on the outer lock — release it first or take both in \
                                 one ordered step",
                            ),
                            snippet: inner.snippet.clone(),
                        });
                    }
                }
            }
        }
    }
    // Two-lock cycles: an A->B edge and a B->A edge anywhere in the
    // workspace. One report per unordered pair, anchored at the
    // lexicographically smallest witness so the diagnostic is stable.
    let mut seen_pairs: BTreeSet<(String, String)> = BTreeSet::new();
    for ((a, b), w_ab) in &order_edges {
        let pair = if a < b {
            (a.clone(), b.clone())
        } else {
            (b.clone(), a.clone())
        };
        if seen_pairs.contains(&pair) {
            continue;
        }
        let Some(w_ba) = order_edges.get(&(b.clone(), a.clone())) else {
            continue;
        };
        seen_pairs.insert(pair);
        let (w_min, w_other, first, second) = if (&w_ab.0, w_ab.1) <= (&w_ba.0, w_ba.1) {
            (w_ab, w_ba, a, b)
        } else {
            (w_ba, w_ab, b, a)
        };
        out.push(Violation {
            rule: "lock-order",
            path: w_min.0.clone(),
            line: w_min.1,
            message: format!(
                "lock-order inversion between `{first}` and `{second}`: \
                 `{first}` -> `{second}` here{}, but `{second}` -> `{first}` at \
                 {}:{}{} — two threads interleaving these paths deadlock; pick one \
                 acquisition order",
                w_min.3, w_other.0, w_other.1, w_other.3,
            ),
            snippet: w_min.2.clone(),
        });
    }

    // --- lock-in-hot-loop: loop-carried acquisitions on hot paths --------
    let roots = graph.select(|path, f| {
        cfg.lock_roots
            .iter()
            .any(|(p, fns)| p == path && fns.iter().any(|nm| nm == &f.name))
    });
    if roots.is_empty() {
        return;
    }
    let pred = graph.reachable(&roots);
    struct Finding {
        weight: usize,
        path: String,
        line: usize,
        detail: String,
        snippet: String,
        root: String,
        via: String,
    }
    let mut found: Vec<Finding> = Vec::new();
    for id in 0..n {
        if pred[id].is_none() {
            continue;
        }
        let (file, f) = file_fn(id);
        if cfg.exempt.iter().any(|p| file.path.starts_with(p)) {
            continue;
        }
        for lk in &f.locks {
            if lk.loop_depth == 0 || lk.waived_hot {
                continue;
            }
            let chain = graph.chain(&pred, id);
            found.push(Finding {
                weight: lk.loop_depth,
                path: file.path.clone(),
                line: lk.line,
                detail: format!("`{}`.{}()", qualify(&file.path, &lk.id), lk.op.label()),
                snippet: lk.snippet.clone(),
                root: graph.display(chain[0]),
                via: via_text(graph, &chain),
            });
        }
    }
    found.sort_by(|a, b| {
        (&a.path, a.line, &a.detail, a.via.len()).cmp(&(&b.path, b.line, &b.detail, b.via.len()))
    });
    found.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.detail == b.detail);
    found.sort_by(|a, b| {
        (std::cmp::Reverse(a.weight), &a.path, a.line, &a.detail).cmp(&(
            std::cmp::Reverse(b.weight),
            &b.path,
            b.line,
            &b.detail,
        ))
    });
    let total = found.len();
    for (i, fd) in found.iter().enumerate() {
        out.push(Violation {
            rule: "lock-in-hot-loop",
            path: fd.path.clone(),
            line: fd.line,
            message: format!(
                "lock acquisition ({}) inside a loop reachable from `{}`{}; loop depth {}, \
                 rank {} of {total} — hoist the acquisition out of the loop or batch the \
                 guarded work (`get_many`/`put_many`) so the lock is taken once per pass",
                fd.detail,
                fd.root,
                fd.via,
                fd.weight,
                i + 1,
            ),
            snippet: fd.snippet.clone(),
        });
    }
}

/// `, via \`a\` -> \`b\`` — the BFS shortest call chain, elided when the
/// effect sits in the root itself.
fn via_text(graph: &Graph, chain: &[usize]) -> String {
    if chain.len() <= 1 {
        return String::new();
    }
    let hops: Vec<String> = chain[1..]
        .iter()
        .map(|&id| format!("`{}`", graph.display(id)))
        .collect();
    format!(" via {}", hops.join(" -> "))
}

fn protocol_exhaustive(summaries: &[FileSummary], out: &mut Vec<Violation>) {
    // Workspace variant table; on duplicate enum names, the definition
    // inside crates/http2 wins (that is the protocol being matched).
    let mut variants: BTreeMap<&str, (&str, &Vec<String>)> = BTreeMap::new();
    for file in summaries {
        for e in &file.enums {
            let entry = variants.entry(e.name.as_str());
            match entry {
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    if file.path.starts_with(PROTOCOL_PREFIX)
                        && !o.get().0.starts_with(PROTOCOL_PREFIX)
                    {
                        o.insert((file.path.as_str(), &e.variants));
                    }
                }
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert((file.path.as_str(), &e.variants));
                }
            }
        }
    }

    for file in summaries {
        if !file.path.starts_with(PROTOCOL_PREFIX) || file.is_test {
            continue;
        }
        for m in &file.matches {
            if m.waived || !PROTOCOL_ENUMS.contains(&m.enum_name.as_str()) {
                continue;
            }
            let Some((_, all)) = variants.get(m.enum_name.as_str()) else {
                continue;
            };
            if m.catch_all {
                out.push(Violation {
                    rule: "protocol-exhaustive",
                    path: file.path.clone(),
                    line: m.line,
                    message: format!(
                        "match on protocol enum `{}` hides variants behind a catch-all \
                         arm; enumerate every variant explicitly so new frame types \
                         fail to compile instead of being silently swallowed",
                        m.enum_name,
                    ),
                    snippet: m.snippet.clone(),
                });
                continue;
            }
            let missing: Vec<&str> = all
                .iter()
                .map(String::as_str)
                .filter(|v| !m.covered.iter().any(|c| c == v))
                .collect();
            if !missing.is_empty() {
                out.push(Violation {
                    rule: "protocol-exhaustive",
                    path: file.path.clone(),
                    line: m.line,
                    message: format!(
                        "match on protocol enum `{}` does not name variants: {}",
                        m.enum_name,
                        missing.join(", "),
                    ),
                    snippet: m.snippet.clone(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::summarize_source;

    fn analyze(files: &[(&str, &str)]) -> Vec<Violation> {
        let summaries: Vec<FileSummary> =
            files.iter().map(|(p, s)| summarize_source(p, s)).collect();
        semantic_violations(&summaries)
    }

    #[test]
    fn wall_clock_in_helper_called_from_sim_entrypoint_is_flagged() {
        // The acceptance-criterion case: the effect is in another crate,
        // two hops away, and only the call graph can see it.
        let v = analyze(&[
            (
                "crates/sim/src/entry.rs",
                "pub fn drive() { helper_tick(); }\n",
            ),
            (
                "crates/net/src/helper.rs",
                "pub fn helper_tick() { deep_tick(); }\n\
                 fn deep_tick() { let t = Instant::now(); }\n",
            ),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "sim-purity");
        assert_eq!(v[0].path, "crates/net/src/helper.rs");
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("sim::drive"), "{}", v[0].message);
    }

    #[test]
    fn unreachable_effects_are_clean() {
        let v = analyze(&[
            ("crates/sim/src/entry.rs", "pub fn drive() {}\n"),
            (
                "crates/net/src/helper.rs",
                "pub fn unused() { let t = Instant::now(); }\n",
            ),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn waiver_covers_the_call_site() {
        let v = analyze(&[
            ("crates/sim/src/entry.rs", "pub fn drive() { tick(); }\n"),
            (
                "crates/net/src/helper.rs",
                "pub fn tick() { let t = Instant::now(); } // vroom-lint: allow(sim-purity) -- injected shim\n",
            ),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn thread_spawn_reachable_from_sim_entrypoint_is_flagged() {
        let v = analyze(&[
            (
                "crates/vroom/src/experiment.rs",
                "pub fn fig99() { fan_out(); }\n",
            ),
            (
                "crates/net/src/helper.rs",
                "pub fn fan_out() { std::thread::spawn(|| {}); }\n",
            ),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "sim-purity");
        assert!(v[0].message.contains("thread spawn"), "{}", v[0].message);
        assert!(v[0].message.contains("par_map_indexed"), "{}", v[0].message);
    }

    #[test]
    fn waived_executor_pool_is_clean_but_its_closures_are_not() {
        // The par_map_indexed shape: the pool's own spawn is waived, yet an
        // impure closure argument is still attributed to its enclosing fn
        // and flagged through the call graph.
        let v = analyze(&[
            (
                "crates/vroom/src/experiment.rs",
                "pub fn fig99() { par_map_indexed(&[1], 8, |_i, _s| Instant::now()); }\n",
            ),
            (
                "crates/exec/src/lib.rs",
                "pub fn par_map_indexed() {\n\
                 \u{20}   // vroom-lint: allow(sim-purity) -- index-ordered pool\n\
                 \u{20}   std::thread::scope(|s| { s.spawn(|| {}); });\n\
                 }\n",
            ),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "sim-purity");
        assert_eq!(v[0].path, "crates/vroom/src/experiment.rs");
        assert!(v[0].message.contains("wall-clock"), "{}", v[0].message);
    }

    #[test]
    fn bench_and_intern_crates_are_outside_sim_purity() {
        // Wall-clock timing is legal in the perf harness and the intern
        // crate even when name-based resolution ties a sim entrypoint to a
        // same-named fn there; the identical shape in any other crate is
        // still flagged (see wall_clock_in_helper_called_from_sim_entrypoint).
        let v = analyze(&[
            (
                "crates/vroom/src/experiment.rs",
                "pub fn fig99() { sample(); warm(); }\n",
            ),
            (
                "crates/bench/src/bin/vroom_bench.rs",
                "pub fn sample() { let t = Instant::now(); }\n",
            ),
            (
                "crates/intern/src/lib.rs",
                "pub fn warm() { let t = Instant::now(); }\n",
            ),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn panic_reachable_from_wire_accept_loop() {
        let v = analyze(&[
            (
                "crates/server/src/wire.rs",
                "pub fn serve() { decode_frame(); }\n",
            ),
            (
                "crates/http2/src/frame.rs",
                "pub fn decode_frame() { let x: Option<u8> = None; x.unwrap(); }\n",
            ),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "panic-reachable");
        assert!(v[0].message.contains("server::serve"));
    }

    #[test]
    fn panic_outside_wire_reach_is_clean() {
        let v = analyze(&[(
            "crates/pages/src/model.rs",
            "pub fn depth(v: &[u32]) -> u32 { v[0] }\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn protocol_match_catch_all_flagged() {
        let v = analyze(&[(
            "crates/http2/src/frame.rs",
            "pub enum FrameType { Data, Headers, Ping }\n\
             pub fn name(t: FrameType) -> u8 {\n\
                 match t { FrameType::Data => 0, _ => 1 }\n\
             }\n",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "protocol-exhaustive");
        assert!(v[0].message.contains("catch-all"));
    }

    #[test]
    fn protocol_match_missing_variant_flagged() {
        let v = analyze(&[(
            "crates/http2/src/frame.rs",
            "pub enum StreamState { Idle, Open, Closed }\n\
             pub fn f(s: StreamState) -> u8 {\n\
                 match s { StreamState::Idle => 0, StreamState::Open => 1 }\n\
             }\n",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("Closed"), "{}", v[0].message);
    }

    #[test]
    fn exhaustive_protocol_match_and_waivers_pass() {
        let v = analyze(&[(
            "crates/http2/src/frame.rs",
            "pub enum FrameType { Data, Headers }\n\
             pub fn a(t: FrameType) -> u8 {\n\
                 match t { FrameType::Data => 0, FrameType::Headers => 1 }\n\
             }\n\
             pub fn b(t: FrameType) -> u8 {\n\
                 // vroom-lint: allow(protocol-exhaustive) -- collapse is the point here\n\
                 match t { FrameType::Data => 0, _ => 1 }\n\
             }\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn hot_path_alloc_ranks_loop_allocs_above_once_per_call() {
        // Two allocs reachable from the hpack encode root: the one inside a
        // loop must rank 1, the once-per-call one rank 2.
        let v = analyze(&[(
            "crates/hpack/src/encoder.rs",
            "pub fn encode(fields: &[u8]) { once(); per_field(fields); }\n\
             fn once() -> String { let s = name_of(); s.to_owned() }\n\
             fn name_of() -> String { String::new() }\n\
             fn per_field(fields: &[u8]) {\n\
                 for f in fields { let _ = f.to_string(); }\n\
             }\n",
        )]);
        let hot: Vec<&Violation> = v.iter().filter(|v| v.rule == "hot-path-alloc").collect();
        assert_eq!(hot.len(), 2, "{v:?}");
        let per_field = hot.iter().find(|v| v.line == 5).unwrap();
        let once = hot.iter().find(|v| v.line == 2).unwrap();
        assert!(
            per_field.message.contains("loop depth 1, rank 1 of 2"),
            "{}",
            per_field.message
        );
        assert!(
            once.message.contains("loop depth 0, rank 2 of 2"),
            "{}",
            once.message
        );
        assert!(once.message.contains("hpack::encode"), "{}", once.message);
    }

    #[test]
    fn hot_path_alloc_sees_hidden_helper_two_hops_away() {
        let v = analyze(&[
            (
                "crates/server/src/wire.rs",
                "fn serve_connection() { assemble(); }\n",
            ),
            (
                "crates/http2/src/util.rs",
                "pub fn assemble() { deep_copy(); }\n\
                 fn deep_copy() -> Vec<u8> { b\"x\".to_vec() }\n",
            ),
        ]);
        let hot: Vec<&Violation> = v.iter().filter(|v| v.rule == "hot-path-alloc").collect();
        assert_eq!(hot.len(), 1, "{v:?}");
        assert_eq!(hot[0].path, "crates/http2/src/util.rs");
        assert!(
            hot[0].message.contains("server::serve_connection"),
            "{}",
            hot[0].message
        );
        assert!(
            hot[0].message.contains("`http2::assemble`"),
            "{}",
            hot[0].message
        );
    }

    #[test]
    fn hot_path_alloc_honors_waivers_and_exempt_prefixes() {
        let v = analyze(&[
            (
                "crates/hpack/src/decoder.rs",
                "pub fn decode() { copy_field(); report(); }\n\
                 fn copy_field() -> Vec<u8> {\n\
                 \u{20}   // vroom-lint: allow(hot-path-alloc) -- contiguous reassembly buffer\n\
                 \u{20}   b\"x\".to_vec()\n\
                 }\n",
            ),
            (
                "crates/bench/src/report.rs",
                "pub fn report() -> String { b\"x\".to_vec(); String::from(\"y\") }\n",
            ),
        ]);
        let hot: Vec<&Violation> = v.iter().filter(|v| v.rule == "hot-path-alloc").collect();
        assert!(hot.is_empty(), "{v:?}");
    }

    #[test]
    fn allocs_not_reachable_from_any_hot_root_are_clean() {
        let v = analyze(&[(
            "crates/pages/src/model.rs",
            "pub fn build() -> String { format!(\"x\") }\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn non_protocol_crates_matches_ignored() {
        let v = analyze(&[(
            "crates/browser/src/engine.rs",
            "pub enum Event { A, B }\n\
             pub fn f(e: Event) -> u8 { match e { Event::A => 0, _ => 1 } }\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn same_lock_reacquired_while_held_is_an_acquisition_cycle() {
        let v = analyze(&[(
            "crates/server/src/a.rs",
            "struct S { m: Mutex<u64> }\n\
             impl S {\n\
                 fn go(&self) -> u64 {\n\
                     let a = self.m.lock();\n\
                     let b = self.m.lock();\n\
                     *a + *b\n\
                 }\n\
             }\n",
        )]);
        let order: Vec<&Violation> = v.iter().filter(|v| v.rule == "lock-order").collect();
        assert_eq!(order.len(), 1, "{v:?}");
        assert_eq!(order[0].line, 5);
        assert!(order[0].message.contains("#0"), "{}", order[0].message);
        assert!(order[0].message.contains("#1"), "{}", order[0].message);
        assert!(
            !v.iter().any(|v| v.rule == "blocking-under-lock"),
            "same-id nesting reports as a cycle only: {v:?}"
        );
    }

    #[test]
    fn lock_order_waiver_silences_the_cycle() {
        let v = analyze(&[(
            "crates/server/src/a.rs",
            "struct S { m: Mutex<u64> }\n\
             impl S {\n\
                 fn go(&self) -> u64 {\n\
                     let a = self.m.lock();\n\
                     // vroom-lint: allow(lock-order) -- audited: re-entrant test double\n\
                     let b = self.m.lock();\n\
                     *a + *b\n\
                 }\n\
             }\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn blocking_effect_under_live_guard_is_flagged_at_the_effect() {
        let v = analyze(&[(
            "crates/server/src/b.rs",
            "struct S { m: Mutex<u64> }\n\
             impl S {\n\
                 fn go(&self, rx: &Receiver<u64>) -> u64 {\n\
                     let g = self.m.lock();\n\
                     let v = rx.recv();\n\
                     *g + v\n\
                 }\n\
             }\n",
        )]);
        let blocked: Vec<&Violation> = v
            .iter()
            .filter(|v| v.rule == "blocking-under-lock")
            .collect();
        assert_eq!(blocked.len(), 1, "{v:?}");
        assert_eq!(blocked[0].line, 5);
        assert!(blocked[0].message.contains("`g`"), "{}", blocked[0].message);
    }

    #[test]
    fn blocking_under_lock_waiver_at_the_effect_site_holds() {
        let v = analyze(&[(
            "crates/server/src/b.rs",
            "struct S { m: Mutex<u64> }\n\
             impl S {\n\
                 fn go(&self, rx: &Receiver<u64>) -> u64 {\n\
                     let g = self.m.lock();\n\
                     // vroom-lint: allow(blocking-under-lock) -- audited: bounded by test harness\n\
                     let v = rx.recv();\n\
                     *g + v\n\
                 }\n\
             }\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn calls_on_the_guard_itself_do_not_count_as_under_lock() {
        // `q.len()` derefs to the guarded data; resolving it against
        // workspace methods named `len` would poison every guard scope.
        let v = analyze(&[
            (
                "crates/server/src/b.rs",
                "struct S { q: Mutex<Vec<u64>> }\n\
                 impl S {\n\
                     fn go(&self) -> usize {\n\
                         let q = self.q.lock();\n\
                         q.len()\n\
                     }\n\
                 }\n",
            ),
            (
                // A same-name, same-arity workspace method that blocks: if
                // `q.len()` were resolved and paired with the guard, this
                // would (wrongly) fire blocking-under-lock here.
                "crates/html/src/dom.rs",
                "pub struct Doc;\n\
                 impl Doc {\n\
                     fn len(&self) -> usize {\n\
                         std::thread::sleep(PARSE_BUDGET);\n\
                         0\n\
                     }\n\
                 }\n",
            ),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn hot_loop_acquisition_reachable_from_lock_root_is_ranked_and_waivable() {
        let src_hot = "pub fn handle_request(s: &S) -> u64 { spin(s) }\n\
                       fn spin(s: &S) -> u64 {\n\
                           let mut t = 0;\n\
                           for _ in 0..8 {\n\
                               let g = s.m.lock();\n\
                               t += *g;\n\
                           }\n\
                           t\n\
                       }\n";
        let v = analyze(&[("crates/server/src/wire.rs", src_hot)]);
        let hot: Vec<&Violation> = v.iter().filter(|v| v.rule == "lock-in-hot-loop").collect();
        assert_eq!(hot.len(), 1, "{v:?}");
        assert_eq!(hot[0].line, 5);
        assert!(
            hot[0].message.contains("handle_request"),
            "{}",
            hot[0].message
        );
        assert!(
            hot[0].message.contains("loop depth 1"),
            "{}",
            hot[0].message
        );

        let waived = src_hot.replace(
            "let g = s.m.lock();",
            "// vroom-lint: allow(lock-in-hot-loop) -- audited: uncontended in tests\n\
             let g = s.m.lock();",
        );
        let v = analyze(&[("crates/server/src/wire.rs", &waived)]);
        assert!(
            !v.iter().any(|v| v.rule == "lock-in-hot-loop"),
            "waiver must hold: {v:?}"
        );
    }
}
