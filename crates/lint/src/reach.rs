//! The four call-graph rule families: `sim-purity`, `panic-reachable`,
//! `hot-path-alloc`, and `protocol-exhaustive`.
//!
//! All four are over-approximations in the safe direction: the call graph
//! adds edges when resolution is ambiguous, effect scanning is syntactic,
//! and match coverage is judged by explicit variant references — so none of
//! the families can miss a violation that its lexical definitions cover.
//! The cost is occasional false positives, paid down with per-call-site
//! waivers or the ratchet baseline.

use crate::callgraph::Graph;
use crate::hotpaths::HotPathConfig;
use crate::parse::{EffectKind, FileSummary};
use crate::rules::Violation;
use std::collections::BTreeMap;

/// Simulation entrypoint crates: every non-test fn defined under these
/// paths is a sim-purity root. `src/bin/` is excluded — CLI frontends may
/// parse arguments from the environment.
const SIM_ROOT_PREFIXES: [&str; 2] = ["crates/sim/src/", "crates/vroom/src/"];

/// The wire server accept loop lives here; every non-test fn in the file is
/// a panic-reachability root.
const WIRE_ROOT_FILE: &str = "crates/server/src/wire.rs";

/// Files outside the simulator where wall-clock effects are the *product*,
/// not a leak: `crates/bench` (the perf-trajectory harness) and the vendored
/// criterion stand-in it drives time real executions by design, and
/// `crates/intern` is allocation machinery that never advances simulated
/// time. Call resolution is name-based and conservative, so a sim root can
/// appear to reach these files through any same-named method; they are
/// excluded from sim-purity diagnostics by definition site rather than
/// waived line by line.
const SIM_PURITY_EXEMPT_PREFIXES: [&str; 3] =
    ["crates/bench/", "crates/intern/", "vendor/criterion/"];

/// Enums whose matches in `crates/http2` must be exhaustive without
/// catch-alls. `ErrorCode` is the reproduction's name for the paper's
/// connection-error codes (`ConnError`).
const PROTOCOL_ENUMS: [&str; 5] = ["FrameType", "Frame", "StreamState", "ErrorCode", "Event"];
const PROTOCOL_PREFIX: &str = "crates/http2/";

/// Effect families the sim-purity rule bans. Thread spawning counts: a
/// stray thread makes completion order observable. The one sanctioned
/// site is `vroom_exec::par_map_indexed`, whose pool is waived in place
/// because it collects results by input index (closures passed through it
/// are still analyzed like any other code).
const PURITY_KINDS: [EffectKind; 6] = [
    EffectKind::WallClock,
    EffectKind::Randomness,
    EffectKind::Fs,
    EffectKind::Net,
    EffectKind::UnorderedIter,
    EffectKind::ThreadSpawn,
];

/// Run all interprocedural rules with the compiled-in hot-path roots.
pub fn semantic_violations(summaries: &[FileSummary]) -> Vec<Violation> {
    semantic_violations_with(summaries, &HotPathConfig::default())
}

/// Run all interprocedural rules over the workspace summaries.
pub fn semantic_violations_with(summaries: &[FileSummary], hot: &HotPathConfig) -> Vec<Violation> {
    let graph = Graph::build(summaries);
    let mut out = Vec::new();
    sim_purity(&graph, &mut out);
    panic_reachable(&graph, &mut out);
    hot_path_alloc(&graph, hot, &mut out);
    protocol_exhaustive(summaries, &mut out);
    // Nested fns are scanned by both themselves and their parent, and a
    // node can be reached from several roots; keep one diagnostic per
    // (rule, site).
    out.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    out.dedup_by(|a, b| a.rule == b.rule && a.path == b.path && a.line == b.line);
    out
}

fn sim_purity(graph: &Graph, out: &mut Vec<Violation>) {
    let roots = graph.select(|path, _| {
        SIM_ROOT_PREFIXES.iter().any(|p| path.starts_with(p)) && !path.contains("/bin/")
    });
    let pred = graph.reachable(&roots);
    for id in 0..graph.nodes.len() {
        if pred[id].is_none() {
            continue;
        }
        let n = graph.nodes[id];
        let file = &graph.summaries[n.file];
        if SIM_PURITY_EXEMPT_PREFIXES
            .iter()
            .any(|p| file.path.starts_with(p))
        {
            continue;
        }
        let f = &file.fns[n.item];
        for e in &f.effects {
            if !PURITY_KINDS.contains(&e.kind) || e.waived {
                continue;
            }
            let chain = graph.chain(&pred, id);
            let root = graph.display(chain[0]);
            let via = via_text(graph, &chain);
            out.push(Violation {
                rule: "sim-purity",
                path: file.path.clone(),
                line: e.line,
                message: format!(
                    "{} ({}) is reachable from simulation entrypoint `{root}`{via}; \
                     the deterministic path must take time from the engine, randomness \
                     from the seeded Rng, iterate ordered containers, and parallelize \
                     only through `vroom_exec::par_map_indexed`",
                    e.detail,
                    e.kind.name(),
                ),
                snippet: e.snippet.clone(),
            });
        }
    }
}

fn panic_reachable(graph: &Graph, out: &mut Vec<Violation>) {
    let roots = graph.select(|path, _| path == WIRE_ROOT_FILE);
    let pred = graph.reachable(&roots);
    for id in 0..graph.nodes.len() {
        if pred[id].is_none() {
            continue;
        }
        let n = graph.nodes[id];
        let file = &graph.summaries[n.file];
        let f = &file.fns[n.item];
        for e in &f.effects {
            if e.kind != EffectKind::Panic || e.waived {
                continue;
            }
            let chain = graph.chain(&pred, id);
            let root = graph.display(chain[0]);
            let via = via_text(graph, &chain);
            out.push(Violation {
                rule: "panic-reachable",
                path: file.path.clone(),
                line: e.line,
                message: format!(
                    "{} can panic and is reachable from the wire server accept path \
                     (`{root}`{via}); return a typed error instead (ratcheted: \
                     pre-existing sites are baselined, new ones are rejected)",
                    e.detail,
                ),
                snippet: e.snippet.clone(),
            });
        }
    }
}

fn hot_path_alloc(graph: &Graph, cfg: &HotPathConfig, out: &mut Vec<Violation>) {
    let roots = graph.select(|path, f| {
        cfg.roots
            .iter()
            .any(|(p, fns)| p == path && fns.iter().any(|n| n == &f.name))
    });
    if roots.is_empty() {
        return;
    }
    let pred = graph.reachable(&roots);
    struct Finding {
        weight: usize,
        path: String,
        line: usize,
        detail: String,
        snippet: String,
        root: String,
        via: String,
    }
    let mut found: Vec<Finding> = Vec::new();
    for id in 0..graph.nodes.len() {
        if pred[id].is_none() {
            continue;
        }
        let n = graph.nodes[id];
        let file = &graph.summaries[n.file];
        if cfg.exempt.iter().any(|p| file.path.starts_with(p)) {
            continue;
        }
        let f = &file.fns[n.item];
        for e in &f.effects {
            if !matches!(e.kind, EffectKind::Alloc(_)) || e.waived {
                continue;
            }
            let chain = graph.chain(&pred, id);
            found.push(Finding {
                weight: e.loop_depth,
                path: file.path.clone(),
                line: e.line,
                detail: e.detail.clone(),
                snippet: e.snippet.clone(),
                root: graph.display(chain[0]),
                via: via_text(graph, &chain),
            });
        }
    }
    // Nested fns are scanned by both themselves and their parent, and a
    // site may be reached from several roots; keep one finding per site,
    // preferring the shortest chain, so ranks count distinct sites.
    found.sort_by(|a, b| {
        (&a.path, a.line, &a.detail, a.via.len()).cmp(&(&b.path, b.line, &b.detail, b.via.len()))
    });
    found.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.detail == b.detail);
    // Rank by loop depth: an alloc inside a per-frame loop outranks a
    // once-per-load alloc. Ties break on (path, line, detail) so the
    // ordering — and thus every message — is deterministic.
    found.sort_by(|a, b| {
        (std::cmp::Reverse(a.weight), &a.path, a.line, &a.detail).cmp(&(
            std::cmp::Reverse(b.weight),
            &b.path,
            b.line,
            &b.detail,
        ))
    });
    let total = found.len();
    for (i, fd) in found.iter().enumerate() {
        out.push(Violation {
            rule: "hot-path-alloc",
            path: fd.path.clone(),
            line: fd.line,
            message: format!(
                "hot-path alloc ({}) reachable from `{}`{}; loop depth {}, rank {} of {total} — \
                 the wire path stays zero-copy: share via SharedBytes/SharedStr or reuse a \
                 scratch buffer instead of allocating per item",
                fd.detail,
                fd.root,
                fd.via,
                fd.weight,
                i + 1,
            ),
            snippet: fd.snippet.clone(),
        });
    }
}

/// `, via \`a\` -> \`b\`` — the BFS shortest call chain, elided when the
/// effect sits in the root itself.
fn via_text(graph: &Graph, chain: &[usize]) -> String {
    if chain.len() <= 1 {
        return String::new();
    }
    let hops: Vec<String> = chain[1..]
        .iter()
        .map(|&id| format!("`{}`", graph.display(id)))
        .collect();
    format!(" via {}", hops.join(" -> "))
}

fn protocol_exhaustive(summaries: &[FileSummary], out: &mut Vec<Violation>) {
    // Workspace variant table; on duplicate enum names, the definition
    // inside crates/http2 wins (that is the protocol being matched).
    let mut variants: BTreeMap<&str, (&str, &Vec<String>)> = BTreeMap::new();
    for file in summaries {
        for e in &file.enums {
            let entry = variants.entry(e.name.as_str());
            match entry {
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    if file.path.starts_with(PROTOCOL_PREFIX)
                        && !o.get().0.starts_with(PROTOCOL_PREFIX)
                    {
                        o.insert((file.path.as_str(), &e.variants));
                    }
                }
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert((file.path.as_str(), &e.variants));
                }
            }
        }
    }

    for file in summaries {
        if !file.path.starts_with(PROTOCOL_PREFIX) || file.is_test {
            continue;
        }
        for m in &file.matches {
            if m.waived || !PROTOCOL_ENUMS.contains(&m.enum_name.as_str()) {
                continue;
            }
            let Some((_, all)) = variants.get(m.enum_name.as_str()) else {
                continue;
            };
            if m.catch_all {
                out.push(Violation {
                    rule: "protocol-exhaustive",
                    path: file.path.clone(),
                    line: m.line,
                    message: format!(
                        "match on protocol enum `{}` hides variants behind a catch-all \
                         arm; enumerate every variant explicitly so new frame types \
                         fail to compile instead of being silently swallowed",
                        m.enum_name,
                    ),
                    snippet: m.snippet.clone(),
                });
                continue;
            }
            let missing: Vec<&str> = all
                .iter()
                .map(String::as_str)
                .filter(|v| !m.covered.iter().any(|c| c == v))
                .collect();
            if !missing.is_empty() {
                out.push(Violation {
                    rule: "protocol-exhaustive",
                    path: file.path.clone(),
                    line: m.line,
                    message: format!(
                        "match on protocol enum `{}` does not name variants: {}",
                        m.enum_name,
                        missing.join(", "),
                    ),
                    snippet: m.snippet.clone(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::summarize_source;

    fn analyze(files: &[(&str, &str)]) -> Vec<Violation> {
        let summaries: Vec<FileSummary> =
            files.iter().map(|(p, s)| summarize_source(p, s)).collect();
        semantic_violations(&summaries)
    }

    #[test]
    fn wall_clock_in_helper_called_from_sim_entrypoint_is_flagged() {
        // The acceptance-criterion case: the effect is in another crate,
        // two hops away, and only the call graph can see it.
        let v = analyze(&[
            (
                "crates/sim/src/entry.rs",
                "pub fn drive() { helper_tick(); }\n",
            ),
            (
                "crates/net/src/helper.rs",
                "pub fn helper_tick() { deep_tick(); }\n\
                 fn deep_tick() { let t = Instant::now(); }\n",
            ),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "sim-purity");
        assert_eq!(v[0].path, "crates/net/src/helper.rs");
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("sim::drive"), "{}", v[0].message);
    }

    #[test]
    fn unreachable_effects_are_clean() {
        let v = analyze(&[
            ("crates/sim/src/entry.rs", "pub fn drive() {}\n"),
            (
                "crates/net/src/helper.rs",
                "pub fn unused() { let t = Instant::now(); }\n",
            ),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn waiver_covers_the_call_site() {
        let v = analyze(&[
            ("crates/sim/src/entry.rs", "pub fn drive() { tick(); }\n"),
            (
                "crates/net/src/helper.rs",
                "pub fn tick() { let t = Instant::now(); } // vroom-lint: allow(sim-purity) -- injected shim\n",
            ),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn thread_spawn_reachable_from_sim_entrypoint_is_flagged() {
        let v = analyze(&[
            (
                "crates/vroom/src/experiment.rs",
                "pub fn fig99() { fan_out(); }\n",
            ),
            (
                "crates/net/src/helper.rs",
                "pub fn fan_out() { std::thread::spawn(|| {}); }\n",
            ),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "sim-purity");
        assert!(v[0].message.contains("thread spawn"), "{}", v[0].message);
        assert!(v[0].message.contains("par_map_indexed"), "{}", v[0].message);
    }

    #[test]
    fn waived_executor_pool_is_clean_but_its_closures_are_not() {
        // The par_map_indexed shape: the pool's own spawn is waived, yet an
        // impure closure argument is still attributed to its enclosing fn
        // and flagged through the call graph.
        let v = analyze(&[
            (
                "crates/vroom/src/experiment.rs",
                "pub fn fig99() { par_map_indexed(&[1], 8, |_i, _s| Instant::now()); }\n",
            ),
            (
                "crates/exec/src/lib.rs",
                "pub fn par_map_indexed() {\n\
                 \u{20}   // vroom-lint: allow(sim-purity) -- index-ordered pool\n\
                 \u{20}   std::thread::scope(|s| { s.spawn(|| {}); });\n\
                 }\n",
            ),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "sim-purity");
        assert_eq!(v[0].path, "crates/vroom/src/experiment.rs");
        assert!(v[0].message.contains("wall-clock"), "{}", v[0].message);
    }

    #[test]
    fn bench_and_intern_crates_are_outside_sim_purity() {
        // Wall-clock timing is legal in the perf harness and the intern
        // crate even when name-based resolution ties a sim entrypoint to a
        // same-named fn there; the identical shape in any other crate is
        // still flagged (see wall_clock_in_helper_called_from_sim_entrypoint).
        let v = analyze(&[
            (
                "crates/vroom/src/experiment.rs",
                "pub fn fig99() { sample(); warm(); }\n",
            ),
            (
                "crates/bench/src/bin/vroom_bench.rs",
                "pub fn sample() { let t = Instant::now(); }\n",
            ),
            (
                "crates/intern/src/lib.rs",
                "pub fn warm() { let t = Instant::now(); }\n",
            ),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn panic_reachable_from_wire_accept_loop() {
        let v = analyze(&[
            (
                "crates/server/src/wire.rs",
                "pub fn serve() { decode_frame(); }\n",
            ),
            (
                "crates/http2/src/frame.rs",
                "pub fn decode_frame() { let x: Option<u8> = None; x.unwrap(); }\n",
            ),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "panic-reachable");
        assert!(v[0].message.contains("server::serve"));
    }

    #[test]
    fn panic_outside_wire_reach_is_clean() {
        let v = analyze(&[(
            "crates/pages/src/model.rs",
            "pub fn depth(v: &[u32]) -> u32 { v[0] }\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn protocol_match_catch_all_flagged() {
        let v = analyze(&[(
            "crates/http2/src/frame.rs",
            "pub enum FrameType { Data, Headers, Ping }\n\
             pub fn name(t: FrameType) -> u8 {\n\
                 match t { FrameType::Data => 0, _ => 1 }\n\
             }\n",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "protocol-exhaustive");
        assert!(v[0].message.contains("catch-all"));
    }

    #[test]
    fn protocol_match_missing_variant_flagged() {
        let v = analyze(&[(
            "crates/http2/src/frame.rs",
            "pub enum StreamState { Idle, Open, Closed }\n\
             pub fn f(s: StreamState) -> u8 {\n\
                 match s { StreamState::Idle => 0, StreamState::Open => 1 }\n\
             }\n",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("Closed"), "{}", v[0].message);
    }

    #[test]
    fn exhaustive_protocol_match_and_waivers_pass() {
        let v = analyze(&[(
            "crates/http2/src/frame.rs",
            "pub enum FrameType { Data, Headers }\n\
             pub fn a(t: FrameType) -> u8 {\n\
                 match t { FrameType::Data => 0, FrameType::Headers => 1 }\n\
             }\n\
             pub fn b(t: FrameType) -> u8 {\n\
                 // vroom-lint: allow(protocol-exhaustive) -- collapse is the point here\n\
                 match t { FrameType::Data => 0, _ => 1 }\n\
             }\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn hot_path_alloc_ranks_loop_allocs_above_once_per_call() {
        // Two allocs reachable from the hpack encode root: the one inside a
        // loop must rank 1, the once-per-call one rank 2.
        let v = analyze(&[(
            "crates/hpack/src/encoder.rs",
            "pub fn encode(fields: &[u8]) { once(); per_field(fields); }\n\
             fn once() -> String { let s = name_of(); s.to_owned() }\n\
             fn name_of() -> String { String::new() }\n\
             fn per_field(fields: &[u8]) {\n\
                 for f in fields { let _ = f.to_string(); }\n\
             }\n",
        )]);
        let hot: Vec<&Violation> = v.iter().filter(|v| v.rule == "hot-path-alloc").collect();
        assert_eq!(hot.len(), 2, "{v:?}");
        let per_field = hot.iter().find(|v| v.line == 5).unwrap();
        let once = hot.iter().find(|v| v.line == 2).unwrap();
        assert!(
            per_field.message.contains("loop depth 1, rank 1 of 2"),
            "{}",
            per_field.message
        );
        assert!(
            once.message.contains("loop depth 0, rank 2 of 2"),
            "{}",
            once.message
        );
        assert!(once.message.contains("hpack::encode"), "{}", once.message);
    }

    #[test]
    fn hot_path_alloc_sees_hidden_helper_two_hops_away() {
        let v = analyze(&[
            (
                "crates/server/src/wire.rs",
                "fn serve_connection() { assemble(); }\n",
            ),
            (
                "crates/http2/src/util.rs",
                "pub fn assemble() { deep_copy(); }\n\
                 fn deep_copy() -> Vec<u8> { b\"x\".to_vec() }\n",
            ),
        ]);
        let hot: Vec<&Violation> = v.iter().filter(|v| v.rule == "hot-path-alloc").collect();
        assert_eq!(hot.len(), 1, "{v:?}");
        assert_eq!(hot[0].path, "crates/http2/src/util.rs");
        assert!(
            hot[0].message.contains("server::serve_connection"),
            "{}",
            hot[0].message
        );
        assert!(
            hot[0].message.contains("`http2::assemble`"),
            "{}",
            hot[0].message
        );
    }

    #[test]
    fn hot_path_alloc_honors_waivers_and_exempt_prefixes() {
        let v = analyze(&[
            (
                "crates/hpack/src/decoder.rs",
                "pub fn decode() { copy_field(); report(); }\n\
                 fn copy_field() -> Vec<u8> {\n\
                 \u{20}   // vroom-lint: allow(hot-path-alloc) -- contiguous reassembly buffer\n\
                 \u{20}   b\"x\".to_vec()\n\
                 }\n",
            ),
            (
                "crates/bench/src/report.rs",
                "pub fn report() -> String { b\"x\".to_vec(); String::from(\"y\") }\n",
            ),
        ]);
        let hot: Vec<&Violation> = v.iter().filter(|v| v.rule == "hot-path-alloc").collect();
        assert!(hot.is_empty(), "{v:?}");
    }

    #[test]
    fn allocs_not_reachable_from_any_hot_root_are_clean() {
        let v = analyze(&[(
            "crates/pages/src/model.rs",
            "pub fn build() -> String { format!(\"x\") }\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn non_protocol_crates_matches_ignored() {
        let v = analyze(&[(
            "crates/browser/src/engine.rs",
            "pub enum Event { A, B }\n\
             pub fn f(e: Event) -> u8 { match e { Event::A => 0, _ => 1 } }\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }
}
