//! Integration tests for the analyzer: fixture golden files and the
//! cold-vs-cached determinism guarantee.
//!
//! Each directory under `tests/fixtures/` is one case: a set of `.rs` lint
//! inputs (never compiled — the workspace walker skips `fixtures/` dirs)
//! plus an `expected.txt` listing the findings as `rule path:line` lines.
//! The first line of every fixture file is a `// path: <virtual-path>`
//! directive assigning its position in the pretend workspace, which is what
//! the rules key their scoping on; the directive line stays in the source so
//! diagnostic line numbers match the on-disk file.

#![forbid(unsafe_code)]

use std::fs;
use std::path::{Path, PathBuf};
use vroom_lint::source::SourceFile;
use vroom_lint::{analyze_with, sarif, Options};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Load one case directory: (fixture sources, expected finding lines).
fn load_case(dir: &Path) -> (Vec<SourceFile>, Vec<String>) {
    let mut files = Vec::new();
    let mut expected = Vec::new();
    let mut entries: Vec<_> = fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("reading {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text =
            fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        if name == "expected.txt" {
            expected = text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_string)
                .collect();
        } else if name.ends_with(".rs") {
            let first = text.lines().next().unwrap_or("");
            let vpath = first
                .strip_prefix("// path: ")
                .unwrap_or_else(|| panic!("{} is missing its `// path:` directive", path.display()))
                .trim()
                .to_string();
            files.push(SourceFile {
                path: vpath,
                source: text,
            });
        }
    }
    assert!(!files.is_empty(), "no fixtures in {}", dir.display());
    (files, expected)
}

#[test]
fn fixture_golden() {
    let mut cases: Vec<_> = fs::read_dir(fixtures_dir())
        .expect("tests/fixtures exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.is_dir())
        .collect();
    cases.sort();
    assert!(!cases.is_empty(), "no fixture cases found");
    for case in cases {
        let (files, expected) = load_case(&case);
        let got: Vec<String> = vroom_lint::analyze_sources(&files)
            .iter()
            .map(|v| format!("{} {}:{}", v.rule, v.path, v.line))
            .collect();
        assert_eq!(
            got,
            expected,
            "case {} diverged from expected.txt",
            case.file_name().unwrap().to_string_lossy()
        );
    }
}

/// The golden file pins *where* hot-path-alloc fires; this pins the ranking:
/// the loop-gated alloc must outrank the once-per-call one, and the chain
/// back to the configured root must be named in the message.
#[test]
fn hot_path_alloc_rank_orders_loop_over_once() {
    let (files, _) = load_case(&fixtures_dir().join("hot_path_alloc_rank"));
    let v = vroom_lint::analyze_sources(&files);
    let hot: Vec<_> = v.iter().filter(|v| v.rule == "hot-path-alloc").collect();
    assert_eq!(hot.len(), 2, "{v:?}");
    let in_loop = hot.iter().find(|v| v.line == 14).expect("loop alloc");
    let once = hot.iter().find(|v| v.line == 8).expect("once alloc");
    assert!(
        in_loop.message.contains("loop depth 1, rank 1 of 2"),
        "{}",
        in_loop.message
    );
    assert!(
        once.message.contains("loop depth 0, rank 2 of 2"),
        "{}",
        once.message
    );
    assert!(once.message.contains("encode"), "{}", once.message);
}

/// `--rules` is the CI contract for gating a single family: an unknown name
/// must exit 2 (usage error, distinct from exit 1 = findings), and a valid
/// family must run the full pipeline filtered to it.
#[test]
fn rules_flag_exit_codes() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf();
    let run = |args: &[&str]| {
        std::process::Command::new(env!("CARGO_BIN_EXE_vroom-lint"))
            .args(args)
            .current_dir(&root)
            .output()
            .expect("spawn vroom-lint")
    };

    let bad = run(&["--rules", "no-such-family", "--no-cache"]);
    assert_eq!(
        bad.status.code(),
        Some(2),
        "unknown family is a usage error"
    );
    let err = String::from_utf8_lossy(&bad.stderr);
    assert!(
        err.contains("no-such-family") && err.contains("lock-safety"),
        "usage error names the bad token and the real families: {err}"
    );

    let missing = run(&["--rules"]);
    assert_eq!(
        missing.status.code(),
        Some(2),
        "missing list is a usage error"
    );

    let ok = run(&["--rules", "lock-safety", "--no-cache"]);
    assert_eq!(
        ok.status.code(),
        Some(0),
        "lock-safety must be clean on the workspace itself: {}{}",
        String::from_utf8_lossy(&ok.stdout),
        String::from_utf8_lossy(&ok.stderr)
    );
}

/// The incremental cache must be behaviorally invisible: a cold run, the run
/// that populates the cache, a fully warm replay, and a run over a corrupted
/// cache file must all render byte-identical SARIF.
#[test]
fn cached_run_is_byte_identical_to_cold() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf();
    let tmp = std::env::temp_dir().join(format!("vroom-lint-itest-{}", std::process::id()));
    fs::create_dir_all(&tmp).expect("temp dir");
    let cache_path = tmp.join("cache.json");
    let cached = Options {
        cache: Some(cache_path.clone()),
        rules: None,
    };

    let render = |opts: &Options| {
        let report = analyze_with(&root, opts).expect("workspace lint run");
        sarif::render(&report)
    };

    let cold = render(&Options::default());
    let populate = render(&cached);
    assert!(cache_path.is_file(), "populate run wrote the cache");
    let warm = render(&cached);
    assert_eq!(cold, populate, "cache-populating run diverged from cold");
    assert_eq!(cold, warm, "warm replay diverged from cold");

    fs::write(&cache_path, "{ garbage").expect("corrupt the cache");
    let recovered = render(&cached);
    assert_eq!(
        cold, recovered,
        "corrupted cache must be ignored, not trusted"
    );

    fs::remove_dir_all(&tmp).ok();
}
