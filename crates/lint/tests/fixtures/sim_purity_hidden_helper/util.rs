// path: crates/net/src/util.rs
pub fn stamp_ms() -> u128 {
    std::time::Instant::now().elapsed().as_millis()
}
