// path: crates/sim/src/engine.rs
//! Fixture: the acceptance criterion. `Instant::now()` has been "tidied"
//! into a helper one crate away; the call-graph analysis must still flag
//! the effect at its site, with the chain back to the sim entrypoint.
pub struct Engine;

impl Engine {
    pub fn run(&mut self) -> u128 {
        stamp_ms()
    }
}
