// path: crates/sim/src/rng.rs
pub fn jitter() -> u64 {
    // vroom-lint: allow(sim-purity) -- fixture: sanctioned ambient randomness with an explicit reason
    fastrand::u64(..)
}
