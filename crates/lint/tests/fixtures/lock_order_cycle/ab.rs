// path: crates/server/src/ab.rs
//! Seeded AB/BA acquisition cycle: two paths take the same pair of locks
//! in opposite orders.
use std::sync::Mutex;

pub struct Pair {
    pub a: Mutex<u64>,
    pub b: Mutex<u64>,
}

pub fn forward(p: &Pair) -> u64 {
    let ga = p.a.lock();
    let gb = p.b.lock();
    *ga + *gb
}

pub fn backward(p: &Pair) -> u64 {
    let gb = p.b.lock();
    let ga = p.a.lock();
    *ga + *gb
}
