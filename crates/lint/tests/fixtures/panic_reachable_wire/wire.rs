// path: crates/server/src/wire.rs
//! Fixture: every non-test fn in this file is a panic-reachability root.
pub fn accept_loop() {
    serve_one();
}

fn serve_one() {
    decode_frame();
}
