// path: crates/http2/src/frame.rs
pub fn decode_frame() -> u8 {
    let value: Option<u8> = None;
    value.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u8> = Some(1);
        v.unwrap();
    }
}
