// path: crates/server/src/assemble.rs
pub fn stage_frames(frames: &[u8]) -> usize {
    staged_payload(frames).len()
}

fn staged_payload(frames: &[u8]) -> Vec<u8> {
    frames.to_vec()
}
