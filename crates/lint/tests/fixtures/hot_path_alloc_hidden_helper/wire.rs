// path: crates/server/src/wire.rs
pub fn serve_connection(frames: &[u8]) -> usize {
    stage_frames(frames)
}
