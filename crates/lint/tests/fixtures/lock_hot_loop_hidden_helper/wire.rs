// path: crates/server/src/wire.rs
//! Serving root: `lock-in-hot-loop` reachability starts at
//! `handle_request` per the checked-in `[lock_roots]` config.

pub fn handle_request(st: &Shared) -> u64 {
    tally(st)
}
