// path: crates/fleet/src/tally.rs
//! Hidden helper in another crate: a per-iteration lock acquisition the
//! root-side reviewer never sees in the serving diff.
use std::sync::Mutex;

pub struct Shared {
    pub counts: Mutex<Vec<u64>>,
}

pub fn tally(st: &Shared) -> u64 {
    let mut total = 0;
    for _ in 0..4 {
        let c = st.counts.lock();
        total += c.len();
    }
    total
}
