// path: crates/hpack/src/encoder.rs
pub fn encode(fields: &[u8]) -> usize {
    banner_len() + body_len(fields)
}

fn banner_len() -> usize {
    let s = "hpack";
    s.to_owned().len()
}

fn body_len(fields: &[u8]) -> usize {
    let mut n = 0;
    for f in fields {
        n += f.to_string().len();
    }
    n
}
