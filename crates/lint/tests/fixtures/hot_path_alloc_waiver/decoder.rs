// path: crates/hpack/src/decoder.rs
pub fn decode(wire: &[u8]) -> Vec<u8> {
    let mut out = scratch_header();
    out.extend_from_slice(&tail_copy(wire));
    out
}

fn scratch_header() -> Vec<u8> {
    // vroom-lint: allow(hot-path-alloc) -- header scratch is built once per connection
    b"scratch".to_vec()
}

fn tail_copy(wire: &[u8]) -> Vec<u8> {
    wire.to_vec()
}
