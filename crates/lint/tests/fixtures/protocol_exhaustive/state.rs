// path: crates/http2/src/state.rs
pub enum StreamState {
    Idle,
    Open,
    Closed,
}

pub fn collapse(s: StreamState) -> u8 {
    match s {
        StreamState::Idle => 0,
        _ => 1,
    }
}

pub fn partial(s: StreamState) -> u8 {
    match s {
        StreamState::Idle => 0,
        StreamState::Open => 1,
    }
}

pub fn full(s: StreamState) -> u8 {
    match s {
        StreamState::Idle => 0,
        StreamState::Open => 1,
        StreamState::Closed => 2,
    }
}

pub fn sanctioned(s: StreamState) -> u8 {
    // vroom-lint: allow(protocol-exhaustive) -- fixture: the collapse is deliberate here
    match s {
        StreamState::Idle => 0,
        _ => 1,
    }
}
