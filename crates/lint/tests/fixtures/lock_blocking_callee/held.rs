// path: crates/server/src/held.rs
//! A guard held across a call into a helper that blocks on a channel:
//! the diagnosis lands at the blocking site, naming the binding.
use std::sync::{mpsc::Receiver, Mutex};

pub struct Inbox {
    pub queue: Mutex<Vec<u64>>,
}

pub fn drain(inbox: &Inbox, rx: &Receiver<u64>) -> u64 {
    let q = inbox.queue.lock();
    let next = pull(rx);
    drop(q);
    next
}

fn pull(rx: &Receiver<u64>) -> u64 {
    rx.recv()
}
