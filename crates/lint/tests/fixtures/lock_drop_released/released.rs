// path: crates/server/src/released.rs
//! Negative check: `drop(guard)` before the blocking call releases the
//! lock, and guards in disjoint functions never interact.
use std::sync::{mpsc::Receiver, Mutex};

pub struct Inbox {
    pub queue: Mutex<Vec<u64>>,
}

pub fn drain(inbox: &Inbox, rx: &Receiver<u64>) -> u64 {
    let q = inbox.queue.lock();
    let backlog = q.len();
    drop(q);
    wait(rx, backlog)
}

fn wait(rx: &Receiver<u64>, n: u64) -> u64 {
    let mut got = 0;
    for _ in 0..n {
        got += rx.recv();
    }
    got
}

pub fn first(inbox: &Inbox) -> u64 {
    let q = inbox.queue.lock();
    q.len()
}
