// path: crates/browser/src/pipeline.rs
//! Fixture: well-behaved code produces no findings.
use std::collections::BTreeMap;

pub fn ordered_sum(m: &BTreeMap<u32, u64>) -> u64 {
    m.values().sum()
}
