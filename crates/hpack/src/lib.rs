//! `vroom-hpack` — a from-scratch implementation of HPACK, the header
//! compression format for HTTP/2 (RFC 7541).
//!
//! Built as a substrate for the Vroom reproduction: Vroom's dependency hints
//! travel as HTTP response headers (`Link`, `x-semi-important`,
//! `x-unimportant`), so the wire-level demos need real header compression.
//!
//! The crate implements the full specification:
//!
//! * prefix-coded integers (§5.1) with overflow hardening,
//! * Huffman coding with the canonical Appendix B table, including padding
//!   and EOS validation (§5.2),
//! * the static table (Appendix A) and the size-bounded dynamic table with
//!   FIFO eviction (§4),
//! * all field representations: indexed, incremental-indexing literal,
//!   non-indexed literal, never-indexed literal, and dynamic table size
//!   updates (§6),
//! * a stateful [`Encoder`]/[`Decoder`] pair whose outputs are verified
//!   byte-for-byte against the RFC's Appendix C examples.
//!
//! # Example
//!
//! ```
//! use vroom_hpack::{Encoder, Decoder, HeaderField};
//!
//! let mut enc = Encoder::new();
//! let mut dec = Decoder::new();
//! let headers = vec![
//!     HeaderField::new(":status", "200"),
//!     HeaderField::new("link", "</app.js>; rel=preload; as=script"),
//! ];
//! let wire = enc.encode(&headers);
//! assert_eq!(dec.decode(&wire).unwrap(), headers);
//! ```

#![forbid(unsafe_code)]

pub mod decoder;
pub mod encoder;
pub mod huffman;
pub mod integer;
pub mod table;

pub use decoder::Decoder;
pub use encoder::Encoder;

use core::fmt;
use vroom_intern::SharedStr;

/// One HTTP header field as seen by HPACK.
///
/// Name and value are refcounted [`SharedStr`]s: handing a field from the
/// decoder to the connection to the application — or from a table hit back
/// to the caller — bumps a count instead of copying header bytes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HeaderField {
    /// Field name (lower-case by HTTP/2 convention; not enforced here).
    pub name: SharedStr,
    /// Field value.
    pub value: SharedStr,
    /// Whether the field must never be indexed (RFC 7541 §7.1.3).
    pub sensitive: bool,
}

impl HeaderField {
    /// A regular (indexable) field.
    pub fn new(name: impl Into<SharedStr>, value: impl Into<SharedStr>) -> Self {
        HeaderField {
            name: name.into(),
            value: value.into(),
            sensitive: false,
        }
    }

    /// A field that must be encoded never-indexed (e.g. credentials).
    pub fn sensitive(name: impl Into<SharedStr>, value: impl Into<SharedStr>) -> Self {
        HeaderField {
            name: name.into(),
            value: value.into(),
            sensitive: true,
        }
    }
}

/// HPACK decoding errors. Any of these is a `COMPRESSION_ERROR` at the
/// HTTP/2 connection level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// Input ended inside a field.
    Truncated,
    /// Prefix-coded integer exceeded the implementation limit.
    IntegerOverflow,
    /// Invalid Huffman coding (bad padding or explicit EOS).
    HuffmanDecode,
    /// Index pointing outside the static + dynamic tables.
    InvalidIndex(u64),
    /// Dynamic table size update exceeding the protocol limit.
    SizeUpdateTooLarge(u64),
    /// Dynamic table size update after the first header field.
    SizeUpdateNotAtStart,
    /// Decoded header list exceeds the configured cap.
    HeaderListTooLarge,
    /// Decoded string is not valid UTF-8 (implementation restriction).
    InvalidString,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Truncated => write!(f, "header block truncated"),
            Error::IntegerOverflow => write!(f, "prefix integer too large"),
            Error::HuffmanDecode => write!(f, "invalid huffman coding"),
            Error::InvalidIndex(i) => write!(f, "invalid table index {i}"),
            Error::SizeUpdateTooLarge(s) => write!(f, "table size update {s} above limit"),
            Error::SizeUpdateNotAtStart => write!(f, "table size update after first field"),
            Error::HeaderListTooLarge => write!(f, "header list exceeds size limit"),
            Error::InvalidString => write!(f, "header string is not valid utf-8"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn header_strategy() -> impl Strategy<Value = HeaderField> {
        // Header-ish charset: printable ASCII, lowercase-biased names.
        let name = proptest::string::string_regex("[a-z][a-z0-9-]{0,30}").unwrap();
        let value = proptest::string::string_regex("[ -~]{0,120}").unwrap();
        (name, value, any::<bool>()).prop_map(|(n, v, s)| HeaderField {
            name: n.into(),
            value: v.into(),
            sensitive: s,
        })
    }

    proptest! {
        /// Any sequence of header blocks roundtrips through a stateful
        /// encoder/decoder pair.
        #[test]
        fn stateful_roundtrip(blocks in proptest::collection::vec(
            proptest::collection::vec(header_strategy(), 0..12), 1..6)) {
            let mut enc = Encoder::new();
            let mut dec = Decoder::new();
            for headers in &blocks {
                let wire = enc.encode(headers);
                let back = dec.decode(&wire).unwrap();
                prop_assert_eq!(&back, headers);
            }
        }

        /// Huffman coding roundtrips arbitrary bytes.
        #[test]
        fn huffman_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..500)) {
            let mut encoded = Vec::new();
            huffman::encode(&data, &mut encoded);
            let mut decoded = Vec::new();
            huffman::decode(&encoded, &mut decoded).unwrap();
            prop_assert_eq!(decoded, data);
        }

        /// The decoder never panics on arbitrary garbage.
        #[test]
        fn decoder_is_total(garbage in proptest::collection::vec(any::<u8>(), 0..300)) {
            let mut dec = Decoder::new();
            let _ = dec.decode(&garbage);
        }

        /// Integers roundtrip at every prefix width.
        #[test]
        fn integer_roundtrip(v in 0u64..=integer::MAX_INT, prefix in 1u8..=8) {
            let mut out = Vec::new();
            integer::encode(v, prefix, 0, &mut out);
            let (got, used) = integer::decode(&out, prefix).unwrap();
            prop_assert_eq!(got, v);
            prop_assert_eq!(used, out.len());
        }
    }
}
