//! Huffman coding for HPACK string literals (RFC 7541 §5.2, Appendix B).
//!
//! Encoding packs each symbol's canonical code MSB-first; the final partial
//! octet is padded with the high bits of EOS (all ones). Decoding walks the
//! bitstream against a flattened binary trie built once at startup.

use crate::Error;

/// `(code, bit_length)` for each of the 256 octets plus EOS (index 256),
/// straight from RFC 7541 Appendix B.
pub const CODES: [(u32, u8); 257] = [
    (0x1ff8, 13),
    (0x7fffd8, 23),
    (0xfffffe2, 28),
    (0xfffffe3, 28),
    (0xfffffe4, 28),
    (0xfffffe5, 28),
    (0xfffffe6, 28),
    (0xfffffe7, 28),
    (0xfffffe8, 28),
    (0xffffea, 24),
    (0x3ffffffc, 30),
    (0xfffffe9, 28),
    (0xfffffea, 28),
    (0x3ffffffd, 30),
    (0xfffffeb, 28),
    (0xfffffec, 28),
    (0xfffffed, 28),
    (0xfffffee, 28),
    (0xfffffef, 28),
    (0xffffff0, 28),
    (0xffffff1, 28),
    (0xffffff2, 28),
    (0x3ffffffe, 30),
    (0xffffff3, 28),
    (0xffffff4, 28),
    (0xffffff5, 28),
    (0xffffff6, 28),
    (0xffffff7, 28),
    (0xffffff8, 28),
    (0xffffff9, 28),
    (0xffffffa, 28),
    (0xffffffb, 28),
    (0x14, 6),
    (0x3f8, 10),
    (0x3f9, 10),
    (0xffa, 12),
    (0x1ff9, 13),
    (0x15, 6),
    (0xf8, 8),
    (0x7fa, 11),
    (0x3fa, 10),
    (0x3fb, 10),
    (0xf9, 8),
    (0x7fb, 11),
    (0xfa, 8),
    (0x16, 6),
    (0x17, 6),
    (0x18, 6),
    (0x0, 5),
    (0x1, 5),
    (0x2, 5),
    (0x19, 6),
    (0x1a, 6),
    (0x1b, 6),
    (0x1c, 6),
    (0x1d, 6),
    (0x1e, 6),
    (0x1f, 6),
    (0x5c, 7),
    (0xfb, 8),
    (0x7ffc, 15),
    (0x20, 6),
    (0xffb, 12),
    (0x3fc, 10),
    (0x1ffa, 13),
    (0x21, 6),
    (0x5d, 7),
    (0x5e, 7),
    (0x5f, 7),
    (0x60, 7),
    (0x61, 7),
    (0x62, 7),
    (0x63, 7),
    (0x64, 7),
    (0x65, 7),
    (0x66, 7),
    (0x67, 7),
    (0x68, 7),
    (0x69, 7),
    (0x6a, 7),
    (0x6b, 7),
    (0x6c, 7),
    (0x6d, 7),
    (0x6e, 7),
    (0x6f, 7),
    (0x70, 7),
    (0x71, 7),
    (0x72, 7),
    (0xfc, 8),
    (0x73, 7),
    (0xfd, 8),
    (0x1ffb, 13),
    (0x7fff0, 19),
    (0x1ffc, 13),
    (0x3ffc, 14),
    (0x22, 6),
    (0x7ffd, 15),
    (0x3, 5),
    (0x23, 6),
    (0x4, 5),
    (0x24, 6),
    (0x5, 5),
    (0x25, 6),
    (0x26, 6),
    (0x27, 6),
    (0x6, 5),
    (0x74, 7),
    (0x75, 7),
    (0x28, 6),
    (0x29, 6),
    (0x2a, 6),
    (0x7, 5),
    (0x2b, 6),
    (0x76, 7),
    (0x2c, 6),
    (0x8, 5),
    (0x9, 5),
    (0x2d, 6),
    (0x77, 7),
    (0x78, 7),
    (0x79, 7),
    (0x7a, 7),
    (0x7b, 7),
    (0x7ffe, 15),
    (0x7fc, 11),
    (0x3ffd, 14),
    (0x1ffd, 13),
    (0xffffffc, 28),
    (0xfffe6, 20),
    (0x3fffd2, 22),
    (0xfffe7, 20),
    (0xfffe8, 20),
    (0x3fffd3, 22),
    (0x3fffd4, 22),
    (0x3fffd5, 22),
    (0x7fffd9, 23),
    (0x3fffd6, 22),
    (0x7fffda, 23),
    (0x7fffdb, 23),
    (0x7fffdc, 23),
    (0x7fffdd, 23),
    (0x7fffde, 23),
    (0xffffeb, 24),
    (0x7fffdf, 23),
    (0xffffec, 24),
    (0xffffed, 24),
    (0x3fffd7, 22),
    (0x7fffe0, 23),
    (0xffffee, 24),
    (0x7fffe1, 23),
    (0x7fffe2, 23),
    (0x7fffe3, 23),
    (0x7fffe4, 23),
    (0x1fffdc, 21),
    (0x3fffd8, 22),
    (0x7fffe5, 23),
    (0x3fffd9, 22),
    (0x7fffe6, 23),
    (0x7fffe7, 23),
    (0xffffef, 24),
    (0x3fffda, 22),
    (0x1fffdd, 21),
    (0xfffe9, 20),
    (0x3fffdb, 22),
    (0x3fffdc, 22),
    (0x7fffe8, 23),
    (0x7fffe9, 23),
    (0x1fffde, 21),
    (0x7fffea, 23),
    (0x3fffdd, 22),
    (0x3fffde, 22),
    (0xfffff0, 24),
    (0x1fffdf, 21),
    (0x3fffdf, 22),
    (0x7fffeb, 23),
    (0x7fffec, 23),
    (0x1fffe0, 21),
    (0x1fffe1, 21),
    (0x3fffe0, 22),
    (0x1fffe2, 21),
    (0x7fffed, 23),
    (0x3fffe1, 22),
    (0x7fffee, 23),
    (0x7fffef, 23),
    (0xfffea, 20),
    (0x3fffe2, 22),
    (0x3fffe3, 22),
    (0x3fffe4, 22),
    (0x7ffff0, 23),
    (0x3fffe5, 22),
    (0x3fffe6, 22),
    (0x7ffff1, 23),
    (0x3ffffe0, 26),
    (0x3ffffe1, 26),
    (0xfffeb, 20),
    (0x7fff1, 19),
    (0x3fffe7, 22),
    (0x7ffff2, 23),
    (0x3fffe8, 22),
    (0x1ffffec, 25),
    (0x3ffffe2, 26),
    (0x3ffffe3, 26),
    (0x3ffffe4, 26),
    (0x7ffffde, 27),
    (0x7ffffdf, 27),
    (0x3ffffe5, 26),
    (0xfffff1, 24),
    (0x1ffffed, 25),
    (0x7fff2, 19),
    (0x1fffe3, 21),
    (0x3ffffe6, 26),
    (0x7ffffe0, 27),
    (0x7ffffe1, 27),
    (0x3ffffe7, 26),
    (0x7ffffe2, 27),
    (0xfffff2, 24),
    (0x1fffe4, 21),
    (0x1fffe5, 21),
    (0x3ffffe8, 26),
    (0x3ffffe9, 26),
    (0xffffffd, 28),
    (0x7ffffe3, 27),
    (0x7ffffe4, 27),
    (0x7ffffe5, 27),
    (0xfffec, 20),
    (0xfffff3, 24),
    (0xfffed, 20),
    (0x1fffe6, 21),
    (0x3fffe9, 22),
    (0x1fffe7, 21),
    (0x1fffe8, 21),
    (0x7ffff3, 23),
    (0x3fffea, 22),
    (0x3fffeb, 22),
    (0x1ffffee, 25),
    (0x1ffffef, 25),
    (0xfffff4, 24),
    (0xfffff5, 24),
    (0x3ffffea, 26),
    (0x7ffff4, 23),
    (0x3ffffeb, 26),
    (0x7ffffe6, 27),
    (0x3ffffec, 26),
    (0x3ffffed, 26),
    (0x7ffffe7, 27),
    (0x7ffffe8, 27),
    (0x7ffffe9, 27),
    (0x7ffffea, 27),
    (0x7ffffeb, 27),
    (0xffffffe, 28),
    (0x7ffffec, 27),
    (0x7ffffed, 27),
    (0x7ffffee, 27),
    (0x7ffffef, 27),
    (0x7fffff0, 27),
    (0x3ffffee, 26),
    (0x3fffffff, 30),
];

/// Length in bytes of the Huffman encoding of `data`.
pub fn encoded_len(data: &[u8]) -> usize {
    // vroom-lint: allow(panic-reachable) -- CODES has 257 entries and the index is a u8 (max 255); the bound holds by construction
    let bits: u64 = data.iter().map(|&b| CODES[b as usize].1 as u64).sum();
    bits.div_ceil(8) as usize
}

/// Huffman-encode `data`, appending to `out`.
pub fn encode(data: &[u8], out: &mut Vec<u8>) {
    let mut acc: u64 = 0; // bits pending, left-aligned within `nbits`
    let mut nbits: u32 = 0;
    for &b in data {
        // vroom-lint: allow(panic-reachable) -- CODES has 257 entries and the index is a u8 (max 255); the bound holds by construction
        let (code, len) = CODES[b as usize];
        acc = (acc << len) | code as u64;
        nbits += len as u32;
        while nbits >= 8 {
            nbits -= 8;
            out.push((acc >> nbits) as u8);
        }
    }
    if nbits > 0 {
        // Pad with the MSBs of EOS (all ones).
        let pad = 8 - nbits;
        out.push(((acc << pad) as u8) | ((1 << pad) - 1));
    }
}

/// Node of the flattened decode trie: each node has two child slots.
/// Values >= 0x8000 encode a decoded symbol; 0 marks an absent child
/// (node 0 is the root and can never be a child).
#[derive(Clone, Copy)]
struct Node {
    children: [u16; 2],
}

struct Trie {
    nodes: Vec<Node>,
}

impl Trie {
    fn build() -> Trie {
        let mut nodes = vec![Node { children: [0, 0] }];
        for (sym, &(code, len)) in CODES.iter().enumerate() {
            let mut at = 0usize;
            for i in (0..len).rev() {
                let bit = ((code >> i) & 1) as usize;
                if i == 0 {
                    nodes[at].children[bit] = 0x8000 | sym as u16;
                } else {
                    let next = nodes[at].children[bit];
                    if next == 0 {
                        nodes.push(Node { children: [0, 0] });
                        let idx = (nodes.len() - 1) as u16;
                        nodes[at].children[bit] = idx;
                        at = idx as usize;
                    } else {
                        assert!(next & 0x8000 == 0, "prefix violation in Huffman table");
                        at = next as usize;
                    }
                }
            }
        }
        Trie { nodes }
    }
}

fn trie() -> &'static Trie {
    use std::sync::OnceLock;
    static TRIE: OnceLock<Trie> = OnceLock::new();
    TRIE.get_or_init(Trie::build)
}

/// Decode a Huffman-coded string.
///
/// Errors on: a decoded EOS symbol (RFC 7541 §5.2 — connection error), or
/// padding longer than 7 bits / not matching EOS prefix.
pub fn decode(data: &[u8], out: &mut Vec<u8>) -> Result<(), Error> {
    let trie = trie();
    let mut at = 0u16;
    let mut bits_since_symbol = 0u8; // for padding validation
    let mut padding_ones = true;
    for &byte in data {
        for i in (0..8).rev() {
            let bit = ((byte >> i) & 1) as usize;
            if bit == 0 {
                padding_ones = false;
            }
            let next = trie
                .nodes
                .get(at as usize)
                .and_then(|n| n.children.get(bit))
                .copied()
                .unwrap_or(0);
            if next == 0 {
                return Err(Error::HuffmanDecode);
            }
            if next & 0x8000 != 0 {
                let sym = next & 0x7fff;
                if sym == 256 {
                    return Err(Error::HuffmanDecode); // explicit EOS
                }
                out.push(sym as u8);
                at = 0;
                bits_since_symbol = 0;
                padding_ones = true;
            } else {
                at = next;
                bits_since_symbol += 1;
            }
        }
    }
    if bits_since_symbol > 7 || !padding_ones {
        return Err(Error::HuffmanDecode);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(s: &str) -> Vec<u8> {
        let mut out = Vec::new();
        encode(s.as_bytes(), &mut out);
        out
    }

    fn dec(bytes: &[u8]) -> Result<String, Error> {
        let mut out = Vec::new();
        decode(bytes, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    /// The code must be a complete, prefix-free code: Kraft sum exactly 1.
    #[test]
    fn table_is_complete_prefix_code() {
        let sum: f64 = CODES.iter().map(|&(_, len)| 2f64.powi(-(len as i32))).sum();
        assert!((sum - 1.0).abs() < 1e-12, "Kraft sum {sum}");
        // Prefix-freeness: building the trie asserts no code is a prefix of
        // another; force the build here.
        let _ = trie();
        // All codes fit in their stated lengths.
        for (i, &(code, len)) in CODES.iter().enumerate() {
            assert!(len >= 5 && len <= 30, "sym {i} has length {len}");
            assert!(u64::from(code) < (1u64 << len), "sym {i} code too wide");
        }
    }

    /// RFC 7541 §C.4.1.
    #[test]
    fn rfc_c41_www_example_com() {
        assert_eq!(
            enc("www.example.com"),
            [0xf1, 0xe3, 0xc2, 0xe5, 0xf2, 0x3a, 0x6b, 0xa0, 0xab, 0x90, 0xf4, 0xff]
        );
    }

    /// RFC 7541 §C.4.2.
    #[test]
    fn rfc_c42_no_cache() {
        assert_eq!(enc("no-cache"), [0xa8, 0xeb, 0x10, 0x64, 0x9c, 0xbf]);
    }

    /// RFC 7541 §C.4.3.
    #[test]
    fn rfc_c43_custom_key_value() {
        assert_eq!(
            enc("custom-key"),
            [0x25, 0xa8, 0x49, 0xe9, 0x5b, 0xa9, 0x7d, 0x7f]
        );
        assert_eq!(
            enc("custom-value"),
            [0x25, 0xa8, 0x49, 0xe9, 0x5b, 0xb8, 0xe8, 0xb4, 0xbf]
        );
    }

    /// RFC 7541 §C.6.1: date and response header values.
    #[test]
    fn rfc_c61_response_strings() {
        assert_eq!(enc("302"), [0x64, 0x02]);
        assert_eq!(enc("private"), [0xae, 0xc3, 0x77, 0x1a, 0x4b]);
        assert_eq!(
            enc("Mon, 21 Oct 2013 20:13:21 GMT"),
            [
                0xd0, 0x7a, 0xbe, 0x94, 0x10, 0x54, 0xd4, 0x44, 0xa8, 0x20, 0x05, 0x95, 0x04, 0x0b,
                0x81, 0x66, 0xe0, 0x82, 0xa6, 0x2d, 0x1b, 0xff
            ]
        );
        assert_eq!(
            enc("https://www.example.com"),
            [
                0x9d, 0x29, 0xad, 0x17, 0x18, 0x63, 0xc7, 0x8f, 0x0b, 0x97, 0xc8, 0xe9, 0xae, 0x82,
                0xae, 0x43, 0xd3
            ]
        );
    }

    #[test]
    fn roundtrip_ascii_and_binary() {
        for s in [
            "",
            "a",
            "hello world",
            "Link: </x/y.js>; rel=preload; as=script",
            "x-semi-important",
        ] {
            assert_eq!(dec(&enc(s)).unwrap(), s, "roundtrip {s:?}");
        }
        // All 256 octets.
        let all: Vec<u8> = (0..=255u8).collect();
        let mut out = Vec::new();
        encode(&all, &mut out);
        let mut back = Vec::new();
        decode(&out, &mut back).unwrap();
        assert_eq!(back, all);
    }

    #[test]
    fn encoded_len_matches_encode() {
        for s in ["", "a", "www.example.com", "0123456789~~~"] {
            assert_eq!(encoded_len(s.as_bytes()), enc(s).len(), "{s:?}");
        }
    }

    #[test]
    fn invalid_padding_rejected() {
        // 'w' = 1111000 (7 bits); pad bit of 0 is invalid (must be ones).
        let byte = 0b1111000_0u8;
        assert!(dec(&[byte]).is_err());
        // A full byte of padding (0xff after complete symbol) is > 7 bits...
        // encode "0" (00000 + 111 pad) then append 0xff: 8 extra pad bits.
        let mut bytes = enc("0");
        bytes.push(0xff);
        assert!(dec(&bytes).is_err());
    }

    #[test]
    fn eos_in_stream_rejected() {
        // EOS = 30 bits of ones followed by 2 more one bits to fill 4 bytes.
        assert!(dec(&[0xff, 0xff, 0xff, 0xff]).is_err());
    }

    #[test]
    fn valid_padding_accepted() {
        // '0' encodes as 00000 + 3 one-bits pad = 0x07.
        assert_eq!(dec(&[0x07]).unwrap(), "0");
    }
}
