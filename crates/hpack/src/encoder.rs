//! HPACK encoder (RFC 7541 §6).
//!
//! Strategy: exact (name, value) matches are emitted as indexed fields;
//! everything else is emitted as a literal with incremental indexing (using a
//! name index when available) and inserted into the dynamic table — the same
//! strategy the RFC's Appendix C examples use, which lets the test suite
//! compare byte-for-byte against the spec. Fields marked `sensitive` are
//! emitted never-indexed (RFC 7541 §7.1.3).

use crate::huffman;
use crate::integer;
use crate::table::{self, DynamicTable};
use crate::HeaderField;

/// A stateful HPACK encoder for one connection direction.
#[derive(Debug)]
pub struct Encoder {
    table: DynamicTable,
    use_huffman: bool,
    pending_size_update: Option<usize>,
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Encoder {
    /// An encoder with the default 4096-byte dynamic table, Huffman enabled.
    pub fn new() -> Self {
        Encoder {
            table: DynamicTable::default(),
            use_huffman: true,
            pending_size_update: None,
        }
    }

    /// Disable Huffman coding of string literals (useful for debugging and
    /// for matching the RFC's plain-literal examples).
    pub fn with_huffman(mut self, on: bool) -> Self {
        self.use_huffman = on;
        self
    }

    /// Start from a specific dynamic-table size (e.g. from peer SETTINGS).
    pub fn with_max_table_size(mut self, size: usize) -> Self {
        self.table = DynamicTable::new(size);
        self
    }

    /// Request a dynamic table size change; emitted at the start of the next
    /// header block (RFC 7541 §4.2).
    pub fn set_max_table_size(&mut self, size: usize) {
        self.table.set_capacity_limit(size);
        self.pending_size_update = Some(size);
    }

    /// Encoder-side view of the dynamic table (for tests/diagnostics).
    pub fn table(&self) -> &DynamicTable {
        &self.table
    }

    /// Encode one complete header block.
    pub fn encode(&mut self, headers: &[HeaderField]) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(headers, &mut out);
        out
    }

    /// Encode one complete header block, appending to `out`.
    pub fn encode_into(&mut self, headers: &[HeaderField], out: &mut Vec<u8>) {
        if let Some(size) = self.pending_size_update.take() {
            integer::encode(size as u64, 5, 0b0010_0000, out);
            let ok = self.table.set_max_size(size);
            debug_assert!(ok, "pending update within our own limit");
        }
        for h in headers {
            self.encode_field(h, out);
        }
    }

    fn encode_field(&mut self, h: &HeaderField, out: &mut Vec<u8>) {
        if h.sensitive {
            // Literal never indexed, with a name index when possible.
            let name_idx = table::find_name(&self.table, &h.name).unwrap_or(0);
            integer::encode(name_idx as u64, 4, 0b0001_0000, out);
            if name_idx == 0 {
                self.encode_string(&h.name, out);
            }
            self.encode_string(&h.value, out);
            return;
        }
        if let Some(idx) = table::find(&self.table, &h.name, &h.value) {
            integer::encode(idx as u64, 7, 0b1000_0000, out);
            return;
        }
        // Literal with incremental indexing.
        let name_idx = table::find_name(&self.table, &h.name).unwrap_or(0);
        integer::encode(name_idx as u64, 6, 0b0100_0000, out);
        if name_idx == 0 {
            self.encode_string(&h.name, out);
        }
        self.encode_string(&h.value, out);
        // Refcount bumps: the table entry shares the field's bytes.
        self.table.insert(h.name.share(), h.value.share());
    }

    fn encode_string(&self, s: &str, out: &mut Vec<u8>) {
        let raw = s.as_bytes();
        if self.use_huffman {
            let hlen = huffman::encoded_len(raw);
            if hlen < raw.len() {
                integer::encode(hlen as u64, 7, 0b1000_0000, out);
                huffman::encode(raw, out);
                return;
            }
        }
        integer::encode(raw.len() as u64, 7, 0, out);
        out.extend_from_slice(raw);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HeaderField;

    fn h(name: &str, value: &str) -> HeaderField {
        HeaderField::new(name, value)
    }

    /// RFC 7541 §C.3: three requests on one connection, without Huffman.
    #[test]
    fn rfc_c3_request_examples() {
        let mut enc = Encoder::new().with_huffman(false);

        let block1 = enc.encode(&[
            h(":method", "GET"),
            h(":scheme", "http"),
            h(":path", "/"),
            h(":authority", "www.example.com"),
        ]);
        assert_eq!(
            block1,
            [
                0x82, 0x86, 0x84, 0x41, 0x0f, 0x77, 0x77, 0x77, 0x2e, 0x65, 0x78, 0x61, 0x6d, 0x70,
                0x6c, 0x65, 0x2e, 0x63, 0x6f, 0x6d
            ]
        );
        assert_eq!(enc.table().size(), 57);

        let block2 = enc.encode(&[
            h(":method", "GET"),
            h(":scheme", "http"),
            h(":path", "/"),
            h(":authority", "www.example.com"),
            h("cache-control", "no-cache"),
        ]);
        assert_eq!(
            block2,
            [0x82, 0x86, 0x84, 0xbe, 0x58, 0x08, 0x6e, 0x6f, 0x2d, 0x63, 0x61, 0x63, 0x68, 0x65]
        );
        assert_eq!(enc.table().size(), 110);

        let block3 = enc.encode(&[
            h(":method", "GET"),
            h(":scheme", "https"),
            h(":path", "/index.html"),
            h(":authority", "www.example.com"),
            h("custom-key", "custom-value"),
        ]);
        assert_eq!(
            block3,
            [
                0x82, 0x87, 0x85, 0xbf, 0x40, 0x0a, 0x63, 0x75, 0x73, 0x74, 0x6f, 0x6d, 0x2d, 0x6b,
                0x65, 0x79, 0x0c, 0x63, 0x75, 0x73, 0x74, 0x6f, 0x6d, 0x2d, 0x76, 0x61, 0x6c, 0x75,
                0x65
            ]
        );
        assert_eq!(enc.table().size(), 164);
    }

    /// RFC 7541 §C.4: the same requests with Huffman coding.
    #[test]
    fn rfc_c4_request_examples_huffman() {
        let mut enc = Encoder::new();

        let block1 = enc.encode(&[
            h(":method", "GET"),
            h(":scheme", "http"),
            h(":path", "/"),
            h(":authority", "www.example.com"),
        ]);
        assert_eq!(
            block1,
            [
                0x82, 0x86, 0x84, 0x41, 0x8c, 0xf1, 0xe3, 0xc2, 0xe5, 0xf2, 0x3a, 0x6b, 0xa0, 0xab,
                0x90, 0xf4, 0xff
            ]
        );

        let block2 = enc.encode(&[
            h(":method", "GET"),
            h(":scheme", "http"),
            h(":path", "/"),
            h(":authority", "www.example.com"),
            h("cache-control", "no-cache"),
        ]);
        assert_eq!(
            block2,
            [0x82, 0x86, 0x84, 0xbe, 0x58, 0x86, 0xa8, 0xeb, 0x10, 0x64, 0x9c, 0xbf]
        );

        let block3 = enc.encode(&[
            h(":method", "GET"),
            h(":scheme", "https"),
            h(":path", "/index.html"),
            h(":authority", "www.example.com"),
            h("custom-key", "custom-value"),
        ]);
        assert_eq!(
            block3,
            [
                0x82, 0x87, 0x85, 0xbf, 0x40, 0x88, 0x25, 0xa8, 0x49, 0xe9, 0x5b, 0xa9, 0x7d, 0x7f,
                0x89, 0x25, 0xa8, 0x49, 0xe9, 0x5b, 0xb8, 0xe8, 0xb4, 0xbf
            ]
        );
        assert_eq!(enc.table().size(), 164);
    }

    #[test]
    fn sensitive_fields_are_never_indexed() {
        let mut enc = Encoder::new().with_huffman(false);
        let block = enc.encode(&[HeaderField::sensitive("password", "hunter2")]);
        // 0001 0000 prefix, no name index, two plain literals.
        assert_eq!(block[0], 0x10);
        assert!(
            enc.table().is_empty(),
            "sensitive field must not be indexed"
        );
        // Known name should use a name index under the never-indexed form.
        let block2 = enc.encode(&[HeaderField::sensitive("authorization", "secret")]);
        assert_eq!(block2[0], 0x1f, "authorization is static index 23 >= 15");
    }

    #[test]
    fn size_update_emitted_at_block_start() {
        let mut enc = Encoder::new().with_huffman(false);
        enc.set_max_table_size(256);
        let block = enc.encode(&[h(":method", "GET")]);
        // 001 prefix with value 256: 0x3f 0xe1 0x01, then 0x82.
        assert_eq!(block, [0x3f, 0xe1, 0x01, 0x82]);
        assert_eq!(enc.table().max_size(), 256);
    }

    #[test]
    fn huffman_skipped_when_longer() {
        // A string of rare symbols would inflate under Huffman; the encoder
        // must fall back to a plain literal.
        let mut enc = Encoder::new();
        let value = "\u{1}\u{2}\u{3}"; // control chars: 23+ bits each
        let block = enc.encode(&[h("k", value)]);
        // Find the value string: last literal. Its length octet must not have
        // the H bit set.
        // name "k" is not in static table, so layout: 0x40, name str, value str.
        assert_eq!(block[0], 0x40);
        // name: huffman'd or not, 1 char -> plain is 1 byte, huffman 1 byte;
        // encoder requires strictly smaller, so plain: 0x01 'k'.
        assert_eq!(&block[1..3], &[0x01, b'k']);
        assert_eq!(block[3], 0x03, "plain literal, H bit clear");
    }
}
