//! HPACK decoder (RFC 7541 §6), with the hardening a server-facing decoder
//! needs: bounded header-list size, bounded integers, validated Huffman
//! padding, and dynamic-table size updates only where the spec allows them.

use crate::huffman;
use crate::integer;
use crate::table::{self, DynamicTable};
use crate::{Error, HeaderField};
use vroom_intern::SharedStr;

/// Default cap on the decoded header list (name + value + 32 per field),
/// mirroring `SETTINGS_MAX_HEADER_LIST_SIZE` semantics.
pub const DEFAULT_MAX_HEADER_LIST_SIZE: usize = 64 * 1024;

/// A stateful HPACK decoder for one connection direction.
#[derive(Debug)]
pub struct Decoder {
    table: DynamicTable,
    max_header_list_size: usize,
    /// Reused string-decode workspace: Huffman expansion and plain copies
    /// land here, so each literal string costs exactly one allocation (the
    /// final [`SharedStr`]) once the buffer has warmed up.
    scratch: Vec<u8>,
}

impl Default for Decoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Decoder {
    /// A decoder with the default 4096-byte dynamic table.
    pub fn new() -> Self {
        Decoder {
            table: DynamicTable::default(),
            max_header_list_size: DEFAULT_MAX_HEADER_LIST_SIZE,
            scratch: Vec::new(),
        }
    }

    /// Start from a specific dynamic-table size.
    pub fn with_max_table_size(mut self, size: usize) -> Self {
        self.table = DynamicTable::new(size);
        self
    }

    /// Cap the total decoded header list size.
    pub fn with_max_header_list_size(mut self, size: usize) -> Self {
        self.max_header_list_size = size;
        self
    }

    /// Announce a new protocol ceiling for the dynamic table
    /// (from our `SETTINGS_HEADER_TABLE_SIZE`).
    pub fn set_capacity_limit(&mut self, limit: usize) {
        self.table.set_capacity_limit(limit);
    }

    /// Decoder-side view of the dynamic table (for tests/diagnostics).
    pub fn table(&self) -> &DynamicTable {
        &self.table
    }

    /// Decode one complete header block.
    pub fn decode(&mut self, mut buf: &[u8]) -> Result<Vec<HeaderField>, Error> {
        let mut out = Vec::new();
        let mut list_size = 0usize;
        let mut seen_field = false;
        while let Some(&first) = buf.first() {
            let field = if first & 0b1000_0000 != 0 {
                // Indexed header field: refcounted handles to the table's
                // bytes, no copy.
                let (idx, used) = integer::decode(buf, 7)?;
                buf = buf.get(used..).ok_or(Error::Truncated)?;
                let (name, value) = table::resolve_shared(&self.table, idx as usize)
                    .ok_or(Error::InvalidIndex(idx))?;
                seen_field = true;
                HeaderField::new(name, value)
            } else if first & 0b0100_0000 != 0 {
                // Literal with incremental indexing; the table insert shares
                // the freshly decoded strings.
                let (name, value) = self.read_literal(&mut buf, 6)?;
                self.table.insert(name.share(), value.share());
                seen_field = true;
                HeaderField::new(name, value)
            } else if first & 0b0010_0000 != 0 {
                // Dynamic table size update — only before the first field.
                if seen_field {
                    return Err(Error::SizeUpdateNotAtStart);
                }
                let (size, used) = integer::decode(buf, 5)?;
                buf = buf.get(used..).ok_or(Error::Truncated)?;
                if !self.table.set_max_size(size as usize) {
                    return Err(Error::SizeUpdateTooLarge(size));
                }
                continue;
            } else {
                // Literal without indexing (0000) or never indexed (0001).
                let sensitive = first & 0b0001_0000 != 0;
                let (name, value) = self.read_literal(&mut buf, 4)?;
                seen_field = true;
                let mut f = HeaderField::new(name, value);
                f.sensitive = sensitive;
                f
            };
            list_size += field.name.len() + field.value.len() + 32;
            if list_size > self.max_header_list_size {
                return Err(Error::HeaderListTooLarge);
            }
            out.push(field);
        }
        Ok(out)
    }

    /// Read a literal field body: optional name index (at `prefix` bits),
    /// then name string if index was 0, then value string. An indexed name
    /// is a refcounted handle to the table's bytes.
    fn read_literal(
        &mut self,
        buf: &mut &[u8],
        prefix: u8,
    ) -> Result<(SharedStr, SharedStr), Error> {
        let (name_idx, used) = integer::decode(buf, prefix)?;
        *buf = buf.get(used..).ok_or(Error::Truncated)?;
        let name = if name_idx == 0 {
            self.read_string(buf)?
        } else {
            table::resolve_shared(&self.table, name_idx as usize)
                .ok_or(Error::InvalidIndex(name_idx))?
                .0
        };
        let value = self.read_string(buf)?;
        Ok((name, value))
    }

    /// Decode one string literal via the reused scratch buffer: the only
    /// allocation is the returned [`SharedStr`].
    fn read_string(&mut self, buf: &mut &[u8]) -> Result<SharedStr, Error> {
        let first = *buf.first().ok_or(Error::Truncated)?;
        let huffman_coded = first & 0b1000_0000 != 0;
        let (len, used) = integer::decode(buf, 7)?;
        *buf = buf.get(used..).ok_or(Error::Truncated)?;
        let len = len as usize;
        if buf.len() < len {
            return Err(Error::Truncated);
        }
        let (body, rest) = buf.split_at(len);
        *buf = rest;
        self.scratch.clear();
        if huffman_coded {
            huffman::decode(body, &mut self.scratch)?;
        } else {
            self.scratch.extend_from_slice(body);
        }
        let s = std::str::from_utf8(&self.scratch).map_err(|_| Error::InvalidString)?;
        Ok(SharedStr::from(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;
    use crate::HeaderField;

    fn fields(pairs: &[(&str, &str)]) -> Vec<HeaderField> {
        pairs.iter().map(|&(n, v)| HeaderField::new(n, v)).collect()
    }

    fn assert_decodes(dec: &mut Decoder, bytes: &[u8], expect: &[(&str, &str)]) {
        let got = dec.decode(bytes).unwrap();
        let got_pairs: Vec<(&str, &str)> = got
            .iter()
            .map(|f| (f.name.as_str(), f.value.as_str()))
            .collect();
        assert_eq!(got_pairs, expect.to_vec());
    }

    /// RFC 7541 §C.2.1: literal with indexing.
    #[test]
    fn rfc_c21_literal_with_indexing() {
        let mut dec = Decoder::new();
        let bytes = [
            0x40, 0x0a, 0x63, 0x75, 0x73, 0x74, 0x6f, 0x6d, 0x2d, 0x6b, 0x65, 0x79, 0x0d, 0x63,
            0x75, 0x73, 0x74, 0x6f, 0x6d, 0x2d, 0x68, 0x65, 0x61, 0x64, 0x65, 0x72,
        ];
        assert_decodes(&mut dec, &bytes, &[("custom-key", "custom-header")]);
        assert_eq!(dec.table().size(), 55);
    }

    /// RFC 7541 §C.2.2: literal without indexing.
    #[test]
    fn rfc_c22_literal_without_indexing() {
        let mut dec = Decoder::new();
        let bytes = [
            0x04, 0x0c, 0x2f, 0x73, 0x61, 0x6d, 0x70, 0x6c, 0x65, 0x2f, 0x70, 0x61, 0x74, 0x68,
        ];
        assert_decodes(&mut dec, &bytes, &[(":path", "/sample/path")]);
        assert!(dec.table().is_empty());
    }

    /// RFC 7541 §C.2.3: literal never indexed, flagged sensitive.
    #[test]
    fn rfc_c23_never_indexed() {
        let mut dec = Decoder::new();
        let bytes = [
            0x10, 0x08, 0x70, 0x61, 0x73, 0x73, 0x77, 0x6f, 0x72, 0x64, 0x06, 0x73, 0x65, 0x63,
            0x72, 0x65, 0x74,
        ];
        let got = dec.decode(&bytes).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].name, "password");
        assert_eq!(got[0].value, "secret");
        assert!(got[0].sensitive);
        assert!(dec.table().is_empty());
    }

    /// RFC 7541 §C.2.4: indexed field from the static table.
    #[test]
    fn rfc_c24_indexed() {
        let mut dec = Decoder::new();
        assert_decodes(&mut dec, &[0x82], &[(":method", "GET")]);
    }

    /// RFC 7541 §C.5: response examples with a 256-byte table and eviction.
    #[test]
    fn rfc_c5_response_examples_with_eviction() {
        let mut dec = Decoder::new().with_max_table_size(256);

        let b1: Vec<u8> = [
            0x48, 0x03, 0x33, 0x30, 0x32, 0x58, 0x07, 0x70, 0x72, 0x69, 0x76, 0x61, 0x74, 0x65,
            0x61, 0x1d, 0x4d, 0x6f, 0x6e, 0x2c, 0x20, 0x32, 0x31, 0x20, 0x4f, 0x63, 0x74, 0x20,
            0x32, 0x30, 0x31, 0x33, 0x20, 0x32, 0x30, 0x3a, 0x31, 0x33, 0x3a, 0x32, 0x31, 0x20,
            0x47, 0x4d, 0x54, 0x6e, 0x17, 0x68, 0x74, 0x74, 0x70, 0x73, 0x3a, 0x2f, 0x2f, 0x77,
            0x77, 0x77, 0x2e, 0x65, 0x78, 0x61, 0x6d, 0x70, 0x6c, 0x65, 0x2e, 0x63, 0x6f, 0x6d,
        ]
        .to_vec();
        assert_decodes(
            &mut dec,
            &b1,
            &[
                (":status", "302"),
                ("cache-control", "private"),
                ("date", "Mon, 21 Oct 2013 20:13:21 GMT"),
                ("location", "https://www.example.com"),
            ],
        );
        assert_eq!(dec.table().size(), 222);

        // Second response: ":status: 307" evicts ":status: 302".
        let b2 = [0x48, 0x03, 0x33, 0x30, 0x37, 0xc1, 0xc0, 0xbf];
        assert_decodes(
            &mut dec,
            &b2,
            &[
                (":status", "307"),
                ("cache-control", "private"),
                ("date", "Mon, 21 Oct 2013 20:13:21 GMT"),
                ("location", "https://www.example.com"),
            ],
        );
        assert_eq!(dec.table().size(), 222);
        assert_eq!(dec.table().get(1).unwrap().value, "307");
    }

    /// Roundtrip through our encoder with table state carried across blocks.
    #[test]
    fn encoder_decoder_roundtrip_stateful() {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        let blocks = vec![
            fields(&[
                (":method", "GET"),
                (":path", "/news/story-1.html"),
                ("user-agent", "vroom/0.1"),
            ]),
            fields(&[
                (":method", "GET"),
                (":path", "/static/app.js"),
                ("user-agent", "vroom/0.1"),
                ("link", "</static/app.css>; rel=preload; as=style"),
            ]),
            fields(&[
                (":status", "200"),
                ("x-semi-important", "/lazy/ads.js,/lazy/social.js"),
                ("x-unimportant", "/img/hero.jpg"),
            ]),
        ];
        for headers in blocks {
            let bytes = enc.encode(&headers);
            let back = dec.decode(&bytes).unwrap();
            assert_eq!(back, headers);
        }
        assert_eq!(enc.table().size(), dec.table().size());
    }

    #[test]
    fn invalid_index_rejected() {
        let mut dec = Decoder::new();
        // Indexed field 70 with empty dynamic table.
        let err = dec.decode(&[0xc6]).unwrap_err();
        assert!(matches!(err, Error::InvalidIndex(70)));
        // Index 0 is never valid.
        assert!(matches!(
            dec.decode(&[0x80]).unwrap_err(),
            Error::InvalidIndex(0)
        ));
    }

    #[test]
    fn size_update_after_field_rejected() {
        let mut dec = Decoder::new();
        let err = dec.decode(&[0x82, 0x20]).unwrap_err();
        assert!(matches!(err, Error::SizeUpdateNotAtStart));
    }

    #[test]
    fn size_update_above_limit_rejected() {
        let mut dec = Decoder::new().with_max_table_size(4096);
        // Update to 8192: 001 prefix. 8192 -> 0x3f then varint of 8161.
        let mut bytes = vec![];
        crate::integer::encode(8192, 5, 0b0010_0000, &mut bytes);
        assert!(matches!(
            dec.decode(&bytes).unwrap_err(),
            Error::SizeUpdateTooLarge(8192)
        ));
    }

    #[test]
    fn header_list_size_enforced() {
        let mut dec = Decoder::new().with_max_header_list_size(64);
        let mut enc = Encoder::new();
        let headers = fields(&[("a", &"v".repeat(100))]);
        let bytes = enc.encode(&headers);
        assert!(matches!(
            dec.decode(&bytes).unwrap_err(),
            Error::HeaderListTooLarge
        ));
    }

    #[test]
    fn truncated_literal_rejected() {
        let mut dec = Decoder::new();
        // Claims a 10-byte name but provides 2.
        assert!(matches!(
            dec.decode(&[0x40, 0x0a, 0x61, 0x62]).unwrap_err(),
            Error::Truncated
        ));
    }
}
