//! HPACK indexing tables (RFC 7541 §2.3): the fixed static table and the
//! bounded FIFO dynamic table with size-based eviction.

use std::collections::VecDeque;
use std::sync::OnceLock;
use vroom_intern::SharedStr;

/// The static table, RFC 7541 Appendix A. Index 1 is `STATIC_TABLE[0]`.
pub const STATIC_TABLE: [(&str, &str); 61] = [
    (":authority", ""),
    (":method", "GET"),
    (":method", "POST"),
    (":path", "/"),
    (":path", "/index.html"),
    (":scheme", "http"),
    (":scheme", "https"),
    (":status", "200"),
    (":status", "204"),
    (":status", "206"),
    (":status", "304"),
    (":status", "400"),
    (":status", "404"),
    (":status", "500"),
    ("accept-charset", ""),
    ("accept-encoding", "gzip, deflate"),
    ("accept-language", ""),
    ("accept-ranges", ""),
    ("accept", ""),
    ("access-control-allow-origin", ""),
    ("age", ""),
    ("allow", ""),
    ("authorization", ""),
    ("cache-control", ""),
    ("content-disposition", ""),
    ("content-encoding", ""),
    ("content-language", ""),
    ("content-length", ""),
    ("content-location", ""),
    ("content-range", ""),
    ("content-type", ""),
    ("cookie", ""),
    ("date", ""),
    ("etag", ""),
    ("expect", ""),
    ("expires", ""),
    ("from", ""),
    ("host", ""),
    ("if-match", ""),
    ("if-modified-since", ""),
    ("if-none-match", ""),
    ("if-range", ""),
    ("if-unmodified-since", ""),
    ("last-modified", ""),
    ("link", ""),
    ("location", ""),
    ("max-forwards", ""),
    ("proxy-authenticate", ""),
    ("proxy-authorization", ""),
    ("range", ""),
    ("referer", ""),
    ("refresh", ""),
    ("retry-after", ""),
    ("server", ""),
    ("set-cookie", ""),
    ("strict-transport-security", ""),
    ("transfer-encoding", ""),
    ("user-agent", ""),
    ("vary", ""),
    ("via", ""),
    ("www-authenticate", ""),
];

/// Per-entry overhead charged against the dynamic table size (RFC 7541 §4.1).
pub const ENTRY_OVERHEAD: usize = 32;

/// Default `SETTINGS_HEADER_TABLE_SIZE` (RFC 7540 §6.5.2).
pub const DEFAULT_MAX_SIZE: usize = 4096;

/// One dynamic-table entry. Fields are refcounted so inserting a decoded or
/// encoded header shares its bytes with the caller instead of copying them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub name: SharedStr,
    pub value: SharedStr,
}

impl Entry {
    /// The entry's size as defined by RFC 7541 §4.1.
    pub fn size(&self) -> usize {
        self.name.len() + self.value.len() + ENTRY_OVERHEAD
    }
}

/// The dynamic table: newest entry has the lowest dynamic index.
#[derive(Debug)]
pub struct DynamicTable {
    entries: VecDeque<Entry>,
    size: usize,
    max_size: usize,
    /// Protocol ceiling for `max_size` (from HTTP/2 SETTINGS); dynamic-size
    /// updates in the header block may not exceed it.
    capacity_limit: usize,
}

impl Default for DynamicTable {
    fn default() -> Self {
        Self::new(DEFAULT_MAX_SIZE)
    }
}

impl DynamicTable {
    /// A table with the given maximum size (and protocol limit equal to it).
    pub fn new(max_size: usize) -> Self {
        DynamicTable {
            entries: VecDeque::new(),
            size: 0,
            max_size,
            capacity_limit: max_size,
        }
    }

    /// Current occupied size in RFC 7541 units.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Current maximum size.
    pub fn max_size(&self) -> usize {
        self.max_size
    }

    /// The protocol ceiling for dynamic-size updates.
    pub fn capacity_limit(&self) -> usize {
        self.capacity_limit
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Apply a dynamic table size update (RFC 7541 §6.3). Returns `false` if
    /// the requested size exceeds the protocol limit.
    pub fn set_max_size(&mut self, max: usize) -> bool {
        if max > self.capacity_limit {
            return false;
        }
        self.max_size = max;
        self.evict();
        true
    }

    /// Raise (or lower) the protocol ceiling, e.g. on a SETTINGS change.
    pub fn set_capacity_limit(&mut self, limit: usize) {
        self.capacity_limit = limit;
        if self.max_size > limit {
            self.max_size = limit;
            self.evict();
        }
    }

    /// Insert at the head, evicting from the tail as needed (RFC 7541 §4.4).
    /// An entry larger than the whole table empties the table.
    pub fn insert(&mut self, name: SharedStr, value: SharedStr) {
        let entry = Entry { name, value };
        let esize = entry.size();
        if esize > self.max_size {
            self.entries.clear();
            self.size = 0;
            return;
        }
        self.size += esize;
        self.entries.push_front(entry);
        self.evict();
    }

    fn evict(&mut self) {
        while self.size > self.max_size {
            let Some(e) = self.entries.pop_back() else {
                // Size accounting drifted from the entry list (should be
                // impossible); resynchronize instead of spinning.
                self.size = 0;
                return;
            };
            self.size = self.size.saturating_sub(e.size());
        }
    }

    /// Look up by 1-based *dynamic* index (1 = newest).
    pub fn get(&self, dyn_index: usize) -> Option<&Entry> {
        if dyn_index == 0 {
            return None;
        }
        self.entries.get(dyn_index - 1)
    }

    /// Find the dynamic index of an exact (name, value) match.
    pub fn find(&self, name: &str, value: &str) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.name == name && e.value == value)
            .map(|i| i + 1)
    }

    /// Find the dynamic index of any entry with this name.
    pub fn find_name(&self, name: &str) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.name == name)
            .map(|i| i + 1)
    }
}

/// Resolve a combined 1-based HPACK index against static + dynamic tables.
pub fn resolve(table: &DynamicTable, index: usize) -> Option<(&str, &str)> {
    if index == 0 {
        None
    } else if let Some(&(n, v)) = STATIC_TABLE.get(index - 1) {
        Some((n, v))
    } else {
        table
            .get(index - STATIC_TABLE.len())
            .map(|e| (e.name.as_str(), e.value.as_str()))
    }
}

/// The static table as `SharedStr`s, built once per process so indexed
/// fields resolve to refcount bumps rather than fresh allocations.
fn static_shared() -> &'static [(SharedStr, SharedStr)] {
    static SHARED: OnceLock<Vec<(SharedStr, SharedStr)>> = OnceLock::new();
    SHARED.get_or_init(|| {
        STATIC_TABLE
            .iter()
            .map(|&(n, v)| (SharedStr::from(n), SharedStr::from(v)))
            .collect()
    })
}

/// Like [`resolve`], but returns owned handles sharing the table's storage:
/// no header bytes are copied on either the static or the dynamic path.
pub fn resolve_shared(table: &DynamicTable, index: usize) -> Option<(SharedStr, SharedStr)> {
    if index == 0 {
        return None;
    }
    if let Some((n, v)) = static_shared().get(index - 1) {
        return Some((n.share(), v.share()));
    }
    table
        .get(index - STATIC_TABLE.len())
        .map(|e| (e.name.share(), e.value.share()))
}

/// Search static then dynamic table for an exact match; returns the combined
/// index.
pub fn find(table: &DynamicTable, name: &str, value: &str) -> Option<usize> {
    STATIC_TABLE
        .iter()
        .position(|&(n, v)| n == name && v == value)
        .map(|i| i + 1)
        .or_else(|| table.find(name, value).map(|i| i + STATIC_TABLE.len()))
}

/// Search for a name-only match; returns the combined index.
pub fn find_name(table: &DynamicTable, name: &str) -> Option<usize> {
    STATIC_TABLE
        .iter()
        .position(|&(n, _)| n == name)
        .map(|i| i + 1)
        .or_else(|| table.find_name(name).map(|i| i + STATIC_TABLE.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_table_spot_checks() {
        assert_eq!(STATIC_TABLE[0], (":authority", ""));
        assert_eq!(STATIC_TABLE[1], (":method", "GET"));
        assert_eq!(STATIC_TABLE[7], (":status", "200"));
        assert_eq!(STATIC_TABLE[44], ("link", ""));
        assert_eq!(STATIC_TABLE[60], ("www-authenticate", ""));
        assert_eq!(STATIC_TABLE.len(), 61);
    }

    #[test]
    fn insert_and_lookup_newest_first() {
        let mut t = DynamicTable::new(4096);
        t.insert("a".into(), "1".into());
        t.insert("b".into(), "2".into());
        assert_eq!(t.get(1).unwrap().name, "b");
        assert_eq!(t.get(2).unwrap().name, "a");
        assert_eq!(t.get(3), None);
        assert_eq!(t.size(), 2 * (1 + 1 + 32));
    }

    #[test]
    fn eviction_on_overflow() {
        // Each entry: 1 + 1 + 32 = 34 bytes. Table fits exactly 2.
        let mut t = DynamicTable::new(68);
        t.insert("a".into(), "1".into());
        t.insert("b".into(), "2".into());
        t.insert("c".into(), "3".into());
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(1).unwrap().name, "c");
        assert_eq!(t.get(2).unwrap().name, "b");
    }

    #[test]
    fn oversized_entry_clears_table() {
        let mut t = DynamicTable::new(40);
        t.insert("a".into(), "1".into());
        t.insert("x".repeat(64).into(), "y".into());
        assert!(t.is_empty());
        assert_eq!(t.size(), 0);
    }

    #[test]
    fn set_max_size_evicts_and_respects_limit() {
        let mut t = DynamicTable::new(4096);
        for i in 0..10 {
            t.insert(format!("h{i}").into(), "v".into());
        }
        assert!(t.set_max_size(35 * 2)); // fits two small entries
        assert!(t.len() <= 2);
        assert!(!t.set_max_size(8192), "cannot exceed protocol limit");
    }

    #[test]
    fn capacity_limit_shrinks_max() {
        let mut t = DynamicTable::new(4096);
        t.insert("a".into(), "1".into());
        t.set_capacity_limit(10);
        assert_eq!(t.max_size(), 10);
        assert!(t.is_empty());
    }

    #[test]
    fn combined_resolution() {
        let mut t = DynamicTable::new(4096);
        t.insert("x-vroom".into(), "1".into());
        assert_eq!(resolve(&t, 2), Some((":method", "GET")));
        assert_eq!(resolve(&t, 62), Some(("x-vroom", "1")));
        assert_eq!(resolve(&t, 0), None);
        assert_eq!(resolve(&t, 63), None);
    }

    #[test]
    fn resolve_shared_shares_table_storage() {
        let mut t = DynamicTable::new(4096);
        t.insert("x-vroom".into(), "1".into());
        let (n, v) = resolve_shared(&t, 62).unwrap();
        assert_eq!(n, "x-vroom");
        assert_eq!(v, "1");
        assert_eq!(
            n.as_str().as_ptr(),
            t.get(1).unwrap().name.as_str().as_ptr(),
            "dynamic hit shares the entry's bytes"
        );
        assert_eq!(resolve_shared(&t, 2).unwrap().0, ":method");
        assert_eq!(resolve_shared(&t, 0), None);
        assert_eq!(resolve_shared(&t, 63), None);
    }

    #[test]
    fn find_prefers_static() {
        let mut t = DynamicTable::new(4096);
        t.insert(":method".into(), "GET".into());
        assert_eq!(find(&t, ":method", "GET"), Some(2));
        assert_eq!(find_name(&t, ":method"), Some(2));
        assert_eq!(find(&t, ":method", "PATCH"), None);
        t.insert("x-unimportant".into(), "u".into());
        assert_eq!(find(&t, "x-unimportant", "u"), Some(62));
        assert_eq!(find_name(&t, "x-unimportant"), Some(62));
    }
}
