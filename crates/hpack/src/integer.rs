//! HPACK prefix-coded integers (RFC 7541 §5.1).
//!
//! An integer is coded in the low `prefix` bits of the first octet; if it does
//! not fit, the prefix is filled with ones and the remainder follows as a
//! little-endian base-128 varint.

use crate::Error;

/// Maximum value we will decode, to bound memory on hostile input.
/// RFC 7541 permits arbitrarily large integers; implementations cap them.
pub const MAX_INT: u64 = (1 << 32) - 1;

/// Encode `value` into `out` with the given `prefix` width (1..=8) and the
/// given high bits `flags` for the first octet (e.g. the `0x80` indexed bit).
///
/// `flags` must not overlap the prefix bits.
pub fn encode(value: u64, prefix: u8, flags: u8, out: &mut Vec<u8>) {
    debug_assert!((1..=8).contains(&prefix));
    let mask: u8 = if prefix == 8 { 0xff } else { (1 << prefix) - 1 };
    debug_assert_eq!(flags & mask, 0, "flags overlap prefix");
    if value < mask as u64 {
        out.push(flags | value as u8);
        return;
    }
    out.push(flags | mask);
    let mut rest = value - mask as u64;
    while rest >= 128 {
        out.push((rest % 128) as u8 | 0x80);
        rest /= 128;
    }
    out.push(rest as u8);
}

/// Decode an integer with the given `prefix` width from `buf`.
/// Returns `(value, bytes_consumed)`.
pub fn decode(buf: &[u8], prefix: u8) -> Result<(u64, usize), Error> {
    debug_assert!((1..=8).contains(&prefix));
    let mask: u8 = if prefix == 8 { 0xff } else { (1 << prefix) - 1 };
    let first = *buf.first().ok_or(Error::Truncated)?;
    let mut value = (first & mask) as u64;
    if value < mask as u64 {
        return Ok((value, 1));
    }
    let mut shift = 0u32;
    for (i, &b) in buf.iter().enumerate().skip(1) {
        let chunk = (b & 0x7f) as u64;
        value = value
            .checked_add(chunk.checked_shl(shift).ok_or(Error::IntegerOverflow)?)
            .ok_or(Error::IntegerOverflow)?;
        if value > MAX_INT {
            return Err(Error::IntegerOverflow);
        }
        if b & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
        if shift > 63 {
            return Err(Error::IntegerOverflow);
        }
    }
    Err(Error::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 7541 §C.1.1: encoding 10 with a 5-bit prefix.
    #[test]
    fn rfc_c11_small_value() {
        let mut out = Vec::new();
        encode(10, 5, 0, &mut out);
        assert_eq!(out, vec![0b01010]);
        assert_eq!(decode(&out, 5).unwrap(), (10, 1));
    }

    /// RFC 7541 §C.1.2: encoding 1337 with a 5-bit prefix.
    #[test]
    fn rfc_c12_large_value() {
        let mut out = Vec::new();
        encode(1337, 5, 0, &mut out);
        assert_eq!(out, vec![0b11111, 0b10011010, 0b00001010]);
        assert_eq!(decode(&out, 5).unwrap(), (1337, 3));
    }

    /// RFC 7541 §C.1.3: encoding 42 starting at an octet boundary.
    #[test]
    fn rfc_c13_full_octet() {
        let mut out = Vec::new();
        encode(42, 8, 0, &mut out);
        assert_eq!(out, vec![42]);
        assert_eq!(decode(&out, 8).unwrap(), (42, 1));
    }

    #[test]
    fn boundary_exactly_prefix_max() {
        // value == 2^prefix - 1 must spill into a continuation byte of 0.
        let mut out = Vec::new();
        encode(31, 5, 0, &mut out);
        assert_eq!(out, vec![31, 0]);
        assert_eq!(decode(&out, 5).unwrap(), (31, 2));
    }

    #[test]
    fn flags_preserved() {
        let mut out = Vec::new();
        encode(2, 6, 0x40, &mut out);
        assert_eq!(out, vec![0x42]);
    }

    #[test]
    fn truncated_input_is_error() {
        assert_eq!(decode(&[], 5).unwrap_err(), Error::Truncated);
        // Prefix saturated but continuation missing.
        assert_eq!(decode(&[0b11111], 5).unwrap_err(), Error::Truncated);
        // Continuation bit set on last available byte.
        assert_eq!(decode(&[0b11111, 0x80], 5).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn overflow_rejected() {
        // 2^32 encoded with endless continuation bytes.
        let mut buf = vec![0b11111];
        buf.extend_from_slice(&[0xff; 10]);
        buf.push(0x7f);
        assert_eq!(decode(&buf, 5).unwrap_err(), Error::IntegerOverflow);
    }

    #[test]
    fn roundtrip_sweep() {
        for prefix in 1..=8u8 {
            for v in [0u64, 1, 2, 127, 128, 255, 256, 16383, 16384, 1 << 20] {
                let mut out = Vec::new();
                encode(v, prefix, 0, &mut out);
                let (got, used) = decode(&out, prefix).unwrap();
                assert_eq!((got, used), (v, out.len()), "prefix={prefix} v={v}");
            }
        }
    }
}
