//! A pragmatic HTML tokenizer: enough of WHATWG tokenization to walk tags and
//! attributes through real-world markup — comments, doctypes, CDATA, raw-text
//! elements (`<script>`, `<style>`), quoted/unquoted attributes — without
//! building a DOM. The resource scanner ([`crate::scanner`]) and the Vroom
//! server's online analysis are the consumers; both only need tags, their
//! attributes, and the raw text of script/style elements.

/// A token produced by [`Tokenizer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An opening (or self-closing) tag with its attributes.
    StartTag {
        /// Tag name, lower-cased.
        name: String,
        /// `(name, value)` pairs in document order; valueless attributes get
        /// an empty value.
        attrs: Vec<(String, String)>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
    },
    /// A closing tag.
    EndTag {
        /// Tag name, lower-cased.
        name: String,
    },
    /// Text content between tags (not emitted for whitespace-only runs).
    Text(String),
    /// The raw contents of a `<script>` element.
    ScriptText(String),
    /// The raw contents of a `<style>` element.
    StyleText(String),
    /// A comment (contents without the delimiters).
    Comment(String),
}

/// Streaming tokenizer over a complete HTML document.
pub struct Tokenizer<'a> {
    input: &'a str,
    pos: usize,
    /// Raw-text element we are inside, if any (`script` or `style`).
    raw_mode: Option<&'static str>,
}

impl<'a> Tokenizer<'a> {
    /// Tokenize `input`.
    pub fn new(input: &'a str) -> Self {
        Tokenizer {
            input,
            pos: 0,
            raw_mode: None,
        }
    }

    fn rest(&self) -> &'a str {
        self.input.get(self.pos..).unwrap_or("")
    }

    fn starts_with_ci(&self, prefix: &str) -> bool {
        self.rest()
            .get(..prefix.len())
            .is_some_and(|head| head.eq_ignore_ascii_case(prefix))
    }
}

/// Panic-free slice: an out-of-range (or non-boundary) range yields "".
fn slice(s: &str, r: std::ops::Range<usize>) -> &str {
    s.get(r).unwrap_or("")
}

impl<'a> Iterator for Tokenizer<'a> {
    type Item = Token;

    fn next(&mut self) -> Option<Token> {
        loop {
            if self.pos >= self.input.len() {
                return None;
            }

            // Inside <script>/<style>: swallow everything up to the matching
            // close tag and emit it as raw text.
            if let Some(elem) = self.raw_mode {
                let close = format!("</{elem}");
                let rest = self.rest();
                let end = find_ci(rest, &close).unwrap_or(rest.len());
                let text = slice(rest, 0..end);
                self.pos += end;
                self.raw_mode = None;
                if !text.trim().is_empty() {
                    return Some(match elem {
                        "script" => Token::ScriptText(text.to_string()),
                        _ => Token::StyleText(text.to_string()),
                    });
                }
                continue;
            }

            let rest = self.rest();
            if let Some(stripped) = rest.strip_prefix('<') {
                // Comment.
                if stripped.starts_with("!--") {
                    let body_start = self.pos + 4;
                    let end = slice(self.input, body_start..self.input.len())
                        .find("-->")
                        .map(|i| body_start + i)
                        .unwrap_or(self.input.len());
                    let comment = slice(self.input, body_start..end).to_string();
                    self.pos = (end + 3).min(self.input.len());
                    return Some(Token::Comment(comment));
                }
                // Doctype / CDATA / other declarations: skip to '>'.
                if stripped.starts_with('!') || stripped.starts_with('?') {
                    let end = rest
                        .find('>')
                        .map(|i| self.pos + i + 1)
                        .unwrap_or(self.input.len());
                    self.pos = end;
                    continue;
                }
                // End tag.
                if let Some(after) = stripped.strip_prefix('/') {
                    let end = after.find('>').map(|i| self.pos + 2 + i);
                    let Some(end) = end else {
                        self.pos = self.input.len();
                        return None;
                    };
                    let name = slice(self.input, self.pos + 2..end)
                        .trim()
                        .to_ascii_lowercase();
                    self.pos = end + 1;
                    if name.is_empty() {
                        continue;
                    }
                    return Some(Token::EndTag { name });
                }
                // Start tag?
                if stripped
                    .chars()
                    .next()
                    .map(|c| c.is_ascii_alphabetic())
                    .unwrap_or(false)
                {
                    if let Some(tok) = self.read_start_tag() {
                        return Some(tok);
                    }
                    continue;
                }
                // Stray '<': treat as text.
                self.pos += 1;
                continue;
            }

            // Text run until the next '<'.
            let end = rest
                .find('<')
                .map(|i| self.pos + i)
                .unwrap_or(self.input.len());
            let text = slice(self.input, self.pos..end);
            self.pos = end;
            if !text.trim().is_empty() {
                return Some(Token::Text(text.to_string()));
            }
        }
    }
}

impl<'a> Tokenizer<'a> {
    fn read_start_tag(&mut self) -> Option<Token> {
        debug_assert!(self.starts_with_ci("<"));
        let start = self.pos + 1;
        let bytes = self.input.as_bytes();
        // Past-the-end reads yield NUL, which is in no tag/attribute
        // character class, so every scan below stops at the buffer edge.
        let at = |i: usize| bytes.get(i).copied().unwrap_or(0);
        let mut i = start;

        // Tag name.
        while at(i).is_ascii_alphanumeric() || at(i) == b'-' {
            i += 1;
        }
        let name = slice(self.input, start..i).to_ascii_lowercase();

        // Attributes.
        let mut attrs = Vec::new();
        let mut self_closing = false;
        loop {
            while at(i).is_ascii_whitespace() {
                i += 1;
            }
            if i >= bytes.len() {
                self.pos = bytes.len();
                break;
            }
            match at(i) {
                b'>' => {
                    self.pos = i + 1;
                    break;
                }
                b'/' => {
                    self_closing = true;
                    i += 1;
                }
                _ => {
                    // Attribute name.
                    let astart = i;
                    while i < bytes.len()
                        && !at(i).is_ascii_whitespace()
                        && at(i) != b'='
                        && at(i) != b'>'
                        && at(i) != b'/'
                    {
                        i += 1;
                    }
                    let aname = slice(self.input, astart..i).to_ascii_lowercase();
                    while at(i).is_ascii_whitespace() {
                        i += 1;
                    }
                    let mut avalue = String::new();
                    if at(i) == b'=' {
                        i += 1;
                        while at(i).is_ascii_whitespace() {
                            i += 1;
                        }
                        if at(i) == b'"' || at(i) == b'\'' {
                            let quote = at(i);
                            i += 1;
                            let vstart = i;
                            while i < bytes.len() && at(i) != quote {
                                i += 1;
                            }
                            avalue = slice(self.input, vstart..i).to_string();
                            i = (i + 1).min(bytes.len());
                        } else {
                            let vstart = i;
                            while i < bytes.len() && !at(i).is_ascii_whitespace() && at(i) != b'>' {
                                i += 1;
                            }
                            avalue = slice(self.input, vstart..i).to_string();
                        }
                    }
                    if !aname.is_empty() {
                        attrs.push((aname, avalue));
                    }
                }
            }
        }

        if name == "script" && !self_closing {
            self.raw_mode = Some("script");
        } else if name == "style" && !self_closing {
            self.raw_mode = Some("style");
        }
        Some(Token::StartTag {
            name,
            attrs,
            self_closing,
        })
    }
}

/// Case-insensitive substring search.
fn find_ci(haystack: &str, needle: &str) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    let h = haystack.as_bytes();
    let n = needle.as_bytes();
    (0..=h.len() - n.len()).find(|&i| {
        h.get(i..i + n.len())
            .is_some_and(|w| w.eq_ignore_ascii_case(n))
    })
}

/// Convenience: the value of an attribute by (lower-case) name.
pub fn attr<'t>(attrs: &'t [(String, String)], name: &str) -> Option<&'t str> {
    attrs
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(html: &str) -> Vec<Token> {
        Tokenizer::new(html).collect()
    }

    #[test]
    fn simple_document() {
        let t = toks("<html><body><p>Hello</p></body></html>");
        assert_eq!(t.len(), 7);
        assert!(matches!(&t[0], Token::StartTag { name, .. } if name == "html"));
        assert!(matches!(&t[3], Token::Text(s) if s == "Hello"));
        assert!(matches!(&t[6], Token::EndTag { name } if name == "html"));
    }

    #[test]
    fn attributes_all_quote_styles() {
        let t = toks(r#"<img src="a.png" alt='pic' width=100 hidden>"#);
        let Token::StartTag { name, attrs, .. } = &t[0] else {
            panic!("not a start tag");
        };
        assert_eq!(name, "img");
        assert_eq!(attr(attrs, "src"), Some("a.png"));
        assert_eq!(attr(attrs, "alt"), Some("pic"));
        assert_eq!(attr(attrs, "width"), Some("100"));
        assert_eq!(attr(attrs, "hidden"), Some(""));
    }

    #[test]
    fn self_closing_and_case_folding() {
        let t = toks("<BR/><IMG SRC='X.png' />");
        assert!(matches!(&t[0], Token::StartTag { name, self_closing: true, .. } if name == "br"));
        let Token::StartTag { name, attrs, .. } = &t[1] else {
            panic!()
        };
        assert_eq!(name, "img");
        assert_eq!(attr(attrs, "src"), Some("X.png"), "values keep case");
    }

    #[test]
    fn script_raw_text_not_parsed_as_tags() {
        let html = r#"<script>if (a<b) { document.write("<img src=x>"); }</script><p>after</p>"#;
        let t = toks(html);
        assert!(matches!(&t[0], Token::StartTag { name, .. } if name == "script"));
        let Token::ScriptText(body) = &t[1] else {
            panic!("expected raw script text, got {:?}", t[1]);
        };
        assert!(body.contains("<img src=x>"));
        assert!(matches!(&t[2], Token::EndTag { name } if name == "script"));
        assert!(matches!(&t[3], Token::StartTag { name, .. } if name == "p"));
    }

    #[test]
    fn style_raw_text() {
        let t = toks("<style>body { background: url(bg.png); }</style>");
        assert!(matches!(&t[1], Token::StyleText(s) if s.contains("bg.png")));
    }

    #[test]
    fn script_close_tag_case_insensitive() {
        let t = toks("<script>x=1</SCRIPT><p>k</p>");
        assert!(matches!(&t[1], Token::ScriptText(_)));
        assert!(matches!(&t[3], Token::StartTag { name, .. } if name == "p"));
    }

    #[test]
    fn comments_and_doctype() {
        let t = toks("<!DOCTYPE html><!-- a <img src=x> inside --><p>t</p>");
        assert!(matches!(&t[0], Token::Comment(c) if c.contains("img")));
        assert!(matches!(&t[1], Token::StartTag { name, .. } if name == "p"));
    }

    #[test]
    fn unterminated_structures_do_not_panic_or_loop() {
        for html in [
            "<img src=",
            "<script>never closed",
            "<!-- never closed",
            "</",
            "<",
            "<p attr='unclosed",
        ] {
            let _ = toks(html); // must terminate
        }
    }

    #[test]
    fn stray_angle_brackets_are_text() {
        let t = toks("a < b > c");
        // "a " text, stray '<' skipped, "b > c" text-ish — must not panic and
        // must preserve the surrounding text.
        assert!(t
            .iter()
            .any(|tok| matches!(tok, Token::Text(s) if s.contains('a'))));
    }

    #[test]
    fn empty_script_emits_no_text() {
        let t = toks("<script src=\"x.js\"></script>");
        assert_eq!(t.len(), 2, "start + end only: {t:?}");
    }
}
