//! Resource discovery by scanning markup — the engine behind Vroom's
//! *online HTML analysis* (paper §4.1.2): "when a VROOM-compliant web server
//! responds to a request with an HTML object, it … includes all URLs seen in
//! the HTML object by parsing it on the fly."
//!
//! The scanner extracts sub-resource references from tags (`script`, `link`,
//! `img`, `iframe`, media elements), from inline CSS (`url(...)`,
//! `@import`), and — heuristically — absolute URLs inside inline scripts.

use crate::tokenizer::{attr, Token, Tokenizer};
use crate::url::Url;

/// Content classes a page-load cares about. The split drives Vroom's
/// priorities: `Html`, `Css`, and `Js` must be *processed* (high priority),
/// everything else is payload (low priority).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Top-level or iframe documents.
    Html,
    /// Stylesheets.
    Css,
    /// Scripts.
    Js,
    /// Raster/vector images.
    Image,
    /// Web fonts.
    Font,
    /// Audio/video.
    Media,
    /// Fetch/XHR payloads (JSON APIs etc.).
    Xhr,
    /// Anything else.
    Other,
}

impl ResourceKind {
    /// Whether the browser must parse/execute this resource — Vroom's
    /// high-priority class (HTML, CSS, JS).
    pub fn needs_processing(self) -> bool {
        matches!(
            self,
            ResourceKind::Html | ResourceKind::Css | ResourceKind::Js
        )
    }

    /// Guess a kind from a URL's file extension.
    pub fn from_extension(ext: &str) -> ResourceKind {
        match ext {
            "html" | "htm" | "php" | "asp" | "aspx" | "jsp" => ResourceKind::Html,
            "css" => ResourceKind::Css,
            "js" | "mjs" => ResourceKind::Js,
            "png" | "jpg" | "jpeg" | "gif" | "webp" | "svg" | "ico" | "avif" | "bmp" => {
                ResourceKind::Image
            }
            "woff" | "woff2" | "ttf" | "otf" | "eot" => ResourceKind::Font,
            "mp4" | "webm" | "mp3" | "ogg" | "m3u8" | "ts" | "mov" => ResourceKind::Media,
            "json" | "xml" => ResourceKind::Xhr,
            _ => ResourceKind::Other,
        }
    }

    /// Guess a kind from a URL (extension, else `Other`).
    pub fn from_url(url: &Url) -> ResourceKind {
        url.extension()
            .map(|e| Self::from_extension(&e))
            .unwrap_or(ResourceKind::Other)
    }
}

/// How a reference was found in the document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiscoveryVia {
    /// `<script src>`.
    ScriptSrc,
    /// `<link rel=stylesheet>`.
    Stylesheet,
    /// `<link rel=preload|prefetch>`.
    LinkPreload,
    /// `<img src>` / `srcset` / `<picture><source>`.
    Img,
    /// `<iframe src>` — an embedded document.
    Iframe,
    /// `<video>/<audio>/<source>/<track>`.
    Media,
    /// `url(...)` or `@import` inside CSS.
    CssUrl,
    /// Absolute URL spotted inside an inline script.
    InlineScript,
}

/// Script execution mode, which decides Vroom's priority tier
/// (sync scripts are `Link preload`; async/defer are `x-semi-important`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Blocks the parser.
    Sync,
    /// `async` — executes when ready.
    Async,
    /// `defer` — executes after parsing.
    Defer,
}

/// One reference discovered in a document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Discovered {
    /// Absolute URL after resolution against the document base.
    pub url: Url,
    /// Content class.
    pub kind: ResourceKind,
    /// Where in the markup it was found.
    pub via: DiscoveryVia,
    /// Execution mode (scripts only; `Sync` otherwise).
    pub exec: ExecMode,
}

/// Scan an HTML document for sub-resource references.
///
/// Duplicate URLs are collapsed (first mention wins), matching how a browser
/// only fetches each URL once.
pub fn scan_html(base: &Url, html: &str) -> Vec<Discovered> {
    let mut out: Vec<Discovered> = Vec::new();
    let push = |d: Discovered, out: &mut Vec<Discovered>| {
        if !out.iter().any(|e| e.url == d.url) {
            out.push(d);
        }
    };

    for token in Tokenizer::new(html) {
        match token {
            Token::StartTag { name, attrs, .. } => match name.as_str() {
                "script" => {
                    if let Some(src) = attr(&attrs, "src") {
                        if let Some(url) = base.join(src) {
                            let exec = if attr(&attrs, "async").is_some() {
                                ExecMode::Async
                            } else if attr(&attrs, "defer").is_some() {
                                ExecMode::Defer
                            } else {
                                ExecMode::Sync
                            };
                            push(
                                Discovered {
                                    url,
                                    kind: ResourceKind::Js,
                                    via: DiscoveryVia::ScriptSrc,
                                    exec,
                                },
                                &mut out,
                            );
                        }
                    }
                }
                "link" => {
                    let rel = attr(&attrs, "rel").unwrap_or("").to_ascii_lowercase();
                    let href = attr(&attrs, "href");
                    let Some(href) = href else { continue };
                    let Some(url) = base.join(href) else { continue };
                    if rel.split_whitespace().any(|r| r == "stylesheet") {
                        push(
                            Discovered {
                                url,
                                kind: ResourceKind::Css,
                                via: DiscoveryVia::Stylesheet,
                                exec: ExecMode::Sync,
                            },
                            &mut out,
                        );
                    } else if rel
                        .split_whitespace()
                        .any(|r| r == "preload" || r == "prefetch")
                    {
                        let kind = match attr(&attrs, "as") {
                            Some("script") => ResourceKind::Js,
                            Some("style") => ResourceKind::Css,
                            Some("image") => ResourceKind::Image,
                            Some("font") => ResourceKind::Font,
                            Some("document") => ResourceKind::Html,
                            _ => ResourceKind::from_url(&url),
                        };
                        push(
                            Discovered {
                                url,
                                kind,
                                via: DiscoveryVia::LinkPreload,
                                exec: ExecMode::Sync,
                            },
                            &mut out,
                        );
                    }
                }
                "img" => {
                    if let Some(src) = attr(&attrs, "src") {
                        if let Some(url) = base.join(src) {
                            push(
                                Discovered {
                                    url,
                                    kind: ResourceKind::Image,
                                    via: DiscoveryVia::Img,
                                    exec: ExecMode::Sync,
                                },
                                &mut out,
                            );
                        }
                    }
                    if let Some(srcset) = attr(&attrs, "srcset") {
                        for candidate in srcset.split(',') {
                            if let Some(u) = candidate.split_whitespace().next() {
                                if let Some(url) = base.join(u) {
                                    push(
                                        Discovered {
                                            url,
                                            kind: ResourceKind::Image,
                                            via: DiscoveryVia::Img,
                                            exec: ExecMode::Sync,
                                        },
                                        &mut out,
                                    );
                                }
                            }
                        }
                    }
                }
                "iframe" => {
                    if let Some(src) = attr(&attrs, "src") {
                        if let Some(url) = base.join(src) {
                            push(
                                Discovered {
                                    url,
                                    kind: ResourceKind::Html,
                                    via: DiscoveryVia::Iframe,
                                    exec: ExecMode::Sync,
                                },
                                &mut out,
                            );
                        }
                    }
                }
                "video" | "audio" | "source" | "track" | "embed" => {
                    if let Some(src) = attr(&attrs, "src") {
                        if let Some(url) = base.join(src) {
                            push(
                                Discovered {
                                    url,
                                    kind: ResourceKind::Media,
                                    via: DiscoveryVia::Media,
                                    exec: ExecMode::Sync,
                                },
                                &mut out,
                            );
                        }
                    }
                }
                _ => {}
            },
            Token::StyleText(css) => {
                for d in scan_css(base, &css) {
                    push(d, &mut out);
                }
            }
            Token::ScriptText(js) => {
                for url in extract_absolute_urls(&js) {
                    push(
                        Discovered {
                            kind: ResourceKind::from_url(&url),
                            url,
                            via: DiscoveryVia::InlineScript,
                            exec: ExecMode::Sync,
                        },
                        &mut out,
                    );
                }
            }
            _ => {}
        }
    }
    out
}

/// Scan a CSS document (or inline style text) for `url(...)` and `@import`
/// references.
pub fn scan_css(base: &Url, css: &str) -> Vec<Discovered> {
    let mut out: Vec<Discovered> = Vec::new();
    let bytes = css.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if css[i..].starts_with("url(") {
            let start = i + 4;
            if let Some(close) = css[start..].find(')') {
                let raw = css[start..start + close].trim().trim_matches(['"', '\'']);
                if let Some(url) = base.join(raw) {
                    let kind = match ResourceKind::from_url(&url) {
                        ResourceKind::Other => ResourceKind::Image, // CSS urls default to images
                        k => k,
                    };
                    if !out.iter().any(|e: &Discovered| e.url == url) {
                        out.push(Discovered {
                            url,
                            kind,
                            via: DiscoveryVia::CssUrl,
                            exec: ExecMode::Sync,
                        });
                    }
                }
                i = start + close;
                continue;
            }
        } else if css[i..].starts_with("@import") {
            let rest = &css[i + 7..];
            let end = rest.find(';').unwrap_or(rest.len());
            let spec = rest[..end].trim();
            let raw = spec
                .trim_start_matches("url(")
                .trim_end_matches(')')
                .trim()
                .trim_matches(['"', '\'']);
            if let Some(url) = base.join(raw) {
                if !out.iter().any(|e: &Discovered| e.url == url) {
                    out.push(Discovered {
                        url,
                        kind: ResourceKind::Css,
                        via: DiscoveryVia::CssUrl,
                        exec: ExecMode::Sync,
                    });
                }
            }
            i += 7 + end;
            continue;
        }
        i += 1;
    }
    out
}

/// Heuristically pull absolute http(s) URLs out of free text (inline
/// scripts). This mirrors what a server can cheaply do online; URLs built
/// dynamically by string concatenation are exactly the "unpredictable"
/// resources Vroom leaves to the client.
pub fn extract_absolute_urls(text: &str) -> Vec<Url> {
    let mut out = Vec::new();
    let mut search = text;
    while let Some(idx) = search.find("http") {
        let candidate = &search[idx..];
        let is_url = candidate.starts_with("http://") || candidate.starts_with("https://");
        if is_url {
            let end = candidate
                .find(|c: char| {
                    c.is_whitespace() || matches!(c, '"' | '\'' | '`' | ')' | '<' | '>' | '\\')
                })
                .unwrap_or(candidate.len());
            let raw = candidate[..end].trim_end_matches([',', ';', '.']);
            if let Some(url) = Url::parse(raw) {
                if url.path.len() > 1 && !out.contains(&url) {
                    out.push(url);
                }
            }
            search = &search[idx + end.max(4)..];
        } else {
            search = &search[idx + 4..];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Url {
        Url::https("news.com", "/index.html")
    }

    fn urls(found: &[Discovered]) -> Vec<String> {
        found.iter().map(|d| d.url.to_string()).collect()
    }

    #[test]
    fn finds_scripts_with_exec_modes() {
        let html = r#"
            <script src="/app.js"></script>
            <script async src="https://ads.net/ad.js"></script>
            <script defer src="late.js"></script>
        "#;
        let found = scan_html(&base(), html);
        assert_eq!(found.len(), 3);
        assert_eq!(found[0].exec, ExecMode::Sync);
        assert_eq!(found[0].kind, ResourceKind::Js);
        assert_eq!(found[1].exec, ExecMode::Async);
        assert_eq!(found[1].url.host, "ads.net");
        assert_eq!(found[2].exec, ExecMode::Defer);
        assert_eq!(found[2].url.path, "/late.js");
    }

    #[test]
    fn finds_stylesheets_and_preloads() {
        let html = r#"
            <link rel="stylesheet" href="/main.css">
            <link rel="preload" href="/hero.webp" as="image">
            <link rel="preload" href="//cdn.news.com/font.woff2" as="font">
            <link rel="canonical" href="https://news.com/">
        "#;
        let found = scan_html(&base(), html);
        assert_eq!(found.len(), 3, "canonical must be ignored: {found:?}");
        assert_eq!(found[0].kind, ResourceKind::Css);
        assert_eq!(found[1].kind, ResourceKind::Image);
        assert_eq!(found[1].via, DiscoveryVia::LinkPreload);
        assert_eq!(found[2].kind, ResourceKind::Font);
    }

    #[test]
    fn finds_images_and_srcset() {
        let html = r#"<img src="a.jpg" srcset="a-2x.jpg 2x, a-3x.jpg 3x">"#;
        let found = scan_html(&base(), html);
        assert_eq!(
            urls(&found),
            vec![
                "https://news.com/a.jpg",
                "https://news.com/a-2x.jpg",
                "https://news.com/a-3x.jpg"
            ]
        );
        assert!(found.iter().all(|d| d.kind == ResourceKind::Image));
    }

    #[test]
    fn finds_iframes_as_html() {
        let html = r#"<iframe src="https://ads.net/frame.html"></iframe>"#;
        let found = scan_html(&base(), html);
        assert_eq!(found[0].kind, ResourceKind::Html);
        assert_eq!(found[0].via, DiscoveryVia::Iframe);
    }

    #[test]
    fn finds_css_urls_in_style_blocks() {
        let html = r#"<style>
            @import url("/theme.css");
            body { background: url('/bg.png'); }
            @font-face { src: url(/f.woff2); }
        </style>"#;
        let found = scan_html(&base(), html);
        let kinds: Vec<ResourceKind> = found.iter().map(|d| d.kind).collect();
        assert_eq!(
            kinds,
            vec![ResourceKind::Css, ResourceKind::Image, ResourceKind::Font]
        );
    }

    #[test]
    fn scan_css_standalone() {
        let css = r#"@import "extra.css"; .x { background-image: url(img/dot.gif) }"#;
        let found = scan_css(&Url::https("a.com", "/styles/main.css"), css);
        assert_eq!(
            urls(&found),
            vec![
                "https://a.com/styles/extra.css",
                "https://a.com/styles/img/dot.gif"
            ]
        );
    }

    #[test]
    fn inline_script_absolute_urls() {
        let html = r#"<script>
            var img = new Image();
            img.src = "https://b.com/img.jpg";
            fetch('https://api.news.com/v1/stories.json');
            var partial = "https://" + host + "/dyn.js"; // unpredictable
        </script>"#;
        let found = scan_html(&base(), html);
        let u = urls(&found);
        assert!(u.contains(&"https://b.com/img.jpg".to_string()));
        assert!(u.contains(&"https://api.news.com/v1/stories.json".to_string()));
        assert_eq!(u.len(), 2, "concatenated URL must not be extracted: {u:?}");
    }

    #[test]
    fn data_uris_and_javascript_hrefs_ignored() {
        let html = r#"
            <img src="data:image/png;base64,AAAA">
            <script src="javascript:void(0)"></script>
        "#;
        assert!(scan_html(&base(), html).is_empty());
    }

    #[test]
    fn duplicates_collapsed() {
        let html = r#"<img src="/a.png"><img src="/a.png"><img src="a.png">"#;
        assert_eq!(scan_html(&base(), html).len(), 1);
    }

    #[test]
    fn kind_from_extension_table() {
        assert_eq!(ResourceKind::from_extension("js"), ResourceKind::Js);
        assert_eq!(ResourceKind::from_extension("css"), ResourceKind::Css);
        assert_eq!(ResourceKind::from_extension("webp"), ResourceKind::Image);
        assert_eq!(ResourceKind::from_extension("woff2"), ResourceKind::Font);
        assert_eq!(ResourceKind::from_extension("mp4"), ResourceKind::Media);
        assert_eq!(ResourceKind::from_extension("json"), ResourceKind::Xhr);
        assert_eq!(ResourceKind::from_extension("bin"), ResourceKind::Other);
        assert!(ResourceKind::Html.needs_processing());
        assert!(ResourceKind::Css.needs_processing());
        assert!(ResourceKind::Js.needs_processing());
        assert!(!ResourceKind::Image.needs_processing());
    }

    #[test]
    fn realistic_news_page() {
        // A page shaped like the paper's Figure 5/10 examples.
        let html = r#"<!DOCTYPE html>
<html><head>
  <link rel="stylesheet" href="https://b.com/style.css">
  <script src="/foo.js"></script>
  <script async src="https://c.com/ad_inject.js"></script>
</head><body>
  <img src="/banner.jpg">
  <iframe src="https://c.com/ad.php"></iframe>
  <script>var i=new Image(); i.src="https://b.com/logo_lo_res.png";</script>
</body></html>"#;
        let found = scan_html(&Url::https("a.com", "/index.html"), html);
        let u = urls(&found);
        assert_eq!(
            u,
            vec![
                "https://b.com/style.css",
                "https://a.com/foo.js",
                "https://c.com/ad_inject.js",
                "https://a.com/banner.jpg",
                "https://c.com/ad.php",
                "https://b.com/logo_lo_res.png",
            ]
        );
        // The iframe is the only embedded HTML.
        assert_eq!(
            found
                .iter()
                .filter(|d| d.via == DiscoveryVia::Iframe)
                .count(),
            1
        );
    }
}
