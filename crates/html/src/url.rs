//! A minimal URL type sufficient for page-load modeling: scheme, host, path.
//!
//! Deliberately not a full RFC 3986 implementation — query strings stay glued
//! to the path (they matter for Vroom's unpredictability analysis: ad URLs
//! differ across loads precisely in their query parameters), and userinfo,
//! ports, and fragments beyond stripping are out of scope.

use std::fmt;

/// A parsed absolute URL.
///
/// Serialized as its display string (so it can key JSON maps in the replay
/// store).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Url {
    /// `http` or `https`.
    pub scheme: String,
    /// Host name, lower-cased.
    pub host: String,
    /// Path including query string, always starting with `/`.
    pub path: String,
}

impl Url {
    /// Construct directly.
    pub fn new(
        scheme: impl Into<String>,
        host: impl Into<String>,
        path: impl Into<String>,
    ) -> Self {
        let mut path = path.into();
        if path.is_empty() {
            path.push('/');
        }
        Url {
            scheme: scheme.into(),
            host: host.into().to_ascii_lowercase(),
            path,
        }
    }

    /// Shorthand for an `https` URL.
    pub fn https(host: impl Into<String>, path: impl Into<String>) -> Self {
        Url::new("https", host, path)
    }

    /// Parse an absolute URL. Fragments are stripped; the host is
    /// lower-cased. Returns `None` for non-http(s) schemes or empty hosts.
    pub fn parse(s: &str) -> Option<Url> {
        let s = s.trim();
        if let Some(r) = s.strip_prefix("https://") {
            Self::parse_after_scheme("https", r)
        } else if let Some(r) = s.strip_prefix("http://") {
            Self::parse_after_scheme("http", r)
        } else {
            // Reject other schemes (data:, javascript:, ...).
            None
        }
    }

    fn parse_after_scheme(scheme: &str, rest: &str) -> Option<Url> {
        let (host, path) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        let host = host.split('@').next_back()?; // drop userinfo if any
        let host = host.split(':').next()?; // drop port
        if host.is_empty() {
            return None;
        }
        let path = path.split('#').next().unwrap_or("/");
        Some(Url::new(scheme, host, path))
    }

    /// Resolve a reference against this base URL: handles absolute URLs,
    /// protocol-relative (`//host/x`), root-relative (`/x`), and
    /// path-relative (`x`, `../x`) references. Returns `None` for
    /// unsupported schemes (`data:`, `javascript:`, `mailto:`, ...).
    pub fn join(&self, reference: &str) -> Option<Url> {
        let r = reference.trim();
        if r.is_empty() {
            return None;
        }
        if r.starts_with("http://") || r.starts_with("https://") {
            return Url::parse(r);
        }
        if let Some(pr) = r.strip_prefix("//") {
            return Url::parse(&format!("{}://{}", self.scheme, pr));
        }
        // Reject explicit non-http schemes ("data:", "javascript:", etc.):
        // a scheme prefix before any '/' means a scheme-qualified reference.
        if let Some(colon) = r.find(':') {
            if !r[..colon].contains('/') {
                return None;
            }
        }
        let path = r.split('#').next().unwrap_or("");
        if path.is_empty() {
            return None;
        }
        // Both branches run through the same segment normalizer: a crawled
        // `/b.css` and a page referencing it as `/a/../b.css` must resolve
        // to the same replay-store key.
        let resolved = if path.starts_with('/') {
            normalize_path(path)
        } else {
            // Relative to base directory.
            let dir_end = self.path.rfind('/').unwrap_or(0);
            normalize_path(&format!("{}/{}", &self.path[..dir_end], path))
        };
        Some(Url::new(&self.scheme, &self.host, resolved))
    }

    /// The origin string, `scheme://host`.
    pub fn origin(&self) -> String {
        format!("{}://{}", self.scheme, self.host)
    }

    /// Same-origin check (scheme + host; ports are out of scope).
    pub fn same_origin(&self, other: &Url) -> bool {
        self.scheme == other.scheme && self.host == other.host
    }

    /// The registrable domain, approximated as the last two labels
    /// (`cdn.news.com` → `news.com`). Used for the paper's "all other
    /// domains controlled by the same organization" incremental-deployment
    /// experiment.
    pub fn registrable_domain(&self) -> &str {
        let mut dots = self.host.rmatch_indices('.');
        let _tld_dot = dots.next();
        match dots.next() {
            Some((i, _)) => &self.host[i + 1..],
            None => &self.host,
        }
    }

    /// Whether two URLs belong to the same organization (same registrable
    /// domain).
    pub fn same_site(&self, other: &Url) -> bool {
        self.registrable_domain() == other.registrable_domain()
    }

    /// The file extension of the path, if any, lower-cased and without the
    /// query string.
    pub fn extension(&self) -> Option<String> {
        let path = self.path.split('?').next().unwrap_or("");
        let file = path.rsplit('/').next()?;
        let (stem, ext) = file.rsplit_once('.')?;
        if stem.is_empty() || ext.is_empty() || ext.len() > 5 {
            return None;
        }
        Some(ext.to_ascii_lowercase())
    }
}

/// Collapse `.` and `..` segments of an absolute path (RFC 3986 §5.2.4
/// in spirit), leaving any query string untouched. Over-popped `..`
/// clamps at the root instead of escaping it, and a directory reference
/// (trailing `/`, `/.`, or `/..`) keeps its trailing slash.
fn normalize_path(path: &str) -> String {
    let (p, query) = match path.find('?') {
        Some(i) => path.split_at(i),
        None => (path, ""),
    };
    let trailing_dir = p.ends_with('/') || p.ends_with("/.") || p.ends_with("/..");
    let mut segs: Vec<&str> = Vec::new();
    for seg in p.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                segs.pop();
            }
            s => segs.push(s),
        }
    }
    let mut out = String::with_capacity(path.len() + 1);
    out.push('/');
    out.push_str(&segs.join("/"));
    if trailing_dir && !segs.is_empty() {
        out.push('/');
    }
    out.push_str(query);
    out
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}{}", self.scheme, self.host, self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_forms() {
        let u = Url::parse("https://News.Example.com/a/b.html?x=1#frag").unwrap();
        assert_eq!(u.scheme, "https");
        assert_eq!(u.host, "news.example.com");
        assert_eq!(u.path, "/a/b.html?x=1");
        assert_eq!(u.to_string(), "https://news.example.com/a/b.html?x=1");

        let bare = Url::parse("http://a.com").unwrap();
        assert_eq!(bare.path, "/");
    }

    #[test]
    fn parse_strips_port_and_userinfo() {
        let raw = format!("https://user:pass{}a.com:8443/x", "\u{40}");
        let u = Url::parse(&raw).unwrap();
        assert_eq!(u.host, "a.com");
        assert_eq!(u.path, "/x");
    }

    #[test]
    fn parse_rejects_other_schemes() {
        assert!(Url::parse("data:image/png;base64,AAA").is_none());
        assert!(Url::parse("javascript:void(0)").is_none());
        assert!(Url::parse("ftp://a.com/x").is_none());
        assert!(Url::parse("https:///nopath").is_none());
    }

    #[test]
    fn join_absolute_and_protocol_relative() {
        let base = Url::https("a.com", "/dir/page.html");
        assert_eq!(
            base.join("https://b.com/x.js").unwrap(),
            Url::https("b.com", "/x.js")
        );
        assert_eq!(
            base.join("//cdn.b.com/y.css").unwrap(),
            Url::https("cdn.b.com", "/y.css")
        );
    }

    #[test]
    fn join_root_and_path_relative() {
        let base = Url::https("a.com", "/dir/sub/page.html");
        assert_eq!(base.join("/img/x.png").unwrap().path, "/img/x.png");
        assert_eq!(base.join("x.png").unwrap().path, "/dir/sub/x.png");
        assert_eq!(base.join("../x.png").unwrap().path, "/dir/x.png");
        assert_eq!(base.join("../../../x.png").unwrap().path, "/x.png");
        assert_eq!(base.join("./a/b.js").unwrap().path, "/dir/sub/a/b.js");
    }

    #[test]
    fn join_normalizes_absolute_refs() {
        // Regression: a crawled `/b.css` referenced as `/a/../b.css` must
        // resolve to the replay-store key `/b.css`, not keep literal `..`.
        let base = Url::https("a.com", "/dir/page.html");
        assert_eq!(base.join("/a/../b.css").unwrap().path, "/b.css");
        assert_eq!(base.join("/a/./b/../c.css").unwrap().path, "/a/c.css");
        assert_eq!(base.join("/a//b.css").unwrap().path, "/a/b.css");
        // Query strings survive untouched.
        assert_eq!(
            base.join("/a/../b.css?v=1&u=..").unwrap().path,
            "/b.css?v=1&u=.."
        );
    }

    #[test]
    fn join_clamps_over_popped_dotdot() {
        let base = Url::https("a.com", "/dir/page.html");
        assert_eq!(base.join("/../../x.png").unwrap().path, "/x.png");
        assert_eq!(base.join("../../../../x.png").unwrap().path, "/x.png");
        assert_eq!(base.join("/..").unwrap().path, "/");
    }

    #[test]
    fn join_preserves_trailing_slash() {
        let base = Url::https("a.com", "/dir/sub/page.html");
        assert_eq!(base.join("/a/b/").unwrap().path, "/a/b/");
        assert_eq!(base.join("gallery/").unwrap().path, "/dir/sub/gallery/");
        assert_eq!(base.join("/a/b/..").unwrap().path, "/a/");
        assert_eq!(base.join("/a/b/.").unwrap().path, "/a/b/");
        // Collapsing to the root never doubles the slash.
        assert_eq!(base.join("/a/..").unwrap().path, "/");
    }

    #[test]
    fn join_rejects_non_http_schemes() {
        let base = Url::https("a.com", "/");
        assert!(base.join("data:text/plain,hi").is_none());
        assert!(base.join("javascript:alert(1)").is_none());
        assert!(base
            .join(&format!("mailto:bob{}example.org", "\u{40}"))
            .is_none());
        // But a path containing a colon after a slash is fine.
        assert!(base.join("/weird/a:b.png").is_some());
    }

    #[test]
    fn origins_and_sites() {
        let a = Url::https("cdn.news.com", "/x");
        let b = Url::https("www.news.com", "/y");
        let c = Url::https("ads.tracker.net", "/z");
        assert!(!a.same_origin(&b));
        assert!(a.same_site(&b));
        assert!(!a.same_site(&c));
        assert_eq!(a.registrable_domain(), "news.com");
        assert_eq!(
            Url::https("localhost", "/").registrable_domain(),
            "localhost"
        );
    }

    #[test]
    fn extension_extraction() {
        assert_eq!(
            Url::https("a.com", "/x/app.min.js?v=2")
                .extension()
                .unwrap(),
            "js"
        );
        assert_eq!(
            Url::https("a.com", "/style.CSS").extension().unwrap(),
            "css"
        );
        assert_eq!(Url::https("a.com", "/api/data").extension(), None);
        assert_eq!(Url::https("a.com", "/.hidden").extension(), None);
        assert_eq!(Url::https("a.com", "/x.verylongext").extension(), None);
    }
}
