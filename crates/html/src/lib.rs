//! `vroom-html` — HTML/CSS scanning for resource discovery.
//!
//! This crate is the substrate behind Vroom's *online analysis* (paper
//! §4.1.2): when a Vroom-compliant server serves an HTML object, it parses
//! the bytes on the fly and includes every URL it sees as a dependency hint.
//! It provides:
//!
//! * [`Url`] — a minimal absolute-URL type with reference resolution,
//!   origin/site comparisons, and extension-based typing,
//! * [`tokenizer`] — a pragmatic WHATWG-ish HTML tokenizer (tags,
//!   attributes, comments, raw-text `script`/`style` handling),
//! * [`scanner`] — extraction of sub-resource references from HTML and CSS,
//!   with the [`ResourceKind`] and [`ExecMode`] taxonomy that drives Vroom's
//!   priority tiers.

#![forbid(unsafe_code)]

pub mod scanner;
pub mod tokenizer;
pub mod url;

pub use scanner::{
    extract_absolute_urls, scan_css, scan_html, Discovered, DiscoveryVia, ExecMode, ResourceKind,
};
pub use tokenizer::{Token, Tokenizer};
pub use url::Url;
