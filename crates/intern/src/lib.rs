//! URL interning and shared immutable buffers.
//!
//! The replay store, the browser engine, and the server-side resolver all
//! key their hot-path structures by URL. A [`Url`] is three owned `String`s,
//! so every map lookup walks string comparisons and every hand-off clones
//! three heap allocations. This crate replaces those with:
//!
//! * [`UrlTable`] — an append-only intern table mapping `Url ↔ UrlId`.
//!   Ids are dense `u32`s handed out in insertion order, so two runs that
//!   intern the same URLs in the same order assign identical ids: the table
//!   is as deterministic as the code that fills it. Resolution (`id → Url`)
//!   is a `Vec` index; interning and reverse lookup are one `BTreeMap`
//!   probe. The table also caches each URL's origin string (`scheme://host`),
//!   which `Url::origin()` otherwise re-allocates on every call.
//! * [`SharedBytes`] / [`SharedStr`] — `Arc`-backed immutable buffers in the
//!   style of the `bytes` crate: cloning is a reference-count bump, never a
//!   byte copy.
//!
//! No external dependencies; the only workspace dependency is `vroom-html`
//! for the `Url` type itself.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

pub use vroom_html::Url;

/// Handle to an interned URL. Dense, `Copy`, and ordered by insertion:
/// `UrlId`s compare the way their intern order does, *not* the way the URLs
/// themselves sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UrlId(u32);

impl UrlId {
    /// The id as a dense index (for `Vec`-backed side tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild an id from a dense index. The caller is responsible for the
    /// index having come from the same table.
    pub fn from_index(index: usize) -> Self {
        // vroom-lint: allow(panic-reachable) -- ids are minted from Vec lengths; overflow needs 2^32 interned URLs
        UrlId(u32::try_from(index).expect("more than u32::MAX interned urls"))
    }

    /// Route this id to one of `shards` buckets — the shard-selection
    /// function of the sharded hint store. Total (always `< shards` for
    /// `shards >= 1`; `0` for `shards <= 1`) and a pure function of the id
    /// *value* alone, never of table size: an id keeps its shard as the
    /// table grows, so entries filed under it never migrate. Consecutive
    /// ids are spread by Fibonacci multiplicative hashing rather than
    /// `id % shards`, which would pile every early-interned root URL onto
    /// the low shards.
    pub fn shard(self, shards: usize) -> usize {
        if shards <= 1 {
            return 0;
        }
        let h = u64::from(self.0).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize) % shards
    }
}

impl fmt::Display for UrlId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// Append-only intern table mapping `Url ↔ UrlId`.
///
/// Ids are handed out in insertion order and never change, so any two
/// identically-ordered fills produce identical ids — the property the
/// simulator's determinism suite pins down.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UrlTable {
    urls: Vec<Url>,
    /// Cached `scheme://host` per id, built once at intern time.
    origins: Vec<SharedStr>,
    /// Cached full rendering per id, built once at intern time.
    full: Vec<SharedStr>,
    /// Cached host per id, deduplicated so every URL on a domain shares
    /// one allocation.
    hosts: Vec<SharedStr>,
    /// Distinct hosts seen so far, for the dedup in `intern`.
    host_index: BTreeMap<String, SharedStr>,
    index: BTreeMap<Url, UrlId>,
}

impl UrlTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a URL, returning its id. Re-interning an already-known URL
    /// returns the existing id (the table never holds duplicates).
    pub fn intern(&mut self, url: Url) -> UrlId {
        if let Some(&id) = self.index.get(&url) {
            return id;
        }
        let id = UrlId::from_index(self.urls.len());
        self.origins.push(SharedStr::from(url.origin()));
        self.full.push(SharedStr::from(url.to_string()));
        let host = self
            .host_index
            .entry(url.host.clone())
            .or_insert_with(|| SharedStr::from(url.host.as_str()))
            .share();
        self.hosts.push(host);
        self.index.insert(url.clone(), id);
        self.urls.push(url);
        id
    }

    /// The id of an already-interned URL, if any. Read-only: never mutates
    /// the table, so shared (`Arc`) tables can serve lookups concurrently.
    pub fn lookup(&self, url: &Url) -> Option<UrlId> {
        self.index.get(url).copied()
    }

    /// Resolve an id to its URL. Panics on an id from a different table;
    /// use [`UrlTable::url`] where a foreign id is possible.
    pub fn get(&self, id: UrlId) -> &Url {
        // vroom-lint: allow(panic-reachable) -- documented contract: panics only on a foreign id; wire paths use the total `url` API
        &self.urls[id.index()]
    }

    /// Total resolution of an id to its URL (`None` for foreign ids).
    pub fn url(&self, id: UrlId) -> Option<&Url> {
        self.urls.get(id.index())
    }

    /// The cached origin string (`scheme://host`) of an interned URL —
    /// equal to `self.get(id).origin()` without the per-call allocation.
    pub fn origin(&self, id: UrlId) -> &str {
        &self.origins[id.index()]
    }

    /// The cached full rendering of an interned URL — equal to
    /// `self.get(id).to_string()` without the per-call allocation. Returns
    /// the shared string so callers can [`SharedStr::share`] it into
    /// headers without copying.
    pub fn full_url(&self, id: UrlId) -> &SharedStr {
        // vroom-lint: allow(panic-reachable) -- documented contract: panics only on a foreign id; wire paths use the total `url` API
        &self.full[id.index()]
    }

    /// The cached host of an interned URL. Every URL on a domain shares one
    /// allocation, so callers can [`SharedStr::share`] it into per-domain
    /// maps and events without copying.
    pub fn host(&self, id: UrlId) -> &SharedStr {
        // vroom-lint: allow(panic-reachable) -- documented contract: panics only on a foreign id; wire paths use the total `url` API
        &self.hosts[id.index()]
    }

    /// Number of interned URLs.
    pub fn len(&self) -> usize {
        self.urls.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.urls.is_empty()
    }

    /// Iterate `(id, url)` in insertion (id) order.
    pub fn iter(&self) -> impl Iterator<Item = (UrlId, &Url)> {
        self.urls
            .iter()
            .enumerate()
            .map(|(i, u)| (UrlId::from_index(i), u))
    }

    /// Iterate `(url, id)` in URL sort order — for canonical serialization,
    /// which must not depend on intern order.
    pub fn iter_sorted(&self) -> impl Iterator<Item = (&Url, UrlId)> {
        self.index.iter().map(|(u, &id)| (u, id))
    }
}

/// Immutable shared byte buffer: cloning bumps a reference count.
#[derive(Clone, Default)]
pub struct SharedBytes(Arc<[u8]>);

impl SharedBytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Another handle to the same buffer — a reference-count bump, never a
    /// byte copy. Spelled `share` (not `clone`) on hot paths so allocation
    /// audits can tell the two apart syntactically.
    pub fn share(&self) -> SharedBytes {
        SharedBytes(Arc::clone(&self.0))
    }
}

impl Deref for SharedBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for SharedBytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for SharedBytes {
    fn from(v: Vec<u8>) -> Self {
        SharedBytes(v.into())
    }
}

impl From<&[u8]> for SharedBytes {
    fn from(v: &[u8]) -> Self {
        SharedBytes(v.into())
    }
}

impl From<String> for SharedBytes {
    fn from(s: String) -> Self {
        SharedBytes(s.into_bytes().into())
    }
}

impl From<&SharedStr> for SharedBytes {
    /// Zero-copy: reuses the string's allocation, bumping its refcount.
    fn from(s: &SharedStr) -> Self {
        SharedBytes(Arc::from(s.0.clone()))
    }
}

impl PartialEq for SharedBytes {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for SharedBytes {}

impl fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharedBytes({} bytes)", self.len())
    }
}

/// Immutable shared string: cloning bumps a reference count.
#[derive(Clone)]
pub struct SharedStr(Arc<str>);

impl SharedStr {
    /// The string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Another handle to the same string — a reference-count bump, never a
    /// byte copy. Spelled `share` (not `clone`) on hot paths so allocation
    /// audits can tell the two apart syntactically.
    pub fn share(&self) -> SharedStr {
        SharedStr(Arc::clone(&self.0))
    }
}

impl Default for SharedStr {
    fn default() -> Self {
        SharedStr(Arc::from(""))
    }
}

impl Deref for SharedStr {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for SharedStr {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl std::borrow::Borrow<str> for SharedStr {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl From<String> for SharedStr {
    fn from(s: String) -> Self {
        SharedStr(s.into())
    }
}

impl From<&str> for SharedStr {
    fn from(s: &str) -> Self {
        SharedStr(s.into())
    }
}

impl PartialEq for SharedStr {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for SharedStr {}

impl PartialEq<str> for SharedStr {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for SharedStr {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<String> for SharedStr {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<SharedStr> for String {
    fn eq(&self, other: &SharedStr) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<SharedStr> for str {
    fn eq(&self, other: &SharedStr) -> bool {
        self == &*other.0
    }
}

impl PartialEq<SharedStr> for &str {
    fn eq(&self, other: &SharedStr) -> bool {
        *self == &*other.0
    }
}

impl std::hash::Hash for SharedStr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (*self.0).hash(state)
    }
}

impl PartialOrd for SharedStr {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SharedStr {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl fmt::Debug for SharedStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.0, f)
    }
}

impl fmt::Display for SharedStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut t = UrlTable::new();
        let a = t.intern(Url::https("a.com", "/x"));
        let b = t.intern(Url::https("b.com", "/y"));
        let a2 = t.intern(Url::https("a.com", "/x"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a), &Url::https("a.com", "/x"));
        assert_eq!(t.lookup(&Url::https("b.com", "/y")), Some(b));
        assert_eq!(t.lookup(&Url::https("c.com", "/")), None);
        assert_eq!(t.url(UrlId::from_index(99)), None);
    }

    #[test]
    fn ids_are_insertion_ordered_not_url_ordered() {
        let mut t = UrlTable::new();
        let z = t.intern(Url::https("z.com", "/"));
        let a = t.intern(Url::https("a.com", "/"));
        assert!(z < a, "ids follow insertion order");
        let sorted: Vec<&Url> = t.iter_sorted().map(|(u, _)| u).collect();
        assert_eq!(sorted[0].host, "a.com", "sorted iteration is by URL");
    }

    #[test]
    fn origin_is_cached_and_matches_url_origin() {
        let mut t = UrlTable::new();
        let id = t.intern(Url::https("News.Example.com", "/a/b?q=1"));
        assert_eq!(t.origin(id), t.get(id).origin());
        assert_eq!(t.origin(id), "https://news.example.com");
        // Same origin pointer across calls: no per-call allocation.
        let p1 = t.origin(id).as_ptr();
        let p2 = t.origin(id).as_ptr();
        assert_eq!(p1, p2);
    }

    #[test]
    fn shared_bytes_clone_shares_storage() {
        let b = SharedBytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.as_slice().as_ptr(), c.as_slice().as_ptr());
    }

    #[test]
    fn shared_str_clone_shares_storage() {
        let s = SharedStr::from("hello".to_string());
        let t = s.clone();
        assert_eq!(s.as_str(), "hello");
        assert_eq!(s.as_str().as_ptr(), t.as_str().as_ptr());
        assert_eq!(s, t);
    }

    #[test]
    fn share_is_a_refcount_bump() {
        let s = SharedStr::from("hot");
        let t = s.share();
        assert_eq!(s.as_str().as_ptr(), t.as_str().as_ptr());
        let b = SharedBytes::from(&s);
        let c = b.share();
        assert_eq!(b.as_slice().as_ptr(), c.as_slice().as_ptr());
    }

    #[test]
    fn shared_str_compares_and_hashes_like_str() {
        let s = SharedStr::from("abc");
        assert!(s == "abc");
        assert!(s == *"abc");
        assert!("abc" == s);
        let mut set = std::collections::HashSet::new();
        set.insert(SharedStr::from("x"));
        assert!(set.contains(&SharedStr::from("x")));
    }

    #[test]
    fn shard_routing_is_total_and_stable() {
        for id in [0usize, 1, 2, 17, 4096, u32::MAX as usize] {
            let id = UrlId::from_index(id.min(u32::MAX as usize));
            assert_eq!(id.shard(0), 0);
            assert_eq!(id.shard(1), 0);
            for shards in [2usize, 3, 8, 16, 1024] {
                assert!(id.shard(shards) < shards, "total for shards={shards}");
            }
        }
        // Stability: a table growing around an id never changes its shard.
        let mut t = UrlTable::new();
        let first = t.intern(Url::https("a.com", "/x"));
        let before = first.shard(16);
        for i in 0..100 {
            t.intern(Url::https(format!("host{i}.com"), "/y"));
        }
        assert_eq!(first.shard(16), before);
    }

    #[test]
    fn full_url_is_cached_and_matches_display() {
        let mut t = UrlTable::new();
        let id = t.intern(Url::https("a.com", "/x?q=1"));
        assert_eq!(t.full_url(id).as_str(), t.get(id).to_string());
        let p1 = t.full_url(id).as_str().as_ptr();
        let p2 = t.full_url(id).as_str().as_ptr();
        assert_eq!(p1, p2);
    }
}
