//! Deterministic fault injection for the network substrate.
//!
//! A [`FaultPlan`] is a *pre-drawn schedule* of everything that will go
//! wrong during one page load: shared-link outages (packet-loss bursts and
//! bandwidth collapses), connection drops (surfacing as GOAWAY), truncated
//! response bodies (surfacing as RST_STREAM), and hint-set corruption
//! (stale server-side dependency knowledge, paper Fig. 17).
//!
//! Two properties make the chaos suite reproducible:
//!
//! 1. **Seeded construction** — plans are drawn from `vroom-sim`'s
//!    splittable [`Rng`], so a (seed, severity) pair names one plan forever.
//! 2. **Stateless decisions** — per-request rolls ([`FaultPlan::truncation`],
//!    [`FaultPlan::conn_drop`], [`FaultPlan::corrupt_hint`]) are pure hashes
//!    of `(plan seed, decision label)`. Query order cannot perturb outcomes,
//!    so two identically seeded loads stay byte-identical no matter how
//!    their event interleavings explore the plan.
//!
//! All probabilities are quantized to parts-per-million so the canonical
//! JSON round-trip ([`FaultPlan::to_json`] / [`FaultPlan::from_json`]) is
//! exact.

use crate::json::{Error, Value};
use crate::link::CapacityWindow;
use std::collections::BTreeMap;
use vroom_sim::{Rng, SimDuration, SimTime};

/// One window during which the shared link degrades.
///
/// `factor == 0` models a packet-loss burst (no goodput at all);
/// `0 < factor < 1` models a bandwidth collapse to that fraction of
/// nominal capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outage {
    /// When the outage begins.
    pub start: SimTime,
    /// How long it lasts.
    pub duration: SimDuration,
    /// Remaining capacity fraction in `[0, 1)`.
    pub factor: f64,
}

/// Retry policy for a single fetch: how many attempts, how long each may
/// run, and how the client backs off between them.
///
/// Every retry loop in the workspace must consult one of these — the
/// `retry-budget` lint rule rejects bare retry loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryBudget {
    /// Total attempts allowed per resource (first try included).
    pub max_attempts: u32,
    /// Per-attempt timeout; an attempt not finished by then is reset.
    pub timeout: SimDuration,
    /// Backoff before the second attempt; doubles per attempt after.
    pub backoff_base: SimDuration,
    /// Upper bound on any single backoff interval.
    pub backoff_cap: SimDuration,
}

impl RetryBudget {
    /// The default browser budget: three attempts, generous timeout,
    /// 250 ms initial backoff capped at 4 s.
    pub fn standard() -> Self {
        RetryBudget {
            max_attempts: 3,
            timeout: SimDuration::from_secs(20),
            backoff_base: SimDuration::from_millis(250),
            backoff_cap: SimDuration::from_secs(4),
        }
    }

    /// Whether another attempt may start after `attempts` have been made.
    pub fn allows(&self, attempts: u32) -> bool {
        attempts < self.max_attempts
    }

    /// Capped exponential backoff before attempt `attempt + 1` (so after
    /// `attempt` failures): `base * 2^(attempt-1)`, clamped to the cap.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let shift = attempt.saturating_sub(1).min(20);
        let ns = self.backoff_base.as_nanos().saturating_mul(1u64 << shift);
        SimDuration::from_nanos(ns.min(self.backoff_cap.as_nanos()))
    }

    /// [`RetryBudget::backoff`] as a wall-clock duration, for the real
    /// wire client (which runs on actual threads, not simulated time).
    pub fn backoff_std(&self, attempt: u32) -> std::time::Duration {
        std::time::Duration::from_nanos(self.backoff(attempt).as_nanos())
    }
}

/// A deterministic schedule of injected faults for one load.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the stateless per-decision rolls.
    pub seed: u64,
    /// Link outages, sorted by start, non-overlapping.
    pub outages: Vec<Outage>,
    /// Probability that a given (domain, connection) is fated to drop.
    pub conn_drop_rate: f64,
    /// How long after the handshake a fated connection survives.
    pub conn_drop_delay: (SimDuration, SimDuration),
    /// Per-response-attempt probability of a truncated body.
    pub truncate_rate: f64,
    /// Fraction of server hints corrupted to stale URLs. Policies discard
    /// hint sets entirely past their staleness threshold.
    pub hint_corruption: f64,
}

/// Label streams for the stateless rolls; distinct per decision family so
/// a truncation roll can never alias a drop roll.
const STREAM_TRUNCATE: u64 = 1;
const STREAM_TRUNCATE_FRAC: u64 = 2;
const STREAM_DROP: u64 = 3;
const STREAM_DROP_DELAY: u64 = 4;
const STREAM_HINT: u64 = 5;

impl FaultPlan {
    /// The no-fault plan: injects nothing, costs nothing.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            outages: Vec::new(),
            conn_drop_rate: 0.0,
            conn_drop_delay: (SimDuration::ZERO, SimDuration::ZERO),
            truncate_rate: 0.0,
            hint_corruption: 0.0,
        }
    }

    /// Whether this plan can inject anything at all. Inactive plans keep
    /// the engine on its fault-free fast path (no timers, no extra events),
    /// so fault-free loads stay byte-identical to the pre-fault engine.
    pub fn is_active(&self) -> bool {
        !self.outages.is_empty()
            || self.conn_drop_rate > 0.0
            || self.truncate_rate > 0.0
            || self.hint_corruption > 0.0
    }

    /// Draw a plan from `vroom-sim`'s RNG. `severity` in `[0, 1]` scales
    /// every knob: 0 is calm weather, 1 is a very bad day on the train.
    pub fn from_rng(rng: &mut Rng, severity: f64) -> Self {
        let severity = severity.clamp(0.0, 1.0);
        let seed = rng.next_u64();
        // Outages: up to three, drawn sequentially with gaps so they are
        // sorted and disjoint by construction.
        let n_outages = (severity * 3.0).round() as usize;
        let mut outages = Vec::new();
        let mut cursor = SimTime::from_millis(rng.range_u64(100, 1500));
        for _ in 0..n_outages {
            let duration =
                SimDuration::from_millis(rng.range_u64(50, 400 + (severity * 800.0) as u64));
            // Half the windows are total-loss bursts, half are collapses.
            let factor = if rng.chance(0.5) {
                0.0
            } else {
                ppm(rng.range_f64(0.05, 0.5))
            };
            outages.push(Outage {
                start: cursor,
                duration,
                factor,
            });
            cursor = cursor + duration + SimDuration::from_millis(rng.range_u64(200, 2000));
        }
        FaultPlan {
            seed,
            outages,
            conn_drop_rate: ppm(severity * rng.range_f64(0.0, 0.25)),
            conn_drop_delay: (
                SimDuration::from_millis(rng.range_u64(20, 300)),
                SimDuration::from_millis(rng.range_u64(300, 2500)),
            ),
            truncate_rate: ppm(severity * rng.range_f64(0.0, 0.20)),
            hint_corruption: ppm(severity * rng.range_f64(0.0, 0.40)),
        }
    }

    /// Convenience: a plan named by `(seed, severity)` alone.
    pub fn from_seed(seed: u64, severity: f64) -> Self {
        // Derive a child stream so plan draws never alias page-generation
        // draws made from the same seed.
        let mut rng = Rng::new(seed).derive(0xFA_017);
        Self::from_rng(&mut rng, severity)
    }

    /// A plan whose only fault is hint corruption: the network behaves
    /// perfectly but `fraction` of the server's dependency metadata points
    /// at stale URLs. This is the knob the staleness experiments (Fig 17)
    /// turn — isolating "the resolver's knowledge aged" from "the network
    /// had a bad day".
    pub fn hint_corruption_only(seed: u64, fraction: f64) -> Self {
        FaultPlan {
            seed,
            hint_corruption: ppm(fraction.clamp(0.0, 1.0)),
            ..FaultPlan::none()
        }
    }

    /// The plan's outages as a capacity schedule for [`crate::SharedLink`].
    pub fn capacity_windows(&self) -> Vec<CapacityWindow> {
        self.outages
            .iter()
            .map(|o| CapacityWindow {
                start: o.start,
                end: o.start + o.duration,
                factor: o.factor,
            })
            .collect()
    }

    // ------------------------------------------------------- pure decisions

    /// Stateless uniform roll in `[0, 1)` for a decision label.
    fn roll(&self, stream: u64, label: &str, index: u64) -> f64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= index.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        // splitmix64 finalizer.
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Does attempt `attempt` at `url` get its body truncated? Returns the
    /// fraction of the body that *does* arrive before the reset.
    pub fn truncation(&self, url: &str, attempt: u32) -> Option<f64> {
        if self.truncate_rate <= 0.0 {
            return None;
        }
        if self.roll(STREAM_TRUNCATE, url, attempt as u64) < self.truncate_rate {
            let frac = self.roll(STREAM_TRUNCATE_FRAC, url, attempt as u64);
            Some(0.1 + 0.8 * frac)
        } else {
            None
        }
    }

    /// Is connection `conn` to `domain` fated to drop? Returns how long
    /// after its handshake it survives. Applies once per (domain, conn):
    /// the replacement connection is spared, so every load terminates.
    pub fn conn_drop(&self, domain: &str, conn: usize) -> Option<SimDuration> {
        if self.conn_drop_rate <= 0.0 {
            return None;
        }
        if self.roll(STREAM_DROP, domain, conn as u64) < self.conn_drop_rate {
            let (lo, hi) = self.conn_drop_delay;
            let span = hi.as_nanos().saturating_sub(lo.as_nanos()).max(1);
            let f = self.roll(STREAM_DROP_DELAY, domain, conn as u64);
            Some(SimDuration::from_nanos(
                lo.as_nanos() + (f * span as f64) as u64,
            ))
        } else {
            None
        }
    }

    /// Is the `index`-th hint attached to `html_url` corrupted (points at a
    /// stale URL instead of a live one)?
    pub fn corrupt_hint(&self, html_url: &str, index: usize) -> bool {
        self.hint_corruption > 0.0
            && self.roll(STREAM_HINT, html_url, index as u64) < self.hint_corruption
    }

    // ------------------------------------------------------------ canonical

    /// Canonical JSON encoding (byte-identical across runs).
    pub fn to_json(&self) -> String {
        let mut m = BTreeMap::new();
        m.insert("seed".to_string(), Value::Int(self.seed));
        m.insert(
            "outages".to_string(),
            Value::Array(
                self.outages
                    .iter()
                    .map(|o| {
                        let mut w = BTreeMap::new();
                        w.insert("start_ns".to_string(), Value::Int(o.start.as_nanos()));
                        w.insert("duration_ns".to_string(), Value::Int(o.duration.as_nanos()));
                        w.insert("factor_ppm".to_string(), Value::Int(to_ppm(o.factor)));
                        Value::Object(w)
                    })
                    .collect(),
            ),
        );
        m.insert(
            "conn_drop_rate_ppm".to_string(),
            Value::Int(to_ppm(self.conn_drop_rate)),
        );
        m.insert(
            "conn_drop_delay_ns".to_string(),
            Value::Array(vec![
                Value::Int(self.conn_drop_delay.0.as_nanos()),
                Value::Int(self.conn_drop_delay.1.as_nanos()),
            ]),
        );
        m.insert(
            "truncate_rate_ppm".to_string(),
            Value::Int(to_ppm(self.truncate_rate)),
        );
        m.insert(
            "hint_corruption_ppm".to_string(),
            Value::Int(to_ppm(self.hint_corruption)),
        );
        Value::Object(m).to_pretty()
    }

    /// Parse a plan back from [`FaultPlan::to_json`] output.
    pub fn from_json(input: &str) -> Result<Self, Error> {
        let v = Value::parse(input)?;
        let int = |key: &str| -> Result<u64, Error> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| Error::custom(format!("missing integer field `{key}`")))
        };
        let outages = match v.get("outages") {
            Some(Value::Array(items)) => items
                .iter()
                .map(|o| {
                    let field = |key: &str| {
                        o.get(key)
                            .and_then(Value::as_u64)
                            .ok_or_else(|| Error::custom(format!("bad outage field `{key}`")))
                    };
                    Ok(Outage {
                        start: SimTime::from_nanos(field("start_ns")?),
                        duration: SimDuration::from_nanos(field("duration_ns")?),
                        factor: from_ppm(field("factor_ppm")?),
                    })
                })
                .collect::<Result<Vec<_>, Error>>()?,
            _ => return Err(Error::custom("missing `outages` array")),
        };
        let delay = match v.get("conn_drop_delay_ns") {
            Some(Value::Array(d)) if d.len() == 2 => (
                SimDuration::from_nanos(d[0].as_u64().unwrap_or(0)),
                SimDuration::from_nanos(d[1].as_u64().unwrap_or(0)),
            ),
            _ => return Err(Error::custom("missing `conn_drop_delay_ns`")),
        };
        Ok(FaultPlan {
            seed: int("seed")?,
            outages,
            conn_drop_rate: from_ppm(int("conn_drop_rate_ppm")?),
            conn_drop_delay: delay,
            truncate_rate: from_ppm(int("truncate_rate_ppm")?),
            hint_corruption: from_ppm(int("hint_corruption_ppm")?),
        })
    }
}

/// Quantize a probability/fraction to parts-per-million so JSON
/// round-trips are exact.
fn ppm(x: f64) -> f64 {
    from_ppm(to_ppm(x))
}

fn to_ppm(x: f64) -> u64 {
    (x.clamp(0.0, 1.0) * 1e6).round() as u64
}

fn from_ppm(n: u64) -> f64 {
    n as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_plan_is_inactive() {
        assert!(!FaultPlan::none().is_active());
        assert!(FaultPlan::none().truncation("https://a/x.js", 1).is_none());
        assert!(FaultPlan::none().conn_drop("a.example", 0).is_none());
        assert!(!FaultPlan::none().corrupt_hint("https://a/", 3));
    }

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlan::from_seed(42, 0.7);
        let b = FaultPlan::from_seed(42, 0.7);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::from_seed(43, 0.7));
    }

    #[test]
    fn decisions_are_stateless_and_order_independent() {
        let plan = FaultPlan::from_seed(7, 1.0);
        let t1 = plan.truncation("https://cdn.example/app.js", 1);
        let _ = plan.conn_drop("cdn.example", 0);
        let _ = plan.corrupt_hint("https://root/", 9);
        let t2 = plan.truncation("https://cdn.example/app.js", 1);
        assert_eq!(t1, t2, "interleaved queries must not perturb a roll");
    }

    #[test]
    fn outages_sorted_and_disjoint() {
        for seed in 0..50 {
            let plan = FaultPlan::from_seed(seed, 1.0);
            let w = plan.capacity_windows();
            for pair in w.windows(2) {
                assert!(pair[0].end <= pair[1].start, "overlap in seed {seed}");
            }
            for o in &plan.outages {
                assert!(o.factor < 1.0 && o.factor >= 0.0);
                assert!(o.duration > SimDuration::ZERO);
            }
        }
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let plan = FaultPlan::from_seed(99, 0.8);
        let json = plan.to_json();
        assert_eq!(json, plan.to_json(), "serialization must be stable");
        let back = FaultPlan::from_json(&json).expect("parse");
        assert_eq!(back, plan, "ppm quantization makes the roundtrip exact");
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn truncation_rate_is_respected_roughly() {
        let plan = FaultPlan {
            truncate_rate: 0.5,
            seed: 11,
            ..FaultPlan::none()
        };
        let hits = (0..1000)
            .filter(|i| plan.truncation(&format!("https://a/r{i}"), 1).is_some())
            .count();
        assert!((350..650).contains(&hits), "got {hits}/1000 at rate 0.5");
        for i in 0..1000 {
            if let Some(f) = plan.truncation(&format!("https://a/r{i}"), 1) {
                assert!((0.1..0.9001).contains(&f));
            }
        }
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let b = RetryBudget::standard();
        assert_eq!(b.backoff(1), SimDuration::from_millis(250));
        assert_eq!(b.backoff(2), SimDuration::from_millis(500));
        assert_eq!(b.backoff(3), SimDuration::from_millis(1000));
        assert_eq!(b.backoff(10), SimDuration::from_secs(4), "cap binds");
        assert!(b.allows(0) && b.allows(2) && !b.allows(3));
    }
}
