//! A Mahimahi-style record/replay store (paper §5, §6.1).
//!
//! Mahimahi records every HTTP response during a live page load and replays
//! them from local shells, shaping traffic with the recorded per-server RTTs.
//! Our equivalent stores one [`RecordedResponse`] per URL, serializable to
//! JSON so corpora can be saved, inspected, and replayed bit-identically.
//!
//! URLs are interned: the store owns a [`UrlTable`] and keeps responses in a
//! dense `Vec` indexed by [`UrlId`], so the hot replay `lookup` is one
//! intern-table probe (or, via [`ReplayStore::lookup_id`], a bare index)
//! instead of a `BTreeMap<Url, _>` walk over three-string keys. Bodies are
//! [`SharedStr`]s — cloning a recorded body is a refcount bump, never a byte
//! copy. Serialization still iterates in URL sort order, so corpus JSON is
//! byte-identical to the pre-interning format.

use crate::json::{self, Value};
use crate::latency::LatencyModel;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use vroom_html::{ResourceKind, Url};
use vroom_intern::{SharedBytes, SharedStr, UrlId, UrlTable};
use vroom_sim::SimDuration;

/// One recorded HTTP exchange.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedResponse {
    /// The response's content class.
    pub kind: ResourceKind,
    /// Body size in bytes (synthetic bodies are regenerated on demand).
    pub size: u64,
    /// Status code.
    pub status: u16,
    /// Freshness lifetime; `None` means uncacheable.
    pub max_age: Option<SimDuration>,
    /// Literal body, if the recording kept one (HTML usually does, so the
    /// online analyzer can re-scan it; images usually don't). Shared:
    /// cloning the response shares the body storage.
    pub body: Option<SharedStr>,
}

impl RecordedResponse {
    /// A cacheable 200 of the given kind and size, no stored body.
    pub fn synthetic(kind: ResourceKind, size: u64) -> Self {
        RecordedResponse {
            kind,
            size,
            status: 200,
            max_age: Some(SimDuration::from_secs(3600)),
            body: None,
        }
    }

    /// A 200 with a literal body (size derived from it).
    pub fn with_body(kind: ResourceKind, body: impl Into<String>) -> Self {
        let body = body.into();
        RecordedResponse {
            kind,
            size: body.len() as u64,
            status: 200,
            max_age: Some(SimDuration::from_secs(3600)),
            body: Some(SharedStr::from(body)),
        }
    }

    /// Mark the response uncacheable.
    pub fn uncacheable(mut self) -> Self {
        self.max_age = None;
        self
    }

    /// The body to serve: the literal one (zero-copy — the returned buffer
    /// shares the recorded allocation), or a deterministic synthetic body of
    /// the recorded size (for wire demos serving non-HTML content).
    pub fn body_bytes(&self) -> SharedBytes {
        match &self.body {
            Some(b) => SharedBytes::from(b),
            None => {
                let mut out = Vec::with_capacity(self.size as usize);
                let pattern = b"vroom-replay-filler.";
                while out.len() < self.size as usize {
                    let take = pattern.len().min(self.size as usize - out.len());
                    let Some(chunk) = pattern.get(..take) else {
                        break;
                    };
                    out.extend_from_slice(chunk);
                }
                SharedBytes::from(out)
            }
        }
    }
}

/// A recorded page-load corpus: URL → response, plus the latency environment
/// observed at record time.
#[derive(Debug, Clone, Default)]
pub struct ReplayStore {
    /// Intern table over every recorded URL (and any URL a caller interns
    /// alongside, e.g. hint targets the wire server resolves against the
    /// same table).
    urls: UrlTable,
    /// Responses indexed by `UrlId`. `None` for ids interned without a
    /// recording.
    responses: Vec<Option<RecordedResponse>>,
    /// Per-domain wired RTTs observed while recording, ordered.
    pub server_rtts: BTreeMap<String, SimDuration>,
}

impl ReplayStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record (or overwrite) a response.
    pub fn record(&mut self, url: Url, response: RecordedResponse) {
        let id = self.urls.intern(url);
        if self.responses.len() <= id.index() {
            self.responses.resize(id.index() + 1, None);
        }
        self.responses[id.index()] = Some(response);
    }

    /// Record the wired RTT to a domain.
    pub fn record_rtt(&mut self, domain: impl Into<String>, rtt: SimDuration) {
        self.server_rtts.insert(domain.into(), rtt);
    }

    /// Look up a response by URL: one intern-table probe, then an index.
    pub fn lookup(&self, url: &Url) -> Option<&RecordedResponse> {
        self.lookup_id(self.urls.lookup(url)?)
    }

    /// Look up a response by interned id: a bare `Vec` index.
    pub fn lookup_id(&self, id: UrlId) -> Option<&RecordedResponse> {
        self.responses.get(id.index())?.as_ref()
    }

    /// The id of a recorded URL, if any.
    pub fn id_of(&self, url: &Url) -> Option<UrlId> {
        let id = self.urls.lookup(url)?;
        self.lookup_id(id).map(|_| id)
    }

    /// The store's intern table (shared with callers that resolve ids
    /// against recorded URLs, e.g. the wire server's hint sets).
    pub fn urls(&self) -> &UrlTable {
        &self.urls
    }

    /// Mutable access to the intern table, for callers that need to intern
    /// additional URLs (hint targets) before sharing the store.
    pub fn urls_mut(&mut self) -> &mut UrlTable {
        &mut self.urls
    }

    /// Number of recorded URLs.
    pub fn len(&self) -> usize {
        self.responses.iter().filter(|r| r.is_some()).count()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All recorded URLs for a domain, in URL sort order.
    pub fn urls_for_domain<'a>(&'a self, domain: &'a str) -> impl Iterator<Item = &'a Url> {
        self.urls
            .iter_sorted()
            .filter(move |(u, id)| u.host == domain && self.lookup_id(*id).is_some())
            .map(|(u, _)| u)
    }

    /// Overlay the recorded RTTs onto a latency model (the paper's replay
    /// shaping: cellular delay + recorded per-server RTT).
    pub fn apply_rtts(&self, latency: &mut LatencyModel) {
        for (domain, rtt) in &self.server_rtts {
            latency.set_server_rtt(domain.clone(), *rtt);
        }
    }

    /// Serialize to pretty JSON. Output is canonical: keys are sorted (by
    /// URL, not intern order), so the same corpus always produces the same
    /// bytes regardless of recording order.
    pub fn to_json(&self) -> String {
        let responses = self
            .urls
            .iter_sorted()
            .filter_map(|(url, id)| {
                self.lookup_id(id)
                    .map(|r| (url.to_string(), encode_response(r)))
            })
            .collect();
        let rtts = self
            .server_rtts
            .iter()
            .map(|(domain, rtt)| (domain.clone(), Value::Int(rtt.as_nanos())))
            .collect();
        let mut root = BTreeMap::new();
        root.insert("responses".to_string(), Value::Object(responses));
        root.insert("server_rtts".to_string(), Value::Object(rtts));
        let mut out = Value::Object(root).to_pretty();
        out.push('\n');
        out
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self, json::Error> {
        let root = Value::parse(s)?;
        let mut store = ReplayStore::new();
        let responses = root
            .get("responses")
            .and_then(Value::as_object)
            .ok_or_else(|| json::Error::custom("missing \"responses\" object"))?;
        for (url, v) in responses {
            let url = Url::parse(url)
                .ok_or_else(|| json::Error::custom(format!("invalid url {url:?}")))?;
            store.record(url, decode_response(v)?);
        }
        let rtts = root
            .get("server_rtts")
            .and_then(Value::as_object)
            .ok_or_else(|| json::Error::custom("missing \"server_rtts\" object"))?;
        for (domain, v) in rtts {
            let nanos = v
                .as_u64()
                .ok_or_else(|| json::Error::custom(format!("bad rtt for {domain:?}")))?;
            store.record_rtt(domain.clone(), SimDuration::from_nanos(nanos));
        }
        Ok(store)
    }

    /// Save to a file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Load from a file.
    pub fn load(path: &Path) -> io::Result<Self> {
        let s = std::fs::read_to_string(path)?;
        Self::from_json(&s).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

fn kind_name(kind: ResourceKind) -> &'static str {
    match kind {
        ResourceKind::Html => "Html",
        ResourceKind::Css => "Css",
        ResourceKind::Js => "Js",
        ResourceKind::Image => "Image",
        ResourceKind::Font => "Font",
        ResourceKind::Media => "Media",
        ResourceKind::Xhr => "Xhr",
        ResourceKind::Other => "Other",
    }
}

fn kind_from_name(name: &str) -> Option<ResourceKind> {
    Some(match name {
        "Html" => ResourceKind::Html,
        "Css" => ResourceKind::Css,
        "Js" => ResourceKind::Js,
        "Image" => ResourceKind::Image,
        "Font" => ResourceKind::Font,
        "Media" => ResourceKind::Media,
        "Xhr" => ResourceKind::Xhr,
        "Other" => ResourceKind::Other,
        _ => return None,
    })
}

fn encode_response(r: &RecordedResponse) -> Value {
    let mut obj = std::collections::BTreeMap::new();
    obj.insert(
        "kind".to_string(),
        Value::Str(kind_name(r.kind).to_string()),
    );
    obj.insert("size".to_string(), Value::Int(r.size));
    obj.insert("status".to_string(), Value::Int(r.status as u64));
    obj.insert(
        "max_age".to_string(),
        match r.max_age {
            Some(d) => Value::Int(d.as_nanos()),
            None => Value::Null,
        },
    );
    obj.insert(
        "body".to_string(),
        match &r.body {
            Some(b) => Value::Str(b.as_str().to_string()),
            None => Value::Null,
        },
    );
    Value::Object(obj)
}

fn decode_response(v: &Value) -> Result<RecordedResponse, json::Error> {
    let field = |name: &str| {
        v.get(name)
            .ok_or_else(|| json::Error::custom(format!("response missing {name:?}")))
    };
    let kind_str = field("kind")?
        .as_str()
        .ok_or_else(|| json::Error::custom("\"kind\" must be a string"))?;
    let kind = kind_from_name(kind_str)
        .ok_or_else(|| json::Error::custom(format!("unknown kind {kind_str:?}")))?;
    let size = field("size")?
        .as_u64()
        .ok_or_else(|| json::Error::custom("\"size\" must be an integer"))?;
    let status = field("status")?
        .as_u64()
        .ok_or_else(|| json::Error::custom("\"status\" must be an integer"))?;
    let max_age = match field("max_age")? {
        Value::Null => None,
        other => Some(SimDuration::from_nanos(other.as_u64().ok_or_else(
            || json::Error::custom("\"max_age\" must be null or an integer"),
        )?)),
    };
    let body = match field("body")? {
        Value::Null => None,
        other => Some(SharedStr::from(other.as_str().ok_or_else(|| {
            json::Error::custom("\"body\" must be null or a string")
        })?)),
    };
    Ok(RecordedResponse {
        kind,
        size,
        status: status as u16,
        max_age,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReplayStore {
        let mut store = ReplayStore::new();
        store.record(
            Url::https("news.com", "/"),
            RecordedResponse::with_body(
                ResourceKind::Html,
                "<html><script src=/app.js></script></html>",
            ),
        );
        store.record(
            Url::https("news.com", "/app.js"),
            RecordedResponse::synthetic(ResourceKind::Js, 40_000),
        );
        store.record(
            Url::https("cdn.net", "/hero.jpg"),
            RecordedResponse::synthetic(ResourceKind::Image, 300_000).uncacheable(),
        );
        store.record_rtt("news.com", SimDuration::from_millis(25));
        store.record_rtt("cdn.net", SimDuration::from_millis(5));
        store
    }

    #[test]
    fn lookup_and_domain_iteration() {
        let store = sample();
        assert_eq!(store.len(), 3);
        let html = store.lookup(&Url::https("news.com", "/")).unwrap();
        assert_eq!(html.kind, ResourceKind::Html);
        assert!(html.body.is_some());
        assert_eq!(store.urls_for_domain("news.com").count(), 2);
        assert_eq!(store.urls_for_domain("cdn.net").count(), 1);
        assert!(store.lookup(&Url::https("news.com", "/missing")).is_none());
    }

    #[test]
    fn lookup_by_id_matches_lookup_by_url() {
        let store = sample();
        let url = Url::https("news.com", "/app.js");
        let id = store.id_of(&url).unwrap();
        assert_eq!(store.lookup_id(id), store.lookup(&url));
        assert_eq!(store.urls().get(id), &url);
        assert!(store.id_of(&Url::https("news.com", "/missing")).is_none());
    }

    #[test]
    fn interned_ids_without_recordings_are_invisible() {
        let mut store = sample();
        let extra = store.urls_mut().intern(Url::https("news.com", "/hinted"));
        assert!(store.lookup_id(extra).is_none());
        assert_eq!(store.len(), 3, "unrecorded ids don't count");
        assert_eq!(store.urls_for_domain("news.com").count(), 2);
        assert!(!store.to_json().contains("/hinted"));
    }

    #[test]
    fn json_roundtrip() {
        let store = sample();
        let json = store.to_json();
        let back = ReplayStore::from_json(&json).unwrap();
        assert_eq!(back.len(), store.len());
        assert_eq!(
            back.lookup(&Url::https("cdn.net", "/hero.jpg")),
            store.lookup(&Url::https("cdn.net", "/hero.jpg"))
        );
        assert_eq!(back.server_rtts, store.server_rtts);
    }

    #[test]
    fn file_roundtrip() {
        let store = sample();
        let dir = std::env::temp_dir().join("vroom-replay-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.json");
        store.save(&path).unwrap();
        let back = ReplayStore::load(&path).unwrap();
        assert_eq!(back.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn synthetic_bodies_match_recorded_size() {
        let r = RecordedResponse::synthetic(ResourceKind::Image, 12_345);
        assert_eq!(r.body_bytes().len(), 12_345);
        let r0 = RecordedResponse::synthetic(ResourceKind::Image, 0);
        assert!(r0.body_bytes().is_empty());
    }

    #[test]
    fn literal_bodies_are_shared_not_copied() {
        let r = RecordedResponse::with_body(ResourceKind::Html, "<html></html>");
        let a = r.body_bytes();
        let b = r.body_bytes();
        assert_eq!(
            a.as_slice().as_ptr(),
            b.as_slice().as_ptr(),
            "same allocation"
        );
        assert_eq!(
            a.as_slice().as_ptr(),
            r.body.as_ref().unwrap().as_str().as_ptr(),
            "shares the recorded body's storage"
        );
    }

    #[test]
    fn rtts_overlay_latency_model() {
        let store = sample();
        let mut latency =
            LatencyModel::uniform(SimDuration::from_millis(60), SimDuration::from_millis(99));
        store.apply_rtts(&mut latency);
        assert_eq!(latency.rtt("news.com").as_millis(), 85);
        assert_eq!(latency.rtt("cdn.net").as_millis(), 65);
        assert_eq!(latency.rtt("other.org").as_millis(), 159, "default");
    }
}
