//! A Mahimahi-style record/replay store (paper §5, §6.1).
//!
//! Mahimahi records every HTTP response during a live page load and replays
//! them from local shells, shaping traffic with the recorded per-server RTTs.
//! Our equivalent stores one [`RecordedResponse`] per URL, serializable to
//! JSON so corpora can be saved, inspected, and replayed bit-identically.

use crate::json::{self, Value};
use crate::latency::LatencyModel;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use vroom_html::{ResourceKind, Url};
use vroom_sim::SimDuration;

/// One recorded HTTP exchange.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedResponse {
    /// The response's content class.
    pub kind: ResourceKind,
    /// Body size in bytes (synthetic bodies are regenerated on demand).
    pub size: u64,
    /// Status code.
    pub status: u16,
    /// Freshness lifetime; `None` means uncacheable.
    pub max_age: Option<SimDuration>,
    /// Literal body, if the recording kept one (HTML usually does, so the
    /// online analyzer can re-scan it; images usually don't).
    pub body: Option<String>,
}

impl RecordedResponse {
    /// A cacheable 200 of the given kind and size, no stored body.
    pub fn synthetic(kind: ResourceKind, size: u64) -> Self {
        RecordedResponse {
            kind,
            size,
            status: 200,
            max_age: Some(SimDuration::from_secs(3600)),
            body: None,
        }
    }

    /// A 200 with a literal body (size derived from it).
    pub fn with_body(kind: ResourceKind, body: impl Into<String>) -> Self {
        let body = body.into();
        RecordedResponse {
            kind,
            size: body.len() as u64,
            status: 200,
            max_age: Some(SimDuration::from_secs(3600)),
            body: Some(body),
        }
    }

    /// Mark the response uncacheable.
    pub fn uncacheable(mut self) -> Self {
        self.max_age = None;
        self
    }

    /// The body to serve: the literal one, or a deterministic synthetic body
    /// of the recorded size (for wire demos serving non-HTML content).
    pub fn body_bytes(&self) -> Vec<u8> {
        match &self.body {
            Some(b) => b.clone().into_bytes(),
            None => {
                let mut out = Vec::with_capacity(self.size as usize);
                let pattern = b"vroom-replay-filler.";
                while out.len() < self.size as usize {
                    let take = pattern.len().min(self.size as usize - out.len());
                    let Some(chunk) = pattern.get(..take) else {
                        break;
                    };
                    out.extend_from_slice(chunk);
                }
                out
            }
        }
    }
}

/// A recorded page-load corpus: URL → response, plus the latency environment
/// observed at record time.
#[derive(Debug, Clone, Default)]
pub struct ReplayStore {
    /// Responses by URL, ordered so iteration and serialization are
    /// deterministic regardless of recording order or hash seed.
    pub responses: BTreeMap<Url, RecordedResponse>,
    /// Per-domain wired RTTs observed while recording, likewise ordered.
    pub server_rtts: BTreeMap<String, SimDuration>,
}

impl ReplayStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record (or overwrite) a response.
    pub fn record(&mut self, url: Url, response: RecordedResponse) {
        self.responses.insert(url, response);
    }

    /// Record the wired RTT to a domain.
    pub fn record_rtt(&mut self, domain: impl Into<String>, rtt: SimDuration) {
        self.server_rtts.insert(domain.into(), rtt);
    }

    /// Look up a response.
    pub fn lookup(&self, url: &Url) -> Option<&RecordedResponse> {
        self.responses.get(url)
    }

    /// Number of recorded URLs.
    pub fn len(&self) -> usize {
        self.responses.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.responses.is_empty()
    }

    /// All recorded URLs for a domain.
    pub fn urls_for_domain<'a>(&'a self, domain: &'a str) -> impl Iterator<Item = &'a Url> {
        self.responses.keys().filter(move |u| u.host == domain)
    }

    /// Overlay the recorded RTTs onto a latency model (the paper's replay
    /// shaping: cellular delay + recorded per-server RTT).
    pub fn apply_rtts(&self, latency: &mut LatencyModel) {
        for (domain, rtt) in &self.server_rtts {
            latency.set_server_rtt(domain.clone(), *rtt);
        }
    }

    /// Serialize to pretty JSON. Output is canonical: keys are sorted, so
    /// the same corpus always produces the same bytes.
    pub fn to_json(&self) -> String {
        let responses = self
            .responses
            .iter()
            .map(|(url, r)| (url.to_string(), encode_response(r)))
            .collect();
        let rtts = self
            .server_rtts
            .iter()
            .map(|(domain, rtt)| (domain.clone(), Value::Int(rtt.as_nanos())))
            .collect();
        let mut root = BTreeMap::new();
        root.insert("responses".to_string(), Value::Object(responses));
        root.insert("server_rtts".to_string(), Value::Object(rtts));
        let mut out = Value::Object(root).to_pretty();
        out.push('\n');
        out
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self, json::Error> {
        let root = Value::parse(s)?;
        let mut store = ReplayStore::new();
        let responses = root
            .get("responses")
            .and_then(Value::as_object)
            .ok_or_else(|| json::Error::custom("missing \"responses\" object"))?;
        for (url, v) in responses {
            let url = Url::parse(url)
                .ok_or_else(|| json::Error::custom(format!("invalid url {url:?}")))?;
            store.record(url, decode_response(v)?);
        }
        let rtts = root
            .get("server_rtts")
            .and_then(Value::as_object)
            .ok_or_else(|| json::Error::custom("missing \"server_rtts\" object"))?;
        for (domain, v) in rtts {
            let nanos = v
                .as_u64()
                .ok_or_else(|| json::Error::custom(format!("bad rtt for {domain:?}")))?;
            store.record_rtt(domain.clone(), SimDuration::from_nanos(nanos));
        }
        Ok(store)
    }

    /// Save to a file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Load from a file.
    pub fn load(path: &Path) -> io::Result<Self> {
        let s = std::fs::read_to_string(path)?;
        Self::from_json(&s).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

fn kind_name(kind: ResourceKind) -> &'static str {
    match kind {
        ResourceKind::Html => "Html",
        ResourceKind::Css => "Css",
        ResourceKind::Js => "Js",
        ResourceKind::Image => "Image",
        ResourceKind::Font => "Font",
        ResourceKind::Media => "Media",
        ResourceKind::Xhr => "Xhr",
        ResourceKind::Other => "Other",
    }
}

fn kind_from_name(name: &str) -> Option<ResourceKind> {
    Some(match name {
        "Html" => ResourceKind::Html,
        "Css" => ResourceKind::Css,
        "Js" => ResourceKind::Js,
        "Image" => ResourceKind::Image,
        "Font" => ResourceKind::Font,
        "Media" => ResourceKind::Media,
        "Xhr" => ResourceKind::Xhr,
        "Other" => ResourceKind::Other,
        _ => return None,
    })
}

fn encode_response(r: &RecordedResponse) -> Value {
    let mut obj = std::collections::BTreeMap::new();
    obj.insert(
        "kind".to_string(),
        Value::Str(kind_name(r.kind).to_string()),
    );
    obj.insert("size".to_string(), Value::Int(r.size));
    obj.insert("status".to_string(), Value::Int(r.status as u64));
    obj.insert(
        "max_age".to_string(),
        match r.max_age {
            Some(d) => Value::Int(d.as_nanos()),
            None => Value::Null,
        },
    );
    obj.insert(
        "body".to_string(),
        match &r.body {
            Some(b) => Value::Str(b.clone()),
            None => Value::Null,
        },
    );
    Value::Object(obj)
}

fn decode_response(v: &Value) -> Result<RecordedResponse, json::Error> {
    let field = |name: &str| {
        v.get(name)
            .ok_or_else(|| json::Error::custom(format!("response missing {name:?}")))
    };
    let kind_str = field("kind")?
        .as_str()
        .ok_or_else(|| json::Error::custom("\"kind\" must be a string"))?;
    let kind = kind_from_name(kind_str)
        .ok_or_else(|| json::Error::custom(format!("unknown kind {kind_str:?}")))?;
    let size = field("size")?
        .as_u64()
        .ok_or_else(|| json::Error::custom("\"size\" must be an integer"))?;
    let status = field("status")?
        .as_u64()
        .ok_or_else(|| json::Error::custom("\"status\" must be an integer"))?;
    let max_age = match field("max_age")? {
        Value::Null => None,
        other => Some(SimDuration::from_nanos(other.as_u64().ok_or_else(
            || json::Error::custom("\"max_age\" must be null or an integer"),
        )?)),
    };
    let body = match field("body")? {
        Value::Null => None,
        other => Some(
            other
                .as_str()
                .ok_or_else(|| json::Error::custom("\"body\" must be null or a string"))?
                .to_string(),
        ),
    };
    Ok(RecordedResponse {
        kind,
        size,
        status: status as u16,
        max_age,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReplayStore {
        let mut store = ReplayStore::new();
        store.record(
            Url::https("news.com", "/"),
            RecordedResponse::with_body(
                ResourceKind::Html,
                "<html><script src=/app.js></script></html>",
            ),
        );
        store.record(
            Url::https("news.com", "/app.js"),
            RecordedResponse::synthetic(ResourceKind::Js, 40_000),
        );
        store.record(
            Url::https("cdn.net", "/hero.jpg"),
            RecordedResponse::synthetic(ResourceKind::Image, 300_000).uncacheable(),
        );
        store.record_rtt("news.com", SimDuration::from_millis(25));
        store.record_rtt("cdn.net", SimDuration::from_millis(5));
        store
    }

    #[test]
    fn lookup_and_domain_iteration() {
        let store = sample();
        assert_eq!(store.len(), 3);
        let html = store.lookup(&Url::https("news.com", "/")).unwrap();
        assert_eq!(html.kind, ResourceKind::Html);
        assert!(html.body.is_some());
        assert_eq!(store.urls_for_domain("news.com").count(), 2);
        assert_eq!(store.urls_for_domain("cdn.net").count(), 1);
        assert!(store.lookup(&Url::https("news.com", "/missing")).is_none());
    }

    #[test]
    fn json_roundtrip() {
        let store = sample();
        let json = store.to_json();
        let back = ReplayStore::from_json(&json).unwrap();
        assert_eq!(back.len(), store.len());
        assert_eq!(
            back.lookup(&Url::https("cdn.net", "/hero.jpg")),
            store.lookup(&Url::https("cdn.net", "/hero.jpg"))
        );
        assert_eq!(back.server_rtts, store.server_rtts);
    }

    #[test]
    fn file_roundtrip() {
        let store = sample();
        let dir = std::env::temp_dir().join("vroom-replay-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.json");
        store.save(&path).unwrap();
        let back = ReplayStore::load(&path).unwrap();
        assert_eq!(back.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn synthetic_bodies_match_recorded_size() {
        let r = RecordedResponse::synthetic(ResourceKind::Image, 12_345);
        assert_eq!(r.body_bytes().len(), 12_345);
        let r0 = RecordedResponse::synthetic(ResourceKind::Image, 0);
        assert!(r0.body_bytes().is_empty());
    }

    #[test]
    fn rtts_overlay_latency_model() {
        let store = sample();
        let mut latency =
            LatencyModel::uniform(SimDuration::from_millis(60), SimDuration::from_millis(99));
        store.apply_rtts(&mut latency);
        assert_eq!(latency.rtt("news.com").as_millis(), 85);
        assert_eq!(latency.rtt("cdn.net").as_millis(), 65);
        assert_eq!(latency.rtt("other.org").as_millis(), 159, "default");
    }
}
